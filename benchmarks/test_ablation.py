"""Benchmarks A1/A2: design-choice ablations.

A1 — temporal scheduling of EAP sub-operations vs. monolithic operations:
sub-operations win where dual-operation parallelism exists (the i860's
design target); on single-stream loops the explicit advances cost issue
slots (measured and recorded; see EXPERIMENTS.md).

A2 — the maximum-distance heuristic vs. FIFO ready-list order: max-dist
never loses on the measured kernels.
"""

from repro.eval.ablation import (
    ablation_delay_fill,
    ablation_heuristic,
    ablation_temporal,
    ablation_temporal_dual,
    render,
)


def test_ablation_temporal(once):
    dual = once(ablation_temporal_dual)
    rows = ablation_temporal(kernel_ids=(1, 3, 7), scale=0.15)
    print(
        "\nA1 dual-operation-rich fragment: "
        f"eap={dual.baseline_cycles} monolithic={dual.variant_cycles} "
        f"(monolithic/eap = {dual.ratio:.3f})"
    )
    print(render(rows, "A1 per-kernel (kernel-loop cycles)", "monolithic"))
    # the headline: sub-operation scheduling wins on dual-operation code
    assert dual.variant_cycles > dual.baseline_cycles
    # per-kernel: both models stay within a modest band of each other
    for row in rows:
        assert 0.8 < row.ratio < 1.3


def test_ablation_heuristic(once):
    rows = once(ablation_heuristic, kernel_ids=(1, 6, 7), scale=0.15)
    print("\n" + render(rows, "A2: maxdist vs FIFO (kernel-loop cycles)", "fifo"))
    for row in rows:
        # the max-distance heuristic never loses on these kernels
        assert row.variant_cycles >= row.baseline_cycles


def test_ablation_delay_fill(once):
    rows = once(ablation_delay_fill, kernel_ids=(1, 5, 12), scale=0.15)
    print(
        "\n"
        + render(
            rows, "A3: GH82 delay-slot filling vs nops (kernel-loop cycles)", "nops"
        )
    )
    for row in rows:
        # filling never loses, and wins where slots could be filled
        assert row.variant_cycles >= row.baseline_cycles
