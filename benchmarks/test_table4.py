"""Benchmark T4: regenerate Table 4 (Livermore Loops execution time and
actual/estimated ratio, R2000).

Reproduced shape: per-kernel ratios cluster at or slightly above 1 (the
estimates ignore cache misses and cross-block stalls, as the paper's did),
vary per kernel, and are consistent across the three strategies; the
harmonic-mean ratio lands in the paper's 1.0-1.1 band.

Runs the classic McMahon sizes by default (~1-2 minutes); set
REPRO_T4_SCALE to shrink the problem sizes for quick checks.
"""

import os

from repro.eval.common import STRATEGIES
from repro.eval.table4 import measure
from repro.utils.tables import TextTable

_SCALE = float(os.environ.get("REPRO_T4_SCALE", "1.0"))


def test_table4(once):
    data = once(measure, target="r2000", scale=_SCALE, cache=True)

    table = TextTable(
        ["Ker", "Postp kc", "IPS kc", "RASE kc", "Postp a/e", "IPS a/e", "RASE a/e"],
        title=f"Table 4 (scale={_SCALE}): Livermore Loops on the R2000",
    )
    for kernel_id in sorted(data.runs):
        row = [kernel_id]
        row += [f"{data.cycles(kernel_id, s) / 1000:.1f}" for s in STRATEGIES]
        row += [f"{data.ratio(kernel_id, s):.2f}" for s in STRATEGIES]
        table.add_row(*row)
    table.add_row(
        "mean",
        *[f"{data.mean_cycles(s) / 1000:.1f}" for s in STRATEGIES],
        *[f"{data.mean_ratio(s):.2f}" for s in STRATEGIES],
    )
    print("\n" + str(table))

    for strategy in STRATEGIES:
        mean_ratio = data.mean_ratio(strategy)
        # paper: harmonic means 1.06; ours must land in the same band
        assert 0.95 <= mean_ratio <= 1.25
        for kernel_id in data.runs:
            assert 0.85 <= data.ratio(kernel_id, strategy) <= 1.6

    # consistency across strategies (paper: "consistent across strategies
    # for each loop")
    for kernel_id in data.runs:
        ratios = [data.ratio(kernel_id, s) for s in STRATEGIES]
        assert max(ratios) - min(ratios) < 0.2
