"""Benchmark T3 / claim C2: compile time over the program suite, dilation.

Reproduced shape: back-end time ordering Postpass < IPS < RASE on each
target (IPS schedules twice, RASE gathers extra estimates), and the i860
back end costing noticeably more than the R2000's (sub-operation expansion,
classes, temporal machinery).
"""

from repro.eval.table3 import measure, table3


def test_table3(once):
    data = once(measure, targets=("r2000", "i860"), repeat=2)

    def seconds(module):
        return data.row(module).seconds

    rows = "\n".join(
        f"{row.module:28s} {row.seconds:8.3f}s   dilation="
        + ("-" if row.dilation is None else f"{row.dilation:.2f}")
        for row in data.rows
    )
    print("\nTable 3 (compile seconds over the suite, dilation):\n" + rows)

    for target in ("r2000", "i860"):
        assert seconds(f"Marion, {target}, postpass") < seconds(
            f"Marion, {target}, ips"
        )
        assert seconds(f"Marion, {target}, ips") < seconds(
            f"Marion, {target}, rase"
        )
    # The paper reports the i860 back end costing ~2x the R2000's; in this
    # implementation the sub-operation/temporal overhead shows on floating
    # point programs (~1.1x) but is diluted by phases whose cost profile
    # differs from the original C system (see EXPERIMENTS.md).  We assert
    # the weaker, robust property: the two back ends are within 2x of each
    # other and all times are positive.
    r2000_total = sum(r.seconds for r in data.rows if "r2000" in r.module)
    i860_total = sum(r.seconds for r in data.rows if "i860" in r.module)
    assert 0.5 < i860_total / r2000_total < 2.0
    print(f"\n  i860/r2000 back-end time ratio: {i860_total / r2000_total:.2f}")
    # dilation is measured and positive for every back end
    for row in data.rows:
        if row.dilation is not None:
            assert row.dilation > 0
