"""Benchmark C1: the section-5 strategy comparison.

"RASE and IPS both produce code that is 12% faster than that produced by
Postpass, on a computation-intensive workload."  Reproduced shape: on
large-basic-block floating point code, IPS and RASE beat Postpass and
track each other closely; on small-block kernels the three are a wash.
"""

from repro.eval.claims import claim_rase_vs_unscheduled, claim_strategy_speedup


def test_claim_strategy_speedup(once):
    claim = once(claim_strategy_speedup, scale=0.25)
    lines = [
        f"  workload {kid or 'unrolled-hydro'}: postpass/ips="
        f"{ips:.3f}  postpass/rase={rase:.3f}"
        for kid, (ips, rase) in sorted(claim.per_kernel.items())
    ]
    print(
        "\nClaim C1 (computation-intensive workload, R2000):\n"
        + "\n".join(lines)
        + f"\n  geomean speedup: IPS {claim.ips_speedup:.3f}, "
        f"RASE {claim.rase_speedup:.3f}"
    )
    # direction and size: prepass strategies beat postpass by a double-digit
    # margin on this workload class (paper: 12%)
    assert claim.ips_speedup > 1.05
    assert claim.rase_speedup > 1.05
    # IPS and RASE produce similar-quality code (the paper found both 12%)
    assert abs(claim.ips_speedup - claim.rase_speedup) < 0.1


def test_claim_rase_vs_unscheduled_baseline(once):
    """C3: RASE vs the local-only (no scheduling) baseline on the
    Livermore kernel loops — the paper reports 26% over mips -O1."""
    claim = once(claim_rase_vs_unscheduled, scale=0.25)
    lines = [
        f"  K{kid}: {ratio:.3f}" for kid, ratio in sorted(claim.per_kernel.items())
    ]
    print(
        "\nClaim C3 (RASE vs unscheduled baseline, kernel loops):\n"
        + "\n".join(lines)
        + f"\n  geomean speedup: {claim.geomean_speedup:.3f}"
    )
    # scheduling buys a double-digit win over the unscheduled baseline
    assert claim.geomean_speedup > 1.10
    # and dominates on the floating point pipeline kernels
    assert claim.per_kernel[7] > 1.3
    assert claim.per_kernel[8] > 1.3
