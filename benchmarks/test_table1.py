"""Benchmark T1: regenerate Table 1 (Maril description statistics)."""

from repro.eval.table1 import description_stats, table1


def test_table1(once):
    text = once(table1)
    print("\n" + text)
    stats = {name: description_stats(name) for name in ("m88000", "r2000", "i860")}
    # paper shape: only the i860 needs clocks, elements, classes; it has the
    # most funcs and by far the most func escape code
    assert stats["i860"].clocks >= 2
    assert stats["i860"].elements > 0
    assert stats["m88000"].clocks == stats["r2000"].clocks == 0
    assert stats["i860"].func_python_lines == max(
        s.func_python_lines for s in stats.values()
    )
