"""Benchmark T2: regenerate Table 2 (system source size by phase)."""

from repro.eval.table2 import phase_sizes, table2


def test_table2(once):
    text = once(table2)
    print("\n" + text)
    sizes = phase_sizes()
    # paper shape: TSI is the largest component; the i860 is the largest
    # target description; RASE > IPS > Postpass among strategies
    assert sizes["Target- and strategy-independent (TSI)"] == max(sizes.values())
    td = {k: v for k, v in sizes.items() if "(TD)" in k}
    assert max(td, key=td.get).endswith("i860")
    assert (
        sizes["Strategy-dependent (SD), RASE"]
        > sizes["Strategy-dependent (SD), IPS"]
        > sizes["Strategy-dependent (SD), Postpass"]
    )
