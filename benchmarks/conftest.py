"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
it, so `pytest benchmarks/ --benchmark-only -s` reproduces the evaluation
section.  Table-generation functions are slow (they compile and simulate
whole workloads), so every benchmark runs pedantic single-shot.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the measured callable exactly once and report its wall time."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
