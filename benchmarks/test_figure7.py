"""Benchmark F7: regenerate Figure 7 (the i860 dual-operation schedule)."""

from repro.eval.figure7 import dual_operation_count, figure7


def test_figure7(once):
    text = once(figure7)
    print("\n" + text)
    # the reproduced shape: multiply and adder sub-operations sharing
    # cycles (dual-operation long instructions), both pipes explicitly
    # advanced, result caught by FWB sub-operations
    assert "M1" in text and "M2" in text and "FWBM" in text
    assert "A1" in text and "FWBA" in text
    packed_lines = [line for line in text.splitlines() if "|" in line]
    assert len(packed_lines) >= 2
    assert dual_operation_count() >= 2
