#!/usr/bin/env python
"""Localhost multi-host smoke for the SocketExecutor grid backend.

Exercises the distributed story end to end, outside the unit-test
harness, on one machine:

1. a clean single-shot serial report (the byte-identity baseline);
2. a report driven over ``--executor socket:127.0.0.1:PORT`` with two
   externally launched ``repro worker`` processes, one of which is
   SIGKILLed mid-run — the survivor must adopt the orphaned units and
   the report must still exit 0 with deterministic sections
   byte-identical to the serial run;
3. a sharded pair of reports (``--shard 1/2`` / ``--shard 2/2``)
   journalling into one shared ``--resume`` file, finished by an
   unsharded resume run that must reassemble byte-identical tables
   without re-measuring anything.

Usage: PYTHONPATH=src python scripts/multihost_smoke.py [SCALE]
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro.eval.report import deterministic_sections

SCALE = sys.argv[1] if len(sys.argv) > 1 else "0.05"


def report_command(*extra):
    return [
        sys.executable, "-m", "repro", "report",
        "--scale", SCALE, "--bench-out", "",
        *extra,
    ]


def journal_records(path):
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return max(0, sum(1 for _ in handle) - 1)  # minus the header


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def wait_for_listener(port, deadline_s=60.0):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.5).close()
            return
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"coordinator never listened on port {port}")


def diff_sections(baseline, candidate, what):
    base = deterministic_sections(baseline)
    cand = deterministic_sections(candidate)
    assert base.keys() == cand.keys(), (
        f"{what}: section lists differ: {sorted(base)} vs {sorted(cand)}"
    )
    for title, body in base.items():
        if cand[title] != body:
            print(f"--- MISMATCH ({what}) in {title!r} ---")
            print("serial:\n" + body)
            print(f"{what}:\n" + cand[title])
            raise SystemExit(1)
    return len(base)


def main():
    workdir = tempfile.mkdtemp(prefix="multihost-smoke-")

    print(f"[1/3] single-shot serial report (scale={SCALE})", flush=True)
    clean = subprocess.run(
        report_command("--jobs", "1"), capture_output=True, text=True
    )
    assert clean.returncode == 0, clean.stderr

    print("[2/3] socket report, 2 external workers, SIGKILL one mid-run",
          flush=True)
    port = free_port()
    journal = os.path.join(workdir, "socket.jsonl")
    bench = os.path.join(workdir, "bench.json")
    coordinator = subprocess.Popen(
        report_command(
            "--executor", f"socket:127.0.0.1:{port}",
            "--resume", journal, "--bench-out", bench,
        ),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    wait_for_listener(port)
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        for _ in range(2)
    ]
    deadline = time.time() + 600
    while journal_records(journal) < 3 and coordinator.poll() is None:
        assert time.time() < deadline, "no journal records after 600 s"
        time.sleep(0.2)
    if coordinator.poll() is None:
        workers[0].send_signal(signal.SIGKILL)
        print(f"      killed worker pid {workers[0].pid} with "
              f"{journal_records(journal)} unit(s) journalled", flush=True)
    else:
        print("      run finished before the kill; adoption not exercised "
              "at this scale", flush=True)
    out, err = coordinator.communicate(timeout=600)
    assert coordinator.returncode == 0, err
    for proc in workers:
        if proc.poll() is None:
            proc.terminate()
    sections = diff_sections(clean.stdout, out, "socket")
    payload = json.load(open(bench))
    grid = payload["grid"]
    assert grid["backend"] == "socket", grid
    print(f"      {sections} deterministic sections byte-identical; "
          f"grid: backend={grid['backend']} adopted={grid['adopted_units']} "
          f"stolen={grid['stolen_units']}", flush=True)

    print("[3/3] sharded pair into one journal, unsharded resume", flush=True)
    journal = os.path.join(workdir, "shards.jsonl")
    for shard in ("1/2", "2/2"):
        ran = subprocess.run(
            report_command("--jobs", "2", "--shard", shard,
                           "--resume", journal),
            capture_output=True, text=True,
        )
        assert ran.returncode == 0, ran.stderr
        print(f"      shard {shard}: {journal_records(journal)} unit(s) "
              "journalled so far", flush=True)
    merged = subprocess.run(
        report_command("--jobs", "1", "--resume", journal),
        capture_output=True, text=True,
    )
    assert merged.returncode == 0, merged.stderr
    sections = diff_sections(clean.stdout, merged.stdout, "sharded-merge")
    print(f"multihost smoke OK: {sections} deterministic sections "
          "byte-identical on the socket and sharded-merge paths")


if __name__ == "__main__":
    main()
