#!/usr/bin/env python
"""End-to-end smoke for ``repro serve``, outside the unit-test harness.

Launches the real CLI entry point (warm local worker pool), then walks
the whole v1 surface over real sockets:

1. every endpoint answers: GET healthz/targets/stats, POST
   compile/run/explain;
2. **warm second compile is free**: an identical POST /v1/compile is
   answered from the response memo — ``/v1/stats`` must show zero
   additional kernel compiles and zero additional CGG builds;
3. **dedup burst**: N identical requests for a fresh source cause
   exactly one fresh compile between them (in-flight coalescing and the
   memo split the credit; the compile counter is the invariant);
4. structured errors: unsupported api version and malformed JSON are
   400s with taxonomy codes, an unprocessable program is a 422;
5. SIGTERM drains gracefully and the process exits 0.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

TARGET = "toyp"
SOURCE = "int add(int a, int b) { return a + b; }"
BURST_SOURCE = "int triple(int x) { return x + x + x; }"


def launch():
    # The subject here is the service's own coalescing and memo; a warm
    # persistent artifact cache would absorb the burst's one fresh
    # compile and break the counter invariants on re-runs.
    env = dict(os.environ, REPRO_CACHE="0")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--warm", TARGET,
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    pattern = re.compile(r"listening on http://([\d.]+):(\d+)")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit("serve exited before announcing its port")
        match = pattern.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
    raise SystemExit("serve did not announce its port within 60s")


def call(host, port, method, path, doc=None):
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = json.dumps(doc) if doc is not None else None
        connection.request(method, path, body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def check(condition, label, context=None):
    if not condition:
        raise SystemExit(f"serve smoke FAILED: {label}  {context or ''}")
    print(f"  ok: {label}")


def main():
    process, host, port = launch()
    try:
        status, body = call(host, port, "GET", "/v1/healthz")
        check(status == 200 and body["status"] == "ok", "healthz")

        status, body = call(host, port, "GET", "/v1/targets")
        check(
            status == 200
            and [t["name"] for t in body["targets"]]
            == ["toyp", "r2000", "m88000", "i860"],
            "targets lists the bundled machines",
        )

        compile_doc = {"source": SOURCE, "target": TARGET}
        status, first = call(host, port, "POST", "/v1/compile", compile_doc)
        check(
            status == 200 and "add:" in first["assembly"],
            "cold compile returns the scheduled listing",
        )

        _, stats_before = call(host, port, "GET", "/v1/stats")
        status, second = call(host, port, "POST", "/v1/compile", compile_doc)
        _, stats_after = call(host, port, "GET", "/v1/stats")
        warm_compiles = (
            stats_after["compile"]["compiled"]
            - stats_before["compile"]["compiled"]
        )
        warm_cgg = (
            stats_after["compile"]["cgg_builds"]
            - stats_before["compile"]["cgg_builds"]
        )
        check(
            status == 200 and second["served"] == "memo",
            "warm second compile served from the memo",
        )
        check(
            warm_compiles == 0 and warm_cgg == 0,
            "warm second compile: 0 kernel compiles, 0 CGG builds",
            (warm_compiles, warm_cgg),
        )
        check(
            second["assembly"] == first["assembly"],
            "warm response is byte-identical",
        )

        # dedup burst: N identical requests, exactly one fresh compile
        _, stats_before = call(host, port, "GET", "/v1/stats")
        burst_doc = {"source": BURST_SOURCE, "target": TARGET}
        results = []

        def fire():
            results.append(
                call(host, port, "POST", "/v1/compile", dict(burst_doc))
            )

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        _, stats_after = call(host, port, "GET", "/v1/stats")
        burst_compiles = (
            stats_after["compile"]["compiled"]
            - stats_before["compile"]["compiled"]
        )
        check(
            all(status == 200 for status, _ in results),
            "dedup burst: all 8 identical requests answered",
        )
        check(
            burst_compiles == 1,
            "dedup burst: exactly one fresh compile",
            burst_compiles,
        )
        coalesced = (
            stats_after["dedup"]["inflight_hits"]
            + stats_after["dedup"]["memo_hits"]
        ) - (
            stats_before["dedup"]["inflight_hits"]
            + stats_before["dedup"]["memo_hits"]
        )
        check(
            coalesced == 7,
            "dedup burst: seven requests coalesced or memo-served",
            coalesced,
        )

        status, body = call(
            host, port, "POST", "/v1/run",
            {
                "source": SOURCE,
                "entry": "add",
                "args": [19, 23],
                "target": TARGET,
            },
        )
        check(
            status == 200 and body["result"]["int"] == 42,
            "run simulates to the right answer",
        )

        status, body = call(
            host, port, "POST", "/v1/explain",
            {"source": SOURCE, "target": TARGET},
        )
        check(
            status == 200
            and "issue" in body["listing"]
            and "nop_slots" in body["functions"]["add"],
            "explain annotates issue cycles and stall reasons",
        )

        status, body = call(
            host, port, "POST", "/v1/compile",
            {"source": SOURCE, "api": 99},
        )
        check(
            status == 400
            and body["error"]["code"] == "unsupported_version",
            "unknown api version is a structured 400",
        )

        status, body = call(
            host, port, "POST", "/v1/compile",
            {"source": "int f( {"},
        )
        check(
            status == 422 and body["error"]["type"].endswith("Error"),
            "unparseable program is a structured 422",
            body["error"]["type"],
        )

        status, body = call(host, port, "GET", "/v1/stats")
        check(
            status == 200 and body["executor"]["workers"] >= 1,
            "stats reports a live worker pool",
        )
        check(
            body["latency_ms"]["compile"]["p50"] >= 0,
            "stats reports latency percentiles",
        )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            exit_code = process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("serve smoke FAILED: SIGTERM did not drain")
    check(exit_code == 0, "SIGTERM drains and exits 0", exit_code)
    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
