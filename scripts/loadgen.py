#!/usr/bin/env python
"""Open-loop load generator for ``repro serve``.

Drives one POST endpoint at a fixed arrival rate — open loop, so
request N fires at its scheduled time whether or not request N-1 has
come back; a slow server accumulates outstanding requests instead of
quietly throttling the offered load — and reports the latency
distribution (p50/p90/p99/max) and achieved throughput.

The headline comparison is **warm service vs cold-start compiles**: the
service keeps its worker pool, target caches and response memo across
requests, while the pre-service workflow paid Python startup, target
construction and a fresh compile per invocation.  ``--cold-baseline K``
measures that cold path (K ``python -m repro compile`` subprocesses) and
``--assert-speedup X`` fails the run unless

    cold per-request mean  >=  X * warm service p50.

Usage::

    PYTHONPATH=src python scripts/loadgen.py --spawn \\
        --requests 200 --rps 100 --variants 8 \\
        --cold-baseline 3 --assert-speedup 5 --assert-p99 250 \\
        --bench-out /tmp/serve-bench.json

``--spawn`` launches its own ``repro serve`` on a free port (SIGTERM at
exit); point ``--url`` at an already-running service instead to load an
external one.
"""

import argparse
import http.client
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time

SOURCE_TEMPLATE = """
int k{i}(int a, int b) {{
    int acc;
    int j;
    acc = {i};
    j = 0;
    while (j < b) {{ acc = acc + a * j + {i}; j = j + 1; }}
    return acc;
}}
"""


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default="", help="service base URL")
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="launch a repro serve subprocess on a free port",
    )
    parser.add_argument(
        "--executor",
        default="local",
        help="--executor for the spawned service",
    )
    parser.add_argument("--target", default="toyp")
    parser.add_argument(
        "--endpoint",
        default="compile",
        choices=("compile", "run", "explain"),
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--rps", type=float, default=100.0, help="offered arrival rate"
    )
    parser.add_argument(
        "--variants",
        type=int,
        default=8,
        help="distinct source programs to rotate through",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="unmeasured passes over the variants before the run",
    )
    parser.add_argument(
        "--cold-baseline",
        type=int,
        default=0,
        metavar="K",
        help="measure K cold `repro compile` subprocesses for comparison",
    )
    parser.add_argument("--assert-p99", type=float, default=0.0, metavar="MS")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="fail unless cold mean >= X * warm p50 (needs --cold-baseline)",
    )
    parser.add_argument("--bench-out", default="", metavar="FILE")
    return parser.parse_args()


def spawn_service(executor, target):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--executor", executor, "--warm", target,
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    pattern = re.compile(r"listening on (http://[\d.]+:\d+)")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit("serve exited before announcing its port")
        match = pattern.search(line)
        if match:
            return process, match.group(1)
    raise SystemExit("serve did not announce its port within 60s")


def post(host, port, path, doc, timeout=60.0):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(doc)
        connection.request(
            "POST", path, body, {"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        payload = response.read()
        return response.status, json.loads(payload)
    finally:
        connection.close()


def request_doc(endpoint, target, variant):
    doc = {
        "source": SOURCE_TEMPLATE.format(i=variant),
        "target": target,
    }
    if endpoint == "run":
        doc["entry"] = f"k{variant}"
        doc["args"] = [3, 5]
    return doc


def percentile(ranked, q):
    return ranked[min(len(ranked) - 1, int(len(ranked) * q))]


def run_load(host, port, arguments):
    path = f"/v1/{arguments.endpoint}"
    latencies, errors = [], []
    lock = threading.Lock()

    def one(variant):
        doc = request_doc(arguments.endpoint, arguments.target, variant)
        begin = time.perf_counter()
        try:
            status, _body = post(host, port, path, doc)
        except Exception as exc:  # noqa: BLE001 — tally, don't crash the run
            with lock:
                errors.append(repr(exc))
            return
        elapsed = (time.perf_counter() - begin) * 1000
        with lock:
            if status == 200:
                latencies.append(elapsed)
            else:
                errors.append(f"HTTP {status}")

    # warm the pool, the target caches and the memo
    for _ in range(arguments.warmup):
        for variant in range(arguments.variants):
            one(variant)
    latencies.clear()
    errors.clear()

    # open loop: every request starts at its scheduled arrival time
    interval = 1.0 / arguments.rps if arguments.rps > 0 else 0.0
    threads = []
    start = time.perf_counter()
    for index in range(arguments.requests):
        scheduled = start + index * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=one, args=(index % arguments.variants,)
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    ranked = sorted(latencies)
    summary = {
        "endpoint": arguments.endpoint,
        "target": arguments.target,
        "requests": arguments.requests,
        "variants": arguments.variants,
        "offered_rps": arguments.rps,
        "achieved_rps": round(len(ranked) / wall, 2) if wall else 0.0,
        "errors": len(errors),
        "latency_ms": {
            "p50": round(percentile(ranked, 0.50), 3),
            "p90": round(percentile(ranked, 0.90), 3),
            "p99": round(percentile(ranked, 0.99), 3),
            "max": round(ranked[-1], 3),
            "mean": round(statistics.fmean(ranked), 3),
        }
        if ranked
        else None,
    }
    if errors:
        summary["error_sample"] = errors[:5]
    return summary


def measure_cold_baseline(arguments):
    """K fresh ``python -m repro compile`` processes: interpreter start,
    target build and one compile per request — the pre-service cost of a
    compile *as a request*."""
    samples = []
    with tempfile.TemporaryDirectory() as scratch:
        source_path = os.path.join(scratch, "cold.c")
        environment = dict(os.environ)
        environment["REPRO_CACHE"] = "0"  # cold means cold
        for index in range(arguments.cold_baseline):
            with open(source_path, "w") as handle:
                handle.write(SOURCE_TEMPLATE.format(i=1000 + index))
            begin = time.perf_counter()
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "compile",
                    source_path, "--target", arguments.target,
                ],
                check=True,
                stdout=subprocess.DEVNULL,
                env=environment,
            )
            samples.append((time.perf_counter() - begin) * 1000)
    return {
        "requests": len(samples),
        "mean_ms": round(statistics.fmean(samples), 3),
        "min_ms": round(min(samples), 3),
        "max_ms": round(max(samples), 3),
    }


def main():
    arguments = parse_args()
    process = None
    if arguments.spawn:
        process, url = spawn_service(arguments.executor, arguments.target)
    elif arguments.url:
        url = arguments.url
    else:
        raise SystemExit("pass --url or --spawn")
    host, port = url.split("//", 1)[1].rsplit(":", 1)

    try:
        summary = run_load(host, int(port), arguments)
    finally:
        if process is not None:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)

    if arguments.cold_baseline:
        summary["cold_baseline"] = measure_cold_baseline(arguments)
        if summary["latency_ms"]:
            summary["speedup_p50_vs_cold"] = round(
                summary["cold_baseline"]["mean_ms"]
                / summary["latency_ms"]["p50"],
                2,
            )

    print(json.dumps(summary, indent=2))
    if arguments.bench_out:
        with open(arguments.bench_out, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")

    failures = []
    if summary["errors"]:
        failures.append(f"{summary['errors']} request(s) failed")
    if not summary["latency_ms"]:
        failures.append("no successful requests")
    if arguments.assert_p99 and summary["latency_ms"]:
        p99 = summary["latency_ms"]["p99"]
        if p99 > arguments.assert_p99:
            failures.append(
                f"p99 {p99:.1f}ms exceeds the {arguments.assert_p99}ms bound"
            )
    if arguments.assert_speedup:
        speedup = summary.get("speedup_p50_vs_cold", 0.0)
        if speedup < arguments.assert_speedup:
            failures.append(
                f"warm-serve speedup {speedup}x is below the required "
                f"{arguments.assert_speedup}x"
            )
    if failures:
        print("loadgen FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("loadgen OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
