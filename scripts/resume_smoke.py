#!/usr/bin/env python
"""Interrupt/resume smoke for the fault-tolerant report harness.

Runs a tiny-scale report three ways and checks the acceptance property
end to end, outside the unit-test harness:

1. a clean single-shot serial run;
2. a ``--jobs 2 --resume journal`` run SIGKILL'd partway through;
3. the same command again, resuming from the journal.

The resumed run must exit 0 and its deterministic sections (everything
except the wall-clock ones: Table 3, Claim C2, and the total-time
footer) must be byte-identical to the single-shot run.

Usage: PYTHONPATH=src python scripts/resume_smoke.py [SCALE]
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.eval.report import deterministic_sections

SCALE = sys.argv[1] if len(sys.argv) > 1 else "0.05"


def report_command(jobs, journal=None):
    command = [
        sys.executable, "-m", "repro", "report",
        "--scale", SCALE, "--jobs", str(jobs), "--bench-out", "",
    ]
    if journal:
        command += ["--resume", journal]
    return command


def journal_records(path):
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return max(0, sum(1 for _ in handle) - 1)  # minus the header


def main():
    workdir = tempfile.mkdtemp(prefix="resume-smoke-")
    journal = os.path.join(workdir, "run.jsonl")

    print(f"[1/3] single-shot serial report (scale={SCALE})", flush=True)
    clean = subprocess.run(
        report_command(jobs=1), capture_output=True, text=True
    )
    assert clean.returncode == 0, clean.stderr

    print("[2/3] --jobs 2 report, SIGKILL after a few journal records",
          flush=True)
    victim = subprocess.Popen(
        report_command(jobs=2, journal=journal),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 300
    while journal_records(journal) < 3 and victim.poll() is None:
        assert time.time() < deadline, "no journal records after 300 s"
        time.sleep(0.2)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"      killed with {journal_records(journal)} unit(s) "
              "journalled", flush=True)
    else:
        # the tiny run can legitimately finish before we kill it; the
        # resume below then exercises the all-cached path
        print("      run finished before the kill; resuming a complete "
              "journal instead", flush=True)

    done_before_resume = journal_records(journal)
    assert done_before_resume >= 3, "journal should hold completed units"

    print("[3/3] resume from the journal and diff", flush=True)
    resumed = subprocess.run(
        report_command(jobs=2, journal=journal),
        capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr

    clean_sections = deterministic_sections(clean.stdout)
    resumed_sections = deterministic_sections(resumed.stdout)
    assert clean_sections.keys() == resumed_sections.keys(), (
        "section lists differ: "
        f"{sorted(clean_sections) } vs {sorted(resumed_sections)}"
    )
    for title, body in clean_sections.items():
        if resumed_sections[title] != body:
            print(f"--- MISMATCH in {title!r} ---")
            print("clean:\n" + body)
            print("resumed:\n" + resumed_sections[title])
            raise SystemExit(1)
    print(f"resume smoke OK: {len(clean_sections)} deterministic sections "
          f"byte-identical after resuming {done_before_resume} journalled "
          "unit(s)")


if __name__ == "__main__":
    main()
