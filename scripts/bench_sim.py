#!/usr/bin/env python
"""Simulator-only microbenchmark: per-target instr/s + block-cache stats.

Compiles one Livermore kernel per target, simulates it, and reports the
functional execution rate and the block-timing cache hit rate — so
simulator performance is trackable independently of the full report
(whose wall clock also includes compilation and table assembly).

Usage::

    PYTHONPATH=src python scripts/bench_sim.py
    PYTHONPATH=src python scripts/bench_sim.py --targets r2000 --scale 0.2 \\
        --assert-hit-rate 0.90        # CI perf smoke
    PYTHONPATH=src python scripts/bench_sim.py --compare   # fast vs reference
    PYTHONPATH=src python scripts/bench_sim.py --compare-jit \\
        --assert-jit-speedup 1.2      # CI JIT perf smoke
    PYTHONPATH=src python scripts/bench_sim.py --warm \\
        --assert-digest-rate 0.01     # steady state is digest-free
    PYTHONPATH=src python scripts/bench_sim.py --profile-sim --json \\
        > selftime.json               # warm self-time breakdown

``--compare`` runs every unit under both timing paths, verifies the
cycle counts and cache stats are bit-identical, and prints the speedup.
``--compare-jit`` runs every unit with the segment JIT on and off,
verifies the results are bit-identical, and prints instr/s both ways
plus the deopt count; ``--assert-jit-speedup RATIO`` exits nonzero when
any unit's JIT speedup falls below RATIO (or any segment deopted).
``--compare-cache`` times each unit cold (fresh artifact-cache tmpdir,
wall includes the compile) and then warm (in-process memos dropped, so
target/executable/JIT/timing all come off the disk), verifies the warm
results are bit-identical, and prints the speedup;
``--assert-warm-speedup RATIO`` exits nonzero when any unit's warm
speedup falls below RATIO, the warm run still translated JIT segments,
or the results differ.  ``--assert-hit-rate`` exits nonzero when any
unit's block-cache hit rate falls below the threshold.  ``--json``
emits machine-readable results.

Except under ``--compare-cache``, the artifact cache is disabled for
the whole benchmark so repeated units measure real work, not pickle
loads.
"""

import argparse
import json
import sys
import tempfile
import time

import repro
from repro.cache import configure as configure_cache
from repro.sim import DirectMappedCache
from repro.targets import clear_target_cache
from repro.workloads import kernel_by_id

ALL_TARGETS = ("toyp", "r2000", "m88000", "i860")


def bench_unit(
    target, kernel_id, strategy, scale, fast, jit=True, time_compile=False,
    warm=False,
):
    # a fresh compile per run: the block-timing memo and JIT code cache
    # live on the executable, so reuse would let one run's warmup bleed
    # into the other's wall clock
    spec = kernel_by_id(kernel_id)
    compile_start = time.perf_counter()
    executable = repro.compile_c(
        spec.source, target, repro.CompileOptions(strategy=strategy)
    )
    loop, n = spec.args
    n = max(4, int(n * scale))
    if warm:
        # one un-measured pass: the JIT compiles and the timing memo
        # fills, so the measured run below is steady state
        repro.simulate(
            executable,
            "bench",
            args=(loop, n),
            options=repro.SimOptions(
                cache=DirectMappedCache(), fast_timing=fast, jit=jit
            ),
        )
    start = time.perf_counter()
    result = repro.simulate(
        executable,
        "bench",
        args=(loop, n),
        options=repro.SimOptions(
            cache=DirectMappedCache(), fast_timing=fast, jit=jit
        ),
    )
    end = time.perf_counter()
    seconds = end - (compile_start if time_compile else start)
    lookups = result.block_cache_hits + result.block_cache_misses
    return {
        "target": target,
        "kernel": kernel_id,
        "strategy": strategy,
        "fast_timing": fast,
        "seconds": round(seconds, 4),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "instr_per_s": round(result.instructions / seconds),
        "block_cache_hits": result.block_cache_hits,
        "block_cache_misses": result.block_cache_misses,
        "hit_rate": (
            round(result.block_cache_hits / lookups, 4) if lookups else 0.0
        ),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "checksum": result.return_value["double"],
        "jit": jit,
        "warm": warm,
        "jit_segments": result.jit_segments,
        "jit_active_segments": result.jit_active_segments,
        "jit_hits": result.jit_hits,
        "jit_deopts": result.jit_deopts,
        "jit_superblocks": result.jit_superblocks,
        "jit_side_exits": result.jit_side_exits,
        "timing_digests": result.timing_digests,
        "digest_rate": (
            round(result.timing_digests / lookups, 6) if lookups else 0.0
        ),
    }


def profile_segments(target, kernel_id, strategy, scale, top):
    """The ``top`` hottest segment entries of one unit.

    Pass 1 runs under an infinite-warmup JIT whose per-entry warmup
    counter then records every dispatch (nothing ever compiles, so
    chained loops cannot swallow iterations).  Pass 2 runs twice under a
    fresh default JIT to learn each entry's fate: plain segment, chained
    self-loop, trace-superblock head, or refusal."""
    from repro.sim.jit import SegmentJIT

    spec = kernel_by_id(kernel_id)
    executable = repro.compile_c(
        spec.source, target, repro.CompileOptions(strategy=strategy)
    )
    loop, n = spec.args
    n = max(4, int(n * scale))
    options = repro.SimOptions(cache=DirectMappedCache())
    executable._segment_jit = SegmentJIT(executable, warmup=1 << 62)
    repro.simulate(executable, "bench", args=(loop, n), options=options)
    dispatches = dict(executable._segment_jit._dispatches)
    executable._segment_jit = SegmentJIT(executable)
    repro.simulate(executable, "bench", args=(loop, n), options=options)
    repro.simulate(executable, "bench", args=(loop, n), options=options)
    table = executable._segment_jit.functions(True)
    rows = []
    ranked = sorted(dispatches.items(), key=lambda item: (-item[1], item[0]))
    for entry, hits in ranked[:top]:
        record = table.get(entry, "cold")
        if record == "cold":
            status = "interpreted"
        elif record is None:
            status = "refused"
        elif record[2]:
            status = "trace-superblock"
        elif "while 1:" in record[0]._jit_source:
            status = "chained-loop"
        else:
            status = "segment"
        rows.append(
            {
                "target": target,
                "kernel": kernel_id,
                "strategy": strategy,
                "entry": entry,
                "dispatch_hits": hits,
                "status": status,
            }
        )
    return rows


#: cProfile self-time buckets, matched against code-object filenames in
#: order — the first hit wins
_PROFILE_BUCKETS = (
    ("generated_code", "<jit:"),
    ("digest_replay", "blockcache.py"),
    ("pipeline_model", "pipeline.py"),
    ("cache_model", "sim/cache.py"),
    ("dispatch", "simulator.py"),
)


def profile_sim(target, kernel_id, strategy, scale):
    """Self-time breakdown of one *warm* simulation under cProfile.

    Buckets every profiled frame's inline (self) time by where the code
    lives: generated JIT functions, digest construction + segment replay
    (:mod:`repro.sim.blockcache`), the pipeline model, the data-cache
    model, the simulator dispatch loop, and everything else (functional
    closures, machine state, builtins).  One un-measured pass warms the
    JIT and the timing memo first, so the profile shows steady state —
    the regime the timing chain is supposed to make digest-free."""
    import cProfile

    spec = kernel_by_id(kernel_id)
    executable = repro.compile_c(
        spec.source, target, repro.CompileOptions(strategy=strategy)
    )
    loop, n = spec.args
    n = max(4, int(n * scale))

    def simulate():
        return repro.simulate(
            executable,
            "bench",
            args=(loop, n),
            options=repro.SimOptions(cache=DirectMappedCache()),
        )

    simulate()  # warmup: JIT compiles, timing memo fills
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate()
    profiler.disable()
    seconds = {name: 0.0 for name, _match in _PROFILE_BUCKETS}
    seconds["other"] = 0.0
    total = 0.0
    for entry in profiler.getstats():
        code = entry.code
        filename = getattr(code, "co_filename", "")
        self_time = entry.inlinetime
        total += self_time
        for name, match in _PROFILE_BUCKETS:
            if match in filename:
                seconds[name] += self_time
                break
        else:
            seconds["other"] += self_time
    lookups = result.block_cache_hits + result.block_cache_misses
    return {
        "target": target,
        "kernel": kernel_id,
        "strategy": strategy,
        "scale": scale,
        "total_seconds": round(total, 4),
        "seconds": {name: round(value, 4) for name, value in seconds.items()},
        "fraction": {
            name: round(value / total, 4) if total else 0.0
            for name, value in seconds.items()
        },
        "instructions": result.instructions,
        "timing_digests": result.timing_digests,
        "block_cache_lookups": lookups,
        "digest_rate": (
            round(result.timing_digests / lookups, 6) if lookups else 0.0
        ),
    }


def cache_compare_unit(target, kernel_id, strategy, scale):
    """Cold-vs-warm wall for one unit against a fresh cache directory.

    The cold pass pays the CGG (on first target use), the kernel
    compile, JIT warmup and timing replays; dropping the in-process
    memos then forces the warm pass through the disk artifacts exactly
    like a new process."""
    root = tempfile.mkdtemp(prefix=f"bench-cache-{target}-")
    configure_cache(root=root, enabled=True)
    clear_target_cache()
    cold = bench_unit(
        target, kernel_id, strategy, scale, True, time_compile=True
    )
    clear_target_cache()
    row = bench_unit(
        target, kernel_id, strategy, scale, True, time_compile=True
    )
    row["cold_seconds"] = cold["seconds"]
    row["warm_seconds"] = row["seconds"]
    row["cache_speedup"] = round(
        cold["seconds"] / max(row["seconds"], 1e-9), 2
    )
    for field in (
        "instructions", "cycles", "cache_hits", "cache_misses", "checksum",
    ):
        if row[field] != cold[field]:
            row["mismatch"] = field
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--targets",
        default=",".join(ALL_TARGETS),
        help="comma-separated target list (default: all four)",
    )
    parser.add_argument("--kernel", type=int, default=1, help="Livermore kernel id")
    parser.add_argument("--strategy", default="postpass")
    parser.add_argument("--scale", type=float, default=0.2, help="iteration scale")
    parser.add_argument(
        "--assert-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 if any unit's block-cache hit rate is below RATE",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the reference path; verify bit-identical, print speedup",
    )
    parser.add_argument(
        "--compare-jit",
        action="store_true",
        help="also run with the segment JIT off; verify bit-identical, "
        "print instr/s both ways and the deopt count",
    )
    parser.add_argument(
        "--assert-jit-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="with --compare-jit: exit 1 if any unit's JIT speedup is "
        "below RATIO, no segment compiled, or any deopt occurred",
    )
    parser.add_argument(
        "--compare-cache",
        action="store_true",
        help="time each unit cold (fresh artifact-cache dir, compile "
        "included) and warm (everything off the disk); verify "
        "bit-identical, print the speedup",
    )
    parser.add_argument(
        "--assert-warm-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="with --compare-cache: exit 1 if any unit's warm speedup is "
        "below RATIO, the warm run translated JIT segments, or results "
        "differ",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="simulate each unit once un-measured first, so the measured "
        "run is steady state (JIT compiled, timing memo full)",
    )
    parser.add_argument(
        "--assert-digest-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 if any unit's measured run computed more than "
        "RATE x (block-cache lookups) pipeline-state digests — combine "
        "with --warm to assert steady state is digest-free",
    )
    parser.add_argument(
        "--assert-max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit 1 if any unit's measured simulation wall exceeds "
        "SECONDS",
    )
    parser.add_argument(
        "--profile-sim",
        action="store_true",
        help="cProfile one warm simulation per unit and report the "
        "self-time breakdown (generated code, digest/replay, pipeline "
        "model, cache model, dispatch, other) instead of benchmarking; "
        "with --json the document merges into BENCH via "
        "'repro report --sim-bench FILE'",
    )
    parser.add_argument(
        "--profile-segments",
        type=int,
        default=None,
        metavar="N",
        help="dump the N hottest segment entries per unit (entry pc, "
        "dispatch hits, segment/chained-loop/trace status) instead of "
        "benchmarking",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    args = parser.parse_args(argv)

    if not args.compare_cache:
        # repeated units must measure real work, not pickle loads
        configure_cache(enabled=False)

    targets = [t.strip() for t in args.targets.split(",") if t.strip()]

    if args.profile_sim:
        profile_rows = [
            profile_sim(target, args.kernel, args.strategy, args.scale)
            for target in targets
        ]
        if args.json:
            print(json.dumps(profile_rows, indent=2))
        else:
            for row in profile_rows:
                print(
                    f"{row['target']:8s} K{row['kernel']}/{row['strategy']} "
                    f"warm self-time {row['total_seconds']:.3f}s "
                    f"(digest rate {row['digest_rate']:.4f}):"
                )
                ranked = sorted(
                    row["seconds"].items(), key=lambda item: -item[1]
                )
                for name, value in ranked:
                    print(
                        f"    {name:16s} {value:8.3f}s "
                        f"{row['fraction'][name] * 100:5.1f}%"
                    )
        return 0

    if args.profile_segments is not None:
        profile_rows = []
        for target in targets:
            profile_rows.extend(
                profile_segments(
                    target, args.kernel, args.strategy, args.scale,
                    args.profile_segments,
                )
            )
        if args.json:
            print(json.dumps(profile_rows, indent=2))
        else:
            for row in profile_rows:
                print(
                    f"{row['target']:8s} K{row['kernel']}/{row['strategy']} "
                    f"pc={row['entry']:<6d} "
                    f"{row['dispatch_hits']:>8d} dispatches  "
                    f"{row['status']}"
                )
        return 0

    rows = []
    failed = False
    for target in targets:
        if args.compare_cache:
            row = cache_compare_unit(
                target, args.kernel, args.strategy, args.scale
            )
            if "mismatch" in row:
                failed = True
            if args.assert_warm_speedup is not None and (
                row["cache_speedup"] < args.assert_warm_speedup
                or row["jit_segments"] != 0
                or "mismatch" in row
            ):
                row["below_warm_threshold"] = True
                failed = True
            rows.append(row)
            continue
        row = bench_unit(
            target, args.kernel, args.strategy, args.scale, True,
            warm=args.warm,
        )
        if args.compare:
            reference = bench_unit(
                target, args.kernel, args.strategy, args.scale, False
            )
            row["reference_seconds"] = reference["seconds"]
            row["speedup"] = round(
                reference["seconds"] / max(row["seconds"], 1e-9), 2
            )
            for field in ("cycles", "cache_hits", "cache_misses"):
                if row[field] != reference[field]:
                    row["mismatch"] = field
                    failed = True
        if args.compare_jit:
            interp = bench_unit(
                target, args.kernel, args.strategy, args.scale, True,
                jit=False,
            )
            row["interp_seconds"] = interp["seconds"]
            row["interp_instr_per_s"] = interp["instr_per_s"]
            row["jit_speedup"] = round(
                interp["seconds"] / max(row["seconds"], 1e-9), 2
            )
            for field in (
                "instructions", "cycles", "cache_hits", "cache_misses",
                "checksum",
            ):
                if row[field] != interp[field]:
                    row["mismatch"] = field
                    failed = True
            if args.assert_jit_speedup is not None and (
                row["jit_speedup"] < args.assert_jit_speedup
                or row["jit_segments"] == 0
                or row["jit_deopts"] != 0
            ):
                row["below_jit_threshold"] = True
                failed = True
        if (
            args.assert_hit_rate is not None
            and row["hit_rate"] < args.assert_hit_rate
        ):
            row["below_threshold"] = True
            failed = True
        if (
            args.assert_digest_rate is not None
            and row["digest_rate"] > args.assert_digest_rate
        ):
            row["above_digest_rate"] = True
            failed = True
        if (
            args.assert_max_seconds is not None
            and row["seconds"] > args.assert_max_seconds
        ):
            row["above_max_seconds"] = True
            failed = True
        rows.append(row)

    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            line = (
                f"{row['target']:8s} K{row['kernel']}/{row['strategy']}: "
                f"{row['instr_per_s'] / 1e6:5.2f}M instr/s "
                f"({row['instructions']} instrs, {row['seconds']:.3f}s), "
                f"block-cache hit rate {row['hit_rate']:.4f} "
                f"({row['block_cache_hits']}/{row['block_cache_hits'] + row['block_cache_misses']})"
            )
            if "speedup" in row:
                line += f", {row['speedup']}x vs reference"
            if "cache_speedup" in row:
                line += (
                    f", cache {row['cache_speedup']}x warm vs cold "
                    f"({row['cold_seconds']:.3f}s -> "
                    f"{row['warm_seconds']:.3f}s)"
                )
            if "jit_speedup" in row:
                line += (
                    f", jit {row['jit_speedup']}x vs interp "
                    f"({row['interp_instr_per_s'] / 1e6:.2f}M instr/s off, "
                    f"{row['jit_segments']} segments, "
                    f"{row['jit_deopts']} deopts)"
                )
            elif row["jit_segments"]:
                line += (
                    f", jit: {row['jit_segments']} segments, "
                    f"{row['jit_hits']} hits, {row['jit_deopts']} deopts"
                )
            if row.get("jit_superblocks") or row.get("jit_side_exits"):
                line += (
                    f", {row['jit_superblocks']} superblocks "
                    f"({row['jit_side_exits']} side exits)"
                )
            if row.get("timing_digests", 0) or row.get("warm"):
                line += (
                    f", {row['timing_digests']} digests "
                    f"(rate {row['digest_rate']:.4f})"
                )
            if "mismatch" in row:
                line += f"  !! MISMATCH in {row['mismatch']}"
            if row.get("below_threshold"):
                line += "  !! hit rate below threshold"
            if row.get("above_digest_rate"):
                line += "  !! digest rate above threshold"
            if row.get("above_max_seconds"):
                line += "  !! wall above threshold"
            if row.get("below_jit_threshold"):
                line += "  !! jit speedup below threshold (or deopt)"
            if row.get("below_warm_threshold"):
                line += "  !! warm speedup below threshold (or rework)"
            print(line)

    if failed:
        reasons = []
        if args.assert_hit_rate is not None:
            reasons.append(
                f"block-cache hit rate below {args.assert_hit_rate}"
            )
        if args.assert_jit_speedup is not None:
            reasons.append(
                f"jit speedup below {args.assert_jit_speedup} or deopt"
            )
        if args.assert_warm_speedup is not None:
            reasons.append(
                f"warm speedup below {args.assert_warm_speedup} or "
                "warm-run rework"
            )
        if args.assert_digest_rate is not None:
            reasons.append(
                f"digest rate above {args.assert_digest_rate}"
            )
        if args.assert_max_seconds is not None:
            reasons.append(
                f"simulation wall above {args.assert_max_seconds}s"
            )
        reasons.append("jit/fast/reference/cache mismatch")
        print("FAIL: " + " / ".join(reasons), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
