#!/usr/bin/env python
"""Simulator-only microbenchmark: per-target instr/s + block-cache stats.

Compiles one Livermore kernel per target, simulates it, and reports the
functional execution rate and the block-timing cache hit rate — so
simulator performance is trackable independently of the full report
(whose wall clock also includes compilation and table assembly).

Usage::

    PYTHONPATH=src python scripts/bench_sim.py
    PYTHONPATH=src python scripts/bench_sim.py --targets r2000 --scale 0.2 \\
        --assert-hit-rate 0.90        # CI perf smoke
    PYTHONPATH=src python scripts/bench_sim.py --compare   # fast vs reference

``--compare`` runs every unit under both timing paths, verifies the
cycle counts and cache stats are bit-identical, and prints the speedup.
``--assert-hit-rate`` exits nonzero when any unit's block-cache hit rate
falls below the threshold.  ``--json`` emits machine-readable results.
"""

import argparse
import json
import sys
import time

import repro
from repro.sim import DirectMappedCache
from repro.workloads import kernel_by_id

ALL_TARGETS = ("toyp", "r2000", "m88000", "i860")


def bench_unit(target, kernel_id, strategy, scale, fast):
    spec = kernel_by_id(kernel_id)
    executable = repro.compile_c(
        spec.source, target, repro.CompileOptions(strategy=strategy)
    )
    loop, n = spec.args
    n = max(4, int(n * scale))
    start = time.perf_counter()
    result = repro.simulate(
        executable,
        "bench",
        args=(loop, n),
        options=repro.SimOptions(
            cache=DirectMappedCache(), fast_timing=fast
        ),
    )
    seconds = time.perf_counter() - start
    lookups = result.block_cache_hits + result.block_cache_misses
    return {
        "target": target,
        "kernel": kernel_id,
        "strategy": strategy,
        "fast_timing": fast,
        "seconds": round(seconds, 4),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "instr_per_s": round(result.instructions / seconds),
        "block_cache_hits": result.block_cache_hits,
        "block_cache_misses": result.block_cache_misses,
        "hit_rate": (
            round(result.block_cache_hits / lookups, 4) if lookups else 0.0
        ),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--targets",
        default=",".join(ALL_TARGETS),
        help="comma-separated target list (default: all four)",
    )
    parser.add_argument("--kernel", type=int, default=1, help="Livermore kernel id")
    parser.add_argument("--strategy", default="postpass")
    parser.add_argument("--scale", type=float, default=0.2, help="iteration scale")
    parser.add_argument(
        "--assert-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 if any unit's block-cache hit rate is below RATE",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the reference path; verify bit-identical, print speedup",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON")
    args = parser.parse_args(argv)

    targets = [t.strip() for t in args.targets.split(",") if t.strip()]
    rows = []
    failed = False
    for target in targets:
        row = bench_unit(target, args.kernel, args.strategy, args.scale, True)
        if args.compare:
            reference = bench_unit(
                target, args.kernel, args.strategy, args.scale, False
            )
            row["reference_seconds"] = reference["seconds"]
            row["speedup"] = round(
                reference["seconds"] / max(row["seconds"], 1e-9), 2
            )
            for field in ("cycles", "cache_hits", "cache_misses"):
                if row[field] != reference[field]:
                    row["mismatch"] = field
                    failed = True
        if (
            args.assert_hit_rate is not None
            and row["hit_rate"] < args.assert_hit_rate
        ):
            row["below_threshold"] = True
            failed = True
        rows.append(row)

    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            line = (
                f"{row['target']:8s} K{row['kernel']}/{row['strategy']}: "
                f"{row['instr_per_s'] / 1e6:5.2f}M instr/s "
                f"({row['instructions']} instrs, {row['seconds']:.3f}s), "
                f"block-cache hit rate {row['hit_rate']:.4f} "
                f"({row['block_cache_hits']}/{row['block_cache_hits'] + row['block_cache_misses']})"
            )
            if "speedup" in row:
                line += f", {row['speedup']}x vs reference"
            if "mismatch" in row:
                line += f"  !! MISMATCH in {row['mismatch']}"
            if row.get("below_threshold"):
                line += "  !! hit rate below threshold"
            print(line)

    if failed:
        if args.assert_hit_rate is not None:
            print(
                f"FAIL: block-cache hit rate below {args.assert_hit_rate}"
                " (or fast/reference mismatch)",
                file=sys.stderr,
            )
        else:
            print("FAIL: fast/reference mismatch", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
