"""Setup shim: lets `pip install -e .` work without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables legacy
editable installs on environments lacking PEP 660 wheel support.
"""

from setuptools import setup

setup()
