"""Unit tests for Maril semantic checking."""

import pytest

from repro.errors import MarilSemanticError
from repro.maril.parser import parse_maril

GOOD = """
declare {
    %reg r[0:7] (int);
    %reg d[0:3] (double);
    %equiv d[0] r[0];
    %resource IF, EX;
    %def c16 [-32768:32767];
    %label lab [-64:63] +relative;
    %memory m[0:1023];
    %clock clk;
    %reg m1 (double; clk) +temporal;
}
cwvm {
    %general (int) r;
    %allocable r[1:5];
    %calleesave r[4:5];
    %sp r[7] +down;
    %fp r[6] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %result r[2] (int);
}
instr {
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; EX] (1,1,0);
    %instr beq0 r, #lab {if ($1 == 0) goto $2;} [IF] (1,2,1);
    %aux add : beq0 (1.$1 == 2.$1) (3);
    %glue r, r, #lab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
}
"""


def test_valid_description_passes():
    parse_maril(GOOD)


def check_fails(text, match):
    with pytest.raises(MarilSemanticError, match=match):
        parse_maril(text)


def test_duplicate_name_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); %resource r; } cwvm { %sp r[0] ; %fp r[1]; }",
        "duplicate",
    )


def test_empty_register_range_rejected():
    check_fails(
        "declare { %reg r[5:1] (int); } cwvm { %sp r[5]; %fp r[5]; }", "empty"
    )


def test_unknown_type_rejected():
    check_fails(
        "declare { %reg r[0:1] (quad); } cwvm { %sp r[0]; %fp r[1]; }",
        "unknown type",
    )


def test_temporal_without_clock_rejected():
    check_fails(
        "declare { %reg m1 (double) +temporal; %reg r[0:1] (int); }"
        " cwvm { %sp r[0]; %fp r[1]; }",
        "must name a clock",
    )


def test_undeclared_clock_rejected():
    check_fails(
        "declare { %reg m1 (double; nope) +temporal; %reg r[0:1] (int); }"
        " cwvm { %sp r[0]; %fp r[1]; }",
        "clock",
    )


def test_missing_sp_rejected():
    check_fails("declare { %reg r[0:1] (int); } cwvm { %fp r[1]; }", "%sp")


def test_register_index_out_of_range_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[9]; }",
        "out of range",
    )


def test_allocable_outside_declared_range_rejected():
    check_fails(
        "declare { %reg r[0:3] (int); }"
        " cwvm { %sp r[0]; %fp r[1]; %allocable r[1:9]; }",
        "outside",
    )


def test_instr_undeclared_resource_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %instr add r, r, r {$1 = $2 + $3;} [BOGUS] (1,1,0); }",
        "undeclared resource",
    )


def test_instr_operand_ref_out_of_range_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %instr add r, r {$1 = $2 + $3;} [] (1,1,0); }",
        "out of range",
    )


def test_instr_undeclared_class_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %instr f r {$1 = $1;} [] (1,1,0) <ghost>; }",
        "class element",
    )


def test_instr_negative_latency_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %instr f r {$1 = $1;} [] (1,-2,0); }",
        "cost/latency",
    )


def test_aux_unknown_mnemonic_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %aux nope : never (1.$1 == 2.$1) (3); }",
        "unknown instruction",
    )


def test_glue_unknown_immediate_class_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); } cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %glue #ghost {($1) ==> ($1);}; }",
        "unknown immediate",
    )


def test_unknown_memory_in_semantics_rejected():
    check_fails(
        "declare { %reg r[0:1] (int); %def c [0:1]; }"
        " cwvm { %sp r[0]; %fp r[1]; }"
        " instr { %instr ld r, r, #c {$1 = nomem[$2 + $3];} [] (1,1,0); }",
        "unknown",
    )


def test_equal_size_equiv_allowed_for_alias_sets():
    parse_maril(
        "declare { %reg r[0:3] (int); %reg s[0:3] (float); %equiv s[0] r[0]; }"
        " cwvm { %sp r[0]; %fp r[1]; }"
    )
