"""The target-build cache: one CGG build per target name per process,
cache hits return the same instance, and compilation never mutates a
cached target (compiled code is bit-identical to fresh-target output)."""

import repro
from repro.backend.asmprinter import format_program
from repro.targets import load_target, target_build_count

PROGRAM_A = """
int sum(int n) {
    int i;
    int total;
    total = 0;
    for (i = 0; i < n; i++) { total = total + i; }
    return total;
}
"""

PROGRAM_B = """
double scale(double x, int k) {
    int i;
    for (i = 0; i < k; i++) { x = x * 1.5 + 0.25; }
    return x;
}
"""


def test_repeated_load_returns_same_instance():
    first = load_target("r2000")
    second = load_target("r2000")
    assert first is second


def test_single_cgg_build_per_name_per_process():
    load_target("m88000")
    builds_after_first = target_build_count("m88000")
    for _ in range(5):
        load_target("m88000")
    assert target_build_count("m88000") == builds_after_first


def test_fresh_returns_distinct_instance():
    cached = load_target("toyp")
    fresh = load_target("toyp", fresh=True)
    assert fresh is not cached
    # the fresh instance must not displace the cached one
    assert load_target("toyp") is cached


def test_fresh_instances_are_independent():
    a = load_target("r2000", fresh=True)
    b = load_target("r2000", fresh=True)
    assert a is not b


def _compile_text(target, source, strategy):
    executable = repro.compile_c(source, target, repro.CompileOptions(strategy=strategy))
    return format_program(executable.machine_program)


def test_cached_target_not_mutated_by_compilation():
    """Two back-to-back compiles on one cached target produce code
    bit-identical to compiles on two fresh targets."""
    cached = load_target("r2000")
    for strategy in ("postpass", "ips", "rase"):
        cached_a = _compile_text(cached, PROGRAM_A, strategy)
        cached_b = _compile_text(cached, PROGRAM_B, strategy)
        fresh_a = _compile_text(
            load_target("r2000", fresh=True), PROGRAM_A, strategy
        )
        fresh_b = _compile_text(
            load_target("r2000", fresh=True), PROGRAM_B, strategy
        )
        assert cached_a == fresh_a
        assert cached_b == fresh_b
        # and the cached target keeps producing the same code afterwards
        assert _compile_text(cached, PROGRAM_A, strategy) == fresh_a


def test_cached_target_structure_stable_across_compiles():
    target = load_target("i860")
    instruction_count = len(target.instructions)
    register_sets = sorted(target.registers.sets)
    repro.compile_c(PROGRAM_B, target, repro.CompileOptions(strategy="postpass"))
    assert len(target.instructions) == instruction_count
    assert sorted(target.registers.sets) == register_sets
