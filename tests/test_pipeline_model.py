"""Unit tests for the pipeline timing model in isolation."""

import pytest

from repro.backend.insts import Imm, Lab, Reg
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg
from repro.sim.cache import DirectMappedCache
from repro.sim.pipeline import PipelineModel

from tests.helpers import build as instr


def test_independent_ops_serialize_on_single_issue(toyp):
    model = PipelineModel(toyp)
    one = instr(toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1))
    two = instr(toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 6)), Imm(2))
    c1 = model.issue(one, [])
    c2 = model.issue(two, [])
    assert c2 == c1 + 1  # both need IF on cycle 0


def test_interlock_on_producer_latency(toyp):
    model = PipelineModel(toyp)
    load = instr(toyp, "ld", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(0))
    use = instr(toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 2)), Imm(1))
    c1 = model.issue(load, [(4096, False, 4)])
    c2 = model.issue(use, [])
    assert c2 >= c1 + 3  # ld latency


def test_aux_latency_applies_at_runtime(toyp):
    model = PipelineModel(toyp)
    fadd = instr(
        toyp, "fadd.d", Reg(PhysReg("d", 1)), Reg(PhysReg("d", 2)), Reg(PhysReg("d", 3))
    )
    store = instr(
        toyp, "st.d", Reg(PhysReg("d", 1)), Reg(PhysReg("r", 6)), Imm(0)
    )
    c1 = model.issue(fadd, [])
    c2 = model.issue(store, [(4096, True, 8)])
    assert c2 >= c1 + 7  # %aux fadd.d : st.d (7)


def test_pair_alias_interlock(toyp):
    """Writing d[1] delays a reader of r[2] (shared unit)."""
    model = PipelineModel(toyp)
    fadd = instr(
        toyp, "fadd.d", Reg(PhysReg("d", 1)), Reg(PhysReg("d", 2)), Reg(PhysReg("d", 3))
    )
    reader = instr(
        toyp, "addi", Reg(PhysReg("r", 4)), Reg(PhysReg("r", 2)), Imm(0)
    )
    c1 = model.issue(fadd, [])
    c2 = model.issue(reader, [])
    assert c2 >= c1 + 6


def test_taken_transfer_redirects_fetch(toyp):
    model = PipelineModel(toyp)
    branch = instr(toyp, "beq0", Reg(PhysReg("r", 2)), Lab("L"))
    c1 = model.issue(branch, [])
    model.transfer(branch, c1)
    follower = instr(
        toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 6)), Imm(1)
    )
    c2 = model.issue(follower, [])
    assert c2 >= c1 + branch.desc.latency


def test_cache_miss_extends_result_latency(r2000):
    cache = DirectMappedCache(size=256, line=16, miss_penalty=20)
    model = PipelineModel(r2000, cache)
    load = instr(r2000, "lw", Reg(PhysReg("r", 8)), Reg(PhysReg("r", 30)), Imm(0))
    use = instr(r2000, "addiu", Reg(PhysReg("r", 9)), Reg(PhysReg("r", 8)), Imm(1))
    c1 = model.issue(load, [(8192, False, 4)])  # cold: miss
    c2 = model.issue(use, [])
    assert c2 >= c1 + 2 + 20


def test_cache_hit_costs_nothing_extra(r2000):
    cache = DirectMappedCache(size=256, line=16, miss_penalty=20)
    model = PipelineModel(r2000, cache)
    warm = instr(r2000, "lw", Reg(PhysReg("r", 8)), Reg(PhysReg("r", 30)), Imm(0))
    model.issue(warm, [(8192, False, 4)])
    again = instr(r2000, "lw", Reg(PhysReg("r", 10)), Reg(PhysReg("r", 30)), Imm(4))
    use = instr(r2000, "addiu", Reg(PhysReg("r", 9)), Reg(PhysReg("r", 10)), Imm(1))
    c1 = model.issue(again, [(8196, False, 4)])  # same line: hit
    c2 = model.issue(use, [])
    assert c2 <= c1 + 2


def test_store_does_not_stall_on_miss(r2000):
    """Write-through stores complete without a refill stall."""
    cache = DirectMappedCache(size=256, line=16, miss_penalty=20)
    model = PipelineModel(r2000, cache)
    store = instr(
        r2000, "sw", Reg(PhysReg("r", 8)), Reg(PhysReg("r", 30)), Imm(0)
    )
    c1 = model.issue(store, [(8192, True, 4)])
    follower = instr(
        r2000, "addiu", Reg(PhysReg("r", 9)), Reg(PhysReg("r", 6)), Imm(1)
    )
    c2 = model.issue(follower, [])
    assert c2 == c1 + 1


def test_i860_core_and_fp_coissue(i860):
    model = PipelineModel(i860)
    core = instr(i860, "addsi", Reg(PhysReg("r", 16)), Reg(PhysReg("r", 17)), Imm(1))
    sub = instr(i860, "A1", Reg(PhysReg("d", 4)), Reg(PhysReg("d", 5)))
    c1 = model.issue(core, [])
    c2 = model.issue(sub, [])
    assert c1 == c2


def test_i860_incompatible_classes_split_cycles(i860):
    model = PipelineModel(i860)
    a1 = instr(i860, "A1", Reg(PhysReg("d", 4)), Reg(PhysReg("d", 5)))
    a1s = instr(i860, "A1S", Reg(PhysReg("d", 6)), Reg(PhysReg("d", 7)))
    c1 = model.issue(a1, [])
    c2 = model.issue(a1s, [])
    assert c2 > c1  # same FA1 field, and pfadd vs pfsub classes disjoint


def test_temporal_producer_latency(i860):
    model = PipelineModel(i860)
    m1 = instr(i860, "M1", Reg(PhysReg("d", 4)), Reg(PhysReg("d", 5)))
    m2 = instr(i860, "M2")
    c1 = model.issue(m1, [])
    c2 = model.issue(m2, [])
    assert c2 >= c1 + 1


def test_memory_ordering_load_after_store(toyp):
    model = PipelineModel(toyp)
    store = instr(toyp, "st", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(0))
    load = instr(toyp, "ld", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 6)), Imm(0))
    c1 = model.issue(store, [(4096, True, 4)])
    c2 = model.issue(load, [(4096, False, 4)])
    assert c2 >= c1 + 1


def test_bookkeeping_pruned_on_long_runs(toyp):
    model = PipelineModel(toyp)
    for index in range(600):
        add = instr(
            toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(index % 100)
        )
        model.issue(add, [])
    # the resource ring is fixed-size and class bookkeeping is pruned
    assert len(model.ring_cycle) == len(model.ring_mask)
    assert len(model.cycle_classes) < 400  # pruned, not 600+
    assert model.cycles >= 600
