"""Property-based tests (hypothesis) over core invariants."""

import math

from hypothesis import given, settings, strategies as st

import repro
from repro.backend.codedag import build_code_dag
from repro.backend.insts import Imm, Reg
from repro.backend.scheduler import ListScheduler
from repro.backend.values import immediate_fits
from repro.il.node import PseudoReg
from repro.machine.instruction import OperandDesc, OperandMode
from repro.sim.executor import _int_div, _int_mod, _wrap32
from repro.targets import load_target

from tests.helpers import build as build_instr

_TOYP = load_target("toyp")
_INT32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


# -- arithmetic helpers -------------------------------------------------------


@given(st.integers())
def test_wrap32_idempotent_and_in_range(value):
    wrapped = _wrap32(value)
    assert -(2**31) <= wrapped < 2**31
    assert _wrap32(wrapped) == wrapped
    assert (wrapped - value) % (2**32) == 0


@given(_INT32, _INT32.filter(lambda v: v != 0))
def test_c_division_identity(a, b):
    quotient = _int_div(a, b)
    remainder = _int_mod(a, b)
    assert quotient * b + remainder == a
    assert abs(remainder) < abs(b)
    # C semantics: remainder has the dividend's sign (or is zero)
    assert remainder == 0 or (remainder > 0) == (a > 0)


@given(_INT32)
def test_immediate_fits_respects_range(value):
    spec = OperandDesc(OperandMode.IMM, def_name="c16", lo=-32768, hi=32767)
    assert immediate_fits(value, spec) == (-32768 <= value <= 32767)


# -- random straight-line program: schedule validity ---------------------------


@st.composite
def straight_line_block(draw):
    """A random dependency-rich straight-line TOYP block over pseudos."""
    count = draw(st.integers(min_value=1, max_value=12))
    base = PseudoReg("int", "base")
    available = [base]
    instrs = []
    for i in range(count):
        choice = draw(st.integers(min_value=0, max_value=3))
        dest = PseudoReg("int", f"v{i}")
        if choice == 0:
            src = draw(st.sampled_from(available))
            instrs.append(
                build_instr(_TOYP, "addi", Reg(dest), Reg(src), Imm(i))
            )
        elif choice == 1:
            lhs = draw(st.sampled_from(available))
            rhs = draw(st.sampled_from(available))
            instrs.append(
                build_instr(_TOYP, "add", Reg(dest), Reg(lhs), Reg(rhs))
            )
        elif choice == 2:
            addr = draw(st.sampled_from(available))
            instrs.append(build_instr(_TOYP, "ld", Reg(dest), Reg(addr), Imm(0)))
        else:
            value = draw(st.sampled_from(available))
            addr = draw(st.sampled_from(available))
            instrs.append(build_instr(_TOYP, "st", Reg(value), Reg(addr), Imm(4)))
            continue  # stores define nothing
        available.append(dest)
    return instrs


@given(straight_line_block())
@settings(max_examples=60, deadline=None)
def test_schedule_respects_all_dependences(instrs):
    dag = build_code_dag(list(instrs), _TOYP)
    result = ListScheduler(_TOYP).schedule_block(list(instrs))
    # every instruction appears exactly once (plus possible nops)
    scheduled = [i for i in result.instrs if not i.is_nop]
    assert sorted(i.id for i in scheduled) == sorted(i.id for i in instrs)
    position = {i.id: n for n, i in enumerate(result.instrs)}
    for node in dag.nodes:
        for edge in node.succs:
            src, dst = edge.src.instr, edge.dst.instr
            assert result.cycle_of(dst) >= result.cycle_of(src) + edge.latency
            assert position[src.id] < position[dst.id]


@given(straight_line_block())
@settings(max_examples=30, deadline=None)
def test_fifo_and_maxdist_schedules_both_valid(instrs):
    for heuristic in ("maxdist", "fifo"):
        dag = build_code_dag(list(instrs), _TOYP)
        result = ListScheduler(_TOYP, heuristic=heuristic).schedule_block(
            list(instrs)
        )
        for node in dag.nodes:
            for edge in node.succs:
                assert (
                    result.cycle_of(edge.dst.instr)
                    >= result.cycle_of(edge.src.instr) + edge.latency
                )


# -- whole-compiler properties -----------------------------------------------


@given(
    st.lists(_INT32, min_size=1, max_size=8),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=25, deadline=None)
def test_compiled_sum_matches_python(values, rotate):
    """Compile a function summing a global int array and compare."""
    values = values[: max(1, len(values))]
    n = len(values)
    initial = ", ".join(str(v) for v in values)
    src = f"""
    int data[{n}] = {{{initial}}};
    int f(void) {{
        int i, s;
        s = 0;
        for (i = 0; i < {n}; i++) {{ s = s + data[i]; }}
        return s;
    }}
    """
    exe = repro.compile_c(src, "r2000")
    got = repro.simulate(exe, "f", options=repro.SimOptions(model_timing=False)).return_value["int"]
    expected = 0
    for v in values:
        expected = _wrap32(expected + v)
    assert got == expected


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_double_roundtrip_through_memory_and_calls(x):
    src = """
    double keep;
    double stash(double v) { keep = v; return keep; }
    double f(double v) { return stash(v) + keep; }
    """
    exe = repro.compile_c(src, "r2000")
    got = repro.simulate(exe, "f", args=(x,)).return_value["double"]
    assert got == x + x


@given(_INT32, _INT32)
@settings(max_examples=25, deadline=None)
def test_wrapping_arithmetic_matches_c(a, b):
    src = "int f(int a, int b) { return a + b * 3 - (a ^ b); }"
    exe = repro.compile_c(src, "toyp")
    got = repro.simulate(exe, "f", args=(a, b), options=repro.SimOptions(model_timing=False))
    expected = _wrap32(a + _wrap32(b * 3) - (a ^ b))
    assert got.return_value["int"] == expected
