"""The compile-and-simulate service: schema, coalescing, deadlines, HTTP.

Three layers of coverage:

* **schema** — the versioned request API: validation, the shared options
  parsers, request keys, error/status mapping.  Pure functions, no
  service needed.
* **engine** — :class:`repro.serve.service.Service` driven directly with
  a *gated* stub executor, so request coalescing and per-request
  deadlines are tested deterministically: the stub holds every unit
  until the test releases it, making "N concurrent identical requests"
  actually concurrent.
* **HTTP** — the real asyncio front end on an ephemeral port, inprocess
  executor: every endpoint, the structured error envelope, keep-alive,
  and the warm-path guarantees (memo hit, zero fresh compiles).
"""

import asyncio
import json
import queue

import pytest

import repro
from repro.errors import GridTimeout, RequestError
from repro.eval.executors import Executor, ExecutorProbe, UnitEvent
from repro.serve import ServeOptions, serve_app
from repro.serve import schema
from repro.utils import timing

SRC = "int add(int a, int b) { return a + b; }"


# -- schema -----------------------------------------------------------------


def test_compile_options_roundtrip():
    options = repro.CompileOptions(strategy="ips", fill_delay_slots=True)
    doc = schema.compile_options_to_json(options)
    assert schema.compile_options_from_json(doc) == options
    assert schema.compile_options_from_json(None) == repro.CompileOptions()
    assert schema.compile_options_from_json({}) == repro.CompileOptions()


def test_sim_options_roundtrip_flattens_cache_to_bool():
    options = repro.SimOptions(cache=True, max_cycles=9)
    doc = schema.sim_options_to_json(options)
    assert doc["cache"] is True
    parsed = schema.sim_options_from_json(doc)
    assert parsed.cache is True
    assert parsed.max_cycles == 9


def test_options_parser_rejects_unknown_and_ill_typed_fields():
    with pytest.raises(RequestError, match="unknown options field"):
        schema.compile_options_from_json({"strateg": "ips"})
    with pytest.raises(RequestError, match="must be str"):
        schema.compile_options_from_json({"strategy": 7})
    with pytest.raises(RequestError, match="got bool"):
        schema.compile_options_from_json({"memory_size": True})
    with pytest.raises(RequestError, match="unknown strategy"):
        schema.compile_options_from_json({"strategy": "magic"})
    with pytest.raises(RequestError, match="JSON object"):
        schema.compile_options_from_json([1, 2])


def test_parse_request_validation():
    request = schema.parse_request(
        "run",
        {"source": SRC, "entry": "add", "args": [1, 2], "target": "toyp"},
    )
    assert request.args == (1, 2)
    with pytest.raises(RequestError, match="source"):
        schema.parse_request("compile", {"source": "   "})
    with pytest.raises(RequestError, match="unknown target"):
        schema.parse_request("compile", {"source": SRC, "target": "vax"})
    with pytest.raises(RequestError, match="unknown request field"):
        schema.parse_request("compile", {"source": SRC, "entry": "add"})
    with pytest.raises(RequestError, match="entry"):
        schema.parse_request("run", {"source": SRC})
    with pytest.raises(RequestError, match=r"args\[1\]"):
        schema.parse_request(
            "run", {"source": SRC, "entry": "add", "args": [1, "x"]}
        )
    with pytest.raises(RequestError, match="positive"):
        schema.parse_request("compile", {"source": SRC, "timeout_s": -1})


def test_unsupported_api_version_has_its_own_code():
    with pytest.raises(RequestError) as info:
        schema.parse_request("compile", {"source": SRC, "api": 99})
    assert info.value.code == "unsupported_version"
    status, body = schema.error_body_from_exception(info.value)
    assert status == 400
    assert body["error"]["code"] == "unsupported_version"
    assert body["error"]["details"]["supported"] == [schema.API_VERSION]


def test_request_key_ignores_timeout_but_not_options():
    base = schema.parse_request("compile", {"source": SRC})
    patient = schema.parse_request(
        "compile", {"source": SRC, "timeout_s": 120}
    )
    ips = schema.parse_request(
        "compile", {"source": SRC, "options": {"strategy": "ips"}}
    )
    key = schema.request_key
    assert key("compile", base) == key("compile", patient)
    assert key("compile", base) != key("compile", ips)
    assert key("compile", base) != key("explain", base)


def test_status_mapping_follows_the_taxonomy():
    assert schema.status_for({"type": "RequestError", "marion": True}) == 400
    assert schema.status_for({"type": "GridTimeout", "marion": True}) == 504
    assert schema.status_for({"type": "CSyntaxError", "marion": True}) == 422
    assert schema.status_for({"type": "WorkerCrash"}) == 500
    assert schema.status_for({"type": "ValueError", "marion": False}) == 500


# -- engine (gated stub executor) -------------------------------------------


class GatedExecutor(Executor):
    """Holds every submitted unit until the test releases it."""

    backend = "gated"

    def __init__(self):
        self.submitted = []
        self.cancelled = []
        self._events: queue.Queue = queue.Queue()

    def submit(self, task, timeout=None):
        self.submitted.append(task)
        return task.key

    def release(self, key, value, *, ok=True):
        self._events.put(
            UnitEvent(key, "ok" if ok else "err", value)
        )

    def next_event(self, timeout=None):
        try:
            return self._events.get(timeout=timeout if timeout else 0.05)
        except queue.Empty:
            return None

    def cancel(self, key):
        self.cancelled.append(key)
        return False

    def probe(self):
        return ExecutorProbe(
            backend=self.backend,
            workers=1,
            idle=1,
            queued=0,
            in_flight=len(self.submitted),
        )


COMPILE_VALUE = {
    "target": "toyp",
    "strategy": "postpass",
    "assembly": "add: ...",
    "functions": ["add"],
    "instructions": 12,
    "compiled": 1,
    "cgg_builds": 0,
}


def _run(coro):
    return asyncio.run(coro)


def test_concurrent_identical_requests_coalesce_to_one_unit():
    async def main():
        stub = GatedExecutor()
        service = serve_app(
            ServeOptions(port=0, executor=stub, memo_size=0)
        )
        await service.start()
        try:
            doc = {"source": SRC, "target": "toyp"}
            waiters = [
                asyncio.create_task(service.handle("compile", dict(doc)))
                for _ in range(5)
            ]
            for _ in range(200):  # all five attached, exactly one submit
                if service._dedup_hits >= 4 and stub.submitted:
                    break
                await asyncio.sleep(0.01)
            assert len(stub.submitted) == 1
            assert service._dedup_hits == 4
            stub.release(stub.submitted[0].key, dict(COMPILE_VALUE))
            results = await asyncio.gather(*waiters)
        finally:
            await service.stop()
        assert [status for status, _ in results] == [200] * 5
        bodies = [body for _, body in results]
        assert all(b["assembly"] == "add: ..." for b in bodies)
        assert all(b["key"] == bodies[0]["key"] for b in bodies)

    _run(main())


def test_distinct_requests_do_not_coalesce():
    async def main():
        stub = GatedExecutor()
        service = serve_app(
            ServeOptions(port=0, executor=stub, memo_size=0)
        )
        await service.start()
        try:
            a = asyncio.create_task(
                service.handle("compile", {"source": SRC, "target": "toyp"})
            )
            b = asyncio.create_task(
                service.handle(
                    "compile",
                    {
                        "source": SRC,
                        "target": "toyp",
                        "options": {"strategy": "ips"},
                    },
                )
            )
            for _ in range(200):
                if len(stub.submitted) == 2:
                    break
                await asyncio.sleep(0.01)
            assert len(stub.submitted) == 2
            for task in stub.submitted:
                stub.release(task.key, dict(COMPILE_VALUE))
            results = await asyncio.gather(a, b)
        finally:
            await service.stop()
        assert [status for status, _ in results] == [200, 200]
        assert service._dedup_hits == 0

    _run(main())


def test_deadline_returns_structured_504_and_releases_the_key():
    async def main():
        stub = GatedExecutor()
        service = serve_app(
            ServeOptions(port=0, executor=stub, memo_size=0)
        )
        await service.start()
        try:
            status, body = await service.handle(
                "compile",
                {"source": SRC, "target": "toyp", "timeout_s": 0.2},
            )
            assert status == 504
            assert body["error"]["type"] == "GridTimeout"
            assert body["error"]["details"]["seconds"] == 0.2
            # the key was dropped and cancelled: a retry submits fresh
            assert not service._pending
            assert stub.cancelled == [stub.submitted[0].key]
            retry = asyncio.create_task(
                service.handle("compile", {"source": SRC, "target": "toyp"})
            )
            for _ in range(200):
                if len(stub.submitted) == 2:
                    break
                await asyncio.sleep(0.01)
            assert len(stub.submitted) == 2
            stub.release(stub.submitted[1].key, dict(COMPILE_VALUE))
            status, _body = await retry
            assert status == 200
        finally:
            await service.stop()

    _run(main())


def test_request_timeout_ceiling_clamps_the_request():
    service = serve_app(ServeOptions(request_timeout=5.0))
    assert service._deadline(None) == 5.0
    assert service._deadline(60.0) == 5.0  # may only tighten
    assert service._deadline(0.5) == 0.5


def test_worker_error_payload_maps_to_taxonomy_status():
    async def main():
        stub = GatedExecutor()
        service = serve_app(
            ServeOptions(port=0, executor=stub, memo_size=0)
        )
        await service.start()
        try:
            waiter = asyncio.create_task(
                service.handle("compile", {"source": SRC, "target": "toyp"})
            )
            for _ in range(200):
                if stub.submitted:
                    break
                await asyncio.sleep(0.01)
            from repro.errors import CSyntaxError, error_payload

            stub.release(
                stub.submitted[0].key,
                error_payload(CSyntaxError("bad token")),
                ok=False,
            )
            status, body = await waiter
        finally:
            await service.stop()
        assert status == 422
        assert body["error"]["type"] == "CSyntaxError"
        assert "bad token" in body["error"]["message"]

    _run(main())


# -- HTTP (real sockets, inprocess executor) --------------------------------


async def _request(port, method, path, doc=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _request_on(reader, writer, method, path, doc)
    finally:
        writer.close()


async def _request_on(reader, writer, method, path, doc=None):
    body = b"" if doc is None else json.dumps(doc).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n".encode() + body
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    return status, json.loads(await reader.readexactly(length))


def test_http_endpoints_end_to_end():
    async def main():
        service = serve_app(
            ServeOptions(port=0, executor="inprocess", warm=("toyp",))
        )
        await service.start()
        port = service.port
        out = {}
        try:
            out["health"] = await _request(port, "GET", "/v1/healthz")
            before = timing.counter("compile.compiled")
            out["compile"] = await _request(
                port, "POST", "/v1/compile",
                {"source": SRC, "target": "toyp"},
            )
            out["again"] = await _request(
                port, "POST", "/v1/compile",
                {"source": SRC, "target": "toyp"},
            )
            out["fresh_compiles"] = (
                timing.counter("compile.compiled") - before
            )
            out["run"] = await _request(
                port, "POST", "/v1/run",
                {
                    "source": SRC,
                    "entry": "add",
                    "args": [10, 20],
                    "target": "toyp",
                    "sim": {"cache": True},
                },
            )
            out["explain"] = await _request(
                port, "POST", "/v1/explain",
                {"source": SRC, "target": "toyp"},
            )
            out["targets"] = await _request(port, "GET", "/v1/targets")
            out["stats"] = await _request(port, "GET", "/v1/stats")
            out["badjson"] = await _request(port, "POST", "/v1/compile")
            out["badver"] = await _request(
                port, "POST", "/v1/compile", {"source": SRC, "api": 2}
            )
            out["lost"] = await _request(port, "GET", "/v1/nope")
            out["badmethod"] = await _request(port, "GET", "/v1/compile")
        finally:
            await service.stop()
        return out

    out = _run(main())

    status, body = out["health"]
    assert (status, body["status"]) == (200, "ok")

    status, body = out["compile"]
    assert status == 200
    assert body["api"] == schema.API_VERSION
    assert body["functions"] == ["add"]
    assert body["served"] == "executor"
    assert "add:" in body["assembly"]

    # identical second request: answered from the memo, no fresh compile
    status, body = out["again"]
    assert status == 200
    assert body["served"] == "memo"
    assert out["fresh_compiles"] == 1

    status, body = out["run"]
    assert status == 200
    assert body["result"]["int"] == 30
    assert body["cycles"] > 0

    status, body = out["explain"]
    assert status == 200
    assert "add" in body["functions"]
    assert "nop_slots" in body["functions"]["add"]

    status, body = out["targets"]
    assert status == 200
    assert [t["name"] for t in body["targets"]] == list(repro.TARGET_NAMES)

    status, body = out["stats"]
    assert status == 200
    assert body["requests"]["compile"] == 2
    assert body["dedup"]["memo_hits"] == 1
    assert body["executor"]["backend"] == "inprocess"
    assert body["latency_ms"]["compile"]["count"] == 2

    status, body = out["badjson"]
    assert status == 400
    assert body["error"]["code"] == "bad_request"

    status, body = out["badver"]
    assert status == 400
    assert body["error"]["code"] == "unsupported_version"

    status, body = out["lost"]
    assert status == 404
    assert body["error"]["code"] == "unknown_endpoint"
    assert "/v1/compile" in body["error"]["details"]["endpoints"]

    status, body = out["badmethod"]
    assert status == 405
    assert body["error"]["code"] == "method_not_allowed"


def test_http_keep_alive_serves_many_requests_per_connection():
    async def main():
        service = serve_app(ServeOptions(port=0, executor="inprocess"))
        await service.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            try:
                first = await _request_on(
                    reader, writer, "GET", "/v1/healthz"
                )
                second = await _request_on(
                    reader, writer, "GET", "/v1/stats"
                )
            finally:
                writer.close()
        finally:
            await service.stop()
        return first, second

    (s1, b1), (s2, b2) = _run(main())
    assert s1 == 200 and s2 == 200
    assert b2["requests"]["healthz"] >= 1


def test_http_oversized_body_is_413():
    async def main():
        service = serve_app(
            ServeOptions(port=0, executor="inprocess", max_body_bytes=64)
        )
        await service.start()
        try:
            return await _request(
                service.port, "POST", "/v1/compile",
                {"source": "int f() { return 0; }" * 50},
            )
        finally:
            await service.stop()

    status, body = _run(main())
    assert status == 413
    assert body["error"]["code"] == "payload_too_large"


def test_serve_app_exported_from_package_root():
    assert repro.serve_app is serve_app
    assert repro.ServeOptions is ServeOptions
    with pytest.raises(GridTimeout, match="deadline"):
        # the 504 path raises the same taxonomy type the grid uses
        raise GridTimeout("request exceeded its 1s deadline", seconds=1)
