"""The multiple-identical-functional-units extension (paper section 5:
"Marion does not support multiple identical functional units ...
introducing arrays of resources would be a natural extension").

``%resource ALU[2]`` declares two interchangeable units; the scheduler and
the pipeline model both let two independent integer operations issue on the
same cycle, and a third must wait.
"""

import pytest

import repro
from repro.backend.insts import Imm, Reg
from repro.backend.scheduler import ListScheduler
from repro.cgg import build_target
from repro.il.node import PseudoReg

SUPERSCALAR_MARIL = r"""
declare {
    %reg r[0:15] (int);
    %resource ALU[2];               /* two identical integer units */
    %resource MEM;
    %def c16 [-32768:32767];
    %def c32 [-2147483648:2147483647] +abs;
    %label rlab [-32768:32767] +relative;
    %label flab [-8388608:8388607] +abs;
    %memory m[0:1048575];
}
cwvm {
    %general (int) r;
    %allocable r[1:11];
    %calleesave r[8:11];
    %sp r[15] +down;
    %fp r[14] +down;
    %retaddr r[13];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %result r[2] (int);
}
instr {
    %instr li r, r[0], #c16 (int) {$1 = $3;} [ALU] (1,1,0);
    %instr la r, #c32 (int) {$1 = $2;} [ALU] (1,1,0);
    %instr addi r, r, #c16 (int) {$1 = $2 + $3;} [ALU] (1,1,0);
    %instr add r, r, r (int) {$1 = $2 + $3;} [ALU] (1,1,0);
    %instr sub r, r, r (int) {$1 = $2 - $3;} [ALU] (1,1,0);
    %instr mul r, r, r (int) {$1 = $2 * $3;} [ALU; ALU; ALU] (1,3,0);
    %instr div r, r, r (int) {$1 = $2 / $3;}
        [ALU; ALU; ALU; ALU; ALU; ALU; ALU; ALU] (1,8,0);
    %instr rem r, r, r (int) {$1 = $2 % $3;}
        [ALU; ALU; ALU; ALU; ALU; ALU; ALU; ALU] (1,8,0);
    %instr sll r, r, #c16 (int) {$1 = $2 << $3;} [ALU] (1,1,0);
    %instr sra r, r, #c16 (int) {$1 = $2 >> $3;} [ALU] (1,1,0);
    %instr cmpi r, r, #c16 (int) {$1 = $2 :: $3;} [ALU] (1,1,0);
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [ALU] (1,1,0);
    %instr ld r, r, #c16 (int) {$1 = m[$2 + $3];} [MEM; MEM] (1,2,0);
    %instr st r, r, #c16 (int) {m[$2 + $3] = $1;} [MEM; MEM] (1,1,0);
    %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [ALU] (1,2,1);
    %instr bne0 r, #rlab {if ($1 != 0) goto $2;} [ALU] (1,2,1);
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [ALU] (1,2,1);
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [ALU] (1,2,1);
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [ALU] (1,2,1);
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [ALU] (1,2,1);
    %instr jmp #rlab {goto $1;} [ALU] (1,2,1);
    %instr call #flab {call $1;} [ALU; ALU] (1,2,0);
    %instr ret {ret;} [ALU] (1,2,1);
    %instr nop {;} [ALU] (1,1,0);
    %move [ss.movs] add r, r, r[0] {$1 = $2;} [ALU] (1,1,0);
    %glue r, r, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue r, r, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
}
"""


@pytest.fixture(scope="module")
def superscalar():
    return build_target(SUPERSCALAR_MARIL, name="dual-alu")


def _instr(target, mnemonic, *operands):
    from tests.helpers import build

    return build(target, mnemonic, *operands)


def test_two_independent_adds_issue_together(superscalar):
    a, b, c, d = (PseudoReg("int", n) for n in "abcd")
    base = PseudoReg("int", "base")
    one = _instr(superscalar, "addi", Reg(a), Reg(base), Imm(1))
    two = _instr(superscalar, "addi", Reg(b), Reg(base), Imm(2))
    result = ListScheduler(superscalar).schedule_block([one, two])
    assert result.cycle_of(one) == result.cycle_of(two) == 0


def test_third_add_waits_for_a_unit(superscalar):
    base = PseudoReg("int", "base")
    instrs = [
        _instr(superscalar, "addi", Reg(PseudoReg("int", f"t{i}")), Reg(base), Imm(i))
        for i in range(3)
    ]
    result = ListScheduler(superscalar).schedule_block(list(instrs))
    cycles = sorted(result.cycle_of(i) for i in instrs)
    assert cycles == [0, 0, 1]


def test_multicycle_occupancy_respects_capacity(superscalar):
    """Two 3-cycle multiplies fill both units; a third waits 3 cycles."""
    base = PseudoReg("int", "base")
    muls = [
        _instr(
            superscalar,
            "mul",
            Reg(PseudoReg("int", f"m{i}")),
            Reg(base),
            Reg(base),
        )
        for i in range(3)
    ]
    result = ListScheduler(superscalar).schedule_block(list(muls))
    cycles = sorted(result.cycle_of(i) for i in muls)
    assert cycles[0] == cycles[1] == 0
    assert cycles[2] >= 3


def test_whole_program_on_superscalar(superscalar):
    src = """
    int a[64];
    int f(int n) {
        int i, s, t;
        s = 0;
        t = 0;
        for (i = 0; i < n; i++) {
            a[i] = i * 3;
            s = s + a[i];
            t = t + i;
        }
        return s * 1000 + t;
    }
    """
    exe = repro.compile_c(src, superscalar, repro.CompileOptions(strategy="ips"))
    result = repro.simulate(exe, "f", args=(20,))
    expected = sum(i * 3 for i in range(20)) * 1000 + sum(range(20))
    assert result.return_value["int"] == expected
    # dual issue visible end-to-end: fewer cycles than instructions executed
    assert result.cycles < result.instructions


def test_dual_alu_faster_than_single_alu():
    dual = build_target(SUPERSCALAR_MARIL, name="dual")
    single = build_target(
        SUPERSCALAR_MARIL.replace("%resource ALU[2];", "%resource ALU;"),
        name="single",
    )
    src = """
    int f(int a, int b) {
        int t1, t2, t3, t4;
        t1 = a + b;
        t2 = a - b;
        t3 = a + 7;
        t4 = b + 9;
        return (t1 + t2) * 1000 + (t3 + t4);
    }
    """
    results = {}
    for target in (dual, single):
        exe = repro.compile_c(src, target)
        results[target.name] = repro.simulate(exe, "f", args=(10, 3))
    assert (
        results["dual"].return_value["int"] == results["single"].return_value["int"]
    )
    assert results["dual"].cycles < results["single"].cycles
