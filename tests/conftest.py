"""Shared fixtures: targets are expensive to build, so cache per session.

The persistent artifact cache (:mod:`repro.cache`) is forced OFF for the
suite: several tests assert exact warmup/miss counts that disk-preloaded
JIT or timing state would violate, and a shared ``~/.cache/repro`` must
never leak state into (or out of) a test run.  Tests that exercise the
cache itself opt back in with ``repro.cache.configure(root=tmp_path,
enabled=True)``.
"""

import os

os.environ["REPRO_CACHE"] = "0"

import pytest

from repro.targets import load_target


@pytest.fixture(scope="session")
def toyp():
    return load_target("toyp")


@pytest.fixture(scope="session")
def r2000():
    return load_target("r2000")


@pytest.fixture(scope="session")
def m88000():
    return load_target("m88000")


@pytest.fixture(scope="session")
def i860():
    return load_target("i860")


@pytest.fixture(scope="session")
def all_targets(toyp, r2000, m88000, i860):
    return {"toyp": toyp, "r2000": r2000, "m88000": m88000, "i860": i860}
