"""Unit tests for the C-subset front end: lexer, parser, checker."""

import pytest

from repro.errors import CSemanticError, CSyntaxError
from repro.frontend import cast
from repro.frontend.clexer import CTok, tokenize_c
from repro.frontend.cparser import parse_c
from repro.frontend.csema import check_unit


# -- lexer ------------------------------------------------------------------


def test_lexer_keywords_vs_identifiers():
    tokens = tokenize_c("int foo intx")
    assert tokens[0].kind is CTok.KEYWORD
    assert tokens[1].kind is CTok.IDENT
    assert tokens[2].kind is CTok.IDENT


def test_lexer_numbers():
    tokens = tokenize_c("42 3.5 1e3 2.5e-2 0x10")
    assert [t.value for t in tokens[:-1]] == [42, 3.5, 1000.0, 0.025, 16]
    assert tokens[2].kind is CTok.FLOAT


def test_lexer_multichar_punctuators():
    tokens = tokenize_c("<= >= == != && || << >> ++ --")
    assert [t.value for t in tokens[:-1]] == [
        "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "++", "--",
    ]


def test_lexer_comments():
    tokens = tokenize_c("a /* hidden */ b // also\nc")
    assert [t.value for t in tokens[:-1]] == ["a", "b", "c"]


def test_lexer_unterminated_comment():
    with pytest.raises(CSyntaxError, match="unterminated"):
        tokenize_c("/* never ends")


def test_lexer_bad_character():
    with pytest.raises(CSyntaxError, match="unexpected"):
        tokenize_c("a @ b")


# -- parser ------------------------------------------------------------------


def test_parse_function_and_global():
    unit = parse_c("double g[10];\nint f(int x) { return x; }")
    assert unit.globals[0].name == "g"
    assert unit.globals[0].type.dims == (10,)
    assert unit.functions[0].name == "f"


def test_parse_global_initializers():
    unit = parse_c("int a = 3; double b[3] = {1.0, -2.5, 3.0};")
    assert unit.globals[0].init == [3]
    assert unit.globals[1].init == [1.0, -2.5, 3.0]


def test_parse_multi_declarator_is_unscoped_group():
    unit = parse_c("void f(void) { int a, b = 2; }")
    group = unit.functions[0].body.statements[0]
    assert isinstance(group, cast.Block)
    assert not group.scoped
    assert len(group.statements) == 2


def test_parse_for_with_declaration():
    unit = parse_c("void f(void) { for (int i = 0; i < 4; i++) { } }")
    loop = unit.functions[0].body.statements[0]
    assert isinstance(loop, cast.ForStmt)
    assert isinstance(loop.init, cast.DeclStmt)
    assert isinstance(loop.step, cast.IncDec)


def test_parse_operator_precedence():
    unit = parse_c("int f(void) { return 1 + 2 * 3 < 4 & 5; }")
    expr = unit.functions[0].body.statements[0].value
    assert expr.op == "&"
    assert expr.left.op == "<"
    assert expr.left.left.op == "+"


def test_parse_cast_expression():
    unit = parse_c("double f(int x) { return (double)x; }")
    expr = unit.functions[0].body.statements[0].value
    assert isinstance(expr, cast.Cast)
    assert expr.to == "double"


def test_parse_two_dimensional_index():
    unit = parse_c("double a[3][4]; double f(void) { return a[1][2]; }")
    expr = unit.functions[0].body.statements[0].value
    assert isinstance(expr, cast.Index)
    assert len(expr.indices) == 2


def test_parse_compound_assignment():
    unit = parse_c("void f(void) { int x = 0; x += 3; }")
    stmt = unit.functions[0].body.statements[1]
    assert stmt.expr.op == "+="


def test_parse_logical_operators():
    unit = parse_c("int f(int a, int b) { if (a && b || !a) { return 1; } return 0; }")
    cond = unit.functions[0].body.statements[0].condition
    assert isinstance(cond, cast.Logical)
    assert cond.op == "||"


def test_parse_error_reports_location():
    with pytest.raises(CSyntaxError) as excinfo:
        parse_c("int f(void) { return 1 + ; }")
    assert excinfo.value.location is not None


def test_parse_invalid_assignment_target():
    with pytest.raises(CSyntaxError, match="assignment target"):
        parse_c("void f(void) { 1 = 2; }")


# -- checker --------------------------------------------------------------


def check(source):
    return check_unit(parse_c(source))


def test_check_types_annotated():
    checked = check("double f(int x) { return x + 1.5; }")
    ret = checked.unit.functions[0].body.statements[0]
    assert ret.value.ctype == "double"


def test_check_inserts_conversion_for_mixed_arithmetic():
    checked = check("double f(int x, double y) { return x + y; }")
    value = checked.unit.functions[0].body.statements[0].value
    assert isinstance(value.left, cast.Cast)
    assert value.left.to == "double"


def test_check_int_literal_folds_to_float():
    checked = check("double f(void) { return 1 + 0.5; }")
    value = checked.unit.functions[0].body.statements[0].value
    assert isinstance(value.left, cast.FloatLit)


def test_check_undeclared_identifier():
    with pytest.raises(CSemanticError, match="undeclared"):
        check("int f(void) { return nope; }")


def test_check_duplicate_local():
    with pytest.raises(CSemanticError, match="duplicate"):
        check("void f(void) { int a; int a; }")


def test_check_shadowing_renames_inner():
    checked = check("int f(void) { int a = 1; { int a = 2; } return a; }")
    names = set(checked.locals["f"])
    assert "a" in names and "a.2" in names


def test_check_array_arity():
    with pytest.raises(CSemanticError, match="indices"):
        check("double a[3][4]; double f(void) { return a[1]; }")


def test_check_array_used_without_index():
    with pytest.raises(CSemanticError, match="without an index"):
        check("double a[3]; double f(void) { return a; }")


def test_check_non_int_index():
    with pytest.raises(CSemanticError, match="must be int"):
        check("double a[3]; double f(double x) { return a[x]; }")


def test_check_int_only_operators():
    with pytest.raises(CSemanticError, match="int operands"):
        check("double f(double x) { return x % 2.0; }")


def test_check_call_arity():
    with pytest.raises(CSemanticError, match="arguments"):
        check("int g(int a) { return a; } int f(void) { return g(1, 2); }")


def test_check_call_argument_conversion():
    checked = check(
        "double g(double a) { return a; } double f(void) { return g(1); }"
    )
    call = checked.unit.functions[1].body.statements[0].value
    assert isinstance(call.args[0], cast.FloatLit)


def test_check_void_return_with_value():
    with pytest.raises(CSemanticError, match="void function"):
        check("void f(void) { return 1; }")


def test_check_missing_return_value():
    with pytest.raises(CSemanticError, match="without a value"):
        check("int f(void) { return; }")


def test_check_break_outside_loop():
    with pytest.raises(CSemanticError, match="break outside"):
        check("void f(void) { break; }")


def test_check_array_parameters_rejected():
    with pytest.raises(CSemanticError, match="array parameters"):
        check("void f(int a[3]) { }")


def test_check_unknown_function():
    with pytest.raises(CSemanticError, match="undeclared function"):
        check("int f(void) { return g(); }")
