"""The compile-time program suite runs correctly on the primary targets."""

import math

import pytest

import repro
from repro.workloads import PROGRAM_SUITE


@pytest.mark.parametrize("program", PROGRAM_SUITE, ids=lambda p: p.name)
@pytest.mark.parametrize("target", ["r2000", "i860"])
def test_suite_program_correct(program, target):
    exe = repro.compile_c(program.source, target, repro.CompileOptions(strategy="postpass"))
    result = repro.simulate(exe, program.entry, args=program.args, options=repro.SimOptions(model_timing=False))
    expected = program.reference(*program.args)
    if isinstance(expected, float):
        got = result.return_value["double"]
        assert math.isclose(got, expected, rel_tol=1e-9)
    else:
        assert result.return_value["int"] == expected


def test_quicksort_randomized_against_python():
    intsort = next(p for p in PROGRAM_SUITE if p.name == "intsort")
    exe = repro.compile_c(intsort.source, "r2000")
    for n in (5, 17, 63, 200):
        got = repro.simulate(
            exe, "intsort_main", args=(n,), options=repro.SimOptions(model_timing=False)
        ).return_value["int"]
        assert got == intsort.reference(n)


def test_interpreter_computes_sum_of_squares():
    interp = next(p for p in PROGRAM_SUITE if p.name == "interp")
    exe = repro.compile_c(interp.source, "r2000")
    for k in (0, 1, 7, 40):
        got = repro.simulate(
            exe, "interp_main", args=(k,), options=repro.SimOptions(model_timing=False)
        ).return_value["int"]
        assert got == sum(i * i for i in range(1, k + 1))
