"""Assembly printer tests."""

import repro
from repro.backend.asmprinter import format_instr, format_mfunction, format_program


SOURCE = """
double gains[8];
double apply(double x, int k) {
    return x * gains[k];
}
"""


def test_format_program_structure():
    exe = repro.compile_c(SOURCE, "r2000")
    text = format_program(exe.machine_program)
    assert text.startswith("# target: r2000")
    assert "#   gains: double[8] (64 bytes)" in text
    assert "apply:" in text
    assert "jr.ra" in text


def test_format_function_includes_frame_and_blocks():
    exe = repro.compile_c(
        "int f(int n) { int a[4]; a[0] = n; return a[0]; }", "toyp"
    )
    text = format_mfunction(exe.machine_program.function("f"))
    assert text.splitlines()[0].startswith("# function f (frame")
    assert "frame 0" not in text  # the local array needs a frame


def test_format_instr_comment_column():
    exe = repro.compile_c(SOURCE, "r2000")
    lines = [
        format_instr(i)
        for i in exe.machine_program.function("apply").entry.instrs
    ]
    commented = [line for line in lines if ";" in line]
    assert commented, "prologue/param comments expected"
    for line in commented:
        assert line.index(";") >= 40  # aligned comment column


def test_labels_unique_in_listing():
    exe = repro.compile_c(
        "int f(int n) { if (n) { return 1; } return 2; }"
        "int g(int n) { if (n) { return 3; } return 4; }",
        "toyp",
    )
    text = format_program(exe.machine_program)
    labels = [
        line[:-1]
        for line in text.splitlines()
        if line.endswith(":") and not line.startswith("#")
    ]
    assert len(labels) == len(set(labels))
