"""The shipped examples stay runnable (imported and executed in-process)."""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "postpass" in out and "rase" in out
    assert "cycles=" in out
    assert "smooth" in out  # assembly listing shown


def test_retarget_new_machine(capsys):
    out = run_example("retarget_new_machine", capsys)
    assert "risc-x" in out
    assert "risc-x-single" in out
    # both machines computed the same checksum, dual issue was faster
    lines = [l for l in out.splitlines() if l.startswith("risc-x")]
    dual = int(lines[0].split()[1])
    single = int(lines[1].split()[1])
    assert dual < single


def test_i860_dual_operation(capsys):
    out = run_example("i860_dual_operation", capsys)
    assert "Figure 7" in out
    assert "schedule density" in out
    assert "|" in out  # packed cycles visible


def test_strategy_comparison(capsys):
    out = run_example("strategy_comparison", capsys)
    assert "r2000" in out and "toyp" in out
    assert "postpass" in out and "rase" in out
