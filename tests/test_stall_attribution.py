"""Stall attribution: both conservation identities, per target.

The scheduler classifies every nop slot it commits with a reason code,
and the accounting pipeline model charges every cycle the issue point
advances to a hazard kind.  Both taxonomies are conserved by
construction; these tests pin the identities on hand-built hazard
kernels and on real compiled code across all targets.
"""

import pytest

import repro
from repro.backend.asmprinter import format_program
from repro.obs import stalls
from repro.sim import DirectMappedCache

#: a kernel with a little of everything: loads feeding uses, a multiply
#: chain, and a loop branch
HAZARD_SOURCE = """
double f(int n) {
    double a[64];
    double s;
    int i;
    s = 0.0;
    for (i = 0; i < 64; i = i + 1) {
        a[i] = i * 0.5;
    }
    for (i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i] + a[i + 1];
    }
    return s;
}
"""


def _compile(target, strategy="ips"):
    return repro.compile_c(
        HAZARD_SOURCE, target, repro.CompileOptions(strategy=strategy)
    )


# -- scheduler side ----------------------------------------------------------


@pytest.mark.parametrize("target", ["toyp", "r2000", "m88000", "i860"])
@pytest.mark.parametrize("strategy", ["postpass", "ips", "rase"])
def test_scheduler_reasons_sum_to_nop_slots(target, strategy):
    exe = _compile(target, strategy)
    stats_by_fn = exe.machine_program.stats
    assert stats_by_fn, "compile produced no per-function stats"
    for name, stats in stats_by_fn.items():
        assert (
            sum(stats.stall_reasons.values()) == stats.nop_slots
        ), f"{target}/{strategy}/{name}: reasons must sum to nop slots"


def test_scheduler_reasons_use_known_families():
    known = {
        stalls.RESOURCE_CONFLICT,
        stalls.LATENCY,
        stalls.BRANCH_DELAY,
        stalls.EMPTY_READY_LIST,
        stalls.PACKING_CONFLICT,
        stalls.TEMPORAL_RULE1,
    }
    for target in ("r2000", "i860"):
        exe = _compile(target)
        for stats in exe.machine_program.stats.values():
            for reason in stats.stall_reasons:
                assert stalls.reason_family(reason) in known, reason


def test_block_stall_events_match_stats_totals():
    """The per-block event streams aggregate to the function histogram."""
    exe = _compile("r2000")
    program = exe.machine_program
    for fn in program.functions:
        stats = program.stats[fn.name]
        from_events: dict[str, int] = {}
        for block in fn.blocks:
            for _cycle, reason in block.stall_events:
                from_events[reason] = from_events.get(reason, 0) + 1
        assert from_events == stats.stall_reasons


# -- simulator side ----------------------------------------------------------


@pytest.mark.parametrize("target", ["toyp", "r2000", "m88000", "i860"])
def test_cycle_breakdown_conservation(target):
    """Every cycle of issue-point advance is attributed: sum == cycles-1."""
    exe = _compile(target)
    result = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(trace=True)
    )
    breakdown = result.cycle_breakdown
    assert breakdown is not None
    assert set(breakdown) == set(stalls.SIM_STALL_KINDS)
    assert sum(breakdown.values()) == result.cycles - 1
    assert result.stall_cycles == result.cycles - 1


@pytest.mark.parametrize("target", ["toyp", "r2000", "m88000", "i860"])
def test_accounting_model_matches_base_model(target):
    """trace=True must not change what the simulation computes."""
    exe = _compile(target)
    base = repro.simulate(exe, "f", (40,))
    acct = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(trace=True)
    )
    assert base.cycle_breakdown is None
    assert acct.cycles == base.cycles
    assert acct.instructions == base.instructions
    assert acct.return_value == base.return_value


def test_load_use_attribution():
    exe = _compile("r2000")
    result = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(trace=True)
    )
    assert result.cycle_breakdown[stalls.LOAD_USE] >= 0
    # every executed instruction serializes through the single issue slot
    assert result.cycle_breakdown[stalls.RESOURCE] > 0
    assert result.cycle_breakdown[stalls.BRANCH] > 0


def test_cache_miss_attribution_appears_with_a_tiny_cache():
    exe = _compile("r2000")
    tiny = DirectMappedCache(size=64, line=16, miss_penalty=12)
    hit = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(trace=True)
    )
    miss = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(cache=tiny, trace=True)
    )
    assert hit.cycle_breakdown[stalls.CACHE_MISS] == 0
    assert miss.cycle_breakdown[stalls.CACHE_MISS] > 0
    assert sum(miss.cycle_breakdown.values()) == miss.cycles - 1
    assert miss.cycles > hit.cycles


def test_fp_advance_attribution_on_i860():
    exe = _compile("i860")
    result = repro.simulate(
        exe, "f", (40,), options=repro.SimOptions(trace=True)
    )
    breakdown = result.cycle_breakdown
    assert sum(breakdown.values()) == result.cycles - 1
    assert breakdown[stalls.FP_ADVANCE] > 0


def test_breakdown_off_by_default_and_stall_cycles_zero():
    exe = _compile("toyp")
    result = repro.simulate(exe, "f", (8,))
    assert result.cycle_breakdown is None
    assert result.stall_cycles == 0


def test_functional_mode_has_no_breakdown():
    exe = _compile("toyp")
    result = repro.simulate(
        exe, "f", (8,),
        options=repro.SimOptions(model_timing=False, trace=True),
    )
    assert result.cycle_breakdown is None


# -- surfacing ---------------------------------------------------------------


def test_explain_schedule_output():
    exe = _compile("r2000")
    text = format_program(exe.machine_program, explain=True)
    assert "nop slots" in text
    assert "; @" in text  # issue-cycle annotations
    plain = format_program(exe.machine_program)
    assert "nop slots" not in plain


def test_attribution_section_renders():
    from repro.eval.attribution import render_stalls
    from repro.eval.common import run_kernel
    from repro.workloads import kernel_by_id

    run = run_kernel(
        kernel_by_id(7), "r2000", "ips", scale=0.05, breakdown=True
    )
    assert run.cycle_breakdown is not None
    assert sum(run.cycle_breakdown.values()) == run.actual_cycles - 1
    assert sum(run.sched_stall_reasons.values()) == run.sched_nop_slots
    text = render_stalls({("r2000", "ips"): run})
    assert "r2000" in text
    assert "scheduler stall reasons" in text
