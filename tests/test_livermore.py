"""Livermore Loops validation: every kernel compiles and its simulated
checksum matches the pure-Python reference (the whole-stack correctness
test the paper's Table 4 rests on)."""

import math

import pytest

import repro
from repro.workloads import LIVERMORE_KERNELS, kernel_by_id

#: reduced problem sizes so the full matrix stays fast; scale tests below
#: exercise one kernel at full size
_SMALL = 48


@pytest.mark.parametrize("spec", LIVERMORE_KERNELS, ids=lambda s: f"k{s.id}")
def test_kernel_matches_reference_r2000(spec):
    exe = repro.compile_c(spec.source, "r2000", repro.CompileOptions(strategy="postpass"))
    loop, n = spec.args
    n = min(n, _SMALL)
    result = repro.simulate(exe, "bench", args=(loop, n), options=repro.SimOptions(model_timing=False))
    expected = spec.reference(loop, n)
    assert math.isclose(
        result.return_value["double"], expected, rel_tol=1e-9, abs_tol=1e-9
    )


@pytest.mark.parametrize("strategy", ["ips", "rase"])
@pytest.mark.parametrize("kernel_id", [1, 5, 13])
def test_kernels_under_prepass_strategies(kernel_id, strategy):
    spec = kernel_by_id(kernel_id)
    exe = repro.compile_c(spec.source, "r2000", repro.CompileOptions(strategy=strategy))
    loop, n = spec.args
    n = min(n, _SMALL)
    result = repro.simulate(exe, "bench", args=(loop, n), options=repro.SimOptions(model_timing=False))
    expected = spec.reference(loop, n)
    assert math.isclose(
        result.return_value["double"], expected, rel_tol=1e-9, abs_tol=1e-9
    )


@pytest.mark.parametrize("target", ["m88000", "i860", "toyp"])
def test_kernel1_on_other_targets(target):
    spec = kernel_by_id(1)
    exe = repro.compile_c(spec.source, target, repro.CompileOptions(strategy="postpass"))
    result = repro.simulate(exe, "bench", args=(1, _SMALL), options=repro.SimOptions(model_timing=False))
    expected = spec.reference(1, _SMALL)
    assert math.isclose(result.return_value["double"], expected, rel_tol=1e-9)


def test_kernel3_full_size_exact():
    spec = kernel_by_id(3)
    exe = repro.compile_c(spec.source, "r2000")
    loop, n = spec.args
    result = repro.simulate(exe, "bench", args=(loop, n), options=repro.SimOptions(model_timing=False))
    assert result.return_value["double"] == spec.reference(loop, n)


def test_recurrence_kernel_is_order_sensitive():
    """Kernel 5 is a true recurrence: the checksum depends on strictly
    sequential evaluation, so a scheduler reordering across the loop-carried
    dependence would change the result."""
    spec = kernel_by_id(5)
    for strategy in ("postpass", "ips", "rase"):
        exe = repro.compile_c(spec.source, "r2000", repro.CompileOptions(strategy=strategy))
        result = repro.simulate(exe, "bench", args=(1, 64), options=repro.SimOptions(model_timing=False))
        assert math.isclose(
            result.return_value["double"], spec.reference(1, 64), rel_tol=1e-12
        )


def test_kernel_ids_complete():
    assert [spec.id for spec in LIVERMORE_KERNELS] == list(range(1, 15))
    with pytest.raises(KeyError):
        kernel_by_id(99)
