"""Temporal scheduling tests (paper section 4.6): Rule 1, temporal groups,
packing classes, deadlock freedom, and functional correctness of packed
explicitly-advanced pipelines."""

import pytest

from repro.backend.insts import Imm, Lab, Reg, make_instr
from repro.backend.scheduler import ListScheduler
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg


from tests.helpers import build as _build


def instr(target, mnemonic, *operands):
    return _build(target, mnemonic, *operands)


def schedule(target, instrs, **kwargs):
    return ListScheduler(target, **kwargs).schedule_block(instrs)


def mul_sequence(i860, dst, a, b):
    return [
        instr(i860, "M1", Reg(a), Reg(b)),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "FWBM", Reg(dst)),
    ]


def add_sequence(i860, dst, a, b):
    return [
        instr(i860, "A1", Reg(a), Reg(b)),
        instr(i860, "A2"),
        instr(i860, "A3"),
        instr(i860, "FWBA", Reg(dst)),
    ]


def test_single_sequence_schedules_in_order(i860):
    d = [PhysReg("d", i) for i in range(4, 8)]
    seq = mul_sequence(i860, d[2], d[0], d[1])
    result = schedule(i860, list(seq))
    cycles = [result.cycle_of(i) for i in seq]
    assert cycles == sorted(cycles)
    assert cycles[0] < cycles[1] < cycles[2] < cycles[3]


def test_rule1_blocks_second_multiply_before_advance(i860):
    """After M1a issues, M1b (affects clk_m) may not issue before M2a, but
    may pack with it (paper's exact example)."""
    d = [PhysReg("d", i) for i in range(4, 12)]
    a_seq = mul_sequence(i860, d[2], d[0], d[1])
    b_seq = mul_sequence(i860, d[5], d[3], d[4])
    result = schedule(i860, a_seq + b_seq)
    m1a, m2a = a_seq[0], a_seq[1]
    m1b = b_seq[0]
    if result.cycle_of(m1b) > result.cycle_of(m1a):
        assert result.cycle_of(m1b) >= result.cycle_of(m2a)


def test_interleaved_multiplies_share_pipeline(i860):
    """Two multiplies overlap in the pipe: total length < 2x sequential."""
    d = [PhysReg("d", i) for i in range(4, 12)]
    a_seq = mul_sequence(i860, d[2], d[0], d[1])
    b_seq = mul_sequence(i860, d[5], d[3], d[4])
    result = schedule(i860, a_seq + b_seq)
    solo = schedule(i860, mul_sequence(i860, d[2], d[0], d[1]))
    assert result.cost < 2 * solo.cost


def test_multiply_and_add_pack_into_dual_operations(i860):
    d = [PhysReg("d", i) for i in range(4, 12)]
    m_seq = mul_sequence(i860, d[2], d[0], d[1])
    a_seq = add_sequence(i860, d[5], d[3], d[4])
    result = schedule(i860, m_seq + a_seq)
    by_cycle = {}
    for i in result.instrs:
        by_cycle.setdefault(result.cycle_of(i), []).append(i)
    packed = [ops for ops in by_cycle.values() if len(ops) > 1]
    assert packed, "multiply and add sub-operations should share cycles"


def test_packed_subops_share_a_class_element(i860):
    d = [PhysReg("d", i) for i in range(4, 12)]
    m_seq = mul_sequence(i860, d[2], d[0], d[1])
    a_seq = add_sequence(i860, d[5], d[3], d[4])
    result = schedule(i860, m_seq + a_seq)
    by_cycle = {}
    for i in result.instrs:
        by_cycle.setdefault(result.cycle_of(i), []).append(i)
    for ops in by_cycle.values():
        classed = [i.desc.classes for i in ops if i.desc.classes]
        if len(classed) > 1:
            common = classed[0]
            for classes in classed[1:]:
                common = common & classes
            assert common, f"no common long instruction for {ops}"


def test_incompatible_classes_never_pack(i860):
    """A1S (pfsub/m12asm) and A1 (pfadd/m12apm...) both need field FA1 so
    they cannot share a cycle anyway; M1 and A1S share only m12asm."""
    m1 = instr(i860, "M1", Reg(PhysReg("d", 4)), Reg(PhysReg("d", 5)))
    a1 = instr(i860, "A1", Reg(PhysReg("d", 6)), Reg(PhysReg("d", 7)))
    assert m1.desc.classes & a1.desc.classes  # m12apm


def test_chained_suboperation_waits_for_multiplier(i860):
    """A1M reads m3: it may not issue before M3 has produced it, and no
    other multiply may advance clk_m past it."""
    d = [PhysReg("d", i) for i in range(4, 12)]
    seq = [
        instr(i860, "M1", Reg(d[0]), Reg(d[1])),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "A1M", Reg(d[2])),  # a1 = m3 + d[2]
        instr(i860, "A2"),
        instr(i860, "A3"),
        instr(i860, "FWBA", Reg(d[5])),
    ]
    result = schedule(i860, list(seq))
    assert result.cycle_of(seq[3]) > result.cycle_of(seq[2])


def test_figure6_shape_does_not_deadlock(i860):
    """The protection-edge case: an alternate entry into a temporal
    sequence whose producer affects the same clock."""
    d = [PhysReg("d", i) for i in range(4, 12)]
    # multiply 1 produces d6; multiply 2 consumes d6 in its launch
    first = mul_sequence(i860, d[2], d[0], d[1])
    second = mul_sequence(i860, d[5], d[2], d[3])
    result = schedule(i860, first + second)
    # all eight sub-operations scheduled (no deadlock), in a legal order
    assert len([i for i in result.instrs if not i.is_nop]) == 8
    assert result.cycle_of(second[0]) >= result.cycle_of(first[3])


def test_two_pipes_with_cross_feed_no_deadlock(i860):
    d = [PhysReg("d", i) for i in range(4, 14)]
    mul = mul_sequence(i860, d[2], d[0], d[1])
    add = add_sequence(i860, d[5], d[2], d[4])  # consumes multiply result
    result = schedule(i860, mul + add)
    assert result.cycle_of(add[0]) >= result.cycle_of(mul[3])


def test_emission_order_reads_latches_before_advance(i860):
    """Within a packed cycle, a stage reading a latch is emitted before the
    co-issued earlier stage that advances it (sequential-execution
    faithfulness)."""
    d = [PhysReg("d", i) for i in range(4, 12)]
    a_seq = mul_sequence(i860, d[2], d[0], d[1])
    b_seq = mul_sequence(i860, d[5], d[3], d[4])
    result = schedule(i860, a_seq + b_seq)
    position = {i.id: n for n, i in enumerate(result.instrs)}
    for later, earlier in ((a_seq[1], b_seq[0]), (a_seq[2], b_seq[1])):
        if result.cycle_of(later) == result.cycle_of(earlier):
            assert position[later.id] < position[earlier.id]


def test_functional_correctness_of_packed_pipeline(i860):
    """End-to-end: two interleaved multiplies compute the right values."""
    import repro

    src = """
    double f(double a, double b, double c, double d) {
        return a * b + c * d;
    }
    """
    exe = repro.compile_c(src, "i860", repro.CompileOptions(strategy="postpass"))
    result = repro.simulate(exe, "f", args=(3.0, 5.0, 7.0, 11.0))
    assert result.return_value["double"] == 3.0 * 5.0 + 7.0 * 11.0


def test_temporal_state_is_ephemeral_between_ops(i860):
    """A value parked in the pipeline is consumed exactly once; re-running
    the same function gives identical results (no stale latch leakage)."""
    import repro

    src = """
    double f(double a, double b) { return a * b; }
    double g(double a, double b) { return (a * b) * (a + b); }
    """
    exe = repro.compile_c(src, "i860", repro.CompileOptions(strategy="ips"))
    one = repro.simulate(exe, "g", args=(2.0, 4.0))
    two = repro.simulate(exe, "g", args=(2.0, 4.0))
    assert one.return_value["double"] == two.return_value["double"] == 48.0


def test_selector_emits_chained_multiply_add(i860):
    """Fused a*b + c selects the A1M (T-register) chain, skipping FWBM."""
    import repro

    src = "double f(double a, double b, double c) { return a * b + c; }"
    exe = repro.compile_c(src, "i860", repro.CompileOptions(strategy="postpass"))
    names = [i.desc.mnemonic for i in exe.instrs]
    assert "A1M" in names
    assert "FWBM" not in names
    result = repro.simulate(exe, "f", args=(3.0, 5.0, 7.0))
    assert result.return_value["double"] == 22.0


def test_chained_and_unchained_agree(i860):
    import repro

    src = """
    double w[32];
    double f(int n) {
        int i; double s = 0.0;
        for (i = 0; i < n; i++) { w[i] = i * 0.25; }
        for (i = 0; i < n; i++) { s = s + w[i] * w[i] + (w[i] + 1.0); }
        return s;
    }
    """
    exe = repro.compile_c(src, "i860", repro.CompileOptions(strategy="ips"))
    result = repro.simulate(exe, "f", args=(24,))
    expected = 0.0
    w = [i * 0.25 for i in range(24)]
    for i in range(24):
        expected = expected + w[i] * w[i] + (w[i] + 1.0)
    assert result.return_value["double"] == expected


def test_chain_blocks_other_multiplies_until_consumed(i860):
    """While A1M is pending on clk_m's value, another multiply launch may
    not advance the multiplier pipe past it."""
    from repro.backend.scheduler import ListScheduler

    d = [PhysReg("d", i) for i in range(4, 12)]
    chain = [
        instr(i860, "M1", Reg(d[0]), Reg(d[1])),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "A1M", Reg(d[2])),
        instr(i860, "A2"),
        instr(i860, "A3"),
        instr(i860, "FWBA", Reg(d[3])),
    ]
    other = [
        instr(i860, "M1", Reg(d[4]), Reg(d[5])),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "FWBM", Reg(d[6])),
    ]
    result = ListScheduler(i860).schedule_block(chain + other)
    # every sub-operation scheduled, results ordered safely: the second
    # multiply's M3 (which overwrites m3) may not issue before A1M reads it
    m3_other = other[2]
    a1m = chain[3]
    assert result.cycle_of(m3_other) >= result.cycle_of(a1m)
