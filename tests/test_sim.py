"""Simulator tests: machine state, semantics execution, cache, pipeline
timing."""

import pytest

import repro
from repro.errors import SimulationError
from repro.machine.registers import PhysReg
from repro.sim.cache import DirectMappedCache
from repro.sim.state import MachineState


# -- machine state --------------------------------------------------------------


@pytest.fixture()
def state(toyp):
    return MachineState(toyp.registers, bytearray(4096))


def test_int_register_roundtrip(state):
    state.write_reg(PhysReg("r", 3), "int", -123)
    assert state.read_reg(PhysReg("r", 3), "int") == -123


def test_int_register_wraps_32_bits(state):
    state.write_reg(PhysReg("r", 3), "int", 2**31)
    assert state.read_reg(PhysReg("r", 3), "int") == -(2**31)


def test_double_register_spans_two_units(state):
    state.write_reg(PhysReg("d", 1), "double", 3.25)
    assert state.read_reg(PhysReg("d", 1), "double") == 3.25
    # the halves landed in the overlaid integer registers
    lo = state.read_reg(PhysReg("r", 2), "int")
    hi = state.read_reg(PhysReg("r", 3), "int")
    assert (lo, hi) != (0, 0)


def test_double_halves_reassemble(state):
    """Moving the two halves as integers moves the double (the *movd
    semantics)."""
    state.write_reg(PhysReg("d", 1), "double", -17.5)
    for half in range(2):
        value = state.read_reg(PhysReg("r", 2 + half), "int")
        state.write_reg(PhysReg("r", 4 + half), "int", value)
    assert state.read_reg(PhysReg("d", 2), "double") == -17.5


def test_memory_roundtrip(state):
    state.write_mem(128, "double", 2.5)
    assert state.read_mem(128, "double") == 2.5
    state.write_mem(64, "int", -7)
    assert state.read_mem(64, "int") == -7


def test_memory_bounds_checked(state):
    with pytest.raises(SimulationError, match="outside"):
        state.read_mem(5000, "int")
    with pytest.raises(SimulationError, match="outside"):
        state.write_mem(-4, "int", 0)


# -- cache -----------------------------------------------------------------


def test_cache_hit_after_miss():
    cache = DirectMappedCache(size=256, line=16)
    assert not cache.access(0)
    assert cache.access(4)  # same line
    assert cache.access(15)
    assert not cache.access(16)  # next line


def test_cache_conflict_eviction():
    cache = DirectMappedCache(size=256, line=16)
    cache.access(0)
    cache.access(256)  # same set, different tag: evicts
    assert not cache.access(0)
    assert cache.misses == 3


def test_cache_reset():
    cache = DirectMappedCache(size=256, line=16)
    cache.access(0)
    cache.reset()
    assert cache.hits == cache.misses == 0
    assert not cache.access(0)


def test_cache_size_validation():
    with pytest.raises(ValueError):
        DirectMappedCache(size=100, line=16)


# -- semantics / whole-program execution -----------------------------------------


def test_integer_division_truncates_toward_zero():
    src = "int f(int a, int b) { return a / b; }"
    exe = repro.compile_c(src, "toyp")
    assert repro.simulate(exe, "f", args=(-7, 2)).return_value["int"] == -3
    assert repro.simulate(exe, "f", args=(7, -2)).return_value["int"] == -3


def test_modulo_sign_follows_dividend():
    src = "int f(int a, int b) { return a % b; }"
    exe = repro.compile_c(src, "toyp")
    assert repro.simulate(exe, "f", args=(-7, 2)).return_value["int"] == -1
    assert repro.simulate(exe, "f", args=(7, -2)).return_value["int"] == 1


def test_division_by_zero_raises():
    src = "int f(int a) { return a / (a - a); }"
    exe = repro.compile_c(src, "toyp")
    with pytest.raises(SimulationError, match="zero"):
        repro.simulate(exe, "f", args=(3,))


def test_shift_and_mask_semantics():
    src = "int f(int a) { return ((a << 4) >> 2) & 255; }"
    exe = repro.compile_c(src, "toyp")
    assert repro.simulate(exe, "f", args=(9,)).return_value["int"] == (
        ((9 << 4) >> 2) & 255
    )


def test_int_to_double_and_back():
    src = "int f(int a) { double d = (double)a / 4.0; return (int)(d * 8.0); }"
    exe = repro.compile_c(src, "r2000")
    assert repro.simulate(exe, "f", args=(5,)).return_value["int"] == 10


def test_negative_double_truncation():
    src = "int f(void) { return (int)(0.0 - 2.7); }"
    exe = repro.compile_c(src, "r2000")
    assert repro.simulate(exe, "f").return_value["int"] == -2


def test_infinite_loop_guard():
    src = "int f(void) { while (1) { } return 0; }"
    exe = repro.compile_c(src, "toyp")
    with pytest.raises(SimulationError, match="instructions"):
        repro.simulate(exe, "f", options=repro.SimOptions(max_instructions=10_000, model_timing=False))


def test_timing_charges_latency_stalls(toyp):
    dependent = "double f(double a) { return ((a * a) * a) * a; }"
    exe_dep = repro.compile_c(dependent, "toyp")
    dep = repro.simulate(exe_dep, "f", args=(2.0,))
    assert dep.return_value["double"] == 16.0
    # three dependent 7-cycle multiplies cannot fit in instruction count
    # alone: interlock stalls must appear in the cycle count
    assert dep.cycles >= dep.instructions + 2 * 6


def test_cache_misses_slow_execution():
    src = """
    double a[2048];
    double f(int n) {
        int i; double s = 0.0;
        for (i = 0; i < n; i++) { a[i * 8 % 2048] = (double)i; }
        for (i = 0; i < n; i++) { s = s + a[i * 8 % 2048]; }
        return s;
    }
    """
    exe = repro.compile_c(src, "r2000")
    cold = repro.simulate(exe, "f", args=(256,), options=repro.SimOptions(cache=DirectMappedCache(size=1024)))
    warm = repro.simulate(exe, "f", args=(256,))
    assert cold.return_value["double"] == warm.return_value["double"]
    assert cold.cache_misses > 0
    assert cold.cycles > warm.cycles


def test_load_store_counters():
    src = """
    int g[8];
    int f(void) { g[0] = 1; g[1] = 2; return g[0] + g[1]; }
    """
    exe = repro.compile_c(src, "toyp")
    result = repro.simulate(exe, "f")
    assert result.stores >= 2
    assert result.loads >= 2


def test_block_profile_counts_loop_iterations():
    src = "int f(int n) { int i; int s = 0; for (i = 0; i < n; i++) { s += i; } return s; }"
    exe = repro.compile_c(src, "toyp")
    result = repro.simulate(exe, "f", args=(10,), options=repro.SimOptions(model_timing=False))
    assert result.return_value["int"] == 45
    # some block was entered exactly 10 times (the loop body)
    assert 10 in result.block_counts.values()


def test_dilation_numerator_is_dynamic_count():
    src = "int f(int n) { int s = 0; int i; for (i = 0; i < n; i++) { s += 1; } return s; }"
    exe = repro.compile_c(src, "toyp")
    small = repro.simulate(exe, "f", args=(2,), options=repro.SimOptions(model_timing=False))
    large = repro.simulate(exe, "f", args=(50,), options=repro.SimOptions(model_timing=False))
    assert large.instructions > small.instructions


def test_i860_dual_issue_beats_serial_model(i860):
    """Timing model issues core and FP ops in the same cycle."""
    src = """
    double v[64];
    double f(int n) {
        int i; double s = 0.0;
        for (i = 0; i < n; i++) { s = s + v[i] * 2.0; }
        return s;
    }
    """
    exe = repro.compile_c(src, "i860")
    result = repro.simulate(exe, "f", args=(32,))
    # more instructions than cycles is only possible with multi-issue
    assert result.instructions > 0
    assert result.cycles < result.instructions * 2


def test_trace_hook_sees_every_instruction():
    src = "int f(int a) { return a * 2 + 1; }"
    exe = repro.compile_c(src, "toyp")
    events = []
    sim = repro.Simulator(exe)
    result = sim.run("f", (5,), watch=lambda pc, i, c: events.append((pc, str(i), c)))
    assert result.return_value["int"] == 11
    # the trace covers the non-delay-slot instructions, in issue order
    assert len(events) >= result.instructions - 2
    cycles = [c for _, _, c in events]
    assert cycles == sorted(cycles)
