"""Unit tests for TargetMemoryAccess, the text-table helpers and stats."""

import pytest

from repro.backend.insts import Imm, Reg
from repro.backend.memaccess import TargetMemoryAccess
from repro.errors import MarionError
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg
from repro.utils import TextTable, arithmetic_mean, format_table, harmonic_mean


# -- TargetMemoryAccess -----------------------------------------------------


def test_load_shapes_found_per_type(toyp):
    memory = TargetMemoryAccess(toyp)
    assert memory.load_shape("int").desc.mnemonic == "ld"
    assert memory.load_shape("double").desc.mnemonic == "ld.d"
    assert memory.store_shape("int").desc.mnemonic == "st"
    assert memory.store_shape("double").desc.mnemonic == "st.d"


def test_missing_type_raises(toyp):
    memory = TargetMemoryAccess(toyp)
    with pytest.raises(MarionError, match="float"):
        memory.load_shape("float")  # TOYP has no float instruction set


def test_add_imm_shape(toyp):
    memory = TargetMemoryAccess(toyp)
    shape = memory.add_imm_shape()
    assert shape.desc.mnemonic == "addi"


def test_emitters_place_operands(r2000):
    memory = TargetMemoryAccess(r2000)
    dest = PseudoReg("double", "d")
    load = memory.load("double", dest, PhysReg("r", 30), -16)
    assert load.desc.mnemonic == "l.d"
    assert load.operands[0] == Reg(dest)
    assert load.operands[1] == Reg(PhysReg("r", 30))
    assert load.operands[2] == Imm(-16)

    store = memory.store("int", PhysReg("r", 5), PhysReg("r", 29), 8)
    assert store.desc.mnemonic == "sw"
    assert store.operands[0] == Reg(PhysReg("r", 5))

    add = memory.add_imm(PhysReg("r", 29), PhysReg("r", 29), -32)
    assert add.desc.mnemonic == "addiu"
    assert add.operands[2] == Imm(-32)


def test_shapes_cached(toyp):
    memory = TargetMemoryAccess(toyp)
    assert memory.load_shape("int") is memory.load_shape("int")


# -- text tables --------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "bbb"], [[1, 2], [333, 4]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].startswith("a    bbb")
    assert "333" in lines[4]


def test_text_table_add_row_checks_width():
    table = TextTable(["x", "y"])
    table.add_row(1, 2)
    with pytest.raises(ValueError, match="columns"):
        table.add_row(1)
    assert "x" in str(table)


# -- stats --------------------------------------------------------------------


def test_means():
    assert arithmetic_mean([1, 2, 3]) == 2
    assert harmonic_mean([1, 1, 1]) == 1
    assert harmonic_mean([2, 2]) == 2
    assert abs(harmonic_mean([1, 2]) - 4 / 3) < 1e-12


def test_mean_edge_cases():
    with pytest.raises(ValueError):
        arithmetic_mean([])
    with pytest.raises(ValueError):
        harmonic_mean([])
    with pytest.raises(ValueError):
        harmonic_mean([1.0, 0.0])
