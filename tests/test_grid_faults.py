"""Fault-injection suite for the robust evaluation grid.

Each scenario injects one failure mode — a unit that raises, a unit that
sleeps past its wall-clock budget, a worker killed mid-flight, an
interrupted run resumed from its journal — and asserts that the
surviving rows are bit-identical to a clean serial run while the failed
unit degrades to a structured :class:`GridFailure`.
"""

import dataclasses
import os
import signal
import time

import pytest

import repro
from repro.errors import GridTimeout, JournalError, SimulationTimeout
from repro.eval.common import grid_run_kernel, kernel_key
from repro.eval.grid import (
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
)
from repro.eval.journal import Journal, decode_value, encode_value
from repro.eval.table4 import measure as table4_measure
from repro.eval.table4 import render as table4_render
from repro.workloads import kernel_by_id


def _square(x):
    return x * x


def _boom(message):
    raise ValueError(message)


def _sleep(seconds):
    time.sleep(seconds)
    return "overslept"


def _kill_self(delay=0.5):
    # the delay lets sibling units drain before the pool breaks, so
    # repeated breaks cannot burn their retry budget by association
    time.sleep(delay)
    os.kill(os.getpid(), signal.SIGKILL)


def _marking_square(x, marker_dir):
    with open(os.path.join(marker_dir, f"ran_{x}"), "a") as handle:
        handle.write("x\n")
    return x * x


COLLECT = GridOptions(failures="collect")


def _collect(**changes):
    return dataclasses.replace(COLLECT, **changes)


# -- a unit that raises ----------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_raising_unit_degrades_to_failure_and_siblings_survive(jobs):
    units = [
        GridTask("sq/1", _square, (1,)),
        GridTask("boom", _boom, ("injected failure",)),
        GridTask("sq/3", _square, (3,)),
    ]
    results = run_grid(units, _collect(jobs=jobs))
    assert results[0] == 1 and results[2] == 9  # bit-identical survivors
    failure = results[1]
    assert isinstance(failure, GridFailure)
    assert failure.key == "boom"
    assert failure.error_type == "ValueError"
    assert "injected failure" in failure.message
    assert "ValueError" in failure.traceback


def test_marion_error_details_cross_the_process_boundary():
    def sim_die():
        raise repro.SimulationError(
            "pc 99 outside program", function="bench", pc=99, cycle=1234
        )

    # closures don't pickle, so exercise the serial containment path
    results = run_grid([GridTask("simdie", sim_die)], _collect(jobs=1))
    failure = results[0]
    assert failure.error_type == "SimulationError"
    assert failure.details["function"] == "bench"
    assert failure.details["pc"] == 99
    assert failure.details["cycle"] == 1234


# -- a unit that sleeps past the timeout -----------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_unit_timeout_becomes_failure(jobs):
    units = [
        GridTask("sq/2", _square, (2,)),
        GridTask("sleeper", _sleep, (30.0,)),
    ]
    options = _collect(timeout=0.5, jobs=jobs)
    start = time.perf_counter()
    results = run_grid(units, options)
    assert time.perf_counter() - start < 15.0  # did not wait the 30 s
    assert results[0] == 4
    failure = results[1]
    assert isinstance(failure, GridFailure)
    assert failure.error_type == "GridTimeout"
    assert "wall-clock budget" in failure.message
    assert failure.details["seconds"] == 0.5


def test_timeout_raises_in_raise_mode():
    with pytest.raises(GridTimeout, match="wall-clock budget"):
        run_grid(
            [GridTask("sleeper", _sleep, (30.0,))],
            GridOptions(jobs=1, timeout=0.3),
        )


# -- a worker killed mid-flight --------------------------------------------


def test_killed_worker_is_contained_and_siblings_survive():
    units = [
        GridTask("sq/1", _square, (1,)),
        GridTask("killer", _kill_self),
        GridTask("sq/2", _square, (2,)),
        GridTask("sq/3", _square, (3,)),
    ]
    options = _collect(retries=1, backoff=0.05, jobs=2)
    results = run_grid(units, options)
    assert results[0] == 1 and results[2] == 4 and results[3] == 9
    failure = results[1]
    assert isinstance(failure, GridFailure)
    assert failure.error_type == "WorkerCrash"
    assert failure.attempts == 2  # first run + one retry


def test_killed_worker_raises_after_retries_in_raise_mode():
    with pytest.raises(repro.MarionError, match="WorkerCrash"):
        run_grid(
            [GridTask("killer", _kill_self), GridTask("sq/5", _square, (5,))],
            GridOptions(jobs=2, retries=0, backoff=0.05),
        )


# -- journal: checkpoint, resume, bit-identical tables ---------------------


def test_journal_codec_round_trips_results_exactly():
    run = grid_run_kernel(1, "r2000", "postpass", scale=0.05)
    assert decode_value(encode_value(run)) == run  # dataclass eq: all fields
    for value in (
        (1, 0.1234567890123456, "x"),
        {"a": [1, 2, (3, 4)], 5: None},
        [True, 2.5e-323, -0.0],
    ):
        assert decode_value(encode_value(value)) == value
        assert type(decode_value(encode_value(value))) is type(value)


def test_journal_resume_skips_done_units(tmp_path):
    marker_dir = str(tmp_path)
    units = [
        GridTask(f"mark/{x}", _marking_square, (x, marker_dir))
        for x in range(4)
    ]
    journal_path = str(tmp_path / "journal.jsonl")
    with Journal(journal_path) as journal:
        first = run_grid(units[:2], GridOptions(jobs=1, journal=journal))
    # a fresh Journal object, as a resumed process would build
    with Journal(journal_path) as journal:
        second = run_grid(units, GridOptions(jobs=1, journal=journal))
    assert first == [0, 1]
    assert second == [0, 1, 4, 9]
    for x in range(4):
        runs = open(os.path.join(marker_dir, f"ran_{x}")).read().count("x")
        assert runs == 1  # units 0 and 1 were NOT re-executed on resume


def test_journal_reruns_failed_units(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    with Journal(journal_path) as journal:
        results = run_grid(
            [GridTask("flaky", _boom, ("first try",))],
            _collect(jobs=1, journal=journal),
        )
    assert isinstance(results[0], GridFailure)
    with Journal(journal_path) as journal:
        assert journal.failed("flaky") is not None
        results = run_grid(
            [GridTask("flaky", _square, (6,))],  # "fixed" second run
            _collect(jobs=1, journal=journal),
        )
    assert results[0] == 36
    with Journal(journal_path) as journal:
        assert journal.lookup("flaky") == 36
        assert journal.failed("flaky") is None


def test_journal_config_mismatch_refuses_resume(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    Journal(journal_path, config={"scale": 0.3}).close()
    with pytest.raises(JournalError, match="config"):
        Journal(journal_path, config={"scale": 1.0})
    # same config resumes fine
    Journal(journal_path, config={"scale": 0.3}).close()


def test_journal_tolerates_torn_final_record(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    with Journal(journal_path) as journal:
        journal.record_ok("done/1", 11, 0.1)
    with open(journal_path, "a") as handle:
        handle.write('{"schema": 1, "key": "torn", "status": "o')  # SIGKILL
    with Journal(journal_path) as journal:
        assert journal.lookup("done/1") == 11
        assert journal.lookup("torn") is not journal.lookup("done/1")


def test_interrupted_table4_resume_is_byte_identical(tmp_path):
    """The acceptance property: interrupt a grid mid-run, resume from the
    journal, and the rendered table is byte-identical to a clean run."""
    kernels = [kernel_by_id(1)]
    target = "r2000"
    clean = table4_measure(kernels=kernels, scale=0.05, jobs=1)

    journal_path = str(tmp_path / "table4.jsonl")
    # "interrupted" run: only two of the three units completed before the
    # kill — exactly what a journal of a killed run contains
    partial_units = [
        GridTask(
            kernel_key("table4", target, strategy, 1),
            grid_run_kernel,
            (1, target, strategy),
            {"scale": 0.05, "cache": True},
        )
        for strategy in ("postpass", "ips")
    ]
    with Journal(journal_path) as journal:
        run_grid(partial_units, GridOptions(jobs=1, journal=journal))

    with Journal(journal_path) as journal:
        resumed = table4_measure(
            kernels=kernels,
            scale=0.05,
            options=GridOptions(jobs=1, journal=journal),
        )
    assert table4_render(resumed) == table4_render(clean)  # byte-identical
    # and the journalled units really were reused, not re-measured: the
    # wall-clock fields survive the JSON round-trip bit-for-bit
    with Journal(journal_path) as journal:
        key = kernel_key("table4", target, "postpass", 1)
        assert journal.lookup(key) == resumed.runs[1]["postpass"]


def test_failed_unit_renders_failed_cell(tmp_path):
    """A hanging/crashing unit yields a FAILED cell, not a traceback."""
    data = table4_measure(
        kernels=[kernel_by_id(1)],
        scale=0.05,
        options=GridOptions(jobs=1, failures="collect", timeout=1e-9),
    )
    text = table4_render(data)
    assert "FAILED" in text
    assert data.failures  # all three strategy units timed out


# -- the simulator watchdog ------------------------------------------------


def test_simulation_timeout_carries_context():
    spec = kernel_by_id(1)
    exe = repro.compile_c(
        spec.source, "r2000", repro.CompileOptions(strategy="postpass")
    )
    with pytest.raises(SimulationTimeout) as info:
        repro.simulate(exe, "bench", args=spec.args, options=repro.SimOptions(max_cycles=2000))
    timeout = info.value
    assert timeout.function == "bench"
    assert timeout.max_cycles == 2000
    assert timeout.cycle > 2000
    assert timeout.pc is not None
    assert "exceeded 2000 cycles" in str(timeout)
    assert isinstance(timeout, repro.SimulationError)  # taxonomy intact


def test_simulation_error_context_renders_in_message():
    err = repro.SimulationError("pc 7 outside program", function="f", pc=7)
    assert "function='f'" in str(err) and "pc=7" in str(err)
