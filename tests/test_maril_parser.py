"""Unit tests for the Maril parser (structure, directives, errors)."""

import pytest

from repro.errors import MarilSyntaxError
from repro.maril import ast
from repro.maril.parser import parse_maril_unchecked


def parse(text):
    return parse_maril_unchecked(text)


MINIMAL = """
declare {
    %reg r[0:3] (int);
    %resource IF, EX;
    %def imm [-8:7];
    %label lab [-64:63] +relative;
    %memory m[0:1023];
}
cwvm {
    %general (int) r;
    %allocable r[1:2];
    %sp r[3] +down;
    %fp r[2] +down;
    %hard r[0] 0;
}
instr {
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; EX] (1,1,0);
}
"""


def test_minimal_description_parses():
    d = parse(MINIMAL)
    assert len(d.declare) == 5
    assert len(d.cwvm) == 5
    assert len(d.instr_decls()) == 1


def test_reg_decl_fields():
    d = parse(MINIMAL)
    reg = d.declarations(ast.RegDecl)[0]
    assert reg.name == "r"
    assert (reg.lo, reg.hi) == (0, 3)
    assert reg.types == ("int",)
    assert not reg.is_temporal


def test_temporal_reg_decl():
    d = parse(
        "declare { %clock clk; %reg m1 (double; clk) +temporal; }"
    )
    reg = d.declarations(ast.RegDecl)[0]
    assert reg.is_temporal
    assert reg.clock == "clk"
    assert (reg.lo, reg.hi) == (0, 0)


def test_equiv_decl():
    d = parse(
        "declare { %reg r[0:7] (int); %reg d[0:3] (double); %equiv d[0] r[0]; }"
    )
    equiv = d.declarations(ast.EquivDecl)[0]
    assert str(equiv.wide) == "d[0]"
    assert str(equiv.narrow) == "r[0]"


def test_def_with_negative_range_and_flags():
    d = parse("declare { %def c [-32768:32767] +abs; }")
    decl = d.declarations(ast.DefDecl)[0]
    assert (decl.lo, decl.hi) == (-32768, 32767)
    assert "abs" in decl.flags


def test_instr_parts():
    d = parse(MINIMAL)
    instr = d.instr_decls()[0]
    assert instr.mnemonic == "add"
    assert len(instr.operands) == 3
    assert instr.type == "int"
    assert instr.resources == (("IF",), ("EX",))
    assert (instr.cost, instr.latency, instr.slots) == (1, 1, 0)


def test_instr_multi_resource_cycle():
    d = parse("instr { %instr f r, r {$1 = $2;} [IF; EX,IF; EX] (1,2,0); }")
    instr = d.instr_decls()[0]
    assert instr.resources == (("IF",), ("EX", "IF"), ("EX",))


def test_instr_with_fixed_register_operand():
    d = parse(
        "instr { %move [s.movs] add r, r, r[0] {$1 = $2;} [] (1,1,0); }"
    )
    instr = d.instr_decls()[0]
    assert instr.is_move
    assert instr.label == "s.movs"
    op = instr.operands[2]
    assert isinstance(op, ast.RegOperand)
    assert op.index == 0


def test_func_escape_directive():
    d = parse("instr { %move *movd d, d {$1 = $2;} [] (0,0,0); }")
    instr = d.instr_decls()[0]
    assert instr.func == "movd"
    assert instr.mnemonic == "*movd"


def test_branch_semantics():
    d = parse(
        "instr { %instr beq0 r, #lab {if ($1 == 0) goto $2;} [] (1,2,1); }"
    )
    instr = d.instr_decls()[0]
    stmt = instr.semantics[0]
    assert isinstance(stmt, ast.CondGotoStmt)
    assert isinstance(stmt.condition, ast.Binary)
    assert stmt.condition.op == "=="


def test_call_and_ret_statements():
    d = parse(
        "instr { %instr call #lab {call $1;} [] (1,2,0);"
        " %instr ret {ret;} [] (1,2,1); }"
    )
    call, ret = d.instr_decls()
    assert isinstance(call.semantics[0], ast.CallStmt)
    assert isinstance(ret.semantics[0], ast.RetStmt)


def test_nop_semantics_empty():
    d = parse("instr { %instr nop {;} [] (1,1,0); }")
    assert isinstance(d.instr_decls()[0].semantics[0], ast.EmptyStmt)


def test_memory_reference_semantics():
    d = parse(
        "instr { %instr ld r, r, #c {$1 = m[$2 + $3];} [] (1,3,0); }"
    )
    stmt = d.instr_decls()[0].semantics[0]
    assert isinstance(stmt.value, ast.MemRef)
    assert stmt.value.memory == "m"


def test_aux_directive():
    d = parse("instr { %aux fadd.d : st.d (1.$1 == 2.$1) (7); }")
    aux = d.aux_decls()[0]
    assert aux.first == "fadd.d"
    assert aux.second == "st.d"
    assert (aux.first_operand, aux.second_operand) == (1, 1)
    assert aux.latency == 7


def test_aux_wrong_instruction_numbers_rejected():
    with pytest.raises(MarilSyntaxError):
        parse("instr { %aux a : b (2.$1 == 1.$1) (7); }")


def test_glue_expression_rewrite():
    d = parse("instr { %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}; }")
    glue = d.glue_decls()[0]
    assert isinstance(glue.pattern, ast.Binary)
    assert isinstance(glue.replacement, ast.Binary)


def test_glue_statement_rewrite():
    d = parse(
        "instr { %glue r, r, #lab "
        "{if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;}; }"
    )
    glue = d.glue_decls()[0]
    assert isinstance(glue.pattern, ast.CondGotoStmt)
    assert isinstance(glue.replacement, ast.CondGotoStmt)


def test_glue_mixed_forms_rejected():
    with pytest.raises(MarilSyntaxError, match="both"):
        parse("instr { %glue r {($1) ==> if ($1 == 0) goto $1;}; }")


def test_element_and_class_clause():
    d = parse(
        "instr { %element pfmul, pfadd;"
        " %instr M1 d, d {$1 = $2;} [] (1,1,0) <pfmul, pfadd>; }"
    )
    assert d.element_decls()[0].names == ("pfmul", "pfadd")
    assert d.instr_decls()[0].classes == ("pfmul", "pfadd")


def test_type_clause_with_clock():
    d = parse("instr { %instr M2 (double; clk) {;} [] (1,1,0); }")
    instr = d.instr_decls()[0]
    assert instr.type == "double"
    assert instr.clock == "clk"


def test_expression_precedence():
    d = parse("instr { %instr f r, r, r {$1 = $2 + $3 * 2;} [] (1,1,0); }")
    value = d.instr_decls()[0].semantics[0].value
    assert value.op == "+"
    assert value.right.op == "*"


def test_builtin_calls():
    d = parse(
        "instr { %instr lui r, #c {$1 = high($2);} [] (1,1,0); }"
    )
    value = d.instr_decls()[0].semantics[0].value
    assert isinstance(value, ast.BuiltinCall)
    assert value.name == "high"


def test_unknown_builtin_rejected():
    with pytest.raises(MarilSyntaxError, match="unknown builtin"):
        parse("instr { %instr f r {$1 = frobnicate($1);} [] (1,1,0); }")


def test_unknown_section_rejected():
    with pytest.raises(MarilSyntaxError, match="section"):
        parse("wibble { }")


def test_directive_in_wrong_section_rejected():
    with pytest.raises(MarilSyntaxError, match="not valid"):
        parse("declare { %instr add r {$1 = $1;} [] (1,1,0); }")


def test_missing_semicolon_rejected():
    with pytest.raises(MarilSyntaxError):
        parse("declare { %clock clk }")


def test_cwvm_arg_and_result():
    d = parse(
        "cwvm { %sp r[3] +down; %fp r[2] +down;"
        " %arg (int) r[1] 1; %result r[1] (int); }"
    )
    arg = d.cwvm_declarations(ast.ArgDecl)[0]
    assert arg.type == "int"
    assert arg.index == 1
    result = d.cwvm_declarations(ast.ResultDecl)[0]
    assert result.type == "int"
