"""Shared test utilities."""

from repro.backend.insts import Imm, Lab, MachineInstr, Reg, make_instr
from repro.machine.instruction import OperandMode


def find_desc(target, mnemonic, operands):
    """Find the descriptor variant whose operand shapes fit ``operands``
    (several directives may share a mnemonic, e.g. TOYP's three ``add``)."""
    candidates = [
        d for d in target.instructions.values() if d.mnemonic == mnemonic
    ]
    for desc in candidates:
        if len(desc.operands) != len(operands):
            continue
        ok = True
        for spec, operand in zip(desc.operands, operands):
            if isinstance(operand, Reg):
                if spec.mode is OperandMode.FIXED_REG:
                    from repro.machine.registers import PhysReg

                    fixed = PhysReg(spec.set_name, spec.reg_index)
                    if operand.reg != fixed:
                        ok = False
                elif spec.mode is not OperandMode.REG:
                    ok = False
            elif isinstance(operand, Imm) and spec.mode is not OperandMode.IMM:
                ok = False
            elif isinstance(operand, Lab) and spec.mode is not OperandMode.LABEL:
                ok = False
            elif operand is None and spec.mode is not OperandMode.FIXED_REG:
                ok = False
        if ok:
            return desc
    if candidates:
        return candidates[0]
    raise KeyError(mnemonic)


def build(target, mnemonic, *operands) -> MachineInstr:
    """Build a machine instruction, padding fixed-register slots."""
    # try exact shape first, then with None padding for fixed registers
    desc = None
    for padding in range(3):
        shaped = list(operands) + [None] * padding
        try:
            desc = find_desc(target, mnemonic, shaped)
        except KeyError:
            raise
        if len(desc.operands) == len(shaped):
            return make_instr(desc, shaped)
    return make_instr(desc, list(operands))
