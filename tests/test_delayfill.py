"""Tests for the Gross-Hennessy delay-slot filling extension."""

import pytest

import repro
from repro.backend.delayfill import fill_delay_slots
from repro.backend.insts import Imm, Lab, Reg
from repro.backend.mfunc import MBlock, MFunction
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg

from tests.helpers import build as instr


def block_fn(target, instrs):
    fn = MFunction(name="f", return_type=None)
    block = MBlock(label="f")
    block.instrs = list(instrs)
    block.schedule_cost = len(instrs)
    fn.blocks.append(block)
    return fn


def nop(target):
    from repro.backend.insts import make_instr

    n = make_instr(target.nop, [])
    n.comment = "delay slot"
    return n


def test_independent_instruction_moves_into_slot(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    work = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    cond = instr(toyp, "addi", Reg(b), Reg(p), Imm(2))
    branch = instr(toyp, "beq0", Reg(b), Lab("L"))
    fn = block_fn(toyp, [work, cond, branch, nop(toyp)])
    assert fill_delay_slots(fn, toyp) == 1
    names = [i.desc.mnemonic for i in fn.blocks[0].instrs]
    assert names == ["addi", "beq0", "addi"]
    # the hoisted instruction is the one the branch does NOT depend on
    assert fn.blocks[0].instrs[2].defs()[0] is a


def test_branch_dependency_blocks_hoisting(toyp):
    b, p = PseudoReg("int", "b"), PseudoReg("int", "p")
    cond = instr(toyp, "addi", Reg(b), Reg(p), Imm(2))
    branch = instr(toyp, "beq0", Reg(b), Lab("L"))
    fn = block_fn(toyp, [cond, branch, nop(toyp)])
    assert fill_delay_slots(fn, toyp) == 0  # only candidate feeds the branch


def test_dependent_chain_tail_only(toyp):
    """Only the tail of a chain may move (nothing may depend on it)."""
    a, b, c, p = (PseudoReg("int", n) for n in "abcp")
    first = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    second = instr(toyp, "addi", Reg(b), Reg(a), Imm(2))  # depends on first
    cond = instr(toyp, "addi", Reg(c), Reg(p), Imm(3))
    branch = instr(toyp, "beq0", Reg(c), Lab("L"))
    fn = block_fn(toyp, [first, second, cond, branch, nop(toyp)])
    assert fill_delay_slots(fn, toyp) == 1
    moved = fn.blocks[0].instrs[-1]
    assert moved is second  # the chain tail, never the head


def test_store_can_fill_slot(toyp):
    a, p, c = (PseudoReg("int", n) for n in "apc")
    store = instr(toyp, "st", Reg(a), Reg(p), Imm(0))
    cond = instr(toyp, "addi", Reg(c), Reg(p), Imm(3))
    branch = instr(toyp, "bne0", Reg(c), Lab("L"))
    fn = block_fn(toyp, [store, cond, branch, nop(toyp)])
    assert fill_delay_slots(fn, toyp) == 1
    assert fn.blocks[0].instrs[-1] is store


def test_call_never_moves(toyp):
    c, p = PseudoReg("int", "c"), PseudoReg("int", "p")
    call = instr(toyp, "call", Lab("g"))
    cond = instr(toyp, "addi", Reg(c), Reg(p), Imm(3))
    branch = instr(toyp, "bne0", Reg(c), Lab("L"))
    fn = block_fn(toyp, [call, cond, branch, nop(toyp)])
    assert fill_delay_slots(fn, toyp) == 0


def test_false_path_jump_slot_left_alone(toyp):
    """Only the first control's slot is filled; the explicit jump's slot is
    one-path-only and must stay a nop."""
    a, b, p = (PseudoReg("int", n) for n in "abp")
    one = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    two = instr(toyp, "addi", Reg(b), Reg(p), Imm(2))
    branch = instr(toyp, "beq0", Reg(b), Lab("L"))
    jump = instr(toyp, "jmp", Lab("M"))
    fn = block_fn(toyp, [one, two, branch, nop(toyp), jump, nop(toyp)])
    filled = fill_delay_slots(fn, toyp)
    assert filled == 1
    instrs = fn.blocks[0].instrs
    assert instrs[-1].is_nop  # the jump's slot is untouched


@pytest.mark.parametrize("target", ["toyp", "r2000", "m88000"])
@pytest.mark.parametrize("strategy", ["postpass", "ips"])
def test_end_to_end_correct_and_not_slower(target, strategy):
    src = """
    int a[64];
    int f(int n) {
        int i; int s = 0;
        for (i = 0; i < n; i++) {
            a[i] = i * 3;
            if (a[i] > 50) { s = s + a[i]; } else { s = s - 1; }
        }
        return s;
    }
    """
    plain = repro.compile_c(src, target, repro.CompileOptions(strategy=strategy))
    filled = repro.compile_c(
        src, target, repro.CompileOptions(strategy=strategy, fill_delay_slots=True)
    )
    result_plain = repro.simulate(plain, "f", args=(40,))
    result_filled = repro.simulate(filled, "f", args=(40,))
    assert result_plain.return_value["int"] == result_filled.return_value["int"]
    assert result_filled.cycles <= result_plain.cycles


def test_fills_reduce_nop_count():
    src = """
    int a[64];
    int f(int n) {
        int i; int s = 0;
        for (i = 0; i < n; i++) { a[i] = i * 3; s = s + a[i]; }
        return s;
    }
    """
    plain = repro.compile_c(src, "r2000")
    filled = repro.compile_c(src, "r2000", repro.CompileOptions(fill_delay_slots=True))

    def nops(executable):
        return sum(1 for i in executable.instrs if i.is_nop)

    assert nops(filled) < nops(plain)
