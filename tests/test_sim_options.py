"""The SimOptions record and the graduated legacy keyword spellings."""

import dataclasses

import pytest

import repro
from repro.sim import DirectMappedCache, Simulator, run_program

SOURCE = "int f(int a, int b) { return a * b + 7; }"


@pytest.fixture(scope="module")
def exe():
    return repro.compile_c(SOURCE, "r2000", repro.CompileOptions())


# -- the record itself -------------------------------------------------------


def test_sim_options_is_frozen():
    options = repro.SimOptions()
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.max_cycles = 5


def test_sim_options_defaults_and_replace():
    options = repro.SimOptions()
    assert options.cache is None
    assert options.model_timing is True
    assert options.max_cycles is None
    assert options.trace is False
    bumped = options.replace(max_cycles=100, trace=True)
    assert bumped.max_cycles == 100
    assert bumped.trace is True
    assert options.max_cycles is None  # original untouched


# -- constructor shim --------------------------------------------------------


def test_simulator_legacy_kwargs_raise(exe):
    with pytest.raises(TypeError, match=r"SimOptions\(model_timing=\.\.\.\)"):
        Simulator(exe, model_timing=False)


def test_simulator_options_plus_legacy_is_an_error(exe):
    with pytest.raises(TypeError, match="model_timing"):
        Simulator(exe, repro.SimOptions(), model_timing=False)


def test_simulator_cache_resolution(exe):
    assert Simulator(exe, repro.SimOptions(cache=None)).cache is None
    assert Simulator(exe, repro.SimOptions(cache=False)).cache is None
    default = Simulator(exe, repro.SimOptions(cache=True)).cache
    assert isinstance(default, DirectMappedCache)
    mine = DirectMappedCache(size=256)
    assert Simulator(exe, repro.SimOptions(cache=mine)).cache is mine


# -- run-level options -------------------------------------------------------


def test_run_options_override_constructor(exe):
    sim = Simulator(exe, repro.SimOptions(model_timing=True))
    timed = sim.run("f", (3, 4))
    functional = sim.run(
        "f", (3, 4), options=repro.SimOptions(model_timing=False)
    )
    assert timed.return_value["int"] == 19
    assert functional.return_value["int"] == 19
    assert functional.cycles == functional.instructions
    assert timed.cycles >= functional.cycles
    # the constructor record is untouched by the per-run override
    assert sim.run("f", (3, 4)).cycles == timed.cycles


def test_run_legacy_limit_kwargs_raise(exe):
    sim = Simulator(exe)
    with pytest.raises(TypeError, match="max_instructions"):
        sim.run("f", (2, 2), max_instructions=10_000)


def test_run_legacy_trace_keyword_names_watch(exe):
    sim = Simulator(exe)
    with pytest.raises(TypeError, match="watch="):
        sim.run("f", (2, 2), trace=lambda pc, instr, cycle: None)


def test_run_watch_callback(exe):
    sim = Simulator(exe)
    seen = []
    result = sim.run(
        "f", (2, 2), watch=lambda pc, instr, cycle: seen.append((pc, cycle))
    )
    # one call per issued instruction (delay-slot fills execute inline
    # without a separate watch call)
    assert 0 < len(seen) <= result.instructions
    cycles = [cycle for _pc, cycle in seen]
    assert cycles == sorted(cycles)


def test_max_cycles_watchdog():
    looping = repro.compile_c(
        "int f(int n) { int i; i = 0; while (n) { i = i + 1; } return i; }",
        "r2000",
        repro.CompileOptions(),
    )
    from repro.errors import SimulationTimeout

    sim = Simulator(looping)
    with pytest.raises(SimulationTimeout):
        sim.run("f", (1,), options=repro.SimOptions(max_cycles=2_000))


# -- module-level entry points -----------------------------------------------


def test_run_program_options(exe):
    result = run_program(
        exe, "f", (5, 6), options=repro.SimOptions(model_timing=False)
    )
    assert result.return_value["int"] == 37
    assert result.cycles == result.instructions


def test_run_program_legacy_kwargs_raise(exe):
    with pytest.raises(TypeError, match="pass options=SimOptions"):
        run_program(exe, "f", (5, 6), model_timing=False)


def test_simulate_legacy_kwargs_raise(exe):
    with pytest.raises(TypeError, match="pass options=SimOptions"):
        repro.simulate(exe, "f", (1, 1), model_timing=False)


def test_simulate_options_form_is_warning_free(exe):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = repro.simulate(
            exe, "f", (1, 1), options=repro.SimOptions(cache=True)
        )
    assert result.return_value["int"] == 8


# -- facade ------------------------------------------------------------------


def test_api_facade_exports():
    from repro import api

    for name in (
        "compile_c",
        "simulate",
        "CompileOptions",
        "SimOptions",
        "Trace",
        "tracing",
        "Simulator",
        "run_program",
    ):
        assert hasattr(api, name), name
        assert name in api.__all__
