"""Unit tests for the IL data structures."""

from repro.il import (
    BasicBlock,
    ILFunction,
    ILProgram,
    GlobalVar,
    ILOp,
    Node,
    format_node,
)
from repro.il.node import count_parents, unique_nodes


def cnst(v):
    return Node(ILOp.CNST, "int", (), v)


def test_node_purity():
    assert cnst(1).is_pure
    assert Node(ILOp.ADD, "int", (cnst(1), cnst(2))).is_pure
    assert not Node(ILOp.ASGN, None, (cnst(0), cnst(1))).is_pure
    assert not Node(ILOp.CALL, "int", (), "f").is_pure


def test_unique_nodes_deduplicates_shared():
    shared = cnst(5)
    root = Node(ILOp.ADD, "int", (shared, shared))
    assert len(unique_nodes([root])) == 2


def test_count_parents_detects_cse():
    shared = Node(ILOp.ADD, "int", (cnst(1), cnst(2)))
    a = Node(ILOp.MUL, "int", (shared, cnst(3)))
    b = Node(ILOp.SUB, "int", (shared, cnst(4)))
    counts = count_parents([a, b])
    assert counts[id(shared)] == 2
    assert counts[id(a)] == 0


def test_count_parents_same_parent_twice():
    shared = cnst(7)
    root = Node(ILOp.MUL, "int", (shared, shared))
    assert count_parents([root])[id(shared)] == 2


def test_format_node_readable():
    node = Node(ILOp.ADD, "int", (cnst(1), cnst(2)))
    assert format_node(node) == "(1 + 2)"
    load = Node(ILOp.INDIR, "double", (cnst(8),))
    assert format_node(load) == "*(8)"


def test_block_terminator():
    block = BasicBlock("L")
    assert block.terminator is None
    block.append(Node(ILOp.JUMP, None, (), "X"))
    assert block.terminator is not None


def test_block_linking():
    a = BasicBlock("a")
    b = BasicBlock("b")
    a.link_to(b)
    a.link_to(b)  # idempotent
    assert a.successors == [b]
    assert b.predecessors == [a]


def test_function_pseudo_and_slot_factories():
    fn = ILFunction("f", "int")
    pseudo = fn.new_pseudo("double", name="x", is_global=True)
    slot = fn.new_slot(8, 8, name="arr")
    assert pseudo in fn.pseudos
    assert slot in fn.frame_slots
    assert pseudo.type == "double"
    assert slot.size == 8


def test_global_var_size():
    assert GlobalVar("g", "double", count=10).size == 80
    assert GlobalVar("h", "int", count=3).size == 12


def test_program_function_lookup():
    fn = ILFunction("f", None)
    program = ILProgram(functions=[fn])
    assert program.function("f") is fn
