"""Unit tests for the Maril lexer."""

import pytest

from repro.errors import MarilSyntaxError
from repro.maril.lexer import tokenize
from repro.maril.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # strip EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_directive_token():
    tokens = tokenize("%reg")
    assert tokens[0].kind is TokenKind.DIRECTIVE
    assert tokens[0].value == "reg"


def test_unknown_directive_rejected():
    with pytest.raises(MarilSyntaxError, match="unknown directive"):
        tokenize("%registr")


def test_percent_alone_is_modulo():
    assert kinds("$1 % $2") == [TokenKind.DOLLAR, TokenKind.PERCENT, TokenKind.DOLLAR]


def test_dollar_operand_reference():
    tokens = tokenize("$12")
    assert tokens[0].kind is TokenKind.DOLLAR
    assert tokens[0].value == 12


def test_dollar_without_digit_rejected():
    with pytest.raises(MarilSyntaxError):
        tokenize("$x")


def test_dotted_identifier_is_single_token():
    assert values("fadd.d s.movs") == ["fadd.d", "s.movs"]


def test_trailing_dot_not_part_of_identifier():
    assert kinds("st.") == [TokenKind.IDENT, TokenKind.DOT]


def test_integer_and_float_literals():
    tokens = tokenize("42 3.5 0x1f")
    assert tokens[0].value == 42
    assert tokens[1].kind is TokenKind.FLOAT
    assert tokens[1].value == 3.5
    assert tokens[2].value == 31


def test_aux_condition_lexes_int_dot_dollar():
    assert kinds("1.$1") == [TokenKind.INT, TokenKind.DOT, TokenKind.DOLLAR]


def test_two_char_operators():
    assert kinds("== != <= >= << >> :: ==>") == [
        TokenKind.EQ,
        TokenKind.NE,
        TokenKind.LE,
        TokenKind.GE,
        TokenKind.LSHIFT,
        TokenKind.RSHIFT,
        TokenKind.COLONCOLON,
        TokenKind.ARROW,
    ]


def test_single_char_tokens():
    assert kinds("{ } [ ] ( ) ; , : < > = + - * / & | ^ ~ ! #") == [
        TokenKind.LBRACE,
        TokenKind.RBRACE,
        TokenKind.LBRACKET,
        TokenKind.RBRACKET,
        TokenKind.LPAREN,
        TokenKind.RPAREN,
        TokenKind.SEMI,
        TokenKind.COMMA,
        TokenKind.COLON,
        TokenKind.LANGLE,
        TokenKind.RANGLE,
        TokenKind.ASSIGN,
        TokenKind.PLUS,
        TokenKind.MINUS,
        TokenKind.STAR,
        TokenKind.SLASH,
        TokenKind.AMP,
        TokenKind.PIPE,
        TokenKind.CARET,
        TokenKind.TILDE,
        TokenKind.BANG,
        TokenKind.HASH,
    ]


def test_line_comment_skipped():
    assert values("add // comment\n sub") == ["add", "sub"]


def test_block_comment_skipped():
    assert values("add /* multi\nline */ sub") == ["add", "sub"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(MarilSyntaxError, match="unterminated"):
        tokenize("/* oops")


def test_locations_track_lines_and_columns():
    tokens = tokenize("add\n  sub")
    assert tokens[0].location.line == 1
    assert tokens[1].location.line == 2
    assert tokens[1].location.column == 3


def test_unexpected_character_rejected():
    with pytest.raises(MarilSyntaxError, match="unexpected character"):
        tokenize("@")


def test_malformed_hex_rejected():
    with pytest.raises(MarilSyntaxError, match="hex"):
        tokenize("0xZZ")
