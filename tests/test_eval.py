"""Tests for the evaluation harness (fast, scaled-down instances)."""

import pytest

from repro.eval.common import estimated_cycles, run_kernel
from repro.eval.figure7 import dual_operation_count, figure7
from repro.eval.table1 import description_stats, table1
from repro.eval.table2 import phase_sizes, table2
from repro.workloads import kernel_by_id


def test_table1_i860_dominates_special_constructs():
    stats = {name: description_stats(name) for name in ("r2000", "i860")}
    assert stats["i860"].clocks > stats["r2000"].clocks
    assert stats["i860"].elements > stats["r2000"].elements
    assert stats["i860"].classed_instructions > 0
    assert stats["r2000"].classed_instructions == 0
    assert stats["i860"].funcs > stats["r2000"].funcs
    assert stats["i860"].func_python_lines > stats["r2000"].func_python_lines


def test_table1_renders():
    text = table1()
    assert "Clocks" in text and "i860" in text


def test_table2_shape_matches_paper():
    sizes = phase_sizes()
    tsi = sizes["Target- and strategy-independent (TSI)"]
    cgg = sizes["Code Generator Generator (CGG)"]
    assert tsi > cgg  # TSI is the largest piece, as in the paper
    assert (
        sizes["Strategy-dependent (SD), RASE"]
        > sizes["Strategy-dependent (SD), IPS"]
        > sizes["Strategy-dependent (SD), Postpass"]
    )
    assert (
        sizes["Target-dependent (TD), i860"]
        > sizes["Target-dependent (TD), R2000"]
    )


def test_table2_renders():
    assert "CGG" in table2()


def test_kernel_run_and_estimate():
    spec = kernel_by_id(11)
    run = run_kernel(spec, "r2000", "postpass", scale=0.05)
    assert run.actual_cycles > 0
    assert run.estimated_cycles > 0
    assert run.instructions > 0
    assert 0.5 < run.ratio < 2.0


def test_estimates_consistent_across_strategies():
    """Paper: 'The ratio of actual time to estimated time varies, but is
    consistent across strategies for each loop.'"""
    spec = kernel_by_id(12)
    ratios = [
        run_kernel(spec, "r2000", strategy, scale=0.1).ratio
        for strategy in ("postpass", "ips", "rase")
    ]
    assert max(ratios) - min(ratios) < 0.15


def test_figure7_shows_dual_operations():
    assert dual_operation_count() >= 2
    text = figure7()
    assert "M1" in text and "A1" in text
    # at least one line carrying two packed operations
    assert any("|" in line for line in text.splitlines())


def test_ablation_temporal_eap_wins_on_dual_operation_code():
    from repro.eval.ablation import ablation_temporal_dual

    row = ablation_temporal_dual(n=32)
    # sub-operation scheduling exploits dual-operation parallelism: the
    # monolithic model must be measurably slower here
    assert row.variant_cycles > row.baseline_cycles


def test_ablation_temporal_results_agree_functionally():
    from repro.eval.ablation import ablation_temporal

    rows = ablation_temporal(kernel_ids=(1,), scale=0.08)
    assert rows  # checksum equality asserted inside


def test_ablation_heuristic_maxdist_wins():
    from repro.eval.ablation import ablation_heuristic

    rows = ablation_heuristic(kernel_ids=(7,), scale=0.08)
    for row in rows:
        assert row.variant_cycles >= row.baseline_cycles


def test_table4_small_slice():
    from repro.eval.table4 import measure

    data = measure(kernels=[kernel_by_id(11)], scale=0.05)
    assert data.cycles(11, "postpass") > 0
    assert 0.5 < data.ratio(11, "postpass") < 2.0


def test_table3_rows_shape():
    from repro.eval.table3 import measure

    data = measure(targets=("r2000",), repeat=1)
    modules = [row.module for row in data.rows]
    assert "Lcc-analog front end" in modules
    assert "Marion, r2000, postpass" in modules
    assert "local-only baseline, r2000" in modules
    for row in data.rows:
        assert row.seconds > 0


def test_report_sections_exist():
    """The report module wires every experiment (without running it)."""
    import inspect

    from repro.eval import report

    source = inspect.getsource(report.generate_report)
    for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Figure 7",
                   "C1", "C2", "C3", "A1", "A2", "A3"):
        assert marker in source
