"""Conformance suite for the pluggable executor layer.

Every backend — in-process, local pool, socket — is held to the same
:class:`~repro.eval.executors.base.Executor` contract: submission-order
results through ``run_grid``, per-unit timeouts, crash containment,
failure collection, journal resume, and queued-copy cancellation.  The
socket backend additionally proves the multi-host story: a SIGKILLed
worker costs only the units it had in flight, because surviving workers
adopt the orphans and the journal already holds everything finished.

Unit functions live at module level so the socket backend can ship them
*by name* (``tests.test_executors:_square``) to worker subprocesses; the
socket fixture prepends the repo root to ``PYTHONPATH`` so spawned
workers can import this module.
"""

import contextlib
import os
import signal
import threading
import time

import pytest

from repro.eval.executors import (
    Executor,
    InprocessAsyncExecutor,
    LocalPoolExecutor,
    SocketExecutor,
    resolve_executor,
)
from repro.eval.executors.socketexec import callable_ref, parse_address
from repro.eval.grid import (
    FailureCollector,
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
)
from repro.eval.journal import Journal

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BACKENDS = ("inprocess", "local", "socket")
#: backends whose units run in a separate process (safe to SIGKILL)
PROCESS_BACKENDS = ("local", "socket")


def _square(x):
    return x * x


def _boom(message):
    raise ValueError(message)


def _sleep(seconds):
    time.sleep(seconds)
    return "overslept"


def _kill_self(delay=0.0):
    # a small delay lets instant sibling units drain first, so repeated
    # pool breaks cannot burn their retry budget by association
    time.sleep(delay)
    os.kill(os.getpid(), signal.SIGKILL)


def _mark(x, marker_dir):
    with open(os.path.join(marker_dir, f"ran_{x}"), "a") as handle:
        handle.write("x\n")
    return x * x


def _sleep_mark(x, seconds, marker_dir):
    with open(os.path.join(marker_dir, f"ran_{x}"), "a") as handle:
        handle.write("x\n")
    time.sleep(seconds)
    return x * x


@contextlib.contextmanager
def make_backend(name, *, workers=2, retries=1):
    """Build one backend with fast-failure settings for the suite."""
    if name == "inprocess":
        with InprocessAsyncExecutor() as backend:
            yield backend
        return
    if name == "local":
        with LocalPoolExecutor(workers=workers, retries=retries, backoff=0.05) as backend:
            yield backend
        return
    # socket: spawned workers must be able to import this module by name
    saved = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = _REPO_ROOT + (
        os.pathsep + saved if saved else ""
    )
    try:
        with SocketExecutor(spawn=workers, retries=retries) as backend:
            yield backend
    finally:
        if saved is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = saved


def _collect(backend, **changes):
    return GridOptions(failures="collect", executor=backend, **changes)


# -- the Executor contract, straight at the interface ----------------------


@pytest.mark.parametrize("name", BACKENDS)
def test_event_stream_covers_every_submission(name):
    with make_backend(name) as backend:
        assert isinstance(backend, Executor)
        keys = []
        for x in range(5):
            keys.append(backend.submit(GridTask(f"sq/{x}", _square, (x,))))
        backend.submit(GridTask("boom", _boom, ("kaput",)))
        seen = {}
        while len(seen) < 6:
            event = backend.next_event(timeout=30.0)
            assert event is not None, f"stream dried up after {sorted(seen)}"
            seen[event.key] = event
        for x in range(5):
            event = seen[f"sq/{x}"]
            assert event.ok and event.value == x * x
            assert event.attempts >= 1
        failure = seen["boom"]
        assert not failure.ok
        assert failure.value["type"] == "ValueError"
        assert "kaput" in failure.value["message"]
        # drained: nothing outstanding, the stream reports None
        assert backend.next_event(timeout=0.2) is None

        probe = backend.probe()
        assert probe.backend == name
        assert probe.healthy
        assert probe.queued == 0 and probe.in_flight == 0
        assert isinstance(backend.running(), dict)
    # close() is idempotent
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_resubmitting_a_key_runs_another_copy(name):
    """The work-stealing primitive: same key, two dispatches, two events."""
    with make_backend(name) as backend:
        task = GridTask("dup", _square, (7,))
        backend.submit(task)
        backend.submit(task)
        events = []
        while len(events) < 2:
            event = backend.next_event(timeout=30.0)
            assert event is not None
            events.append(event)
        assert all(e.key == "dup" and e.value == 49 for e in events)
        assert max(e.attempts for e in events) == 2


@pytest.mark.parametrize("name", BACKENDS)
def test_cancel_drops_queued_copies_only(name):
    with make_backend(name, workers=1) as backend:
        # saturate the single worker so "tail" stays queued: the local
        # pool holds workers+1 call items *plus* the one the worker has
        # popped to run, so it needs three sleepers ahead
        heads = ["head/0"]
        backend.submit(GridTask("head/0", _sleep, (0.6,)))
        if name == "local":
            for extra in ("head/1", "head/2"):
                heads.append(extra)
                backend.submit(GridTask(extra, _sleep, (0.6,)))
        backend.submit(GridTask("tail", _square, (3,)))
        assert backend.cancel("tail") is True
        seen = set()
        while len(seen) < len(heads):
            event = backend.next_event(timeout=30.0)
            assert event is not None and event.key in heads
            seen.add(event.key)
        # the cancelled unit never produces an event
        assert backend.next_event(timeout=0.3) is None


# -- the same grid semantics on every backend ------------------------------


@pytest.mark.parametrize("name", BACKENDS)
def test_grid_orders_results_and_collects_failures(name):
    units = [
        GridTask("sq/1", _square, (1,)),
        GridTask("boom", _boom, ("injected",)),
        GridTask("sq/3", _square, (3,)),
        GridTask("sleeper", _sleep, (30.0,)),
        GridTask("sq/5", _square, (5,)),
    ]
    with make_backend(name) as backend:
        collector = FailureCollector()
        results = run_grid(
            units, _collect(backend, timeout=1.0, collector=collector)
        )
    assert [results[0], results[2], results[4]] == [1, 9, 25]
    assert isinstance(results[1], GridFailure)
    assert results[1].error_type == "ValueError"
    assert isinstance(results[3], GridFailure)
    assert results[3].error_type == "GridTimeout"
    assert sorted(f.key for f in collector.failures()) == ["boom", "sleeper"]


@pytest.mark.parametrize("name", PROCESS_BACKENDS)
def test_crash_containment_and_sibling_survival(name):
    units = [
        GridTask("sq/1", _square, (1,)),
        GridTask("killer", _kill_self, (0.5,)),
        GridTask("sq/2", _square, (2,)),
        GridTask("sq/3", _square, (3,)),
    ]
    with make_backend(name, retries=1) as backend:
        results = run_grid(units, _collect(backend))
    assert [results[0], results[2], results[3]] == [1, 4, 9]
    failure = results[1]
    assert isinstance(failure, GridFailure)
    assert failure.error_type == "WorkerCrash"
    assert failure.attempts == 2  # first run + one retry


@pytest.mark.parametrize("name", BACKENDS)
def test_journal_resume_skips_done_units(name, tmp_path):
    marker_dir = str(tmp_path)
    units = [GridTask(f"mark/{x}", _mark, (x, marker_dir)) for x in range(4)]
    journal_path = str(tmp_path / "journal.jsonl")
    with make_backend(name) as backend:
        with Journal(journal_path) as journal:
            first = run_grid(
                units[:2], GridOptions(executor=backend, journal=journal)
            )
        with Journal(journal_path) as journal:
            second = run_grid(
                units, GridOptions(executor=backend, journal=journal)
            )
    assert first == [0, 1]
    assert second == [0, 1, 4, 9]
    for x in range(4):
        runs = open(os.path.join(marker_dir, f"ran_{x}")).read().count("x")
        assert runs == 1  # resume reused the journalled results


# -- multi-host specifics ---------------------------------------------------


def test_socket_worker_sigkill_costs_only_inflight_units(tmp_path):
    """Kill one of two socket workers mid-run: the survivors adopt its
    orphaned units, the respawned worker rejoins, and nothing that had
    already finished is re-executed (the journal-as-coordination
    acceptance property)."""
    marker_dir = str(tmp_path)
    count = 6
    units = [
        GridTask(f"sm/{x}", _sleep_mark, (x, 0.4, marker_dir))
        for x in range(count)
    ]
    journal_path = str(tmp_path / "journal.jsonl")
    with make_backend("socket", workers=2, retries=2) as backend:
        victim = backend._spawned[0]

        def _assassin():
            time.sleep(0.6)  # mid-run: both workers are busy by now
            with contextlib.suppress(OSError):
                os.kill(victim.pid, signal.SIGKILL)

        killer = threading.Thread(target=_assassin, daemon=True)
        killer.start()
        with Journal(journal_path) as journal:
            results = run_grid(
                units, GridOptions(executor=backend, journal=journal)
            )
        killer.join()
    assert results == [x * x for x in range(count)]  # nothing lost
    reruns = 0
    for x in range(count):
        runs = open(os.path.join(marker_dir, f"ran_{x}")).read().count("x")
        assert runs >= 1
        reruns += runs - 1
    # only what the victim had in flight re-ran (one unit at a time per
    # worker, plus at most one more racing the kill)
    assert reruns <= 2
    # the journal records every completion exactly once, with the worker
    # that produced it
    with Journal(journal_path) as journal:
        assert journal.done_keys() == {f"sm/{x}" for x in range(count)}
    assert '"by":' in open(journal_path).read()


def test_socket_ships_functions_by_name():
    assert callable_ref(_square) == f"{__name__}:_square"
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address("9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_address("not-an-address")


# -- spec strings and the redesigned options --------------------------------


def test_resolve_executor_specs():
    with resolve_executor("inprocess", jobs=None) as backend:
        assert isinstance(backend, InprocessAsyncExecutor)
    with resolve_executor("local", jobs=3) as backend:
        assert isinstance(backend, LocalPoolExecutor)
        assert backend.workers == 3
    with resolve_executor("socket:127.0.0.1:0", jobs=None) as backend:
        assert isinstance(backend, SocketExecutor)
        assert backend.spawn == 0  # join-only: workers connect by hand
    with pytest.raises(ValueError, match="executor spec"):
        resolve_executor("carrier-pigeon", jobs=None)


def test_shard_partitions_the_key_space(tmp_path):
    units = [GridTask(f"sq/{x}", _square, (x,)) for x in range(8)]
    collector = FailureCollector()
    mine = run_grid(
        units,
        GridOptions(shard="1/2", failures="collect", collector=collector),
    )
    theirs = run_grid(
        units,
        GridOptions(shard="2/2", failures="collect", collector=collector),
    )
    owned = 0
    for x, (a, b) in enumerate(zip(mine, theirs)):
        skipped_a = isinstance(a, GridFailure)
        skipped_b = isinstance(b, GridFailure)
        assert skipped_a != skipped_b  # every key has exactly one owner
        assert (b if skipped_a else a) == x * x
        if skipped_a:
            assert a.error_type == "ShardSkipped"
        owned += not skipped_a
    assert 0 < owned < len(units)  # sha256 split really does divide
    # placeholders are bookkeeping, not failures: nothing was collected
    assert collector.failures() == []
    with pytest.raises(ValueError, match="shard"):
        GridOptions(shard="0/2")


def test_legacy_jobs_keyword_raises_naming_replacement():
    units = [GridTask("sq/2", _square, (2,))]
    with pytest.raises(TypeError, match=r"GridOptions\(jobs=\.\.\.\)"):
        run_grid(units, jobs=1)
    with pytest.raises(TypeError, match="jobs"):
        run_grid(units, GridOptions(jobs=1), jobs=1)


def test_module_level_failure_helpers_are_gone():
    from repro.eval import grid

    assert not hasattr(grid, "reset_failures")
    assert not hasattr(grid, "collected_failures")
    # the replacement: per-run collectors, fully scoped
    mine = FailureCollector()
    run_grid(
        [GridTask("boom2", _boom, ("mine",))],
        GridOptions(jobs=1, failures="collect", collector=mine),
    )
    assert [f.key for f in mine.failures()] == ["boom2"]


def test_grid_names_are_exported_from_the_package_root():
    import repro
    from repro import api

    assert repro.run_grid is run_grid
    assert repro.GridOptions is GridOptions
    assert repro.FailureCollector is FailureCollector
    assert issubclass(repro.Executor, Executor) and repro.Executor is Executor
    for name in (
        "run_grid",
        "GridTask",
        "GridOptions",
        "GridFailure",
        "FailureCollector",
        "Executor",
        "SocketExecutor",
        "Journal",
    ):
        assert name in api.__all__ and hasattr(api, name)
