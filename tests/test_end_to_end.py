"""End-to-end correctness: C programs through every target and strategy."""

import pytest

import repro

TARGETS = ["toyp", "r2000", "m88000", "i860"]
STRATEGIES = ["postpass", "ips", "rase"]


def run(source, fn, args, target="r2000", strategy="postpass", kind="int"):
    exe = repro.compile_c(source, target, repro.CompileOptions(strategy=strategy))
    return repro.simulate(exe, fn, args=args).return_value[kind]


# -- arithmetic across targets ---------------------------------------------------


@pytest.mark.parametrize("target", TARGETS)
def test_integer_arithmetic(target):
    src = """
    int f(int a, int b) {
        return (a + b) * (a - b) / 3 + a % b - (a & b) + (a | b) - (a ^ b)
               + (a << 2) - (b >> 1) + ~a + (-b);
    }
    """
    a, b = 37, 11
    expected = (
        (a + b) * (a - b) // 3 + a % b - (a & b) + (a | b) - (a ^ b)
        + (a << 2) - (b >> 1) + ~a + (-b)
    )
    assert run(src, "f", (a, b), target=target) == expected


@pytest.mark.parametrize("target", TARGETS)
def test_double_arithmetic(target):
    # one double parameter: TOYP can pass at most one in registers
    src = """
    double f(double a) {
        double b = 2.25;
        return (a + b) * (a - b) / (a * 0.5) - b;
    }
    """
    a, b = 9.5, 2.25
    expected = (a + b) * (a - b) / (a * 0.5) - b
    assert run(src, "f", (a,), target=target, kind="double") == pytest.approx(
        expected, rel=1e-15
    )


@pytest.mark.parametrize("target", ["r2000", "m88000", "i860"])
def test_float_arithmetic(target):
    src = """
    float f(float a, float b) { return a * b + a - b; }
    """
    exe = repro.compile_c(src, target)
    result = repro.simulate(exe, "f", args=(2.5, 4.0), arg_types=("float", "float"))
    assert result.return_value["float"] == pytest.approx(2.5 * 4.0 + 2.5 - 4.0)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_control_flow_matrix(target, strategy):
    src = """
    int collatz(int n) {
        int steps = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            steps++;
        }
        return steps;
    }
    """
    def reference(n):
        steps = 0
        while n != 1:
            n = n // 2 if n % 2 == 0 else 3 * n + 1
            steps += 1
        return steps

    assert run(src, "collatz", (27,), target=target, strategy=strategy) == reference(27)


@pytest.mark.parametrize("target", TARGETS)
def test_recursion_and_stack_discipline(target):
    src = """
    int sumto(int n) {
        if (n <= 0) { return 0; }
        return n + sumto(n - 1);
    }
    """
    assert run(src, "sumto", (50,), target=target) == 50 * 51 // 2


# TOYP passes at most one double argument in registers (paper figure 2),
# so multi-double signatures run only on the three real targets.
@pytest.mark.parametrize("target", ["r2000", "m88000", "i860"])
def test_double_arguments_and_results_through_calls(target):
    src = """
    double scale(double x, double factor) { return x * factor; }
    double f(double x) { return scale(x, 3.0) + scale(x, 0.5); }
    """
    assert run(src, "f", (8.0,), target=target, kind="double") == 8.0 * 3.5


# on TOYP d[1] overlays the integer argument registers r[2]/r[3]: mixed
# int+double signatures cannot be passed (the paper's "either two integer
# parameters or one double float parameter")
@pytest.mark.parametrize("target", ["r2000", "m88000", "i860"])
def test_mixed_int_double_arguments(target):
    src = """
    double mix(int n, double x) { return (double)n * x; }
    double f(int n) { return mix(n, 2.5); }
    """
    assert run(src, "f", (7,), target=target, kind="double") == 17.5


@pytest.mark.parametrize("target", TARGETS)
def test_arrays_and_loops(target):
    src = """
    int a[32];
    int f(int n) {
        int i, s;
        for (i = 0; i < n; i++) { a[i] = i * i; }
        s = 0;
        for (i = 0; i < n; i++) { s = s + a[i]; }
        return s;
    }
    """
    n = 20
    assert run(src, "f", (n,), target=target) == sum(i * i for i in range(n))


@pytest.mark.parametrize("target", TARGETS)
def test_local_arrays_on_stack(target):
    src = """
    int f(int n) {
        int a[8];
        int i, s;
        for (i = 0; i < 8; i++) { a[i] = n + i; }
        s = 0;
        for (i = 0; i < 8; i++) { s = s + a[i] * (i + 1); }
        return s;
    }
    """
    n = 5
    expected = sum((n + i) * (i + 1) for i in range(8))
    assert run(src, "f", (n,), target=target) == expected


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_register_pressure_spill_correctness(strategy):
    """Many simultaneously-live values on the 8-register TOYP."""
    src = """
    int f(int a, int b) {
        int t1, t2, t3, t4, t5, t6, t7, t8;
        t1 = a + b;
        t2 = a - b;
        t3 = a * 2;
        t4 = b * 3;
        t5 = a + 7;
        t6 = b + 11;
        t7 = a * b;
        t8 = a - 4;
        return t1 + t2 * t3 + t4 * t5 + t6 * t7 + t8 * t1
               + (t1 - t2) * (t3 - t4) + (t5 - t6) * (t7 - t8);
    }
    """
    a, b = 13, 4
    t1, t2, t3, t4 = a + b, a - b, a * 2, b * 3
    t5, t6, t7, t8 = a + 7, b + 11, a * b, a - 4
    expected = (
        t1 + t2 * t3 + t4 * t5 + t6 * t7 + t8 * t1
        + (t1 - t2) * (t3 - t4) + (t5 - t6) * (t7 - t8)
    )
    assert run(src, "f", (a, b), target="toyp", strategy=strategy) == expected


@pytest.mark.parametrize("target", ["r2000", "m88000", "i860"])
def test_double_spills_use_pair_slots(target):
    src = """
    double f(double a, double b) {
        double t1, t2, t3, t4, t5, t6, t7, t8;
        t1 = a + b;  t2 = a - b;  t3 = a * 2.0; t4 = b * 3.0;
        t5 = a + 7.0; t6 = b + 11.0; t7 = a * b; t8 = a - 4.0;
        return t1 * t2 + t3 * t4 + t5 * t6 + t7 * t8
             + (t1 + t3) * (t5 + t7) + (t2 + t4) * (t6 + t8);
    }
    """
    a, b = 3.5, 1.25
    t = [a + b, a - b, a * 2.0, b * 3.0, a + 7.0, b + 11.0, a * b, a - 4.0]
    expected = (
        t[0] * t[1] + t[2] * t[3] + t[4] * t[5] + t[6] * t[7]
        + (t[0] + t[2]) * (t[4] + t[6]) + (t[1] + t[3]) * (t[5] + t[7])
    )
    assert run(src, "f", (a, b), target=target, kind="double") == pytest.approx(
        expected, rel=1e-15
    )


def test_global_scalars_shared_between_functions():
    src = """
    int counter;
    void bump(void) { counter = counter + 1; }
    int f(int n) {
        int i;
        counter = 0;
        for (i = 0; i < n; i++) { bump(); }
        return counter;
    }
    """
    assert run(src, "f", (9,)) == 9


def test_logical_operators_short_circuit():
    src = """
    int g;
    int bump(int v) { g = g + 1; return v; }
    int f(int a) {
        g = 0;
        if (a > 0 && bump(1)) { }
        if (a > 1000 && bump(1)) { }
        if (a > 0 || bump(1)) { }
        if (a > 1000 || bump(1)) { }
        return g;
    }
    """
    # bump runs: 1st (both operands evaluated), not 2nd, not 3rd, 4th
    assert run(src, "f", (5,)) == 2


@pytest.mark.parametrize("target", TARGETS)
def test_three_dimensional_arrays(target):
    src = """
    double cube[3][4][5];
    double f(void) {
        int i, j, k;
        double s = 0.0;
        for (i = 0; i < 3; i++) {
            for (j = 0; j < 4; j++) {
                for (k = 0; k < 5; k++) {
                    cube[i][j][k] = (double)(i * 100 + j * 10 + k);
                }
            }
        }
        for (i = 0; i < 3; i++) {
            for (j = 0; j < 4; j++) {
                for (k = 0; k < 5; k++) { s = s + cube[i][j][k]; }
            }
        }
        return s;
    }
    """
    expected = float(
        sum(
            i * 100 + j * 10 + k
            for i in range(3)
            for j in range(4)
            for k in range(5)
        )
    )
    assert run(src, "f", (), target=target, kind="double") == expected


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_m88000_writeback_contention_correct(strategy):
    """FP and integer results arbitrating for the 88000's WB bus."""
    src = """
    double v[32];
    double f(int n) {
        int i;
        int isum = 0;
        double s = 0.0;
        for (i = 0; i < n; i++) {
            isum = isum + i * 3;
            s = s + v[i] * 2.0 + (double)isum;
        }
        return s;
    }
    """
    exe = repro.compile_c(src, "m88000", repro.CompileOptions(strategy=strategy))
    result = repro.simulate(exe, "f", args=(16,))
    isum, s = 0, 0.0
    for i in range(16):
        isum += i * 3
        s = s + 0.0 * 2.0 + float(isum)
    assert result.return_value["double"] == s


def test_chained_assignment():
    src = "int f(void) { int a; int b; a = b = 21; return a + b; }"
    assert run(src, "f", ()) == 42


def test_nested_calls_in_arguments():
    src = """
    int add(int a, int b) { return a + b; }
    int f(int x) { return add(add(x, 1), add(x, 2)); }
    """
    assert run(src, "f", (10,)) == 11 + 12


def test_assignment_value_used_in_expression():
    src = "int f(int x) { int y; return (y = x + 5) * 2 + y; }"
    assert run(src, "f", (3,)) == 8 * 2 + 8


def test_comparison_as_value():
    src = "int f(int a, int b) { int lt = a < b; int ge = a >= b; return lt * 10 + ge; }"
    assert run(src, "f", (3, 7)) == 10
    assert run(src, "f", (9, 7)) == 1


def test_deeply_nested_control_flow():
    src = """
    int f(int n) {
        int i, j, k, s;
        s = 0;
        for (i = 0; i < n; i++) {
            for (j = 0; j < i; j++) {
                for (k = 0; k < j; k++) {
                    if ((i + j + k) % 2 == 0) { s = s + 1; } else { s = s - 1; }
                }
            }
        }
        return s;
    }
    """
    def reference(n):
        s = 0
        for i in range(n):
            for j in range(i):
                for k in range(j):
                    s = s + 1 if (i + j + k) % 2 == 0 else s - 1
        return s

    assert run(src, "f", (8,), target="m88000", strategy="rase") == reference(8)


def test_negative_modulo_in_condition():
    src = """
    int f(int n) {
        int i, s;
        s = 0;
        for (i = -n; i < n; i++) {
            if (i % 3 == 0) { s = s + 1; }
        }
        return s;
    }
    """
    def reference(n):
        s = 0
        for i in range(-n, n):
            truncated = i - (abs(i) // 3) * 3 * (1 if i >= 0 else -1)
            # C semantics: i % 3 has the sign of i
            import math
            remainder = i - math.trunc(i / 3) * 3
            if remainder == 0:
                s += 1
        return s

    assert run(src, "f", (10,)) == reference(10)
