"""Cross-validation and unit tests for the segment JIT.

The JIT path (:mod:`repro.sim.jit`) must be *bit-identical* to the
closure interpreter — cycles, checksums, memory/cache statistics and
dynamic block counts, not approximately equal — so the core of this
file simulates the same compiled kernels with the JIT on and off and
compares every observable field.  CI runs the whole module twice, once
with ``REPRO_JIT=1`` and once with ``=0``, so the process-wide default
cannot mask a broken explicit flag.
"""

import pytest

import repro
from repro.errors import MarionError, SimulationError
from repro.sim.cache import DirectMappedCache
from repro.sim.jit import JIT_WARMUP, MAX_DEOPTS, SegmentJIT
from repro.workloads import kernel_by_id

TARGETS = ("toyp", "r2000", "m88000", "i860")
STRATEGIES = ("postpass", "ips", "rase")

#: every observable a JIT run must reproduce bit-for-bit.  The
#: block-timing stats are included deliberately: identical hit counts
#: mean the JIT produced the same segment close keys and the same
#: positional event stream as the interpreter.
COMPARED_FIELDS = (
    "cycles",
    "instructions",
    "loads",
    "stores",
    "cache_hits",
    "cache_misses",
    "block_counts",
    "return_value",
    "block_cache_hits",
    "block_cache_misses",
)

#: low warmup so the scaled-down test kernels still compile their loops
WARMUP = 2


def _compile(spec, target, strategy):
    try:
        return repro.compile_c(
            spec.source, target, repro.CompileOptions(strategy=strategy)
        )
    except MarionError as error:
        pytest.skip(f"{target}/{strategy} does not compile K{spec.id}: {error}")


def _simulate(executable, spec, *, jit, scale=0.03, cache=True, **extra):
    loop, n = spec.args
    n = max(4, int(n * scale))
    options = repro.SimOptions(
        cache=DirectMappedCache() if cache else None, jit=jit, **extra
    )
    return repro.simulate(executable, "bench", args=(loop, n), options=options)


def _differential(spec, target, strategy, *, cache=True, scale=0.03):
    """Interpreted then JIT run of one kernel; both results.

    The block-timing memo and the JIT state live on the executable, so
    the memo is dropped between the runs (otherwise the second run sees
    more memo hits) and the JIT is seeded fresh with a low warmup."""
    executable = _compile(spec, target, strategy)
    reference = _simulate(executable, spec, jit=False, cache=cache, scale=scale)
    if hasattr(executable, "_block_timing"):
        del executable._block_timing
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    jitted = _simulate(executable, spec, jit=True, cache=cache, scale=scale)
    return reference, jitted


# -- cross-validation ---------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("target", TARGETS)
def test_jit_bit_identical_k1(target, strategy):
    spec = kernel_by_id(1)
    reference, jitted = _differential(spec, target, strategy)
    for field in COMPARED_FIELDS:
        assert getattr(jitted, field) == getattr(reference, field), field
    # the JIT run actually executed compiled segments; the reference
    # run never touched the JIT
    assert jitted.jit_hits > 0
    assert jitted.jit_segments > 0
    assert reference.jit_segments == reference.jit_hits == 0


@pytest.mark.parametrize("target", ("r2000", "i860"))
def test_jit_bit_identical_k7(target):
    # K7 (equation of state) has a wider loop body than K1: more views
    # per segment, and on i860 temporal (EAP) sub-operations that the
    # translator must refuse without perturbing the interpreted result
    spec = kernel_by_id(7)
    reference, jitted = _differential(spec, target, "postpass")
    for field in COMPARED_FIELDS:
        assert getattr(jitted, field) == getattr(reference, field), field
    assert jitted.jit_hits > 0


@pytest.mark.parametrize("target", ("toyp", "i860"))
def test_jit_bit_identical_without_cache(target):
    # the no-cache table elides the access()/miss-mask bookkeeping, so
    # it is a distinct generated function that needs its own validation
    spec = kernel_by_id(1)
    reference, jitted = _differential(spec, target, "postpass", cache=False)
    for field in COMPARED_FIELDS:
        assert getattr(jitted, field) == getattr(reference, field), field
    assert jitted.jit_hits > 0


@pytest.mark.parametrize("target", ("r2000", "m88000"))
def test_jit_bit_identical_with_timing_off(target):
    # model_timing=False runs share the fast loop (and the JIT) with the
    # block close stubbed out; cycles must equal the instruction count
    # exactly as on the reference path
    spec = kernel_by_id(1)
    reference, jitted = _differential(
        spec, target, "postpass", cache=True, scale=0.03
    )
    executable = _compile(spec, target, "postpass")
    loop, n = spec.args
    n = max(4, int(n * 0.03))
    off = repro.simulate(
        executable, "bench", args=(loop, n),
        options=repro.SimOptions(
            cache=DirectMappedCache(), jit=False, model_timing=False
        ),
    )
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    on = repro.simulate(
        executable, "bench", args=(loop, n),
        options=repro.SimOptions(
            cache=DirectMappedCache(), jit=True, model_timing=False
        ),
    )
    assert on.jit_hits > 0
    for field in COMPARED_FIELDS:
        assert getattr(on, field) == getattr(off, field), field
    assert on.cycles == on.instructions == reference.instructions


def test_i860_temporal_segments_stay_interpreted():
    # temporal registers are refused statically: some i860 segments must
    # come back Uncompilable, and those entries pin to the interpreter
    spec = kernel_by_id(7)
    executable = _compile(spec, "i860", "postpass")
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    _simulate(executable, spec, jit=True)
    jit = executable._segment_jit
    assert jit.uncompilable > 0
    assert None in jit.functions(True).values()


# -- deopt paths --------------------------------------------------------------

DIV_TRAP = """
int divloop(int n, int m) {
  int s; int i;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + 100 / (m - i);
  }
  return s;
}
"""

#: the division lives in a hot *callee*: a non-looping segment (entry
#: to ret) whose guard can still deopt.  The self-loop in DIV_TRAP is
#: chained in-function, so its guard raises the interpreter's error
#: inline instead (see test_chained_loop_raises_inline).
DIV_TRAP_CALL = """
int divide(int a, int b) { return a / b; }
int divcall(int n, int m) {
  int s; int i;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + divide(100, m - i); }
  return s;
}
"""


def _compile_source(source, target="r2000"):
    return repro.compile_c(source, target, repro.CompileOptions())


def _run_divloop(executable, n, m, jit):
    return repro.simulate(
        executable, "divloop", args=(n, m),
        options=repro.SimOptions(jit=jit),
    )


def test_div_by_zero_deopts_with_identical_error():
    # the divisor hits zero long after warmup: the compiled callee's
    # guard trips before any side effect, the deopt re-executes the
    # segment interpreted, and the error the caller sees is exactly the
    # interpreter's
    executable = _compile_source(DIV_TRAP_CALL)
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    with pytest.raises(SimulationError, match="integer division by zero"):
        repro.simulate(
            executable, "divcall", args=(50, 30),
            options=repro.SimOptions(jit=True),
        )
    assert executable._segment_jit.deopts >= 1
    reference = _compile_source(DIV_TRAP_CALL)
    with pytest.raises(SimulationError, match="integer division by zero"):
        repro.simulate(
            reference, "divcall", args=(50, 30),
            options=repro.SimOptions(jit=False),
        )


def test_chained_loop_raises_inline():
    # a self-loop segment is chained in-function, so its division guard
    # raises the interpreter's exact error inline, without deopting
    executable = _compile_source(DIV_TRAP)
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    with pytest.raises(SimulationError, match="integer division by zero"):
        _run_divloop(executable, 50, 30, True)
    assert executable._segment_jit.deopts == 0
    reference = _compile_source(DIV_TRAP)
    with pytest.raises(SimulationError, match="integer division by zero"):
        _run_divloop(reference, 50, 30, False)


def test_deopt_undoes_partial_block_counts():
    # a divisor that never hits zero: the guard stays quiet and the JIT
    # agrees with the interpreter on dynamic block counts and the result
    executable = _compile_source(DIV_TRAP)
    reference = _run_divloop(executable, 40, 100, False)
    executable._segment_jit = SegmentJIT(executable, warmup=WARMUP)
    jitted = _run_divloop(executable, 40, 100, True)
    assert jitted.jit_hits > 0
    assert jitted.block_counts == reference.block_counts
    assert jitted.return_value == reference.return_value


def test_repeated_deopts_blacklist_the_entry():
    # superblock=False keeps the loop un-traced: a promoted trace would
    # raise inline instead of deopting, and this test is specifically
    # about the plain-segment deopt/blacklist path
    executable = _compile_source(DIV_TRAP_CALL)
    executable._segment_jit = SegmentJIT(executable, warmup=1)
    jit = executable._segment_jit

    def run():
        return repro.simulate(
            executable, "divcall", args=(30, 10),
            options=repro.SimOptions(jit=True, superblock=False),
        )

    for _ in range(MAX_DEOPTS):
        with pytest.raises(SimulationError):
            run()
    assert jit.deopts == MAX_DEOPTS
    assert None in jit.functions(False).values()
    # blacklisted: further runs stay interpreted, same error, no growth
    with pytest.raises(SimulationError, match="integer division by zero"):
        run()
    assert jit.deopts == MAX_DEOPTS


# -- warmup threshold ---------------------------------------------------------

HOT_LOOP = """
int hot(int n) {
  int s; int i;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
"""


def _run_hot(executable, n, **extra):
    return repro.simulate(
        executable, "hot", args=(n,),
        options=repro.SimOptions(jit=True, **extra),
    )


def test_cold_entries_are_not_compiled():
    executable = _compile_source(HOT_LOOP)
    executable._segment_jit = SegmentJIT(executable, warmup=1000)
    result = _run_hot(executable, 100)
    assert result.jit_segments == 0
    assert result.jit_hits == 0


def test_entries_compile_at_the_threshold():
    executable = _compile_source(HOT_LOOP)
    executable._segment_jit = SegmentJIT(executable, warmup=5)
    result = _run_hot(executable, 100)
    assert result.jit_segments > 0
    assert result.jit_hits > 0


def test_warmup_accumulates_across_runs():
    # the SegmentJIT lives on the executable: dispatch counts from one
    # run carry into the next, so repeated short runs still warm up
    executable = _compile_source(HOT_LOOP)
    executable._segment_jit = SegmentJIT(executable, warmup=25)
    first = _run_hot(executable, 15)
    assert first.jit_segments == 0
    second = _run_hot(executable, 15)
    assert second.jit_segments > 0
    # and compiled code persists: a third run dispatches straight into it
    third = _run_hot(executable, 15)
    assert third.jit_segments == 0
    assert third.jit_hits > 0


def test_default_warmup_matches_env_override():
    assert JIT_WARMUP >= 1  # sanity: the env override parses to an int


# -- interaction with other simulator modes -----------------------------------


def test_jit_inactive_on_the_reference_timing_path():
    # the JIT is a fast-path feature: reference interleaved timing
    # (fast_timing=False) never dispatches it
    executable = _compile_source(HOT_LOOP)
    executable._segment_jit = SegmentJIT(executable, warmup=1)
    result = _run_hot(executable, 100, fast_timing=False)
    assert result.jit_segments == 0
    assert result.jit_hits == 0


def test_jit_active_under_trace():
    # trace=True no longer forces the reference path: memo records carry
    # per-hazard stall deltas, so traced runs keep the JIT and agree
    # with an untraced run on the cycle count
    executable = _compile_source(HOT_LOOP)
    executable._segment_jit = SegmentJIT(executable, warmup=1)
    traced = _run_hot(executable, 100, trace=True)
    assert traced.jit_hits > 0
    assert traced.cycle_breakdown is not None
    assert sum(traced.cycle_breakdown.values()) == traced.cycles - 1
    plain = _run_hot(executable, 100)
    assert plain.cycles == traced.cycles


def test_jit_off_reports_zero_counters():
    executable = _compile_source(HOT_LOOP)
    result = repro.simulate(
        executable, "hot", args=(100,),
        options=repro.SimOptions(jit=False),
    )
    assert result.jit_segments == result.jit_hits == result.jit_deopts == 0
