"""Differential and unit tests for trace superblocks.

A trace superblock stitches several compiled segments into one
generated function with the block-timing probe inlined, so it must be
*bit-identical* to the plain segment JIT (which in turn matches the
closure interpreter): every probe closes exactly the same per-segment
timing unit, in the same order, as the dispatch loop would.  The core
of this file simulates branchy loop kernels under all three engines —
interpreter, segment JIT, segment JIT + superblocks — and compares
every observable field.  CI runs the module twice, once with
``REPRO_SUPERBLOCK=1`` and once with ``=0``, so the process-wide
default cannot mask a broken explicit flag (the tests always pass the
flag explicitly for this reason).
"""

import pytest

import repro
from repro.cache import configure, get_cache
from repro.errors import SimulationError
from repro.sim.cache import DirectMappedCache
from repro.sim.jit import (
    MAX_DEOPTS,
    SUPERBLOCK_WARMUP,
    JitDeopt,
    SegmentJIT,
)
from repro.targets import clear_target_cache

TARGETS = ("toyp", "r2000", "m88000", "i860")
STRATEGIES = ("postpass", "ips", "rase")

#: every observable a superblock run must reproduce bit-for-bit; the
#: block-timing stats are included deliberately — identical hit+miss
#: totals mean the inlined probes closed the same memo keys as the
#: dispatch loop
COMPARED_FIELDS = (
    "cycles",
    "instructions",
    "loads",
    "stores",
    "cache_hits",
    "cache_misses",
    "block_counts",
    "return_value",
    "block_cache_hits",
    "block_cache_misses",
)

#: low segment warmup so traces can form within small test loops (the
#: edge profile still needs SUPERBLOCK_WARMUP hot executions)
WARMUP = 2

#: iterations comfortably past segment warmup + edge warmup
HOT = SUPERBLOCK_WARMUP * 3

#: an if-diamond inside a loop: the loop body spans several segments,
#: the trace follows one arm and the other arm side-exits — the shape
#: plain segments cannot chain
DIAMOND = """
double bench(int loop, int n) {
  int l; int i; double q;
  q = 0.0;
  for (l = 0; l < loop; l++) {
    for (i = 0; i < n; i++) {
      if (i & 1) q = q + 1.5;
      else q = q - 0.5;
    }
  }
  return q;
}
"""

#: memory traffic through the diamond: loads, stores and data-cache
#: misses must survive the trace's load/flush scheduling
DIAMOND_MEM = """
int a[128];
int bench(int loop, int n) {
  int l; int i; int s;
  s = 0;
  for (i = 0; i < 128; i++) a[i] = i * 3;
  for (l = 0; l < loop; l++) {
    for (i = 0; i < n; i++) {
      if (a[i & 127] > 190) s = s + a[i & 127];
      else a[i & 127] = s & 255;
    }
  }
  return s;
}
"""

#: a division inside the hot arm: the trap fires long after the trace
#: is promoted, and the trace must surface the interpreter's exact
#: error (looping traces commit effects up front, so guards raise the
#: real error inline rather than deopting)
DIV_DIAMOND = """
int bench(int n, int m) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) {
    if (i & 1) s = s + 100 / (m - i);
    else s = s - 1;
  }
  return s;
}
"""


def _compile(source, target="r2000", strategy="postpass"):
    return repro.compile_c(
        source, target, repro.CompileOptions(strategy=strategy)
    )


def _run(executable, args, *, superblock, jit=True, cache=True):
    return repro.simulate(
        executable,
        "bench",
        args=args,
        options=repro.SimOptions(
            cache=DirectMappedCache() if cache else None,
            jit=jit,
            superblock=superblock,
        ),
    )


def _fresh(executable, warmup=WARMUP):
    """Reset the executable's JIT and timing memo between engines."""
    _cold_memo(executable)
    executable._segment_jit = SegmentJIT(executable, warmup=warmup)


def _cold_memo(executable):
    """Drop the block-timing memo so hit/miss stats start from zero —
    required when comparing runs that share an executable (the memo
    persists across runs by design)."""
    if hasattr(executable, "_block_timing"):
        del executable._block_timing


# -- cross-validation ---------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("target", TARGETS)
def test_superblock_bit_identical_diamond(target, strategy):
    executable = _compile(DIAMOND, target, strategy)
    reference = _run(executable, (3, HOT), superblock=False, jit=False)
    _fresh(executable)
    segments = _run(executable, (3, HOT), superblock=False)
    _fresh(executable)
    traced = _run(executable, (3, HOT), superblock=True)
    for field in COMPARED_FIELDS:
        assert getattr(segments, field) == getattr(reference, field), field
        assert getattr(traced, field) == getattr(reference, field), field
    assert traced.jit_deopts == 0
    if target != "i860":  # temporal sub-operations refuse translation
        assert traced.jit_superblocks > 0
        assert traced.jit_side_exits > 0
    assert segments.jit_superblocks == 0
    assert segments.jit_side_exits == 0


@pytest.mark.parametrize("target", ("r2000", "m88000"))
def test_superblock_bit_identical_memory_traffic(target):
    executable = _compile(DIAMOND_MEM, target)
    reference = _run(executable, (3, HOT), superblock=False, jit=False)
    _fresh(executable)
    traced = _run(executable, (3, HOT), superblock=True)
    for field in COMPARED_FIELDS:
        assert getattr(traced, field) == getattr(reference, field), field
    assert traced.jit_superblocks > 0
    assert reference.loads > 0 and reference.stores > 0


def test_side_exits_reenter_the_dispatch_loop():
    # the alternating arm means roughly every other iteration leaves
    # the trace through a side exit; both arms' work must be identical
    # to the interpreter's, and the final pass exits through the loop
    # condition — also a side exit
    executable = _compile(DIAMOND)
    _fresh(executable)
    traced = _run(executable, (2, HOT), superblock=True)
    assert traced.jit_superblocks > 0
    assert traced.jit_side_exits > 0
    reference = _run(
        _compile(DIAMOND), (2, HOT), superblock=False, jit=False
    )
    for field in COMPARED_FIELDS:
        assert getattr(traced, field) == getattr(reference, field), field


def test_superblock_off_switch_shares_the_jit():
    # one executable, one SegmentJIT: a run with superblock=False after
    # a promotion must dispatch the stashed plain segment (not the
    # trace) and still be bit-identical
    executable = _compile(DIAMOND)
    _fresh(executable)
    promoted = _run(executable, (3, HOT), superblock=True)
    assert promoted.jit_superblocks > 0
    _cold_memo(executable)
    plain = _run(executable, (3, HOT), superblock=False)
    assert plain.jit_superblocks == 0
    assert plain.jit_side_exits == 0
    for field in COMPARED_FIELDS:
        assert getattr(plain, field) == getattr(promoted, field), field
    # and flipping back on reuses the installed trace without rebuilding
    _cold_memo(executable)
    again = _run(executable, (3, HOT), superblock=True)
    assert again.jit_superblocks == 0  # already built
    assert again.jit_side_exits > 0
    for field in COMPARED_FIELDS:
        assert getattr(again, field) == getattr(promoted, field), field


def test_trap_in_promoted_trace_raises_the_interpreter_error():
    # m - i hits zero at i = m (odd), long after segment warmup and
    # trace promotion: the generated trace must raise the exact error
    # the interpreter raises, at the same instruction
    n, m = HOT * 2, HOT + 1 if (HOT + 1) % 2 else HOT + 3
    reference = _compile(DIV_DIAMOND)
    with pytest.raises(SimulationError) as interp_error:
        repro.simulate(
            reference, "bench", args=(n, m),
            options=repro.SimOptions(jit=False),
        )
    executable = _compile(DIV_DIAMOND)
    _fresh(executable)
    with pytest.raises(SimulationError) as traced_error:
        repro.simulate(
            executable, "bench", args=(n, m),
            options=repro.SimOptions(jit=True, superblock=True),
        )
    assert str(traced_error.value) == str(interp_error.value)
    assert executable._segment_jit.superblocks > 0


# -- promotion mechanics ------------------------------------------------------


def _promote(executable, args=(3, HOT)):
    """Run until at least one trace is installed; returns (jit, head)."""
    _fresh(executable)
    result = _run(executable, args, superblock=True)
    assert result.jit_superblocks > 0
    jit = executable._segment_jit
    for (flag, entry), fallback in jit._sb_fallback.items():
        if flag == 1:
            return jit, entry
    raise AssertionError("no promoted trace head found")


def test_promotion_stashes_the_plain_segment():
    executable = _compile(DIAMOND)
    jit, head = _promote(executable)
    record = jit.functions(True)[head]
    assert record is not None and record[2]  # installed trace
    fallback = jit.segment_fallback(head, True)
    assert fallback is not None and not fallback[2]  # plain segment


def test_blacklisted_trace_falls_back_to_the_segment():
    # MAX_DEOPTS strikes against a trace head restore the stashed plain
    # segment instead of interpreting the entry forever
    executable = _compile(DIAMOND)
    jit, head = _promote(executable)
    for _ in range(MAX_DEOPTS):
        jit.note_deopt(head, True, JitDeopt(()), {})
    record = jit.functions(True)[head]
    assert record is not None and not record[2]  # plain segment again
    assert (1, head) not in jit._sb_fallback
    # and the run still produces correct results on the fallback
    _cold_memo(executable)
    after = _run(executable, (3, HOT), superblock=True)
    reference = _run(
        _compile(DIAMOND), (3, HOT), superblock=False, jit=False
    )
    for field in COMPARED_FIELDS:
        assert getattr(after, field) == getattr(reference, field), field


def test_promotion_is_attempted_once_per_head():
    executable = _compile(DIAMOND)
    jit, head = _promote(executable)
    built = jit.superblocks
    # the head is decided: further hot edges cannot rebuild it
    assert not jit.build_superblock(head, True)
    assert jit.superblocks == built


def test_trace_functions_survive_export_and_preload():
    # export() round-trips installed traces (and their stashed plain
    # fallbacks) through the artifact-cache payload form
    executable = _compile(DIAMOND)
    jit, head = _promote(executable)
    _cold_memo(executable)
    reference = _run(executable, (3, HOT), superblock=True)
    payload = jit.export()
    clone = _compile(DIAMOND)
    clone._segment_jit = SegmentJIT(clone, warmup=WARMUP)
    clone._segment_jit.preload(payload)
    warm = _run(clone, (3, HOT), superblock=True)
    for field in COMPARED_FIELDS:
        assert getattr(warm, field) == getattr(reference, field), field
    assert warm.jit_superblocks == 0  # nothing rebuilt
    assert clone._segment_jit.sb_preloaded > 0
    assert clone._segment_jit.compiled == 0
    # the preloaded trace still honours the off switch (the exported
    # fallback materializes on demand)
    _cold_memo(clone)
    plain = _run(clone, (3, HOT), superblock=False)
    assert plain.jit_side_exits == 0
    for field in COMPARED_FIELDS:
        assert getattr(plain, field) == getattr(reference, field), field


# -- artifact-cache round trip ------------------------------------------------


@pytest.fixture
def store(tmp_path):
    active = configure(root=tmp_path, enabled=True)
    clear_target_cache()
    yield active
    clear_target_cache()
    configure()


def test_superblock_disk_preload_round_trip(store):
    first = _compile(DIAMOND)
    first._segment_jit = SegmentJIT(first, warmup=WARMUP)
    reference = _run(first, (3, HOT), superblock=True)
    assert first._segment_jit.superblocks > 0

    # "new process": a fresh executable straight off the disk preloads
    # both the plain segments and the promoted traces
    second = _compile(DIAMOND)
    assert not hasattr(second, "_segment_jit")
    warm = _run(second, (3, HOT), superblock=True)
    # the timing memo is preloaded too, so the hit/miss split shifts
    # (all hits) while the architectural observables stay identical
    for field in COMPARED_FIELDS:
        if field.startswith("block_cache"):
            continue
        assert getattr(warm, field) == getattr(reference, field), field
    assert warm.block_cache_misses == 0
    assert warm.jit_superblocks == 0
    assert second._segment_jit.sb_preloaded > 0
    assert second._segment_jit.compiled == 0
    assert get_cache().counters()["hits"] > 0


# -- configuration ------------------------------------------------------------


def test_superblock_warmup_parses():
    assert SUPERBLOCK_WARMUP >= 1


def test_superblock_off_reports_zero_counters():
    executable = _compile(DIAMOND)
    _fresh(executable)
    result = _run(executable, (3, HOT), superblock=False)
    assert result.jit_superblocks == 0
    assert result.jit_side_exits == 0
    assert result.jit_hits > 0  # the plain segment JIT still ran
