"""Unit tests for code DAG construction (edge types, aux latencies,
protection edges)."""

import pytest

from repro.backend.codedag import build_code_dag
from repro.backend.insts import Imm, Reg, make_instr
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg


from tests.helpers import build as _build


def instr(target, mnemonic, *operands):
    return _build(target, mnemonic, *operands)


def edge_between(dag, i, j):
    for edge in dag.nodes[i].succs:
        if edge.dst is dag.nodes[j]:
            return edge
    return None


@pytest.fixture()
def regs():
    return {
        "a": PseudoReg("int", "a"),
        "b": PseudoReg("int", "b"),
        "c": PseudoReg("int", "c"),
        "p": PseudoReg("int", "p"),
    }


def test_true_dependence_labelled_with_latency(toyp, regs):
    a, b, c, p = regs["a"], regs["b"], regs["c"], regs["p"]
    instrs = [
        instr(toyp, "ld", Reg(a), Reg(p), Imm(0)),  # ld latency 3
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),
    ]
    dag = build_code_dag(instrs, toyp)
    edge = edge_between(dag, 0, 1)
    assert edge is not None
    assert edge.kind == 1
    assert edge.latency == 3


def test_independent_instructions_have_no_edge(toyp, regs):
    a, b = regs["a"], regs["b"]
    instrs = [
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(1)),
        instr(toyp, "addi", Reg(b), Reg(regs["p"]), Imm(2)),
    ]
    dag = build_code_dag(instrs, toyp)
    assert edge_between(dag, 0, 1) is None


def test_memory_ordering_edges(toyp, regs):
    a, p = regs["a"], regs["p"]
    instrs = [
        instr(toyp, "st", Reg(a), Reg(p), Imm(0)),
        instr(toyp, "ld", Reg(regs["b"]), Reg(p), Imm(8)),
        instr(toyp, "st", Reg(a), Reg(p), Imm(16)),
    ]
    dag = build_code_dag(instrs, toyp)
    assert edge_between(dag, 0, 1).kind == 2  # load after store
    assert edge_between(dag, 1, 2).kind == 2  # store after load
    assert edge_between(dag, 0, 2).kind == 2  # store after store


def test_anti_dependence_edges(toyp, regs):
    a, b = regs["a"], regs["b"]
    instrs = [
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),  # uses a
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(2)),  # redefines a
    ]
    dag = build_code_dag(instrs, toyp)
    edge = edge_between(dag, 0, 1)
    assert edge.kind == 3
    assert edge.latency == 0


def test_output_dependence_edges(toyp, regs):
    a = regs["a"]
    instrs = [
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(1)),
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(2)),
    ]
    dag = build_code_dag(instrs, toyp)
    edge = edge_between(dag, 0, 1)
    assert edge.kind == 3
    assert edge.latency == 1


def test_anti_edges_can_be_excluded(toyp, regs):
    a, b = regs["a"], regs["b"]
    instrs = [
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(2)),
    ]
    dag = build_code_dag(instrs, toyp, include_anti=False)
    assert edge_between(dag, 0, 1) is None


def test_physical_register_aliasing_dependence(toyp):
    """d[1] overlays r[2]/r[3]: writing d[1] then reading r[2] is a true
    dependence through the shared unit."""
    d1 = PhysReg("d", 1)
    r2 = PhysReg("r", 2)
    dst = PseudoReg("int", "t")
    instrs = [
        instr(toyp, "fmov.d", Reg(d1), Reg(PhysReg("d", 2))),
        instr(toyp, "addi", Reg(dst), Reg(r2), Imm(0)),
    ]
    dag = build_code_dag(instrs, toyp)
    edge = edge_between(dag, 0, 1)
    assert edge is not None
    assert edge.kind == 1


def test_aux_latency_override(toyp):
    d1, d2, d3 = PhysReg("d", 1), PhysReg("d", 2), PhysReg("d", 3)
    base = PseudoReg("int", "base")
    instrs = [
        instr(toyp, "fadd.d", Reg(d1), Reg(d2), Reg(d3)),
        instr(toyp, "st.d", Reg(d1), Reg(base), Imm(0)),
    ]
    dag = build_code_dag(instrs, toyp)
    assert edge_between(dag, 0, 1).latency == 7  # %aux overrides 6


def test_aux_requires_matching_operands(toyp):
    d1, d2, d3 = PhysReg("d", 1), PhysReg("d", 2), PhysReg("d", 3)
    base = PseudoReg("int", "base")
    instrs = [
        instr(toyp, "fadd.d", Reg(d1), Reg(d2), Reg(d3)),
        instr(toyp, "st.d", Reg(d2), Reg(base), Imm(0)),  # stores d2, not d1
    ]
    dag = build_code_dag(instrs, toyp)
    # no register dependence d1->store; only a type-2/3 relationship may
    # exist, so check the true-dep latency is NOT applied anywhere
    edge = edge_between(dag, 0, 1)
    assert edge is None or edge.latency != 7


def test_priorities_reflect_longest_path(toyp, regs):
    a, b, c, p = regs["a"], regs["b"], regs["c"], regs["p"]
    instrs = [
        instr(toyp, "ld", Reg(a), Reg(p), Imm(0)),  # latency 3
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),  # latency 1
        instr(toyp, "addi", Reg(c), Reg(b), Imm(1)),  # leaf
    ]
    dag = build_code_dag(instrs, toyp)
    assert dag.nodes[2].priority == 1
    assert dag.nodes[1].priority == 2
    assert dag.nodes[0].priority == 5


def test_code_thread_is_topological(toyp, regs):
    a, b = regs["a"], regs["b"]
    instrs = [
        instr(toyp, "addi", Reg(a), Reg(regs["p"]), Imm(1)),
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),
        instr(toyp, "st", Reg(b), Reg(regs["p"]), Imm(0)),
    ]
    dag = build_code_dag(instrs, toyp)
    for node in dag.nodes:
        for edge in node.succs:
            assert edge.src.index < edge.dst.index


def test_temporal_edges_marked_with_clock(i860):
    d4, d5, d6 = PhysReg("d", 4), PhysReg("d", 5), PhysReg("d", 6)
    instrs = [
        instr(i860, "M1", Reg(d4), Reg(d5)),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "FWBM", Reg(d6)),
    ]
    dag = build_code_dag(instrs, i860)
    edge = edge_between(dag, 0, 1)
    assert edge.is_temporal
    assert edge.clock == "clk_m"
    assert dag.sequence_head(dag.nodes[3], "clk_m") is dag.nodes[0]
    assert dag.sequence_of(dag.nodes[0], "clk_m") == set(dag.nodes)


def test_protection_edge_added_for_alternate_entry(i860):
    """Figure 6: p affects clk_m and feeds r (an alternate entry into the
    temporal sequence); a protection edge p -> head must exist."""
    d4, d5, d6, d7, d8 = (PhysReg("d", i) for i in range(4, 9))
    # q-sequence: M1a (head) -> M2 -> M3 -> FWBM
    # p: a separate M-launching sub-op whose result feeds... we model the
    # paper's shape with A1M (reads m3, in add pipe) fed by a multiply:
    instrs = [
        instr(i860, "M1", Reg(d4), Reg(d5)),  # q (head of sequence)
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "FWBM", Reg(d6)),  # r's alternate entry producer below
        instr(i860, "A1", Reg(d6), Reg(d7)),  # alternate entry into a-pipe
        instr(i860, "A2"),
        instr(i860, "A3"),
        instr(i860, "FWBA", Reg(d8)),
    ]
    dag = build_code_dag(instrs, i860)
    # the A1 node's sequence on clk_a has an alternate entry from FWBM whose
    # ancestors affect clk_m -- but not clk_a, so no protection edge is
    # required; the DAG must simply be acyclic and schedulable
    for node in dag.nodes:
        for edge in node.succs:
            assert edge.src is not edge.dst
