"""Unit tests for IL lowering and glue transformation."""

import pytest

from repro.backend.glue import GlueTransformer
from repro.backend.lower import lower_function
from repro.backend.values import HighHalf, LowHalf, SlotOffset, SymbolRef
from repro.il.block import BasicBlock
from repro.il.function import ILFunction
from repro.il.node import Node
from repro.il.ops import ILOp


def cnst(v, t="int"):
    return Node(ILOp.CNST, t, (), v)


def lower_expr(expr, target):
    fn = ILFunction("f", "int")
    block = BasicBlock("f")
    fn.blocks.append(block)
    block.append(Node(ILOp.RET, None, (expr,)))
    lower_function(fn, target)
    return fn.blocks[0].statements[0].kids[0]


# -- lowering ----------------------------------------------------------------


def test_addrl_becomes_fp_plus_slot(toyp):
    fn = ILFunction("f", "int")
    slot = fn.new_slot(4)
    out = lower_expr(Node(ILOp.ADDRL, "int", (), slot), toyp)
    # we need a fresh function for slot bookkeeping; rebuild by hand
    fn2 = ILFunction("g", "int")
    block = BasicBlock("g")
    fn2.blocks.append(block)
    block.append(Node(ILOp.RET, None, (Node(ILOp.ADDRL, "int", (), slot),)))
    lower_function(fn2, toyp)
    node = fn2.blocks[0].statements[0].kids[0]
    assert node.op is ILOp.ADD
    assert node.kids[0].op is ILOp.REG
    assert node.kids[0].value == toyp.cwvm.fp
    assert isinstance(node.kids[1].value, SlotOffset)


def test_addrg_becomes_symbol_constant(toyp):
    node = lower_expr(Node(ILOp.ADDRG, "int", (), "gv"), toyp)
    assert node.op is ILOp.CNST
    assert node.value == SymbolRef("gv")


def test_constant_folding(toyp):
    node = lower_expr(Node(ILOp.ADD, "int", (cnst(2), cnst(3))), toyp)
    assert node.op is ILOp.CNST and node.value == 5


def test_folding_wraps_to_32_bits(toyp):
    node = lower_expr(
        Node(ILOp.MUL, "int", (cnst(2**30), cnst(4))), toyp
    )
    assert node.value == 0


def test_commutative_constant_moves_right(toyp):
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    node = lower_expr(Node(ILOp.ADD, "int", (cnst(5), x)), toyp)
    assert node.kids[1].op is ILOp.CNST


def test_add_zero_identity(toyp):
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    node = lower_expr(Node(ILOp.ADD, "int", (x, cnst(0))), toyp)
    assert node.op is ILOp.REG


def test_mul_one_identity(toyp):
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    node = lower_expr(Node(ILOp.MUL, "int", (x, cnst(1))), toyp)
    assert node.op is ILOp.REG


def test_mul_power_of_two_becomes_shift(toyp):
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    node = lower_expr(Node(ILOp.MUL, "int", (x, cnst(8))), toyp)
    assert node.op is ILOp.LSH
    assert node.kids[1].value == 3


def test_slot_offset_addend_folds(toyp):
    fn = ILFunction("f", "int")
    slot = fn.new_slot(16)
    block = BasicBlock("f")
    fn.blocks.append(block)
    addr = Node(
        ILOp.ADD,
        "int",
        (Node(ILOp.ADDRL, "int", (), slot), cnst(8)),
    )
    block.append(Node(ILOp.RET, None, (addr,)))
    lower_function(fn, toyp)
    node = fn.blocks[0].statements[0].kids[0]
    assert node.op is ILOp.ADD
    offset = node.kids[1].value
    assert isinstance(offset, SlotOffset) and offset.addend == 8


def test_cjump_condition_normalized_to_relational(toyp):
    fn = ILFunction("f", None)
    block = BasicBlock("f")
    fn.blocks.append(block)
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    block.append(Node(ILOp.CJUMP, None, (x,), "L"))
    lower_function(fn, toyp)
    condition = fn.blocks[0].statements[0].kids[0]
    assert condition.op is ILOp.NE


def test_sharing_preserved_across_lowering(toyp):
    fn = ILFunction("f", "int")
    block = BasicBlock("f")
    fn.blocks.append(block)
    shared = Node(ILOp.ADD, "int", (Node(ILOp.REG, "int", (), toyp.cwvm.sp), cnst(4)))
    a = Node(ILOp.MUL, "int", (shared, cnst(3)))
    b = Node(ILOp.SUB, "int", (shared, cnst(2)))
    block.append(Node(ILOp.RET, None, (Node(ILOp.ADD, "int", (a, b)),)))
    lower_function(fn, toyp)
    root = fn.blocks[0].statements[0].kids[0]
    left_shared = root.kids[0].kids[0]
    right_shared = root.kids[1].kids[0]
    assert left_shared is right_shared


# -- glue ------------------------------------------------------------------


def test_branch_glue_rewrites_two_register_compare(toyp):
    glue = GlueTransformer(toyp)
    a = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    b = Node(ILOp.REG, "int", (), toyp.cwvm.fp)
    branch = Node(ILOp.CJUMP, None, (Node(ILOp.LT, "int", (a, b)),), "L")
    rewritten = glue.rewrite_branch(branch)
    assert rewritten is not None
    condition = rewritten.kids[0]
    assert condition.op is ILOp.LT
    assert condition.kids[0].op is ILOp.CMP
    assert condition.kids[1].value == 0
    assert rewritten.value == "L"


def test_branch_glue_selects_rule_by_operand_type(toyp):
    glue = GlueTransformer(toyp)
    a = Node(ILOp.REG, "double", (), toyp.cwvm.results["double"])
    b = Node(ILOp.REG, "double", (), toyp.cwvm.results["double"])
    branch = Node(ILOp.CJUMP, None, (Node(ILOp.GE, "int", (a, b)),), "L")
    rewritten = glue.rewrite_branch(branch)
    assert rewritten is not None
    assert rewritten.kids[0].kids[0].op is ILOp.CMP


def test_branch_glue_no_rule_returns_none(toyp):
    glue = GlueTransformer(toyp)
    a = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    branch = Node(
        ILOp.CJUMP, None, (Node(ILOp.EQ, "int", (a, cnst(0))),), "L"
    )
    # EQ(reg, 0) has a direct beq0 pattern; but glue itself will still match
    # the r,r rule since 0 is int-typed.  The selector only consults glue
    # after patterns fail, so rewriting here is acceptable; this test pins
    # the (weaker) invariant that rewriting never loses the label.
    rewritten = glue.rewrite_branch(branch)
    if rewritten is not None:
        assert rewritten.value == "L"


def test_value_glue_splits_big_constants(r2000):
    glue = GlueTransformer(r2000)
    node = cnst(0x12345678)
    rewritten = glue.rewrite_value(node)
    assert rewritten is not None
    assert rewritten.op is ILOp.BOR
    high = rewritten.kids[0]
    assert high.op is ILOp.LSH
    assert high.kids[0].value == 0x1234
    assert rewritten.kids[1].value == 0x5678


def test_value_glue_symbolic_halves(r2000):
    glue = GlueTransformer(r2000)
    node = cnst(SymbolRef("gv"))
    rewritten = glue.rewrite_value(node)
    assert rewritten is not None
    assert isinstance(rewritten.kids[0].kids[0].value, HighHalf)
    assert isinstance(rewritten.kids[1].value, LowHalf)


def test_value_glue_ignores_non_matching(toyp):
    glue = GlueTransformer(toyp)
    x = Node(ILOp.REG, "int", (), toyp.cwvm.sp)
    assert glue.rewrite_value(Node(ILOp.ADD, "int", (x, cnst(1)))) is None
