"""Per-target sanity checks over the bundled Maril descriptions."""

import pytest

import repro
from repro.errors import MarionError
from repro.machine.instruction import InstrKind
from repro.machine.registers import PhysReg
from repro.targets import TARGET_NAMES, load_target, maril_source


@pytest.mark.parametrize("name", TARGET_NAMES)
def test_target_builds(name, all_targets):
    target = all_targets[name]
    assert target.instructions
    assert target.cwvm.sp is not None and target.cwvm.fp is not None


@pytest.mark.parametrize("name", TARGET_NAMES)
def test_target_has_complete_control_set(name, all_targets):
    target = all_targets[name]
    kinds = {d.kind for d in target.instructions.values()}
    assert InstrKind.BRANCH in kinds
    assert InstrKind.JUMP in kinds
    assert InstrKind.CALL in kinds
    assert InstrKind.RET in kinds
    assert InstrKind.NOP in kinds


@pytest.mark.parametrize("name", TARGET_NAMES)
def test_target_has_moves_for_general_sets(name, all_targets):
    target = all_targets[name]
    for set_name in set(target.cwvm.general.values()):
        assert target.move_for_set(set_name) is not None


@pytest.mark.parametrize("name", TARGET_NAMES)
def test_allocable_registers_exclude_special(name, all_targets):
    target = all_targets[name]
    cwvm = target.cwvm
    for special in (cwvm.sp, cwvm.fp):
        assert special not in cwvm.allocable


@pytest.mark.parametrize("name", TARGET_NAMES)
def test_maril_source_reparses(name):
    from repro.maril import parse_maril

    description = parse_maril(maril_source(name))
    assert description.instr_decls()


def test_r2000_register_roles(r2000):
    assert r2000.cwvm.sp == PhysReg("r", 29)
    assert r2000.cwvm.fp == PhysReg("r", 30)
    assert r2000.cwvm.retaddr == PhysReg("r", 31)
    assert r2000.cwvm.hard_registers[PhysReg("r", 0)] == 0
    assert r2000.cwvm.arg_register("int", 0) == PhysReg("r", 4)
    assert r2000.cwvm.result_register("double") == PhysReg("d", 0)


def test_r2000_double_overlays_floats(r2000):
    assert r2000.registers.interfere(PhysReg("d", 6), PhysReg("f", 12))
    assert r2000.registers.interfere(PhysReg("d", 6), PhysReg("f", 13))
    assert not r2000.registers.interfere(PhysReg("d", 6), PhysReg("f", 14))
    assert not r2000.registers.interfere(PhysReg("d", 6), PhysReg("r", 12))


def test_m88000_floats_alias_integer_file(m88000):
    assert m88000.registers.interfere(PhysReg("s", 5), PhysReg("r", 5))
    assert m88000.registers.interfere(PhysReg("d", 2), PhysReg("r", 4))
    assert m88000.registers.interfere(PhysReg("d", 2), PhysReg("s", 5))


def test_m88000_shared_writeback_resource(m88000):
    wb = m88000.resources.mask(["WB"])
    fadd = m88000.instruction("fadd.ddd")
    add = m88000.instruction("add")
    assert any(need.mask & wb for need in fadd.resource_vector)
    assert any(need.mask & wb for need in add.resource_vector)


def test_i860_clocks_and_elements(i860):
    assert set(i860.clocks) == {"clk_m", "clk_a"}
    assert "pfmul" in i860.elements and "m12apm" in i860.elements
    assert i860.temporal_clock("m1") == "clk_m"
    assert i860.temporal_clock("a3") == "clk_a"


def test_i860_suboperation_fields_are_disjoint(i860):
    m1 = i860.instruction("M1").resource_vector
    m2 = i860.instruction("M2").resource_vector
    a1 = i860.instruction("A1").resource_vector
    assert not (m1[0].mask & m2[0].mask)
    assert not (m1[0].mask & a1[0].mask)


def test_i860_funcs_registered(i860):
    assert {"movd", "fmuld", "faddd", "fsubd"} <= set(i860.funcs)


def test_i860_scalar_variant_differs():
    from repro.targets.i860 import build_i860

    scalar = build_i860(eap=False)
    assert scalar.name == "i860-scalar"
    assert "fmuld" in scalar.funcs


def test_toyp_matches_paper_figures(toyp):
    # figure 1/2 facts
    assert toyp.registers.set("r").count == 8
    assert toyp.registers.set("d").count == 4
    assert toyp.cwvm.retaddr == PhysReg("r", 1)
    assert toyp.cwvm.hard_registers[PhysReg("r", 0)] == 0
    # figure 3 facts
    assert toyp.instruction("beq0").slots == 1
    assert toyp.instruction("ld").latency == 3
    assert toyp.aux_latency("fadd.d", "st.d").latency == 7
    assert toyp.instruction("*movd").func == "movd"


def test_unknown_target_rejected():
    with pytest.raises(MarionError, match="unknown target"):
        load_target("vax")
