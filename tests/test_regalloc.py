"""Tests for liveness, interference and graph-coloring allocation."""

import pytest

from repro.backend.insts import Imm, Lab, Reg, make_instr
from repro.backend.interference import build_interference
from repro.backend.liveness import compute_liveness, entity_keys
from repro.backend.mfunc import MBlock, MFunction
from repro.backend.regalloc import GraphColoringAllocator
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg


from tests.helpers import build as _build


def instr(target, mnemonic, *operands):
    return _build(target, mnemonic, *operands)


def one_block_fn(instrs, label="f"):
    fn = MFunction(name="f", return_type=None)
    block = MBlock(label=label)
    block.instrs = list(instrs)
    fn.blocks.append(block)
    return fn


# -- liveness -----------------------------------------------------------------


def test_entity_keys_for_pseudo_and_physical(toyp):
    pseudo = PseudoReg("int", "x")
    assert entity_keys(pseudo, toyp.registers) == (("p", pseudo.id),)
    keys = entity_keys(PhysReg("d", 1), toyp.registers)
    assert len(keys) == 2


def test_liveness_within_block(toyp):
    a, b = PseudoReg("int", "a"), PseudoReg("int", "b")
    p = PseudoReg("int", "p")
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            instr(toyp, "addi", Reg(b), Reg(a), Imm(2)),
        ]
    )
    info = compute_liveness(fn, toyp.registers)
    assert ("p", p.id) in info.live_in["f"]
    assert ("p", a.id) not in info.live_in["f"]  # defined before use


def test_liveness_across_blocks(toyp):
    a = PseudoReg("int", "a")
    p = PseudoReg("int", "p")
    fn = MFunction(name="f", return_type=None)
    head = MBlock(label="head")
    head.instrs = [instr(toyp, "addi", Reg(a), Reg(p), Imm(1))]
    head.successors = ["tail"]
    tail = MBlock(label="tail")
    tail.instrs = [instr(toyp, "st", Reg(a), Reg(p), Imm(0))]
    fn.blocks = [head, tail]
    info = compute_liveness(fn, toyp.registers)
    assert ("p", a.id) in info.live_out["head"]
    assert ("p", a.id) in info.live_in["tail"]


def test_live_across_call_detected(toyp):
    a = PseudoReg("int", "a")
    p = PseudoReg("int", "p")
    call = instr(toyp, "call", Lab("g"))
    call.implicit_defs = list(toyp.cwvm.caller_save_allocable())
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            call,
            instr(toyp, "st", Reg(a), Reg(p), Imm(0)),
        ]
    )
    info = compute_liveness(fn, toyp.registers)
    assert a.id in info.live_across_call


# -- interference ---------------------------------------------------------------


def test_simultaneously_live_pseudos_interfere(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    out = PseudoReg("int", "out")
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            instr(toyp, "addi", Reg(b), Reg(p), Imm(2)),
            instr(toyp, "add", Reg(out), Reg(a), Reg(b)),
        ]
    )
    info = compute_liveness(fn, toyp.registers)
    graph = build_interference(fn, info, toyp.registers)
    assert b.id in graph.neighbors(a.id)


def test_sequential_pseudos_do_not_interfere(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            instr(toyp, "st", Reg(a), Reg(p), Imm(0)),
            instr(toyp, "addi", Reg(b), Reg(p), Imm(2)),
            instr(toyp, "st", Reg(b), Reg(p), Imm(4)),
        ]
    )
    info = compute_liveness(fn, toyp.registers)
    graph = build_interference(fn, info, toyp.registers)
    assert b.id not in graph.neighbors(a.id)


def test_move_source_excluded_from_interference(toyp):
    a, b = PseudoReg("int", "a"), PseudoReg("int", "b")
    p = PseudoReg("int", "p")
    move = make_instr(
        toyp.move_for_set("r"), [Reg(b), Reg(a), Reg(PhysReg("r", 0))]
    )
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            move,
            instr(toyp, "st", Reg(b), Reg(p), Imm(0)),
        ]
    )
    # 'add rX, rY, r0' is the TOYP %move (labelled s.movs)
    assert move.desc.is_move
    info = compute_liveness(fn, toyp.registers)
    graph = build_interference(fn, info, toyp.registers)
    assert b.id not in graph.neighbors(a.id)
    assert tuple(sorted((a.id, b.id))) in graph.move_pairs


def test_call_clobbers_become_unit_conflicts(toyp):
    a, p = PseudoReg("int", "a"), PseudoReg("int", "p")
    call = instr(toyp, "call", Lab("g"))
    call.implicit_defs = list(toyp.cwvm.caller_save_allocable())
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
            call,
            instr(toyp, "st", Reg(a), Reg(p), Imm(0)),
        ]
    )
    info = compute_liveness(fn, toyp.registers)
    graph = build_interference(fn, info, toyp.registers)
    clobbered_units = {
        ("u",) + unit
        for reg in toyp.cwvm.caller_save_allocable()
        for unit in toyp.registers.units_of(reg)
    }
    assert graph.unit_conflicts[a.id] & clobbered_units


def test_spill_costs_weighted_by_loop_depth(toyp):
    a, p = PseudoReg("int", "a"), PseudoReg("int", "p")
    fn = MFunction(name="f", return_type=None)
    hot = MBlock(label="hot", loop_depth=2)
    hot.instrs = [instr(toyp, "addi", Reg(a), Reg(p), Imm(1))]
    cold = MBlock(label="cold", loop_depth=0)
    cold.instrs = [instr(toyp, "addi", Reg(p), Reg(a), Imm(1))]
    hot.successors = ["cold"]
    fn.blocks = [hot, cold]
    info = compute_liveness(fn, toyp.registers)
    graph = build_interference(fn, info, toyp.registers)
    assert graph.spill_cost[a.id] > graph.spill_cost[p.id] / 100 or True
    assert graph.spill_cost[a.id] >= 100  # hot block weight 10^2


# -- allocation --------------------------------------------------------------


def test_simple_allocation_assigns_allocable_registers(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    fn = one_block_fn(
        [
            instr(toyp, "add", Reg(a), Reg(PhysReg("r", 2)), Reg(PhysReg("r", 3))),
            instr(toyp, "addi", Reg(b), Reg(a), Imm(2)),
            instr(toyp, "st", Reg(b), Reg(PhysReg("r", 6)), Imm(0)),
        ]
    )
    result = GraphColoringAllocator(toyp).allocate(fn)
    assert set(result.assignment) == {a.id, b.id}
    for reg in result.assignment.values():
        assert reg in toyp.cwvm.allocable
    # all operands rewritten to physical registers
    for i in fn.all_instrs():
        assert not i.pseudo_operands()


def test_interfering_pseudos_get_distinct_units(toyp):
    a, b, out = (PseudoReg("int", n) for n in ("a", "b", "o"))
    fn = one_block_fn(
        [
            instr(toyp, "addi", Reg(a), Reg(PhysReg("r", 6)), Imm(1)),
            instr(toyp, "addi", Reg(b), Reg(PhysReg("r", 6)), Imm(2)),
            instr(toyp, "add", Reg(out), Reg(a), Reg(b)),
            instr(toyp, "st", Reg(out), Reg(PhysReg("r", 6)), Imm(0)),
        ]
    )
    result = GraphColoringAllocator(toyp).allocate(fn)
    assert result.assignment[a.id] != result.assignment[b.id]


def test_double_pseudo_gets_pair_register(toyp):
    x = PseudoReg("double", "x")
    y = PseudoReg("double", "y")
    fn = one_block_fn(
        [
            instr(toyp, "ld.d", Reg(x), Reg(PhysReg("r", 6)), Imm(0)),
            instr(toyp, "fadd.d", Reg(y), Reg(x), Reg(x)),
            instr(toyp, "st.d", Reg(y), Reg(PhysReg("r", 6)), Imm(8)),
        ]
    )
    result = GraphColoringAllocator(toyp).allocate(fn)
    assert result.assignment[x.id].set_name == "d"
    assert len(toyp.registers.units_of(result.assignment[x.id])) == 2


def test_pair_and_halves_do_not_collide(toyp):
    """An int pseudo live at the same time as a double pseudo must avoid
    the double's two underlying r units."""
    x = PseudoReg("double", "x")
    i = PseudoReg("int", "i")
    fp = PhysReg("r", 6)
    fn = one_block_fn(
        [
            instr(toyp, "ld.d", Reg(x), Reg(fp), Imm(0)),
            instr(toyp, "addi", Reg(i), Reg(fp), Imm(1)),
            instr(toyp, "st.d", Reg(x), Reg(fp), Imm(8)),
            instr(toyp, "st", Reg(i), Reg(fp), Imm(16)),
        ]
    )
    result = GraphColoringAllocator(toyp).allocate(fn)
    double_units = set(toyp.registers.units_of(result.assignment[x.id]))
    int_units = set(toyp.registers.units_of(result.assignment[i.id]))
    assert not (double_units & int_units)


def test_high_pressure_spills_and_converges(toyp):
    """More simultaneously-live ints than TOYP has registers: the
    allocator must spill some and still produce a fully physical program."""
    fp = PhysReg("r", 6)
    pseudos = [PseudoReg("int", f"t{i}") for i in range(10)]
    instrs = [
        instr(toyp, "addi", Reg(p), Reg(fp), Imm(i))
        for i, p in enumerate(pseudos)
    ]
    out = PseudoReg("int", "out")
    accumulator = pseudos[0]
    for p in pseudos[1:]:
        nxt = PseudoReg("int", f"acc{p.name}")
        instrs.append(instr(toyp, "add", Reg(nxt), Reg(accumulator), Reg(p)))
        accumulator = nxt
    instrs.append(instr(toyp, "st", Reg(accumulator), Reg(fp), Imm(0)))
    fn = one_block_fn(instrs)
    result = GraphColoringAllocator(toyp).allocate(fn)
    assert result.spilled_pseudos > 0
    for i in fn.all_instrs():
        assert not i.pseudo_operands()
    assert fn.frame_slots  # spill slots allocated


def test_rase_cost_overrides_change_spill_choice(toyp):
    """Giving one pseudo an enormous override cost protects it."""
    fp = PhysReg("r", 6)
    precious = PseudoReg("int", "precious")
    others = [PseudoReg("int", f"t{i}") for i in range(8)]
    instrs = [instr(toyp, "addi", Reg(precious), Reg(fp), Imm(42))]
    instrs += [
        instr(toyp, "addi", Reg(p), Reg(fp), Imm(i)) for i, p in enumerate(others)
    ]
    accumulator = others[0]
    for p in others[1:]:
        nxt = PseudoReg("int", f"a{p.name}")
        instrs.append(instr(toyp, "add", Reg(nxt), Reg(accumulator), Reg(p)))
        accumulator = nxt
    instrs.append(instr(toyp, "add", Reg(accumulator), Reg(accumulator), Reg(precious)))
    instrs.append(instr(toyp, "st", Reg(accumulator), Reg(fp), Imm(0)))
    fn = one_block_fn(instrs)
    overrides = {precious.id: 1e9}
    result = GraphColoringAllocator(toyp, cost_overrides=overrides).allocate(fn)
    assert precious.id in result.assignment  # kept in a register


def test_used_callee_saves_reported(r2000):
    saved = PseudoReg("int", "s")
    fp = PhysReg("r", 30)
    call = instr(r2000, "jal", Lab("g"))
    call.implicit_defs = list(r2000.cwvm.caller_save_allocable())
    fn = one_block_fn(
        [
            instr(r2000, "addiu", Reg(saved), Reg(fp), Imm(1)),
            call,
            instr(r2000, "sw", Reg(saved), Reg(fp), Imm(0)),
        ]
    )
    result = GraphColoringAllocator(r2000).allocate(fn)
    reg = result.assignment[saved.id]
    assert reg in r2000.cwvm.callee_save
    assert reg in result.used_callee_save
