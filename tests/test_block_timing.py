"""Cross-validation and unit tests for the memoized block-timing path.

The fast path (:mod:`repro.sim.blockcache`) must be *bit-identical* to
the reference interleaved execute+time loop — not approximately equal —
so the core of this file simulates the same compiled kernels under both
paths and compares every observable field.  CI runs the whole test
module twice, once with ``REPRO_FAST_TIMING=1`` and once with ``=0``,
so the process-wide default cannot mask a broken explicit flag.
"""

import pytest

from repro.backend.insts import Imm, Reg
from repro.errors import MarionError, SimulationTimeout
from repro.machine.registers import PhysReg
from repro.sim.blockcache import (
    EMPTY_DIGEST,
    BlockTimingCache,
    load_state,
    state_digest,
    target_max_latency,
)
from repro.sim.cache import DirectMappedCache
from repro.sim.pipeline import PipelineModel

from tests.helpers import build as instr

import repro
from repro.workloads import kernel_by_id

TARGETS = ("toyp", "r2000", "m88000", "i860")
STRATEGIES = ("postpass", "ips", "rase")

#: every observable a fast run must reproduce bit-for-bit
COMPARED_FIELDS = (
    "cycles",
    "instructions",
    "loads",
    "stores",
    "cache_hits",
    "cache_misses",
    "block_counts",
    "return_value",
)


def _simulate(executable, spec, *, fast, scale=0.03, cache=True, **extra):
    loop, n = spec.args
    n = max(4, int(n * scale))
    options = repro.SimOptions(
        cache=DirectMappedCache() if cache else None,
        fast_timing=fast,
        **extra,
    )
    return repro.simulate(executable, "bench", args=(loop, n), options=options)


def _compile(spec, target, strategy):
    try:
        return repro.compile_c(
            spec.source, target, repro.CompileOptions(strategy=strategy)
        )
    except MarionError as error:
        pytest.skip(f"{target}/{strategy} does not compile K{spec.id}: {error}")


# -- cross-validation ---------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("target", TARGETS)
def test_fast_path_bit_identical_k1(target, strategy):
    spec = kernel_by_id(1)
    executable = _compile(spec, target, strategy)
    fast = _simulate(executable, spec, fast=True)
    reference = _simulate(executable, spec, fast=False)
    for field in COMPARED_FIELDS:
        assert getattr(fast, field) == getattr(reference, field), field
    # the fast run actually took the fast path, the reference did not
    assert fast.block_cache_hits + fast.block_cache_misses > 0
    assert reference.block_cache_hits == reference.block_cache_misses == 0


@pytest.mark.parametrize("target", ("r2000", "i860"))
def test_fast_path_bit_identical_k7(target):
    # K7 (equation of state) has a wider loop body than K1 — more live
    # producers across the back edge, a harder digest case
    spec = kernel_by_id(7)
    executable = _compile(spec, target, "postpass")
    fast = _simulate(executable, spec, fast=True)
    reference = _simulate(executable, spec, fast=False)
    for field in COMPARED_FIELDS:
        assert getattr(fast, field) == getattr(reference, field), field


@pytest.mark.parametrize("target", ("toyp", "i860"))
def test_fast_path_bit_identical_without_cache(target):
    spec = kernel_by_id(1)
    executable = _compile(spec, target, "postpass")
    fast = _simulate(executable, spec, fast=True, cache=False)
    reference = _simulate(executable, spec, fast=False, cache=False)
    for field in COMPARED_FIELDS:
        assert getattr(fast, field) == getattr(reference, field), field


def test_steady_state_hit_rate():
    # the whole point: after warmup, loop iterations hit the memo
    spec = kernel_by_id(1)
    executable = _compile(spec, "r2000", "postpass")
    result = _simulate(executable, spec, fast=True, scale=0.05)
    lookups = result.block_cache_hits + result.block_cache_misses
    assert lookups > 0
    assert result.block_cache_hits / lookups >= 0.90


def test_repeated_runs_share_the_memo():
    # the cache is per (executable, miss penalty): a second run over the
    # same executable starts warm
    spec = kernel_by_id(1)
    executable = _compile(spec, "toyp", "postpass")
    first = _simulate(executable, spec, fast=True)
    second = _simulate(executable, spec, fast=True)
    assert second.cycles == first.cycles
    assert second.block_cache_misses < first.block_cache_misses


# -- fallback rules -----------------------------------------------------------


def test_trace_true_stays_on_the_fast_path():
    # stall attribution no longer forces the interleaved model: the
    # memo's records carry per-hazard stall deltas, so a traced run
    # still consults the segment cache and the accounting identity holds
    spec = kernel_by_id(1)
    executable = _compile(spec, "toyp", "postpass")
    traced = _simulate(executable, spec, fast=True, trace=True)
    fast = _simulate(executable, spec, fast=True)
    assert traced.block_cache_hits + traced.block_cache_misses > 0
    assert traced.cycle_breakdown is not None
    assert sum(traced.cycle_breakdown.values()) == traced.cycles - 1
    # ...and both paths agree on the cycle count
    assert traced.cycles == fast.cycles


def test_max_cycles_watchdog_falls_back_and_still_fires():
    spec = kernel_by_id(1)
    executable = _compile(spec, "toyp", "postpass")
    with pytest.raises(SimulationTimeout):
        _simulate(executable, spec, fast=True, max_cycles=100)


def test_watch_callback_falls_back():
    spec = kernel_by_id(1)
    executable = _compile(spec, "toyp", "postpass")
    loop, n = spec.args
    seen = []
    simulator = repro.Simulator(
        executable, repro.SimOptions(fast_timing=True)
    )
    result = simulator.run(
        "bench",
        args=(loop, 4),
        watch=lambda pc, ins, cycle: seen.append(cycle),
    )
    # the callback received real per-instruction issue cycles, which the
    # memoized path cannot produce
    assert result.block_cache_hits == result.block_cache_misses == 0
    assert len(seen) > 0 and seen[-1] <= result.cycles


# -- digest unit tests --------------------------------------------------------


def test_digest_ages_out_stale_producers(toyp):
    """Two states that differ only in long-retired producers digest equal."""
    max_latency = target_max_latency(toyp)
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    write = instr(
        toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 6)), Imm(2)
    )
    a = PipelineModel(toyp)
    b = PipelineModel(toyp)
    # model a writes r3 early, model b never does; then both run enough
    # unrelated instructions for the write to retire
    a.issue(write, [])
    for _ in range(max_latency + 4):
        a.issue(nop_like, [])
        b.issue(nop_like, [])
    b.issue(nop_like, [])  # align issue counts loosely; digests are relative
    da = state_digest(a, max_latency)
    db = state_digest(b, max_latency)
    assert da == db


def test_digest_distinguishes_live_producers(toyp):
    """A producer still inside its latency window must change the digest."""
    max_latency = target_max_latency(toyp)
    load = instr(toyp, "ld", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(0))
    other = instr(
        toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 6)), Imm(1)
    )
    a = PipelineModel(toyp)
    b = PipelineModel(toyp)
    a.issue(load, [(4096, False, 4)])  # r2 pending in a
    b.issue(other, [])  # r3 pending in b
    assert state_digest(a, max_latency) != state_digest(b, max_latency)


def test_digest_roundtrip_is_lossless(toyp):
    """materialize(digest) must digest back to the same value at any base."""
    max_latency = target_max_latency(toyp)
    model = PipelineModel(toyp)
    load = instr(toyp, "ld", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(0))
    fadd = instr(
        toyp,
        "fadd.d",
        Reg(PhysReg("d", 1)),
        Reg(PhysReg("d", 2)),
        Reg(PhysReg("d", 3)),
    )
    model.issue(load, [(4096, False, 4)])
    model.issue(fadd, [])
    digest = state_digest(model, max_latency)
    for base in (2, 100, 5000):
        fresh = PipelineModel(toyp)
        load_state(fresh, digest, base)
        assert fresh.last_issue == base
        assert state_digest(fresh, max_latency) == digest


def test_empty_digest_matches_fresh_model(toyp):
    """A pristine model must be digest-equal to ``EMPTY_DIGEST`` — the
    fast path seeds every run with it."""
    model = PipelineModel(toyp)
    assert state_digest(model, target_max_latency(toyp)) == EMPTY_DIGEST


def test_equal_digests_predict_equal_futures(toyp):
    """The memo's soundness condition: equal digests → every future
    instruction sequence costs the same from either state."""
    max_latency = target_max_latency(toyp)
    load = instr(toyp, "ld", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(0))
    use = instr(toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 2)), Imm(1))
    model = PipelineModel(toyp)
    model.issue(load, [(4096, False, 4)])
    digest = state_digest(model, max_latency)
    clone = PipelineModel(toyp)
    load_state(clone, digest, model.last_issue)
    # the pending load interlock must carry over: the consumer stalls the
    # same number of cycles in the materialized copy
    c_model = model.issue(use, []) - model.last_issue
    c_clone = clone.issue(use, []) - clone.last_issue
    assert c_model == c_clone


def test_table_backstop_caps_admissions(toyp):
    cache = BlockTimingCache(toyp, [], None)
    # pretend the memo is already at capacity (the backstop counts
    # records across every per-segment transition dict)
    cache.entries = 1 << 16
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    cache.instrs = [nop_like]
    cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, cache.begin_run())
    # the miss replayed but admitted nothing new
    assert cache.misses == 1
    assert cache.segments[(0, 0, -1)] == {}
    assert cache.entries == 1 << 16
