"""Tests for the digest-free timing transition chain.

The chain (``SimOptions.timing_chain``) hands generated code the
block-timing memo's per-segment transition tables so warm boundaries
commit timing with one integer-tuple dict lookup.  It must be
*bit-identical* to the ``close()`` call path — same memo, same records —
under every combination of chain and superblock flags, so the sweep here
compares all four fast configurations and the reference interleaved
model on the target × strategy grid.  CI additionally runs the whole
suite under ``REPRO_TIMING_CHAIN=0`` and ``=1`` so the process-wide
default cannot mask a broken explicit flag.
"""

import pytest

from repro.backend.insts import Imm, Reg
from repro.errors import MarionError
from repro.machine.registers import PhysReg
from repro.sim.blockcache import BlockTimingCache
from repro.sim.cache import DirectMappedCache

from tests.helpers import build as instr

import repro
from repro.workloads import kernel_by_id

TARGETS = ("toyp", "r2000", "m88000", "i860")
STRATEGIES = ("postpass", "ips", "rase")

#: every observable the chained path must reproduce bit-for-bit.  The
#: memo counters are included on purpose: a chain-off boundary counts
#: its hit inside ``close()``, a chain-on boundary inside generated
#: code, and the totals must still agree exactly.
COMPARED_FIELDS = (
    "cycles",
    "instructions",
    "loads",
    "stores",
    "cache_hits",
    "cache_misses",
    "block_counts",
    "return_value",
    "block_cache_hits",
    "block_cache_misses",
)


def _compile(spec, target, strategy):
    try:
        return repro.compile_c(
            spec.source, target, repro.CompileOptions(strategy=strategy)
        )
    except MarionError as error:
        pytest.skip(f"{target}/{strategy} does not compile K{spec.id}: {error}")


def _simulate(spec, target, strategy, scale=0.03, **extra):
    # a fresh executable per run: the timing memo and JIT code cache
    # live on the executable, so sharing one would let configurations
    # warm each other up and mask divergence in the memo counters
    executable = _compile(spec, target, strategy)
    loop, n = spec.args
    n = max(4, int(n * scale))
    options = repro.SimOptions(cache=DirectMappedCache(), **extra)
    return repro.simulate(executable, "bench", args=(loop, n), options=options)


# -- differential sweep -------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("target", TARGETS)
def test_chain_bit_identical_grid(target, strategy):
    """All four (timing_chain × superblock) fast configurations and the
    reference interleaved model agree on every observable."""
    spec = kernel_by_id(1)
    reference = _simulate(spec, target, strategy, fast_timing=False)
    mismatches = []
    for chain in (True, False):
        for superblock in (True, False):
            run = _simulate(
                spec, target, strategy,
                fast_timing=True, jit=True,
                timing_chain=chain, superblock=superblock,
            )
            for field in COMPARED_FIELDS:
                if field.startswith("block_cache"):
                    continue  # the reference path never touches the memo
                if getattr(run, field) != getattr(reference, field):
                    mismatches.append((chain, superblock, field))
    assert mismatches == []


def test_chain_on_off_share_memo_counters():
    """Chain on and off produce identical memo hit/miss totals — a
    chained probe hit is credited exactly like a ``close()`` hit."""
    spec = kernel_by_id(1)
    on = _simulate(spec, "r2000", "postpass", timing_chain=True)
    off = _simulate(spec, "r2000", "postpass", timing_chain=False)
    for field in COMPARED_FIELDS:
        assert getattr(on, field) == getattr(off, field), field
    # both actually took the fast path
    assert on.block_cache_hits + on.block_cache_misses > 0


def test_k7_wide_loop_bit_identical():
    # K7 (equation of state) carries more live producers across the back
    # edge — a harder digest/transition case than K1
    spec = kernel_by_id(7)
    reference = _simulate(spec, "r2000", "postpass", fast_timing=False)
    for chain in (True, False):
        run = _simulate(spec, "r2000", "postpass", timing_chain=chain)
        for field in ("cycles", "instructions", "return_value",
                      "cache_hits", "cache_misses"):
            assert getattr(run, field) == getattr(reference, field), field


# -- steady state is digest-free ----------------------------------------------


def test_warm_run_computes_no_digests():
    """The tentpole's proof obligation: a second run over the same
    executable re-derives no pipeline digests at all."""
    spec = kernel_by_id(1)
    executable = _compile(spec, "r2000", "postpass")
    loop, n = spec.args
    n = max(4, int(n * 0.05))
    options = repro.SimOptions(cache=DirectMappedCache())
    first = repro.simulate(executable, "bench", args=(loop, n), options=options)
    second = repro.simulate(executable, "bench", args=(loop, n), options=options)
    assert first.timing_digests > 0
    assert second.timing_digests == 0
    assert second.cycles == first.cycles
    # ...and well under the 1% acceptance ceiling even on the cold run
    lookups = first.block_cache_hits + first.block_cache_misses
    assert first.timing_digests <= max(1, lookups * 0.01)


def test_digest_counter_counts_first_visits_only(toyp):
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    cache = BlockTimingCache(toyp, [nop_like], None)
    delta, exit_id, _ = cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, 0)
    assert cache.digests_computed == 1
    # the same transition again: a pure table hit, no digest
    again = cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, delta + 1)
    assert again[:2] == (delta, exit_id)
    assert cache.digests_computed == 1
    assert (cache.hits, cache.misses) == (1, 1)


# -- memoized stall attribution -----------------------------------------------


@pytest.mark.parametrize("target", ("r2000", "i860"))
def test_trace_breakdown_rides_fast_path_bit_identical(target):
    """``trace=True`` runs take the fast path (records memoize their
    per-hazard stall deltas) and reproduce the reference accounting
    model's breakdown exactly."""
    spec = kernel_by_id(7)
    reference = _simulate(
        spec, target, "ips", fast_timing=False, trace=True
    )
    fast = _simulate(spec, target, "ips", trace=True)
    for field in ("cycles", "instructions", "return_value",
                  "cache_hits", "cache_misses", "block_counts"):
        assert getattr(fast, field) == getattr(reference, field), field
    assert fast.cycle_breakdown == reference.cycle_breakdown
    # the accounting identity survives memoization
    assert sum(fast.cycle_breakdown.values()) == fast.cycles - 1
    # ...and the run really consulted the memo
    assert fast.block_cache_hits + fast.block_cache_misses > 0


def test_warm_trace_run_computes_no_digests():
    """Stall attribution is digest-free at steady state too: a second
    trace run over the same executable replays nothing."""
    spec = kernel_by_id(1)
    executable = _compile(spec, "r2000", "postpass")
    loop, n = spec.args
    n = max(4, int(n * 0.05))
    options = repro.SimOptions(cache=DirectMappedCache(), trace=True)
    first = repro.simulate(executable, "bench", args=(loop, n), options=options)
    second = repro.simulate(executable, "bench", args=(loop, n), options=options)
    assert second.timing_digests == 0
    assert second.cycles == first.cycles
    assert second.cycle_breakdown == first.cycle_breakdown


def test_trace_and_plain_runs_share_one_memo():
    """Trace and non-trace runs hit the same transition records — a
    memo warmed by a plain run leaves a following trace run nothing to
    replay, and vice versa."""
    spec = kernel_by_id(1)
    executable = _compile(spec, "r2000", "postpass")
    loop, n = spec.args
    n = max(4, int(n * 0.05))
    plain = repro.simulate(
        executable, "bench", args=(loop, n),
        options=repro.SimOptions(cache=DirectMappedCache()),
    )
    traced = repro.simulate(
        executable, "bench", args=(loop, n),
        options=repro.SimOptions(cache=DirectMappedCache(), trace=True),
    )
    assert plain.timing_digests > 0
    assert traced.timing_digests == 0
    assert traced.cycles == plain.cycles


# -- transition tables --------------------------------------------------------


def test_transitions_accessor_is_live(toyp):
    """``transitions()`` hands out the same dict ``close()`` updates in
    place — the contract generated code relies on when it binds a
    table's ``.get`` once per call."""
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    cache = BlockTimingCache(toyp, [nop_like], None)
    table = cache.transitions(0, 0, -1)
    assert table == {}
    delta, exit_id, _ = cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, 0)
    assert table[(cache.EMPTY_ID, 0)][:2] == (delta, exit_id)
    assert cache.transitions(0, 0, -1) is table


def test_chained_exit_id_is_next_entry_id(toyp):
    """The chain's soundness hinge: the exit id ``close()`` returns keys
    the next boundary's lookup directly."""
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    cache = BlockTimingCache(toyp, [nop_like, nop_like], None)
    delta, mid_id, _ = cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, 0)
    cache.close(1, 1, -1, 0, [], mid_id, delta)
    # the second segment's record is keyed by the first one's exit id
    assert (mid_id, 0) in cache.transitions(1, 1, -1)


def test_export_preload_round_trip(toyp):
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    cache = BlockTimingCache(toyp, [nop_like, nop_like], None)
    delta, mid_id, _ = cache.close(0, 0, -1, 0, [], cache.EMPTY_ID, 0)
    cache.close(1, 1, -1, 0, [], mid_id, delta)
    snapshot = cache.export()

    fresh = BlockTimingCache(toyp, [nop_like, nop_like], None)
    assert fresh.preload(snapshot)
    assert fresh.digests == cache.digests
    assert fresh.segments == cache.segments
    assert fresh.entries == cache.entries
    # a preloaded transition is a pure hit: no replay, no digest
    again = fresh.close(0, 0, -1, 0, [], fresh.EMPTY_ID, 0)
    assert again[:2] == (delta, mid_id)
    assert fresh.digests_computed == 0
    assert (fresh.hits, fresh.misses) == (1, 0)


def test_preload_rejects_malformed_payloads(toyp):
    nop_like = instr(
        toyp, "addi", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(1)
    )
    good = BlockTimingCache(toyp, [nop_like], None)
    record = good.close(0, 0, -1, 0, [], good.EMPTY_ID, 0)
    snapshot = good.export()

    # a record pointing past the digest list must be rejected wholesale
    bad = {
        "digests": list(snapshot["digests"]),
        "segments": {(0, 0, -1): {(0, 0): (record[0], 999, record[2])}},
    }
    fresh = BlockTimingCache(toyp, [nop_like], None)
    assert not fresh.preload(bad)
    assert fresh.segments == {} and fresh.entries == 0

    # ...as must a record without its stall-delta tuple
    bad["segments"] = {(0, 0, -1): {(0, 0): record[:2]}}
    fresh = BlockTimingCache(toyp, [nop_like], None)
    assert not fresh.preload(bad)
    assert fresh.segments == {} and fresh.entries == 0

    # ...as must a payload missing its digest list entirely
    fresh = BlockTimingCache(toyp, [nop_like], None)
    assert not fresh.preload({"segments": {}})

    # a warmed cache refuses any preload
    assert not good.preload(snapshot)
