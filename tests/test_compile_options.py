"""The consolidated :class:`repro.CompileOptions` record and the
deprecation shim that keeps the pre-1.1 keyword spellings working."""

import dataclasses

import pytest

import repro
from repro.backend.codegen import CodeGenerator
from repro.backend.strategies import get_strategy
from repro.options import CompileOptions, merge_legacy_kwargs

SOURCE = """
int bench(int n) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + i * i;
    }
    return acc;
}
"""


# -- the record itself -----------------------------------------------------


def test_defaults():
    options = CompileOptions()
    assert options.strategy == "postpass"
    assert options.heuristic == "maxdist"
    assert options.schedule is True
    assert options.fill_delay_slots is False
    assert options.memory_size == 1 << 20


def test_frozen_and_hashable():
    options = CompileOptions(strategy="ips")
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.strategy = "rase"
    assert options == CompileOptions(strategy="ips")
    assert {options: "same"}[CompileOptions(strategy="ips")] == "same"


def test_replace_returns_new_record():
    base = CompileOptions()
    changed = base.replace(strategy="rase", schedule=False)
    assert changed.strategy == "rase" and changed.schedule is False
    assert base.strategy == "postpass"  # original untouched


def test_validation():
    with pytest.raises(repro.MarionError, match="unknown strategy"):
        CompileOptions(strategy="magic")
    with pytest.raises(ValueError, match="heuristic"):
        CompileOptions(heuristic="bogus")


def test_exported_at_top_level():
    assert repro.CompileOptions is CompileOptions


# -- the graduated legacy spellings ----------------------------------------


def test_compile_c_legacy_kwargs_raise_naming_replacement():
    with pytest.raises(TypeError, match=r"CompileOptions\(strategy=\.\.\.\)"):
        repro.compile_c(SOURCE, "r2000", strategy="rase")


def test_compile_c_positional_strategy_string_raises():
    with pytest.raises(
        TypeError, match="no longer accepted.*CompileOptions"
    ):
        repro.compile_c(SOURCE, "r2000", "ips")


def test_compile_c_rejects_options_plus_legacy_kwargs():
    with pytest.raises(TypeError, match="strategy"):
        repro.compile_c(SOURCE, "r2000", CompileOptions(), strategy="rase")


def test_compile_c_legacy_error_names_every_kwarg():
    with pytest.raises(TypeError, match="heuristic, schedule"):
        repro.compile_c(
            SOURCE, "r2000", heuristic="fifo", schedule=False
        )


def test_compile_c_modern_call_does_not_warn(recwarn):
    repro.compile_c(SOURCE, "r2000", CompileOptions())
    assert not [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]


def test_codegen_threads_options_through():
    target = repro.load_target("r2000")
    options = CompileOptions(
        strategy="ips", heuristic="fifo", fill_delay_slots=True
    )
    generator = CodeGenerator(target, options)
    assert generator.options is options
    assert generator.strategy_name == "ips"
    assert generator.fill_delay_slots is True
    assert generator.strategy.options is options
    assert generator.strategy.heuristic == "fifo"


def test_codegen_legacy_kwargs_raise():
    target = repro.load_target("r2000")
    with pytest.raises(TypeError, match="CodeGenerator.*strategy"):
        CodeGenerator(target, strategy="rase")


def test_get_strategy_builds_options_when_missing():
    strategy = get_strategy("rase", heuristic="fifo", schedule=False)
    assert strategy.options == CompileOptions(
        strategy="rase", heuristic="fifo", schedule=False
    )
    assert strategy.heuristic == "fifo"
    assert strategy.schedule_enabled is False


def test_merge_legacy_kwargs_no_legacy_passes_options_through():
    options = CompileOptions(strategy="rase")
    assert merge_legacy_kwargs(options, {}, where="f") is options
    assert merge_legacy_kwargs(None, {}, where="f") == CompileOptions()


def test_memory_size_reaches_the_linker():
    small = repro.compile_c(
        SOURCE, "r2000", CompileOptions(memory_size=1 << 16)
    )
    assert small.memory_size == 1 << 16
