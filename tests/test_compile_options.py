"""The consolidated :class:`repro.CompileOptions` record and the
deprecation shim that keeps the pre-1.1 keyword spellings working."""

import dataclasses

import pytest

import repro
from repro.backend.codegen import CodeGenerator
from repro.backend.strategies import get_strategy
from repro.options import CompileOptions, merge_legacy_kwargs

SOURCE = """
int bench(int n) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + i * i;
    }
    return acc;
}
"""


# -- the record itself -----------------------------------------------------


def test_defaults():
    options = CompileOptions()
    assert options.strategy == "postpass"
    assert options.heuristic == "maxdist"
    assert options.schedule is True
    assert options.fill_delay_slots is False
    assert options.memory_size == 1 << 20


def test_frozen_and_hashable():
    options = CompileOptions(strategy="ips")
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.strategy = "rase"
    assert options == CompileOptions(strategy="ips")
    assert {options: "same"}[CompileOptions(strategy="ips")] == "same"


def test_replace_returns_new_record():
    base = CompileOptions()
    changed = base.replace(strategy="rase", schedule=False)
    assert changed.strategy == "rase" and changed.schedule is False
    assert base.strategy == "postpass"  # original untouched


def test_validation():
    with pytest.raises(repro.MarionError, match="unknown strategy"):
        CompileOptions(strategy="magic")
    with pytest.raises(ValueError, match="heuristic"):
        CompileOptions(heuristic="bogus")


def test_exported_at_top_level():
    assert repro.CompileOptions is CompileOptions


# -- the deprecation shim --------------------------------------------------


def test_compile_c_legacy_kwargs_warn_but_work():
    with pytest.warns(DeprecationWarning, match="strategy"):
        legacy = repro.compile_c(SOURCE, "r2000", strategy="rase")
    modern = repro.compile_c(
        SOURCE, "r2000", CompileOptions(strategy="rase")
    )
    assert legacy.instruction_count() == modern.instruction_count()


def test_compile_c_positional_strategy_string_still_accepted():
    with pytest.warns(DeprecationWarning):
        legacy = repro.compile_c(SOURCE, "r2000", "ips")
    modern = repro.compile_c(SOURCE, "r2000", CompileOptions(strategy="ips"))
    assert legacy.instruction_count() == modern.instruction_count()


def test_compile_c_rejects_options_plus_legacy_kwargs():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="not both"):
            repro.compile_c(
                SOURCE, "r2000", CompileOptions(), strategy="rase"
            )


def test_compile_c_modern_call_does_not_warn(recwarn):
    repro.compile_c(SOURCE, "r2000", CompileOptions())
    assert not [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]


def test_codegen_threads_options_through():
    target = repro.load_target("r2000")
    options = CompileOptions(
        strategy="ips", heuristic="fifo", fill_delay_slots=True
    )
    generator = CodeGenerator(target, options)
    assert generator.options is options
    assert generator.strategy_name == "ips"
    assert generator.fill_delay_slots is True
    assert generator.strategy.options is options
    assert generator.strategy.heuristic == "fifo"


def test_codegen_legacy_kwargs_warn():
    target = repro.load_target("r2000")
    with pytest.warns(DeprecationWarning, match="CodeGenerator"):
        generator = CodeGenerator(target, strategy="rase")
    assert generator.strategy_name == "rase"
    assert generator.options == CompileOptions(strategy="rase")


def test_get_strategy_builds_options_when_missing():
    strategy = get_strategy("rase", heuristic="fifo", schedule=False)
    assert strategy.options == CompileOptions(
        strategy="rase", heuristic="fifo", schedule=False
    )
    assert strategy.heuristic == "fifo"
    assert strategy.schedule_enabled is False


def test_merge_legacy_kwargs_no_legacy_passes_options_through():
    calls = []
    options = CompileOptions(strategy="rase")
    merged = merge_legacy_kwargs(options, {}, where="f", warn=calls.append)
    assert merged is options
    assert not calls


def test_memory_size_reaches_the_linker():
    small = repro.compile_c(
        SOURCE, "r2000", CompileOptions(memory_size=1 << 16)
    )
    assert small.memory_size == 1 << 16
