"""End-to-end CLI smoke tests: ``python -m repro`` as a real subprocess.

The in-process CLI tests (``test_cli.py``) cover argument handling; these
runs prove the installed entry point works from a cold interpreter —
imports, argparse wiring, output encoding and exit codes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

SOURCE = """
int f(int a, int b) {
    int i;
    int s;
    s = 0;
    for (i = 0; i < a; i = i + 1) {
        s = s + b * i;
    }
    return s;
}
"""


@pytest.fixture(scope="module")
def c_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def repro_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=120,
    )


def test_compile_smoke(c_file):
    proc = repro_cli("compile", c_file, "--target", "r2000", "--strategy", "ips")
    assert proc.returncode == 0, proc.stderr
    assert "f:" in proc.stdout


def test_compile_explain_schedule(c_file):
    proc = repro_cli("compile", c_file, "--explain-schedule")
    assert proc.returncode == 0, proc.stderr
    assert "; @" in proc.stdout  # issue-cycle annotations
    assert "nop slots" in proc.stdout


def test_run_smoke(c_file):
    proc = repro_cli("run", c_file, "--entry", "f", "--args", "5", "3")
    assert proc.returncode == 0, proc.stderr
    assert "'int': 30" in proc.stdout
    assert "cycles:" in proc.stdout


def test_run_trace_json(c_file, tmp_path):
    out = tmp_path / "trace.json"
    proc = repro_cli(
        "run", c_file, "--entry", "f", "--args", "5", "3",
        "--trace", str(out),
    )
    assert proc.returncode == 0, proc.stderr
    assert "stalls:" in proc.stdout
    doc = json.loads(out.read_text())
    assert "spans" in doc
    stall_counters = {
        k: v for k, v in doc["counters"].items() if k.startswith("sim.stall.")
    }
    assert stall_counters
    phases = doc["phases"]
    assert "compile_c" in phases
    assert "simulate:f" in phases


def test_run_trace_chrome(c_file, tmp_path):
    out = tmp_path / "trace.chrome.json"
    proc = repro_cli(
        "run", c_file, "--entry", "f", "--args", "2", "2",
        "--trace", str(out), "--trace-format", "chrome",
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert "counters" in events[0]["args"]


def test_targets_json():
    proc = repro_cli("targets", "--json")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    names = {entry["name"] for entry in payload}
    assert {"toyp", "r2000", "m88000", "i860"} <= names
    for entry in payload:
        assert entry["instructions"] > 0
        assert entry["register_classes"]
        assert set(entry["description"]) == {
            "instructions",
            "clocks",
            "class_elements",
            "glue_transformations",
            "funcs",
        }


def test_targets_text():
    proc = repro_cli("targets")
    assert proc.returncode == 0, proc.stderr
    assert "r2000" in proc.stdout
