"""gp-relative global addressing (the CWVM %gp register, MIPS small-data
style)."""

import pytest

import repro
from repro.backend.lower import GP_SMALL_DATA_THRESHOLD
from repro.errors import MarionError
from repro.machine.registers import PhysReg


def test_small_global_uses_single_gp_relative_access():
    exe = repro.compile_c("int g; int f(void) { return g; }", "r2000")
    names = [i.desc.mnemonic for i in exe.instrs]
    assert "lui" not in names and "ori" not in names
    load = next(i for i in exe.instrs if i.desc.mnemonic == "lw")
    assert load.operands[1].reg == PhysReg("r", 28)  # $gp


def test_large_global_keeps_absolute_addressing():
    size = GP_SMALL_DATA_THRESHOLD // 8 + 16
    src = f"double big[{size}]; double f(void) {{ return big[3]; }}"
    exe = repro.compile_c(src, "r2000")
    names = [i.desc.mnemonic for i in exe.instrs]
    assert "lui" in names  # high/low pair for the big array
    assert repro.simulate(exe, "f").return_value["double"] == 0.0


def test_targets_without_gp_unaffected():
    exe = repro.compile_c("int g; int f(void) { return g; }", "toyp")
    names = [i.desc.mnemonic for i in exe.instrs]
    assert "la" in names  # absolute addressing


def test_gp_relative_correctness_mixed_sizes():
    src = """
    int small;
    double big[200];
    int f(int n) {
        int i;
        small = 0;
        for (i = 0; i < n; i++) { big[i] = (double)i; small = small + i; }
        return small + (int)big[n - 1];
    }
    """
    exe = repro.compile_c(src, "r2000")
    result = repro.simulate(exe, "f", args=(12,))
    assert result.return_value["int"] == sum(range(12)) + 11


def test_small_data_placed_inside_window():
    src = """
    double pad[300];
    int tiny;
    int f(void) { tiny = 7; return tiny; }
    """
    exe = repro.compile_c(src, "r2000")
    # the small global sorts before the big array in the data segment
    assert exe.symbols["tiny"] < exe.symbols["pad"]
    assert repro.simulate(exe, "f").return_value["int"] == 7


def test_gp_initialised_by_simulator():
    exe = repro.compile_c("int g; int f(void) { g = 3; return g; }", "r2000")
    result = repro.simulate(exe, "f")
    assert result.return_value["int"] == 3
    assert exe.gp_base > exe.symbols["g"] - 32768
