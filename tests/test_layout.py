"""Tests for block layout cleanup (fallthrough jump removal)."""

import pytest

import repro
from repro.backend.layout import remove_fallthrough_jumps
from repro.backend.insts import Lab, make_instr
from repro.backend.mfunc import MBlock, MFunction
from repro.machine.instruction import InstrKind


def jump_to(target, label):
    return make_instr(target.instruction("jmp"), [Lab(label)])


def nop(target):
    return make_instr(target.nop, [])


def test_jump_to_next_block_removed(toyp):
    fn = MFunction(name="f", return_type=None)
    a = MBlock(label="a")
    a.instrs = [jump_to(toyp, "b"), nop(toyp)]
    a.schedule_cost = 3
    b = MBlock(label="b")
    fn.blocks = [a, b]
    assert remove_fallthrough_jumps(fn) == 1
    assert a.instrs == []
    assert a.schedule_cost == 1  # jump + delay slot removed


def test_jump_to_distant_block_kept(toyp):
    fn = MFunction(name="f", return_type=None)
    a = MBlock(label="a")
    a.instrs = [jump_to(toyp, "c"), nop(toyp)]
    fn.blocks = [a, MBlock(label="b"), MBlock(label="c")]
    assert remove_fallthrough_jumps(fn) == 0
    assert len(a.instrs) == 2


def test_conditional_branch_never_removed(toyp):
    from repro.backend.insts import Reg
    from repro.machine.registers import PhysReg

    fn = MFunction(name="f", return_type=None)
    a = MBlock(label="a")
    branch = make_instr(
        toyp.instruction("beq0"), [Reg(PhysReg("r", 2)), Lab("b")]
    )
    a.instrs = [branch, nop(toyp)]
    fn.blocks = [a, MBlock(label="b")]
    assert remove_fallthrough_jumps(fn) == 0


def test_last_block_untouched(toyp):
    fn = MFunction(name="f", return_type=None)
    a = MBlock(label="a")
    a.instrs = [jump_to(toyp, "a"), nop(toyp)]  # self-loop in final block
    fn.blocks = [a]
    assert remove_fallthrough_jumps(fn) == 0


def test_loops_fall_through_into_body():
    """With branch inversion, the loop-head branch targets the exit and the
    body is reached by fallthrough: no jump executes per iteration on the
    hot path."""
    src = """
    int f(int n) {
        int i; int s = 0;
        for (i = 0; i < n; i++) { s = s + i; }
        return s;
    }
    """
    exe = repro.compile_c(src, "r2000")
    result = repro.simulate(exe, "f", args=(10,), options=repro.SimOptions(model_timing=False))
    assert result.return_value["int"] == 45
    fn = exe.machine_program.function("f")
    # the head block ends in a conditional branch (to the exit), with no
    # unconditional jump left behind it
    head = next(b for b in fn.blocks if b.loop_depth == 1 and b.instrs)
    kinds = [i.desc.kind for i in head.instrs if not i.is_nop]
    assert kinds.count(InstrKind.JUMP) <= 1


def test_layout_cleanup_shrinks_code_and_time():
    src = """
    int f(int n) {
        int i; int s = 0;
        for (i = 0; i < n; i++) {
            if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
        }
        return s;
    }
    """
    exe = repro.compile_c(src, "r2000")
    result = repro.simulate(exe, "f", args=(30,), options=repro.SimOptions(model_timing=False))
    expected = 0
    for i in range(30):
        expected = expected + i if i % 3 == 0 else expected - 1
    assert result.return_value["int"] == expected
