"""The observability layer: Trace spans, counters, export, ambience."""

import json

import pytest

import repro
from repro.obs import Trace, count, current_trace, span, tracing


def test_span_tree_nesting():
    trace = Trace("t")
    with trace.span("outer", color="red") as outer:
        with trace.span("inner") as inner:
            pass
    assert trace.root.children[0] is outer
    assert outer.children[0] is inner
    assert outer.attrs == {"color": "red"}
    assert outer.seconds >= inner.seconds >= 0.0


def test_counters_and_phase_seconds():
    trace = Trace("t")
    trace.count("hits")
    trace.count("hits", 2)
    trace.add_seconds("phase.a", 0.5)
    trace.add_seconds("phase.a", 0.25)
    summary = trace.summary()
    assert summary["counters"]["hits"] == 3
    assert summary["phases"]["phase.a"]["seconds"] == pytest.approx(0.75)
    assert summary["phases"]["phase.a"]["calls"] == 2


def test_merge_summary_accumulates():
    a = Trace("a")
    a.count("n", 1)
    a.add_seconds("p", 1.0)
    b = Trace("b")
    b.count("n", 2)
    b.add_seconds("p", 0.5)
    a.merge_summary(b.summary())
    merged = a.summary()
    assert merged["counters"]["n"] == 3
    assert merged["phases"]["p"]["seconds"] == pytest.approx(1.5)
    assert merged["phases"]["p"]["calls"] == 2


def test_ambient_tracing_contextvar():
    assert current_trace() is None
    trace = Trace("ambient")
    with tracing(trace):
        assert current_trace() is trace
        with span("step", k=1) as node:
            count("things", 4)
        assert node.attrs == {"k": 1}
    assert current_trace() is None
    assert trace.counters["things"] == 4
    assert [s.name for s in trace.root.children] == ["step"]


def test_span_is_noop_without_active_trace():
    # must not raise, must yield None
    with span("nothing") as node:
        assert node is None
    count("nothing", 5)  # no-op


def test_to_json_and_chrome_roundtrip(tmp_path):
    trace = Trace("export")
    with trace.span("a"):
        with trace.span("b"):
            pass
    trace.count("c", 7)

    plain = tmp_path / "t.json"
    chrome = tmp_path / "t.chrome.json"
    trace.write(str(plain), format="json")
    trace.write(str(chrome), format="chrome")

    doc = json.loads(plain.read_text())
    assert doc["counters"]["c"] == 7

    chrome_doc = json.loads(chrome.read_text())
    events = chrome_doc["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    names = {e["name"] for e in events}
    assert {"a", "b"} <= names
    assert chrome_doc["displayTimeUnit"] == "ms"
    # counters ride on the root event
    assert events[0]["args"]["counters"]["c"] == 7

    with pytest.raises(ValueError):
        trace.write(str(plain), format="xml")


def test_compile_records_spans_per_phase():
    trace = Trace("compile")
    with tracing(trace):
        repro.compile_c(
            "int f(int a) { return a * 2; }",
            "toyp",
            repro.CompileOptions(strategy="ips"),
        )
    phases = trace.summary()["phases"]
    for expected in (
        "compile_c",
        "frontend",
        "codegen:f",
        "lower",
        "select",
        "strategy:ips",
        "allocate",
        "schedule[final]",
        "link",
    ):
        assert expected in phases, expected


def test_simulate_records_span_and_stall_counters():
    exe = repro.compile_c(
        "int f(int a) { return a * a * a; }", "toyp", repro.CompileOptions()
    )
    trace = Trace("sim")
    with tracing(trace):
        result = repro.simulate(
            exe, "f", (3,), options=repro.SimOptions(trace=True)
        )
    assert result.return_value["int"] == 27
    phases = trace.summary()["phases"]
    assert "simulate:f" in phases
    counted = sum(
        amount
        for name, amount in trace.counters.items()
        if name.startswith("sim.stall.")
    )
    assert counted == result.stall_cycles


def test_timing_adapter_is_backed_by_obs_trace():
    from repro.utils import timing

    timing.reset()
    timing.enable()
    try:
        with timing.phase("x"):
            pass
        timing.add("y", 2)
        snap = timing.snapshot()
        assert snap["counters"]["y"] == 2
        assert "x" in snap["phases"]
        assert isinstance(timing.recorder(), Trace)
        timing.merge({"counters": {"y": 3}, "phases": {}})
        assert timing.counter("y") == 5
    finally:
        timing.enable(False)
        timing.reset()
