"""Tests for linking: layout, symbol resolution, range re-verification."""

import pytest
import struct

import repro
from repro.errors import MarionError
from repro.program import DATA_BASE, link


def compile_mp(source, target="toyp", strategy="postpass"):
    from repro.backend.codegen import CodeGenerator
    from repro.frontend import compile_to_il

    generator = CodeGenerator(
        repro.load_target(target), repro.CompileOptions(strategy=strategy)
    )
    return generator.compile_il(compile_to_il(source))


def test_globals_laid_out_with_alignment():
    mp = compile_mp("int a; double b; int c[3]; void f(void) { a = 1; }")
    exe = link(mp)
    assert exe.symbols["a"] >= DATA_BASE
    assert exe.symbols["b"] % 8 == 0
    assert exe.symbols["c"] > exe.symbols["b"]
    assert exe.data_end >= exe.symbols["c"] + 12


def test_initial_values_installed():
    mp = compile_mp(
        "int a = 7; double d[2] = {1.5, -2.0}; void f(void) { a = a; }"
    )
    exe = link(mp)
    memory = exe.initial_memory()
    assert struct.unpack_from("<i", memory, exe.symbols["a"])[0] == 7
    assert struct.unpack_from("<d", memory, exe.symbols["d"])[0] == 1.5
    assert struct.unpack_from("<d", memory, exe.symbols["d"] + 8)[0] == -2.0


def test_labels_map_to_instruction_indices():
    mp = compile_mp("int f(int x) { if (x) { return 1; } return 2; }")
    exe = link(mp)
    assert exe.functions["f"] == exe.labels["f"]
    for label, index in exe.labels.items():
        assert 0 <= index <= len(exe.instrs)


def test_symbol_immediates_resolved_to_addresses():
    from repro.backend.insts import Imm
    from repro.backend.values import SymbolRef

    mp = compile_mp("int g; int f(void) { return g; }")
    exe = link(mp)
    for instr in exe.instrs:
        for operand in instr.operands:
            if isinstance(operand, Imm):
                assert not isinstance(operand.value, SymbolRef)


def test_undefined_branch_target_rejected(toyp):
    from repro.backend.codegen import MachineProgram
    from repro.backend.insts import Lab, make_instr
    from repro.backend.mfunc import MBlock, MFunction

    fn = MFunction(name="f", return_type=None)
    block = MBlock(label="f")
    block.instrs = [make_instr(toyp.instruction("jmp"), [Lab("nowhere")])]
    fn.blocks.append(block)
    mp = MachineProgram(target=toyp, functions=[fn])
    with pytest.raises(MarionError, match="undefined"):
        link(mp)


def test_data_segment_overflow_rejected():
    mp = compile_mp("double huge[100000]; void f(void) { huge[0] = 1.0; }")
    with pytest.raises(MarionError, match="stack"):
        link(mp, memory_size=1 << 20)


def test_high_low_halves_resolve_on_r2000():
    mp = compile_mp("int g; int f(void) { return g; }", target="r2000")
    exe = link(mp)
    # all lui/ori immediates are plain 16-bit ints after linking
    from repro.backend.insts import Imm

    for instr in exe.instrs:
        if instr.desc.mnemonic in ("lui", "ori"):
            for operand in instr.operands:
                if isinstance(operand, Imm):
                    assert isinstance(operand.value, int)
                    assert 0 <= operand.value <= 0xFFFF


def test_duplicate_label_rejected(toyp):
    from repro.backend.codegen import MachineProgram
    from repro.backend.mfunc import MBlock, MFunction

    fn = MFunction(name="f", return_type=None)
    fn.blocks.append(MBlock(label="dup"))
    fn.blocks.append(MBlock(label="dup"))
    mp = MachineProgram(target=toyp, functions=[fn])
    with pytest.raises(MarionError, match="duplicate label"):
        link(mp)


def test_executable_entry_lookup_and_counts():
    mp = compile_mp("int f(void) { return 1; } int g(void) { return 2; }")
    exe = link(mp)
    assert exe.entry("f") != exe.entry("g")
    assert exe.instruction_count() == len(exe.instrs)
    with pytest.raises(MarionError, match="no function"):
        exe.entry("ghost")


def test_float_pool_initial_values_installed():
    mp = compile_mp("double f(void) { return 2.75; }")
    exe = link(mp)
    pool = [name for name in exe.symbols if name.startswith(".fp")]
    assert pool
    memory = exe.initial_memory()
    assert struct.unpack_from("<d", memory, exe.symbols[pool[0]])[0] == 2.75
