"""Tests for frame layout, prologue/epilogue and move expansion."""

import pytest

import repro
from repro.backend.frame import (
    expand_func_moves,
    layout_frame,
    remove_identity_moves,
)
from repro.backend.insts import Reg, make_instr
from repro.backend.mfunc import MBlock, MFunction
from repro.machine.registers import PhysReg

from tests.helpers import build as instr_build


def test_layout_assigns_negative_aligned_offsets(toyp):
    fn = MFunction(name="f", return_type=None)
    fn.blocks.append(MBlock(label="f"))
    small = fn.new_slot(4, 4, name="i")
    big = fn.new_slot(8, 8, name="d")
    layout_frame(fn, toyp, [])
    assert small.offset < 0 and big.offset < 0
    assert small.offset % 4 == 0
    assert big.offset % 8 == 0
    assert fn.frame_size % 8 == 0
    # slots do not overlap
    ranges = sorted(
        [(slot.offset, slot.offset + slot.size) for slot in fn.frame_slots]
    )
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 <= lo2


def test_no_frame_for_true_leaf(toyp):
    fn = MFunction(name="f", return_type="int")
    fn.blocks.append(MBlock(label="f"))
    layout_frame(fn, toyp, [])
    assert fn.frame_size == 0


def test_calls_force_return_address_save(toyp):
    fn = MFunction(name="f", return_type=None)
    fn.blocks.append(MBlock(label="f"))
    fn.has_calls = True
    layout_frame(fn, toyp, [])
    assert toyp.cwvm.retaddr in fn._save_slots
    assert toyp.cwvm.fp in fn._save_slots
    assert fn.frame_size > 0


def test_used_callee_saves_get_slots(toyp):
    fn = MFunction(name="f", return_type=None)
    fn.blocks.append(MBlock(label="f"))
    layout_frame(fn, toyp, [PhysReg("r", 4), PhysReg("d", 2)])
    assert PhysReg("r", 4) in fn._save_slots
    assert fn._save_slots[PhysReg("d", 2)].size == 8


def test_expand_func_moves_produces_halves(toyp):
    fn = MFunction(name="f", return_type=None)
    block = MBlock(label="f")
    move = make_instr(
        toyp.instruction("*movd"), [Reg(PhysReg("d", 1)), Reg(PhysReg("d", 2))]
    )
    block.instrs = [move]
    fn.blocks.append(block)
    expand_func_moves(fn, toyp)
    names = [i.desc.mnemonic for i in block.instrs]
    assert names == ["add", "add"]  # two s.movs single moves
    first = block.instrs[0]
    assert first.operands[0].reg == PhysReg("r", 2)
    assert first.operands[1].reg == PhysReg("r", 4)


def test_remove_identity_moves(toyp):
    fn = MFunction(name="f", return_type=None)
    block = MBlock(label="f")
    same = make_instr(
        toyp.move_for_set("r"),
        [Reg(PhysReg("r", 2)), Reg(PhysReg("r", 2)), None],
    )
    different = make_instr(
        toyp.move_for_set("r"),
        [Reg(PhysReg("r", 2)), Reg(PhysReg("r", 3)), None],
    )
    block.instrs = [same, different]
    fn.blocks.append(block)
    remove_identity_moves(fn, toyp)
    assert block.instrs == [different]


def test_prologue_epilogue_symmetry_end_to_end(toyp):
    src = """
    int g(int x) { return x + 1; }
    int f(int x) {
        int a[4];
        a[0] = g(x);
        a[1] = g(a[0]);
        return a[0] + a[1];
    }
    """
    exe = repro.compile_c(src, "toyp", repro.CompileOptions(strategy="postpass"))
    mp = exe.machine_program
    f = mp.function("f")
    assert f.frame_size > 0
    entry_names = [i.desc.mnemonic for i in f.entry.instrs]
    assert "addi" in entry_names  # sp adjust scheduled into the entry block
    # simulate: sp must come back exactly, results correct
    result = repro.simulate(exe, "f", args=(5,))
    assert result.return_value["int"] == (5 + 1) + (6 + 1)


def test_frame_pointer_restored_across_calls(toyp):
    src = """
    int helper(int x) {
        int buffer[8];
        buffer[x] = x * 2;
        return buffer[x];
    }
    int f(int x) {
        int local[2];
        local[0] = helper(x);
        local[1] = helper(x + 1);
        return local[0] * 100 + local[1];
    }
    """
    exe = repro.compile_c(src, "toyp", repro.CompileOptions(strategy="ips"))
    result = repro.simulate(exe, "f", args=(3,))
    assert result.return_value["int"] == 6 * 100 + 8
