"""Error-path and robustness tests across the stack."""

import pytest

import repro
from repro.cgg import build_target
from repro.errors import (
    AllocationError,
    CSemanticError,
    CSyntaxError,
    MarilSemanticError,
    MarilSyntaxError,
    MarionError,
    SelectionError,
    SourceLocation,
)


def test_source_location_renders():
    location = SourceLocation("file.c", 3, 9)
    assert str(location) == "file.c:3:9"
    error = CSyntaxError("boom", location)
    assert "file.c:3:9" in str(error)
    assert error.message == "boom"


def test_error_hierarchy():
    for cls in (
        MarilSyntaxError,
        MarilSemanticError,
        CSyntaxError,
        CSemanticError,
        SelectionError,
        AllocationError,
    ):
        assert issubclass(cls, MarionError)


def test_selection_error_names_target_and_node():
    # TOYP has no float support at all
    src = "float f(float x) { return x; }"
    with pytest.raises((SelectionError, MarionError)):
        repro.compile_c(src, "toyp")


def test_too_many_int_arguments_rejected():
    src = """
    int g(int a, int b, int c) { return a + b + c; }
    int f(void) { return g(1, 2, 3); }
    """
    with pytest.raises(SelectionError, match="argument register"):
        repro.compile_c(src, "toyp")  # TOYP passes two ints


def test_missing_nop_reported():
    description = """
    declare {
        %reg r[0:3] (int);
        %resource EX;
        %def c [-8:7];
        %label lab [-8:7] +relative;
        %memory m[0:255];
    }
    cwvm { %general (int) r; %sp r[3]; %fp r[2]; %hard r[0] 0; }
    instr {
        %instr add r, r, r (int) {$1 = $2 + $3;} [EX] (1,1,0);
    }
    """
    target = build_target(description)
    with pytest.raises(MarionError, match="nop"):
        target.nop


def test_unknown_instruction_lookup(toyp):
    with pytest.raises(MarionError, match="frobnicate"):
        toyp.instruction("frobnicate")
    with pytest.raises(MarionError, match="label"):
        toyp.instruction_by_label("no.such.label")


def test_unknown_move_set(toyp):
    with pytest.raises(MarionError, match="%move"):
        toyp.move_for_set("zz")


def test_unknown_simulated_function():
    exe = repro.compile_c("int f(void) { return 1; }", "toyp")
    with pytest.raises(MarionError, match="no function"):
        repro.simulate(exe, "ghost")


def test_glue_depth_limit_terminates():
    """A pathological self-growing glue rule must not hang selection."""
    description = """
    declare {
        %reg r[0:7] (int);
        %resource EX;
        %def c16 [-32768:32767];
        %label lab [-64:63] +relative;
        %label flab [-64:63] +abs;
        %memory m[0:255];
    }
    cwvm {
        %general (int) r;
        %allocable r[1:5];
        %sp r[7]; %fp r[6]; %retaddr r[1]; %hard r[0] 0;
        %arg (int) r[2] 1; %result r[2] (int);
    }
    instr {
        %instr li r, r[0], #c16 (int) {$1 = $3;} [EX] (1,1,0);
        %instr add r, r, r (int) {$1 = $2 + $3;} [EX] (1,1,0);
        %instr jmp #lab {goto $1;} [EX] (1,1,0);
        %instr call #flab {call $1;} [EX] (1,1,0);
        %instr ret {ret;} [EX] (1,1,0);
        %instr nop {;} [EX] (1,1,0);
        %move [mv] add r, r, r[0] {$1 = $2;} [EX] (1,1,0);
        /* no subtraction instruction; this rule only grows the tree */
        %glue r, r {($1 - $2) ==> (($1 - $2) - 0);};
    }
    """
    target = build_target(description)
    from repro.backend.codegen import CodeGenerator
    from repro.frontend import compile_to_il

    source = "int f(int a) { return a - 3; }"
    with pytest.raises(SelectionError):
        CodeGenerator(target).compile_il(compile_to_il(source))


def test_allocation_error_when_no_registers():
    """A target with one allocable register cannot hold two live doubles."""
    description = """
    declare {
        %reg r[0:7] (int);
        %resource EX;
        %def c16 [-32768:32767];
        %label lab [-64:63] +relative;
        %label flab [-64:63] +abs;
        %memory m[0:65535];
    }
    cwvm {
        %general (int) r;
        %allocable r[1:1];
        %sp r[7]; %fp r[6]; %retaddr r[5]; %hard r[0] 0;
        %arg (int) r[2] 1; %result r[2] (int);
    }
    instr {
        %instr li r, r[0], #c16 (int) {$1 = $3;} [EX] (1,1,0);
        %instr add r, r, r (int) {$1 = $2 + $3;} [EX] (1,1,0);
        %instr mul r, r, r (int) {$1 = $2 * $3;} [EX] (1,2,0);
        %instr jmp #lab {goto $1;} [EX] (1,1,0);
        %instr call #flab {call $1;} [EX] (1,1,0);
        %instr ret {ret;} [EX] (1,1,0);
        %instr nop {;} [EX] (1,1,0);
        %move [mv] add r, r, r[0] {$1 = $2;} [EX] (1,1,0);
    }
    """
    target = build_target(description)
    # no load/store instructions -> spill code cannot be generated, and one
    # register cannot hold two simultaneously live values
    source = "int f(int a) { return (a + 1) * (a + 2); }"
    from repro.backend.codegen import CodeGenerator
    from repro.frontend import compile_to_il

    with pytest.raises(MarionError):
        CodeGenerator(target).compile_il(compile_to_il(source))


def test_simulator_pc_bounds():
    from repro.errors import SimulationError

    exe = repro.compile_c("void f(void) { }", "toyp")
    sim = repro.Simulator(exe)
    # corrupting the return address sends the pc out of the program
    result = sim.run("f")  # normal run is fine
    assert result.instructions >= 1
