"""Strategy-level tests: the three code generation strategies all produce
correct code and exhibit their characteristic behaviour."""

import pytest

import repro
from repro.backend.strategies import get_strategy
from repro.backend.strategies.base import STRATEGY_NAMES
from repro.errors import MarionError

SRC = """
double v[64];
double work(int n) {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) { v[i] = (double)i * 1.25; }
    for (i = 0; i < n; i++) { s = s + v[i] * v[i] + 0.5; }
    return s;
}
"""


def expected(n):
    for i in range(n):
        pass
    v = [i * 1.25 for i in range(n)]
    s = 0.0
    for i in range(n):
        s = s + v[i] * v[i] + 0.5
    return s


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("target", ["toyp", "r2000", "m88000", "i860"])
def test_all_strategies_all_targets_correct(strategy, target):
    exe = repro.compile_c(SRC, target, repro.CompileOptions(strategy=strategy))
    result = repro.simulate(exe, "work", args=(24,))
    assert result.return_value["double"] == pytest.approx(expected(24), rel=1e-12)


def test_unknown_strategy_rejected():
    with pytest.raises(MarionError, match="unknown strategy"):
        get_strategy("wibble")


def test_schedule_pass_counts():
    """Postpass schedules once, IPS twice, RASE three times."""
    counts = {}
    for strategy in STRATEGY_NAMES:
        exe = repro.compile_c(SRC, "r2000", repro.CompileOptions(strategy=strategy))
        stats = exe.machine_program.stats["work"]
        counts[strategy] = stats.schedule_passes
    assert counts["postpass"] == 1
    assert counts["ips"] == 2
    assert counts["rase"] == 3


def test_block_costs_recorded():
    exe = repro.compile_c(SRC, "r2000", repro.CompileOptions(strategy="postpass"))
    stats = exe.machine_program.stats["work"]
    assert stats.block_costs
    assert all(cost >= 0 for cost in stats.block_costs.values())


def test_prepass_strategies_beat_postpass_on_big_blocks():
    """The paper's headline: scheduling before allocation wins on
    computation-intensive (large basic block) code (R2000).  Measured over
    the kernel loop alone (differencing cancels initialisation code)."""
    from repro.eval.claims import UNROLLED_HYDRO, _marginal_cycles

    cycles = {}
    for strategy in STRATEGY_NAMES:
        exe = repro.compile_c(UNROLLED_HYDRO, "r2000", repro.CompileOptions(strategy=strategy))
        cycles[strategy] = _marginal_cycles(exe, 1, 128)
    assert cycles["ips"] < cycles["postpass"]
    assert cycles["rase"] < cycles["postpass"]


def test_scheduling_disabled_still_correct():
    exe = repro.compile_c(SRC, "r2000", repro.CompileOptions(strategy="postpass", schedule=False))
    result = repro.simulate(exe, "work", args=(16,))
    assert result.return_value["double"] == pytest.approx(expected(16), rel=1e-12)


def test_scheduling_improves_over_unscheduled():
    exe_on = repro.compile_c(SRC, "r2000", repro.CompileOptions(strategy="postpass"))
    exe_off = repro.compile_c(SRC, "r2000", repro.CompileOptions(strategy="postpass", schedule=False))
    on = repro.simulate(exe_on, "work", args=(48,))
    off = repro.simulate(exe_off, "work", args=(48,))
    assert on.cycles <= off.cycles
