"""Unit tests for instruction selection."""

import pytest

from repro.backend.insts import Imm, Lab, Reg
from repro.backend.lower import lower_function
from repro.backend.selector import Selector
from repro.backend.values import SlotOffset, SymbolRef
from repro.errors import SelectionError
from repro.il.block import BasicBlock
from repro.il.function import ILFunction
from repro.il.node import Node
from repro.il.ops import ILOp


def cnst(v, t="int"):
    return Node(ILOp.CNST, t, (), v)


def select(target, build):
    """build(fn, block) fills one block; returns the selected MBlock."""
    fn = ILFunction("f", "int")
    block = BasicBlock("f")
    fn.blocks.append(block)
    build(fn, block)
    lower_function(fn, target)
    mfn = Selector(target).select_function(fn)
    return mfn.blocks[0]


def mnemonics(block):
    return [i.desc.mnemonic for i in block.instrs]


def test_immediate_form_preferred(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        value = Node(ILOp.ADD, "int", (Node(ILOp.REG, "int", (), x), cnst(5)))
        block.append(Node(ILOp.SETREG, None, (value,), d))

    block = select(toyp, build)
    assert mnemonics(block) == ["addi"]


def test_register_form_when_no_immediate_fits(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        value = Node(
            ILOp.ADD, "int", (Node(ILOp.REG, "int", (), x), cnst(100000))
        )
        block.append(Node(ILOp.SETREG, None, (value,), d))

    block = select(toyp, build)
    assert mnemonics(block) == ["la", "add"]


def test_constant_zero_uses_hard_register(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        value = Node(ILOp.ADD, "int", (Node(ILOp.REG, "int", (), x), cnst(0)))
        # lowering folds x+0; use a store so the zero must materialize
        block.append(
            Node(
                ILOp.ASGN,
                None,
                (Node(ILOp.ADDRG, "int", (), "g"), cnst(0)),
            )
        )

    block = select(toyp, build)
    store = block.instrs[-1]
    assert store.desc.mnemonic == "st"
    assert store.operands[0].reg.index == 0  # r[0] hard zero


def test_load_with_identity_address(toyp):
    """A bare pointer matches m[$base + $off] with offset 0."""

    def build(fn, block):
        p = fn.new_pseudo("int", "p", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        load = Node(ILOp.INDIR, "int", (Node(ILOp.REG, "int", (), p),))
        block.append(Node(ILOp.SETREG, None, (load,), d))

    block = select(toyp, build)
    assert mnemonics(block) == ["ld"]
    assert block.instrs[0].operands[2] == Imm(0)


def test_load_folds_constant_offset(toyp):
    def build(fn, block):
        p = fn.new_pseudo("int", "p", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        address = Node(ILOp.ADD, "int", (Node(ILOp.REG, "int", (), p), cnst(12)))
        block.append(
            Node(ILOp.SETREG, None, (Node(ILOp.INDIR, "int", (address,)),), d)
        )

    block = select(toyp, build)
    assert mnemonics(block) == ["ld"]
    assert block.instrs[0].operands[2] == Imm(12)


def test_large_offset_materializes_address(toyp):
    def build(fn, block):
        p = fn.new_pseudo("int", "p", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        address = Node(
            ILOp.ADD, "int", (Node(ILOp.REG, "int", (), p), cnst(70000))
        )
        block.append(
            Node(ILOp.SETREG, None, (Node(ILOp.INDIR, "int", (address,)),), d)
        )

    block = select(toyp, build)
    assert mnemonics(block)[-1] == "ld"
    assert len(block.instrs) > 1  # address computed into a register


def test_cse_forced_into_register(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        shared = Node(ILOp.MUL, "int", (Node(ILOp.REG, "int", (), x), Node(ILOp.REG, "int", (), x)))
        total = Node(ILOp.ADD, "int", (shared, shared))
        block.append(Node(ILOp.SETREG, None, (total,), d))

    block = select(toyp, build)
    assert mnemonics(block).count("mul") == 1  # computed once, reused


def test_branch_direct_pattern(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        condition = Node(ILOp.EQ, "int", (Node(ILOp.REG, "int", (), x), cnst(0)))
        block.append(Node(ILOp.CJUMP, None, (condition,), "L"))
        block.append(Node(ILOp.JUMP, None, (), "M"))

    block = select(toyp, build)
    assert mnemonics(block) == ["beq0", "jmp"]
    assert block.instrs[0].operands[1] == Lab("L")


def test_branch_through_glue(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        y = fn.new_pseudo("int", "y", is_global=True)
        condition = Node(
            ILOp.LT,
            "int",
            (Node(ILOp.REG, "int", (), x), Node(ILOp.REG, "int", (), y)),
        )
        block.append(Node(ILOp.CJUMP, None, (condition,), "L"))
        block.append(Node(ILOp.JUMP, None, (), "M"))

    block = select(toyp, build)
    assert mnemonics(block) == ["cmp", "blt0", "jmp"]


def test_branch_slt_idiom_on_r2000(r2000):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        y = fn.new_pseudo("int", "y", is_global=True)
        condition = Node(
            ILOp.LT,
            "int",
            (Node(ILOp.REG, "int", (), x), Node(ILOp.REG, "int", (), y)),
        )
        block.append(Node(ILOp.CJUMP, None, (condition,), "L"))
        block.append(Node(ILOp.JUMP, None, (), "M"))

    block = select(r2000, build)
    assert mnemonics(block) == ["slt", "bne", "j"]
    bne = block.instrs[1]
    assert bne.operands[1].reg.index == 0  # compared against hard zero


def test_fp_compare_uses_condition_register_on_r2000(r2000):
    def build(fn, block):
        x = fn.new_pseudo("double", "x", is_global=True)
        y = fn.new_pseudo("double", "y", is_global=True)
        condition = Node(
            ILOp.LT,
            "int",
            (Node(ILOp.REG, "double", (), x), Node(ILOp.REG, "double", (), y)),
        )
        block.append(Node(ILOp.CJUMP, None, (condition,), "L"))
        block.append(Node(ILOp.JUMP, None, (), "M"))

    block = select(r2000, build)
    assert mnemonics(block) == ["c.lt.d", "bc1t", "j"]
    fcc_pseudo = block.instrs[0].operands[0].reg
    assert fcc_pseudo.set_name == "fcc"


def test_big_constant_splits_on_r2000(r2000):
    def build(fn, block):
        d = fn.new_pseudo("int", "d", is_global=True)
        block.append(Node(ILOp.SETREG, None, (cnst(0x12345678),), d))

    block = select(r2000, build)
    assert mnemonics(block) == ["lui", "ori"]
    assert block.instrs[0].operands[1] == Imm(0x1234)
    assert block.instrs[1].operands[2] == Imm(0x5678)


def test_symbol_address_selected(toyp):
    def build(fn, block):
        d = fn.new_pseudo("int", "d", is_global=True)
        block.append(
            Node(ILOp.SETREG, None, (Node(ILOp.ADDRG, "int", (), "gv"),), d)
        )

    block = select(toyp, build)
    assert mnemonics(block) == ["la"]
    assert block.instrs[0].operands[1] == Imm(SymbolRef("gv"))


def test_frame_slot_load_uses_fp(toyp):
    def build(fn, block):
        slot = fn.new_slot(8, 8, name="x")
        d = fn.new_pseudo("double", "d", is_global=True)
        load = Node(
            ILOp.INDIR, "double", (Node(ILOp.ADDRL, "int", (), slot),)
        )
        block.append(Node(ILOp.SETREG, None, (load,), d))

    block = select(toyp, build)
    assert mnemonics(block) == ["ld.d"]
    instr = block.instrs[0]
    assert instr.operands[1].reg == toyp.cwvm.fp
    assert isinstance(instr.operands[2].value, SlotOffset)


def test_call_emits_arg_moves_and_clobbers(toyp):
    def build(fn, block):
        x = fn.new_pseudo("int", "x", is_global=True)
        d = fn.new_pseudo("int", "d", is_global=True)
        call = Node(ILOp.CALL, "int", (Node(ILOp.REG, "int", (), x),), "g")
        block.append(Node(ILOp.SETREG, None, (call,), d))

    block = select(toyp, build)
    names = mnemonics(block)
    assert "call" in names
    call = next(i for i in block.instrs if i.desc.mnemonic == "call")
    assert toyp.cwvm.arg_register("int", 0) in call.implicit_uses
    assert toyp.cwvm.retaddr in call.implicit_defs
    assert call.branch_target() == "g"


def test_return_moves_result(toyp):
    def build(fn, block):
        x = fn.new_pseudo("double", "x", is_global=True)
        block.append(Node(ILOp.RET, None, (Node(ILOp.REG, "double", (), x),)))

    block = select(toyp, build)
    assert mnemonics(block) == ["*movd", "ret"]
    ret = block.instrs[-1]
    assert toyp.cwvm.results["double"] in ret.implicit_uses


def test_unselectable_raises(toyp):
    def build(fn, block):
        x = fn.new_pseudo("float", "x", is_global=True)
        d = fn.new_pseudo("float", "d", is_global=True)
        value = Node(
            ILOp.ADD,
            "float",
            (Node(ILOp.REG, "float", (), x), Node(ILOp.REG, "float", (), x)),
        )
        block.append(Node(ILOp.SETREG, None, (value,), d))

    # TOYP has no float instruction set or general float registers
    with pytest.raises(SelectionError):
        select(toyp, build)


def test_i860_fp_ops_expand_to_suboperations(i860):
    def build(fn, block):
        x = fn.new_pseudo("double", "x", is_global=True)
        y = fn.new_pseudo("double", "y", is_global=True)
        d = fn.new_pseudo("double", "d", is_global=True)
        value = Node(
            ILOp.MUL,
            "double",
            (Node(ILOp.REG, "double", (), x), Node(ILOp.REG, "double", (), y)),
        )
        block.append(Node(ILOp.SETREG, None, (value,), d))

    block = select(i860, build)
    assert mnemonics(block) == ["M1", "M2", "M3", "FWBM"]
