"""CLI tests."""

import pytest

from repro.cli import main

SOURCE = """
int f(int a, int b) { return a * b + 1; }
double g(double x) { return x * 0.5; }
"""


@pytest.fixture()
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def test_cli_targets(capsys):
    assert main(["targets"]) == 0
    out = capsys.readouterr().out
    for name in ("toyp", "r2000", "m88000", "i860"):
        assert name in out


def test_cli_compile_to_stdout(c_file, capsys):
    assert main(["compile", c_file, "--target", "toyp"]) == 0
    out = capsys.readouterr().out
    assert "# target: toyp" in out
    assert "ret" in out


def test_cli_compile_to_file(c_file, tmp_path, capsys):
    output = tmp_path / "out.s"
    assert main(["compile", c_file, "-o", str(output)]) == 0
    assert "# target: r2000" in output.read_text()


def test_cli_run_int(c_file, capsys):
    assert main(["run", c_file, "--entry", "f", "--args", "6", "7"]) == 0
    out = capsys.readouterr().out
    assert "'int': 43" in out
    assert "cycles:" in out


def test_cli_run_double_with_cache(c_file, capsys):
    assert (
        main(
            [
                "run",
                c_file,
                "--entry",
                "g",
                "--args",
                "8.0",
                "--cache",
                "--strategy",
                "ips",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "'double': 4.0" in out
    assert "cache:" in out


def test_cli_no_schedule_baseline(c_file, capsys):
    assert main(["run", c_file, "--entry", "f", "--args", "2", "3", "--no-schedule"]) == 0
    assert "'int': 7" in capsys.readouterr().out
