"""Unit tests for the list scheduler: hazards, delay slots, heuristics,
register-pressure limits, and dual issue."""

import pytest

from repro.backend.insts import Imm, Lab, Reg, make_instr
from repro.backend.scheduler import ListScheduler
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg


from tests.helpers import build as _build


def instr(target, mnemonic, *operands):
    return _build(target, mnemonic, *operands)


def schedule(target, instrs, **kwargs):
    return ListScheduler(target, **kwargs).schedule_block(instrs)


def test_empty_block(toyp):
    result = schedule(toyp, [])
    assert result.instrs == [] and result.cost == 0


def test_dependent_chain_respects_latency(toyp):
    a = PseudoReg("int", "a")
    b = PseudoReg("int", "b")
    p = PseudoReg("int", "p")
    load = instr(toyp, "ld", Reg(a), Reg(p), Imm(0))
    use = instr(toyp, "addi", Reg(b), Reg(a), Imm(1))
    result = schedule(toyp, [load, use])
    assert result.cycle_of(use) - result.cycle_of(load) >= 3


def test_independent_work_fills_load_shadow(toyp):
    a, b, c, p = (PseudoReg("int", n) for n in "abcp")
    load = instr(toyp, "ld", Reg(a), Reg(p), Imm(0))
    use = instr(toyp, "addi", Reg(b), Reg(a), Imm(1))
    filler = instr(toyp, "addi", Reg(c), Reg(p), Imm(2))
    result = schedule(toyp, [load, use, filler])
    # the filler moves into the load's shadow
    assert result.cycle_of(filler) < result.cycle_of(use)


def test_structural_hazard_single_issue(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    one = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    two = instr(toyp, "addi", Reg(b), Reg(p), Imm(2))
    result = schedule(toyp, [one, two])
    # both need IF on their first cycle: strictly one per cycle
    assert result.cycle_of(one) != result.cycle_of(two)


def test_fp_pipe_structural_hazard(toyp):
    """Two fdiv.d cannot overlap in F1 (non-pipelined divide)."""
    d = [PhysReg("d", i) for i in range(4)]
    one = instr(toyp, "fdiv.d", Reg(d[0]), Reg(d[1]), Reg(d[2]))
    two = instr(toyp, "fdiv.d", Reg(d[3]), Reg(d[1]), Reg(d[2]))
    result = schedule(toyp, [one, two])
    assert abs(result.cycle_of(two) - result.cycle_of(one)) >= 8


def test_branch_scheduled_last_with_nop_slots(toyp):
    a, b, p = (PseudoReg("int", n) for n in "abp")
    work = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    branch = instr(toyp, "beq0", Reg(b), Lab("L"))
    result = schedule(toyp, [branch, work])  # branch first in thread order!
    assert result.instrs[-2].desc.mnemonic == "beq0"
    assert result.instrs[-1].is_nop
    assert result.cost >= result.cycle_of(branch) + 2


def test_branch_plus_jump_keep_order(toyp):
    a, p = PseudoReg("int", "a"), PseudoReg("int", "p")
    work = instr(toyp, "addi", Reg(a), Reg(p), Imm(1))
    branch = instr(toyp, "beq0", Reg(a), Lab("L"))
    jump = instr(toyp, "jmp", Lab("M"))
    result = schedule(toyp, [work, branch, jump])
    names = [i.desc.mnemonic for i in result.instrs]
    assert names == ["addi", "beq0", "nop", "jmp", "nop"]


def test_cost_counts_delay_slots(toyp):
    jump = instr(toyp, "jmp", Lab("L"))
    result = schedule(toyp, [jump])
    assert result.cost == 2  # issue cycle 0 + 1 + one slot


def test_maxdist_beats_fifo_on_critical_path(toyp):
    """The max-distance heuristic starts the long-latency chain first."""
    d = [PhysReg("d", i) for i in range(3)]
    a, b, c, p = (PseudoReg("int", n) for n in "abcp")
    # a long FP chain plus independent cheap work, FP chain last in thread
    cheap = [
        instr(toyp, "addi", Reg(a), Reg(p), Imm(1)),
        instr(toyp, "addi", Reg(b), Reg(p), Imm(2)),
        instr(toyp, "addi", Reg(c), Reg(p), Imm(3)),
    ]
    fp1 = instr(toyp, "fadd.d", Reg(d[0]), Reg(d[1]), Reg(d[2]))
    fp2 = instr(toyp, "fadd.d", Reg(d[1]), Reg(d[0]), Reg(d[2]))
    thread = cheap + [fp1, fp2]
    maxdist = schedule(toyp, list(thread), heuristic="maxdist")
    fifo = schedule(toyp, list(thread), heuristic="fifo")
    assert maxdist.cost <= fifo.cost
    assert maxdist.cycle_of(fp1) < fifo.cycle_of(fp1)


def test_schedule_preserves_all_instructions(toyp):
    a, b, c, p = (PseudoReg("int", n) for n in "abcp")
    instrs = [
        instr(toyp, "ld", Reg(a), Reg(p), Imm(0)),
        instr(toyp, "addi", Reg(b), Reg(a), Imm(1)),
        instr(toyp, "st", Reg(b), Reg(p), Imm(4)),
        instr(toyp, "addi", Reg(c), Reg(p), Imm(8)),
    ]
    result = schedule(toyp, list(instrs))
    assert {i.id for i in result.instrs} >= {i.id for i in instrs}


def test_schedule_respects_every_dag_edge(toyp):
    from repro.backend.codedag import build_code_dag

    a, b, c, p = (PseudoReg("int", n) for n in "abcp")
    instrs = [
        instr(toyp, "ld", Reg(a), Reg(p), Imm(0)),
        instr(toyp, "mul", Reg(b), Reg(a), Reg(a)),
        instr(toyp, "st", Reg(b), Reg(p), Imm(4)),
        instr(toyp, "addi", Reg(a), Reg(p), Imm(8)),
        instr(toyp, "st", Reg(a), Reg(p), Imm(12)),
    ]
    dag = build_code_dag(instrs, toyp)
    result = schedule(toyp, list(instrs))
    for node in dag.nodes:
        for edge in node.succs:
            src_cycle = result.cycle_of(edge.src.instr)
            dst_cycle = result.cycle_of(edge.dst.instr)
            assert dst_cycle >= src_cycle + edge.latency
            if edge.latency == 0:
                assert dst_cycle >= src_cycle


def test_register_limit_prefers_pressure_reducers(toyp):
    """With a tight limit, the scheduler consumes values before defining
    more (IPS behaviour)."""
    p = PseudoReg("int", "p", is_global=True)
    locals_ = [PseudoReg("int", f"t{i}") for i in range(6)]
    sink = PseudoReg("int", "sink", is_global=True)
    defs = [
        instr(toyp, "addi", Reg(t), Reg(p), Imm(i))
        for i, t in enumerate(locals_)
    ]
    uses = []
    accumulator = locals_[0]
    for t in locals_[1:]:
        out = PseudoReg("int", f"s{t.name}", is_global=True)
        uses.append(instr(toyp, "add", Reg(out), Reg(accumulator), Reg(t)))
        accumulator = out
    thread = defs + uses
    limited = schedule(toyp, list(thread), register_limit=2)
    # correctness: all dependences hold (checked via relative order)
    order = {i.id: n for n, i in enumerate(limited.instrs)}
    for use in uses:
        for reg in use.uses():
            producers = [d for d in defs if reg in d.defs()]
            for producer in producers:
                assert order[producer.id] < order[use.id]


def test_i860_dual_issue_core_and_fp(i860):
    r = [PseudoReg("int", f"r{i}") for i in range(3)]
    d = [PhysReg("d", i) for i in range(4, 8)]
    core = instr(i860, "addsi", Reg(r[0]), Reg(r[1]), Imm(1))
    fp = instr(i860, "A1", Reg(d[0]), Reg(d[1]))
    result = schedule(i860, [core, fp])
    assert result.cycle_of(core) == result.cycle_of(fp) == 0


def test_two_core_ops_cannot_dual_issue(i860):
    r = [PseudoReg("int", f"r{i}") for i in range(4)]
    one = instr(i860, "addsi", Reg(r[0]), Reg(r[1]), Imm(1))
    two = instr(i860, "addsi", Reg(r[2]), Reg(r[3]), Imm(2))
    result = schedule(i860, [one, two])
    assert result.cycle_of(one) != result.cycle_of(two)
