"""Unit tests for symbolic immediates and machine-instruction plumbing."""

import pytest

from repro.backend.insts import Imm, Lab, Reg, make_instr
from repro.backend.values import (
    FRAME_OFFSET_REACH,
    HighHalf,
    LowHalf,
    SlotOffset,
    SymbolRef,
    fold_halves,
    immediate_fits,
)
from repro.il.node import FrameSlot, PseudoReg
from repro.machine.instruction import OperandDesc, OperandMode
from repro.machine.registers import PhysReg

C16 = OperandDesc(OperandMode.IMM, def_name="c16", lo=-32768, hi=32767)
U16 = OperandDesc(OperandMode.IMM, def_name="u16", lo=0, hi=65535)
ABS32 = OperandDesc(
    OperandMode.IMM, def_name="c32", lo=-(2**31), hi=2**31 - 1, absolute=True
)
TINY = OperandDesc(OperandMode.IMM, def_name="c4", lo=-8, hi=7)


# -- immediate_fits -----------------------------------------------------------


def test_int_range_check():
    assert immediate_fits(0, C16)
    assert immediate_fits(-32768, C16)
    assert not immediate_fits(32768, C16)
    assert not immediate_fits(True, C16)  # bools are not immediates


def test_slot_offset_needs_wide_reach():
    offset = SlotOffset(FrameSlot(8))
    assert immediate_fits(offset, C16)
    assert not immediate_fits(offset, TINY)
    assert FRAME_OFFSET_REACH <= C16.hi


def test_symbol_only_fits_absolute():
    symbol = SymbolRef("gv")
    assert immediate_fits(symbol, ABS32)
    assert not immediate_fits(symbol, C16)


def test_halves_of_int_always_fit():
    assert immediate_fits(HighHalf(0x12345678), TINY)
    assert immediate_fits(LowHalf(0x12345678), TINY)


def test_halves_of_symbol_need_u16_or_abs():
    high = HighHalf(SymbolRef("gv"))
    assert immediate_fits(high, U16)
    assert immediate_fits(high, ABS32)
    assert not immediate_fits(high, TINY)


def test_fold_halves():
    assert fold_halves(HighHalf(0x12345678)) == 0x1234
    assert fold_halves(LowHalf(0x12345678)) == 0x5678
    symbolic = HighHalf(SymbolRef("gv"))
    assert fold_halves(symbolic) is symbolic
    assert fold_halves(42) == 42


def test_value_reprs():
    slot = FrameSlot(8, name="x")
    assert "x" in str(SlotOffset(slot, addend=4))
    assert str(SymbolRef("gv", addend=8)) == "gv+8"
    assert "%hi" in str(HighHalf(SymbolRef("gv")))


# -- MachineInstr -----------------------------------------------------------


def test_make_instr_fills_fixed_registers(toyp):
    move = toyp.move_for_set("r")  # add rD, rS, r[0]
    instr = make_instr(move, [Reg(PseudoReg("int", "a")), Reg(PseudoReg("int", "b")), None])
    assert instr.operands[2].reg == PhysReg("r", 0)


def test_make_instr_operand_count_checked(toyp):
    with pytest.raises(ValueError, match="operands"):
        make_instr(toyp.instruction("ld"), [Reg(PseudoReg("int", "a"))])


def test_defs_uses_with_implicits(toyp):
    a = PseudoReg("int", "a")
    instr = make_instr(
        toyp.instruction("ld"),
        [Reg(a), Reg(PhysReg("r", 6)), Imm(0)],
    )
    instr.implicit_uses = [PhysReg("r", 7)]
    instr.implicit_defs = [PhysReg("r", 1)]
    assert a in instr.defs() and PhysReg("r", 1) in instr.defs()
    assert PhysReg("r", 6) in instr.uses() and PhysReg("r", 7) in instr.uses()


def test_rewrite_reg(toyp):
    a = PseudoReg("int", "a")
    instr = make_instr(
        toyp.instruction("ld"), [Reg(a), Reg(PhysReg("r", 6)), Imm(0)]
    )
    instr.rewrite_reg(0, PhysReg("r", 3))
    assert instr.defs() == [PhysReg("r", 3)]


def test_branch_target_helper(toyp):
    instr = make_instr(
        toyp.instruction("beq0"), [Reg(PseudoReg("int", "a")), Lab("L")]
    )
    assert instr.branch_target() == "L"
    add = make_instr(
        toyp.instruction("addi"),
        [Reg(PseudoReg("int", "a")), Reg(PhysReg("r", 6)), Imm(1)],
    )
    assert add.branch_target() is None


def test_str_renders_mnemonic_and_operands(toyp):
    instr = make_instr(
        toyp.instruction("addi"),
        [Reg(PhysReg("r", 2)), Reg(PhysReg("r", 3)), Imm(7)],
    )
    assert str(instr) == "addi r[2], r[3], 7"


def test_classification_properties(toyp):
    ret = make_instr(toyp.instruction("ret"), [])
    assert ret.is_branch_or_jump and ret.is_control and not ret.is_call
    call = make_instr(toyp.instruction("call"), [Lab("g")])
    assert call.is_call and call.is_control and not call.is_branch_or_jump
    nop = make_instr(toyp.nop, [])
    assert nop.is_nop and not nop.is_control
