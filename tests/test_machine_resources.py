"""Unit and property tests for resource vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MarionError
from repro.machine.resources import (
    Need,
    ResourceTable,
    commit,
    conflicts,
    merge_vectors,
    vectors_conflict,
)


@pytest.fixture()
def table():
    t = ResourceTable()
    for name in ("IF", "ID", "EX", "MEM", "WB"):
        t.declare(name)
    return t


def test_declare_assigns_distinct_bits(table):
    masks = [table.mask([name]) for name in table.names]
    assert len(set(masks)) == len(masks)


def test_duplicate_declare_rejected(table):
    with pytest.raises(MarionError, match="twice"):
        table.declare("IF")


def test_unknown_resource_rejected(table):
    with pytest.raises(MarionError, match="unknown"):
        table.mask(["BOGUS"])


def test_vector_and_unmask_roundtrip(table):
    vector = table.vector([("IF",), ("ID", "EX"), ("WB",)])
    assert table.unmask(vector[1].mask) == ["ID", "EX"]


def test_same_cycle_conflict(table):
    a = table.vector([("IF",), ("EX",)])
    b = table.vector([("IF",)])
    assert vectors_conflict(a, b, offset=0)


def test_offset_removes_conflict(table):
    a = table.vector([("IF",), ("EX",)])
    b = table.vector([("IF",)])
    assert not vectors_conflict(a, b, offset=2)


def test_offset_creates_conflict(table):
    a = table.vector([("IF",), ("EX",)])
    b = table.vector([("EX",)])
    assert vectors_conflict(a, b, offset=1)
    assert not vectors_conflict(a, b, offset=0)


def test_disjoint_vectors_never_conflict(table):
    a = table.vector([("IF",), ("ID",)])
    b = table.vector([("MEM",), ("WB",)])
    for offset in range(-2, 3):
        assert not vectors_conflict(a, b, offset)


def test_merge_preserves_both(table):
    a = table.vector([("IF",)])
    b = table.vector([("EX",)])
    merged = merge_vectors(a, b, offset=1)
    assert table.unmask(merged[0]) == ["IF"]
    assert table.unmask(merged[1]) == ["EX"]


# -- pooled resources (the section-5 multiple-functional-unit extension) --


def test_pool_allows_capacity_parallelism():
    table = ResourceTable()
    table.declare("ALU", capacity=2)
    need = table.need(["ALU"])
    usage = commit(0, need)
    assert not conflicts(usage, need)  # a second unit is free
    usage = commit(usage, need)
    assert conflicts(usage, need)  # both units busy


def test_pool_multi_unit_request():
    table = ResourceTable()
    table.declare("ALU", capacity=3)
    double_need = table.need(["ALU", "ALU"])
    usage = commit(0, double_need)
    assert not conflicts(usage, table.need(["ALU"]))
    assert conflicts(usage, double_need)


def test_pool_request_beyond_capacity_rejected():
    table = ResourceTable()
    table.declare("ALU", capacity=2)
    with pytest.raises(MarionError, match="capacity"):
        table.need(["ALU", "ALU", "ALU"])


def test_pool_and_scalar_coexist():
    table = ResourceTable()
    table.declare("IF")
    table.declare("ALU", capacity=2)
    table.declare("WB")
    need = table.need(["IF", "ALU", "WB"])
    assert bin(need.mask).count("1") == 2
    assert need.pools == ((1, 2, 1),)
    usage = commit(0, need)
    assert conflicts(usage, table.need(["IF"]))
    assert not conflicts(usage, table.need(["ALU"]))


def test_mask_rejects_pools():
    table = ResourceTable()
    table.declare("ALU", capacity=2)
    with pytest.raises(MarionError, match="pooled"):
        table.mask(["ALU"])


_vec = st.lists(
    st.integers(min_value=0, max_value=31).map(lambda m: Need(m, ())),
    min_size=0,
    max_size=6,
).map(tuple)


@given(_vec, _vec, st.integers(min_value=0, max_value=8))
def test_property_conflict_iff_merged_smaller(a, b, offset):
    """Merging double-counts exactly when there is a conflict."""
    merged = merge_vectors(a, b, offset)
    bit_total = sum(bin(m).count("1") for m in merged)
    separate = sum(bin(n.mask).count("1") for n in a) + sum(
        bin(n.mask).count("1") for n in b
    )
    if vectors_conflict(a, b, offset):
        assert bit_total < separate
    else:
        assert bit_total == separate


@given(_vec, _vec)
def test_property_conflict_symmetric_at_zero_offset(a, b):
    assert vectors_conflict(a, b, 0) == vectors_conflict(b, a, 0)
