"""Unit tests for the semantics executor (instruction closures)."""

import pytest

from repro.backend.insts import Imm, Lab, Reg
from repro.errors import SimulationError
from repro.il.node import PseudoReg
from repro.machine.registers import PhysReg
from repro.sim.executor import SemanticsCompiler, _int_div, _int_mod, _wrap32
from repro.sim.state import MachineState

from tests.helpers import build as instr


@pytest.fixture()
def state(toyp):
    return MachineState(toyp.registers, bytearray(8192))


def compile_and_run(target, state, machine_instr, mem_log=None):
    closure = SemanticsCompiler(target).compile_instr(machine_instr)
    return closure(state, mem_log if mem_log is not None else [])


def test_add_executes(toyp, state):
    state.write_reg(PhysReg("r", 2), "int", 30)
    add = instr(
        toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 2)), Imm(12)
    )
    assert compile_and_run(toyp, state, add) is None
    assert state.read_reg(PhysReg("r", 3), "int") == 42


def test_arithmetic_wraps(toyp, state):
    state.write_reg(PhysReg("r", 2), "int", 2**31 - 1)
    add = instr(toyp, "addi", Reg(PhysReg("r", 3)), Reg(PhysReg("r", 2)), Imm(1))
    compile_and_run(toyp, state, add)
    assert state.read_reg(PhysReg("r", 3), "int") == -(2**31)


def test_generic_compare_signs(toyp, state):
    state.write_reg(PhysReg("r", 2), "int", 5)
    state.write_reg(PhysReg("r", 3), "int", 9)
    cmp = instr(
        toyp, "cmp", Reg(PhysReg("r", 4)), Reg(PhysReg("r", 2)), Reg(PhysReg("r", 3))
    )
    compile_and_run(toyp, state, cmp)
    assert state.read_reg(PhysReg("r", 4), "int") == -1


def test_load_and_store_log_memory(toyp, state):
    state.write_reg(PhysReg("r", 6), "int", 4096)
    state.write_mem(4100, "int", 77)
    log = []
    load = instr(toyp, "ld", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(4))
    compile_and_run(toyp, state, load, log)
    assert state.read_reg(PhysReg("r", 2), "int") == 77
    assert log == [(4100, False, 4)]

    log = []
    store = instr(toyp, "st", Reg(PhysReg("r", 2)), Reg(PhysReg("r", 6)), Imm(8))
    compile_and_run(toyp, state, store, log)
    assert state.read_mem(4104, "int") == 77
    assert log == [(4104, True, 4)]


def test_double_memory_width(toyp, state):
    state.write_reg(PhysReg("r", 6), "int", 4096)
    state.write_reg(PhysReg("d", 1), "double", 6.5)
    log = []
    store = instr(
        toyp, "st.d", Reg(PhysReg("d", 1)), Reg(PhysReg("r", 6)), Imm(0)
    )
    compile_and_run(toyp, state, store, log)
    assert log[0][2] == 8
    assert state.read_mem(4096, "double") == 6.5


def test_branch_effects(toyp, state):
    state.write_reg(PhysReg("r", 2), "int", 0)
    branch = instr(toyp, "beq0", Reg(PhysReg("r", 2)), Lab("L"))
    assert compile_and_run(toyp, state, branch) == ("goto", "L")
    state.write_reg(PhysReg("r", 2), "int", 1)
    assert compile_and_run(toyp, state, branch) is None


def test_call_and_ret_effects(toyp, state):
    call = instr(toyp, "call", Lab("g"))
    assert compile_and_run(toyp, state, call) == ("call", "g")
    ret = instr(toyp, "ret")
    assert compile_and_run(toyp, state, ret) == ("ret",)


def test_conversion_truncates(toyp, state):
    state.write_reg(PhysReg("d", 1), "double", -3.99)
    cvt = instr(toyp, "cvt.w.d", Reg(PhysReg("r", 2)), Reg(PhysReg("d", 1)))
    compile_and_run(toyp, state, cvt)
    assert state.read_reg(PhysReg("r", 2), "int") == -3


def test_temporal_register_flow(i860):
    state = MachineState(i860.registers, bytearray(4096))
    state.write_reg(PhysReg("d", 4), "double", 3.0)
    state.write_reg(PhysReg("d", 5), "double", 7.0)
    sequence = [
        instr(i860, "M1", Reg(PhysReg("d", 4)), Reg(PhysReg("d", 5))),
        instr(i860, "M2"),
        instr(i860, "M3"),
        instr(i860, "FWBM", Reg(PhysReg("d", 6))),
    ]
    for step in sequence:
        compile_and_run(i860, state, step)
    assert state.read_reg(PhysReg("d", 6), "double") == 21.0
    assert state.temporal["m3"] == 21.0


def test_unallocated_operand_rejected(toyp, state):
    pseudo = PseudoReg("int", "ghost")
    bad = instr(toyp, "addi", Reg(pseudo), Reg(PhysReg("r", 2)), Imm(1))
    with pytest.raises(SimulationError, match="unallocated"):
        SemanticsCompiler(toyp).compile_instr(bad)


def test_int_div_mod_helpers():
    assert _int_div(7, 2) == 3
    assert _int_div(-7, 2) == -3
    assert _int_mod(-7, 2) == -1
    assert _wrap32(2**31) == -(2**31)
    with pytest.raises(SimulationError):
        _int_div(1, 0)


def test_lui_style_shift_semantics(r2000):
    state = MachineState(r2000.registers, bytearray(4096))
    lui = instr(r2000, "lui", Reg(PhysReg("r", 8)), Imm(0x1234))
    compile_and_run(r2000, state, lui)
    ori = instr(
        r2000, "ori", Reg(PhysReg("r", 9)), Reg(PhysReg("r", 8)), Imm(0x5678)
    )
    compile_and_run(r2000, state, ori)
    assert state.read_reg(PhysReg("r", 9), "int") == 0x12345678
