"""Unit tests for the code generator generator."""

import pytest

from repro.cgg import build_target
from repro.cgg.patterns import PatConst, PatOp, PatOperand, PatternKind
from repro.il.ops import ILOp
from repro.machine.instruction import InstrKind, OperandMode
from repro.machine.registers import PhysReg

TINY = """
declare {
    %reg r[0:7] (int);
    %reg d[0:3] (double);
    %equiv d[0] r[0];
    %resource IF, EX, WB;
    %def c16 [-32768:32767];
    %label lab [-64:63] +relative;
    %memory m[0:4095];
}
cwvm {
    %general (int) r;
    %general (double) d;
    %allocable r[1:5];
    %calleesave r[4:5];
    %sp r[7] +down;
    %fp r[6] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %result r[2] (int);
}
instr {
    %instr addi r, r, #c16 (int) {$1 = $2 + $3;} [IF; EX; WB] (1,1,0);
    %instr add r, r, r (int) {$1 = $2 + $3;} [IF; EX; WB] (1,1,0);
    %instr ld r, r, #c16 (int) {$1 = m[$2 + $3];} [IF; EX; WB] (1,3,0);
    %instr st r, r, #c16 (int) {m[$2 + $3] = $1;} [IF; EX] (1,1,0);
    %instr beq0 r, #lab {if ($1 == 0) goto $2;} [IF] (1,2,1);
    %instr jmp #lab {goto $1;} [IF] (1,2,1);
    %instr nop {;} [IF] (1,1,0);
    %aux addi : st (1.$1 == 2.$1) (4);
}
"""


@pytest.fixture(scope="module")
def target():
    return build_target(TINY, name="tiny")


def test_register_units_simple(target):
    assert target.registers.units_of(PhysReg("r", 3)) == ((0, 3),)


def test_register_units_pair(target):
    assert target.registers.units_of(PhysReg("d", 1)) == ((0, 2), (0, 3))


def test_pair_interference(target):
    registers = target.registers
    assert registers.interfere(PhysReg("d", 1), PhysReg("r", 2))
    assert registers.interfere(PhysReg("d", 1), PhysReg("r", 3))
    assert not registers.interfere(PhysReg("d", 1), PhysReg("r", 4))


def test_file_size_covers_all_units(target):
    assert target.registers.file_sizes[0] >= 8


def test_resource_vector_bits(target):
    addi = target.instruction("addi")
    assert len(addi.resource_vector) == 3
    # each cycle uses exactly one scalar resource, no pools
    assert all(
        bin(need.mask).count("1") == 1 and not need.pools
        for need in addi.resource_vector
    )


def test_cwvm_compilation(target):
    cwvm = target.cwvm
    assert cwvm.sp == PhysReg("r", 7)
    assert cwvm.fp == PhysReg("r", 6)
    assert cwvm.retaddr == PhysReg("r", 1)
    assert cwvm.hard_registers[PhysReg("r", 0)] == 0
    assert cwvm.arg_register("int", 0) == PhysReg("r", 2)
    assert cwvm.arg_register("int", 5) is None
    assert cwvm.result_register("int") == PhysReg("r", 2)
    assert PhysReg("r", 4) in cwvm.callee_save
    assert PhysReg("r", 3) in cwvm.caller_save_allocable()


def test_instruction_kinds(target):
    assert target.instruction("addi").kind is InstrKind.NORMAL
    assert target.instruction("beq0").kind is InstrKind.BRANCH
    assert target.instruction("jmp").kind is InstrKind.JUMP
    assert target.instruction("nop").kind is InstrKind.NOP


def test_defs_uses_metadata(target):
    ld = target.instruction("ld")
    assert ld.def_operands == (0,)
    assert ld.use_operands == (1, 2)
    assert ld.reads_memory and not ld.writes_memory
    st = target.instruction("st")
    assert st.def_operands == ()
    assert st.use_operands == (0, 1, 2)
    assert st.writes_memory and not st.reads_memory


def test_branch_label_metadata(target):
    beq = target.instruction("beq0")
    assert beq.label_operands == (1,)
    assert beq.use_operands == (0,)  # the label is not a register use


def test_value_pattern_shape(target):
    pattern = target.instruction("addi").patterns[0]
    assert pattern.kind is PatternKind.VALUE
    assert pattern.def_position == 0
    root = pattern.root
    assert isinstance(root, PatOp) and root.op is ILOp.ADD
    assert isinstance(root.kids[0], PatOperand)
    assert root.kids[1].spec.mode is OperandMode.IMM


def test_load_pattern_shape(target):
    root = target.instruction("ld").patterns[0].root
    assert root.op is ILOp.INDIR
    assert root.kids[0].op is ILOp.ADD


def test_store_pattern_shape(target):
    pattern = target.instruction("st").patterns[0]
    assert pattern.kind is PatternKind.STORE
    assert pattern.root.op is ILOp.ASGN


def test_branch_pattern_shape(target):
    pattern = target.instruction("beq0").patterns[0]
    assert pattern.kind is PatternKind.BRANCH
    condition = pattern.root.kids[0]
    assert condition.op is ILOp.EQ
    assert isinstance(condition.kids[1], PatConst)
    assert condition.kids[1].value == 0


def test_nop_has_no_pattern(target):
    assert not target.instruction("nop").patterns


def test_pattern_order_preserves_description_order(target):
    mnemonics = [p.desc.mnemonic for p in target.pattern_order]
    assert mnemonics.index("addi") < mnemonics.index("add")


def test_aux_rule_compiled(target):
    rule = target.aux_latency("addi", "st")
    assert rule is not None
    assert rule.latency == 4
    assert target.aux_latency("st", "addi") is None


def test_hard_register_lookup(target):
    assert target.hard_register_for_value(0, "r") == PhysReg("r", 0)
    assert target.hard_register_for_value(1, "r") is None


def test_duplicate_mnemonics_keep_distinct_descriptors():
    text = TINY.replace(
        "%instr add r, r, r (int) {$1 = $2 + $3;} [IF; EX; WB] (1,1,0);",
        "%instr add r, r, r (int) {$1 = $2 + $3;} [IF; EX; WB] (1,1,0);"
        "%instr add r, r, #c16 (int) {$1 = $2 + $3;} [IF; EX; WB] (1,1,0);",
    )
    target = build_target(text)
    descs = [
        d for d in target.instructions.values() if d.mnemonic == "add"
    ]
    assert len(descs) == 2


def test_temporal_metadata():
    text = """
    declare {
        %reg r[0:1] (int);
        %reg d[0:1] (double);
        %clock clk;
        %reg m1 (double; clk) +temporal;
        %resource F1;
    }
    cwvm { %sp r[0]; %fp r[1]; }
    instr {
        %instr M1 d, d (double; clk) {m1 = $1 * $2;} [F1] (1,1,0);
        %instr FWB d (double; clk) {$1 = m1;} [F1] (1,1,0);
    }
    """
    target = build_target(text)
    m1 = target.instruction("M1")
    assert m1.temporal_writes == ("m1",)
    assert m1.def_operands == ()
    assert m1.affects_clock == "clk"
    fwb = target.instruction("FWB")
    assert fwb.temporal_reads == ("m1",)
    assert fwb.def_operands == (0,)
    assert target.temporal_clock("m1") == "clk"
    assert target.temporal_clock("d") is None
