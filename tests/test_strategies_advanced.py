"""Deeper strategy behaviour tests: the IPS register limit, RASE cost
overrides, and edge-type control."""

import pytest

import repro
from repro.backend.codegen import CodeGenerator
from repro.backend.strategies.ips import IPSStrategy
from repro.frontend import compile_to_il


def test_ips_register_limit_scales_with_target(toyp, r2000):
    ips = IPSStrategy()
    toyp_limit = ips.register_limit(toyp)
    r2000_limit = ips.register_limit(r2000)
    assert toyp_limit < r2000_limit
    assert toyp_limit >= 2


def test_ips_limit_reduces_peak_pressure_in_first_pass(r2000):
    """With the limit active, the prepass keeps fewer locals live than an
    unlimited schedule of the same block."""
    from repro.backend.insts import Imm, Reg
    from repro.backend.scheduler import ListScheduler
    from repro.il.node import PseudoReg

    from tests.helpers import build as instr

    base = PseudoReg("int", "base", is_global=True)
    locals_ = [PseudoReg("int", f"t{i}") for i in range(8)]
    sinks = []
    thread = [
        instr(r2000, "addiu", Reg(t), Reg(base), Imm(i))
        for i, t in enumerate(locals_)
    ]
    accumulator = locals_[0]
    for t in locals_[1:]:
        out = PseudoReg("int", f"s{t.name}")
        thread.append(instr(r2000, "addu", Reg(out), Reg(accumulator), Reg(t)))
        accumulator = out
        sinks.append(out)

    def peak_live(result):
        live = set()
        peak = 0
        remaining = {}
        for i in result.instrs:
            for reg in i.uses():
                if isinstance(reg, PseudoReg) and not reg.is_global:
                    remaining[reg.id] = remaining.get(reg.id, 0) + 1
        for i in result.instrs:
            for reg in i.uses():
                if isinstance(reg, PseudoReg) and not reg.is_global:
                    remaining[reg.id] -= 1
                    if remaining[reg.id] == 0:
                        live.discard(reg.id)
            for reg in i.defs():
                if isinstance(reg, PseudoReg) and not reg.is_global:
                    if remaining.get(reg.id, 0) > 0:
                        live.add(reg.id)
            peak = max(peak, len(live))
        return peak

    unlimited = ListScheduler(r2000).schedule_block(list(thread))
    limited = ListScheduler(r2000, register_limit=3).schedule_block(list(thread))
    assert peak_live(limited) <= peak_live(unlimited)


def test_rase_adopts_relaxed_schedule_order():
    """RASE's estimate pass reorders the code before allocation, so the
    allocator sees schedule-shaped live ranges (unlike Postpass)."""
    src = """
    double v[64];
    double f(int n) {
        int i; double s = 0.0;
        for (i = 0; i < n; i++) { s = s + v[i] * 2.0 + v[i] * 3.0; }
        return s;
    }
    """
    target = repro.load_target("r2000")
    postpass = CodeGenerator(target, repro.CompileOptions(strategy="postpass")).compile_il(
        compile_to_il(src)
    )
    rase = CodeGenerator(target, repro.CompileOptions(strategy="rase")).compile_il(compile_to_il(src))
    assert postpass.stats["f"].schedule_passes == 1
    assert rase.stats["f"].schedule_passes == 3


def test_strategies_on_superscalar_description():
    """Strategies compose with a pooled-resource target."""
    from tests.test_superscalar import SUPERSCALAR_MARIL
    from repro.cgg import build_target

    target = build_target(SUPERSCALAR_MARIL, name="dual")
    src = """
    int f(int n) {
        int i, s, t;
        s = 0; t = 1;
        for (i = 0; i < n; i++) { s = s + i; t = t + s; }
        return s * 100 + t;
    }
    """
    results = {}
    for strategy in ("postpass", "ips", "rase"):
        exe = repro.compile_c(src, target, repro.CompileOptions(strategy=strategy))
        results[strategy] = repro.simulate(exe, "f", args=(15,))
    values = {r.return_value["int"] for r in results.values()}
    assert len(values) == 1  # all strategies agree


def test_heuristic_flag_propagates():
    src = "int f(int a) { return a + 1; }"
    for heuristic in ("maxdist", "fifo"):
        exe = repro.compile_c(src, "toyp", repro.CompileOptions(heuristic=heuristic))
        assert repro.simulate(exe, "f", args=(4,)).return_value["int"] == 5
    with pytest.raises(ValueError, match="heuristic"):
        repro.compile_c(src, "toyp", repro.CompileOptions(heuristic="bogus"))
