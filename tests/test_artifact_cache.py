"""The persistent artifact cache: disk round-trips for all four layers,
invalidation on changed inputs, corruption tolerance, and the
``fresh=True`` / ``REPRO_CACHE=0`` escape hatches.

Every test runs against a private tmpdir cache and restores the
process-wide (disabled-for-tests) configuration afterwards.
"""

import pytest

import repro
from repro.backend.asmprinter import format_program
from repro.cache import ArtifactCache, configure, get_cache
from repro.sim import DirectMappedCache
from repro.targets import (
    clear_target_cache,
    load_target,
    maril_source,
    target_build_count,
)

KERNEL = """
double bench(int loop, int n) {
    int l; int i; double q;
    q = 0.0;
    for (l = 0; l < loop; l++) {
        for (i = 0; i < n; i++) { q = q + 1.5 * 0.25; }
    }
    return q;
}
"""

OPTIONS = repro.CompileOptions(strategy="rase")


@pytest.fixture
def store(tmp_path):
    """A live cache at a private tmpdir; teardown restores the suite's
    disabled default and drops in-process targets unpickled from it."""
    active = configure(root=tmp_path, enabled=True)
    clear_target_cache()
    yield active
    clear_target_cache()
    configure()


def _simulate(executable):
    return repro.simulate(
        executable,
        "bench",
        args=(3, 40),
        options=repro.SimOptions(cache=DirectMappedCache()),
    )


# -- layer 1: targets ------------------------------------------------------


def test_target_disk_round_trip(store):
    first = load_target("toyp")
    builds = target_build_count("toyp")
    assert first.content_key
    clear_target_cache()
    second = load_target("toyp")
    # a disk hit, not a rebuild — and not the same instance
    assert target_build_count("toyp") == builds
    assert second is not first
    assert second.content_key == first.content_key
    # the unpickled target compiles identically
    assert format_program(
        repro.compile_c(KERNEL, second, OPTIONS).machine_program
    ) == format_program(
        repro.compile_c(KERNEL, first, OPTIONS).machine_program
    )


def test_fresh_bypasses_and_invalidates_disk(store):
    load_target("toyp")
    assert store.store.layer_stats()["target"]["files"] == 1
    builds = target_build_count("toyp")
    fresh = load_target("toyp", fresh=True)
    # fresh built privately and deleted the disk entry
    assert target_build_count("toyp") == builds + 1
    assert store.store.layer_stats().get("target", {}).get("files", 0) == 0
    assert fresh.content_key is None
    # the next cold load must rebuild (both layers were bypassed)
    clear_target_cache()
    load_target("toyp")
    assert target_build_count("toyp") == builds + 2


# -- layer 2: executables --------------------------------------------------


def test_executable_disk_round_trip(store):
    target = load_target("r2000")
    first = repro.compile_c(KERNEL, target, OPTIONS)
    assert first.content_key
    hits_before = store.hits
    second = repro.compile_c(KERNEL, target, OPTIONS)
    assert store.hits == hits_before + 1
    assert second is not first
    assert second.content_key == first.content_key
    assert format_program(second.machine_program) == format_program(
        first.machine_program
    )
    run_first = _simulate(first)
    run_second = _simulate(second)
    assert run_second.cycles == run_first.cycles
    assert run_second.return_value == run_first.return_value


def test_options_and_source_changes_miss(store):
    target = load_target("r2000")
    repro.compile_c(KERNEL, target, OPTIONS)
    writes = store.writes
    # changed options -> new key, full compile
    repro.compile_c(KERNEL, target, repro.CompileOptions(strategy="ips"))
    assert store.writes == writes + 1
    # changed source -> new key, full compile
    repro.compile_c(KERNEL + "\n", target, OPTIONS)
    assert store.writes == writes + 2
    # unchanged inputs -> pure hit, no new artifact
    hits = store.hits
    repro.compile_c(KERNEL, target, OPTIONS)
    assert store.writes == writes + 2
    assert store.hits == hits + 1


def test_salt_bump_is_clean_miss(tmp_path):
    try:
        configure(root=tmp_path, enabled=True, salt="v-old")
        clear_target_cache()
        load_target("m88000")
        builds = target_build_count("m88000")
        configure(root=tmp_path, enabled=True, salt="v-new")
        clear_target_cache()
        load_target("m88000")
        assert target_build_count("m88000") == builds + 1
        # both salted entries coexist; neither clobbered the other
        assert get_cache().store.layer_stats()["target"]["files"] == 2
    finally:
        clear_target_cache()
        configure()


def _single_artifact(store, layer):
    files = [
        path
        for path in (store.root / layer).rglob("*.bin")
        if not path.name.startswith(".tmp-")
    ]
    assert len(files) == 1
    return files[0]


def test_corrupt_entry_is_clean_miss(store):
    load_target("toyp")
    builds = target_build_count("toyp")
    path = _single_artifact(store, "target")
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    clear_target_cache()
    load_target("toyp")
    # detected, deleted, rebuilt and re-published
    assert store.corrupt == 1
    assert target_build_count("toyp") == builds + 1
    clear_target_cache()
    load_target("toyp")
    assert target_build_count("toyp") == builds + 1


def test_truncated_entry_is_clean_miss(store):
    target = load_target("r2000")
    repro.compile_c(KERNEL, target, OPTIONS)
    path = _single_artifact(store, "exe")
    path.write_bytes(path.read_bytes()[: 40])
    misses = store.misses
    executable = repro.compile_c(KERNEL, target, OPTIONS)
    assert store.corrupt == 1
    assert store.misses == misses + 1
    assert _simulate(executable).instructions > 0


# -- layers 3 + 4: JIT code and timing digests -----------------------------


def test_jit_and_timing_preload_round_trip(store):
    target = load_target("r2000")
    first = repro.compile_c(KERNEL, target, OPTIONS)
    reference = _simulate(first)
    # the run crossed the JIT warmup threshold and persisted its state
    assert first._segment_jit.compiled > 0
    layers = store.store.layer_stats()
    assert layers["jit"]["files"] == 1
    assert layers["timing"]["files"] == 1

    # "new process": a fresh executable object straight off the disk
    second = repro.compile_c(KERNEL, target, OPTIONS)
    assert not hasattr(second, "_segment_jit")
    warm = _simulate(second)
    assert warm.cycles == reference.cycles
    assert warm.return_value == reference.return_value
    # zero warmup work: segments re-compile()d from cached source, no
    # translation, no timing replays
    assert warm.jit_segments == 0
    assert warm.block_cache_misses == 0
    assert second._segment_jit.preloaded > 0
    assert second._segment_jit.compiled == 0


#: a branchy loop body (several segments) so a trace superblock can
#: form once the hot edge crosses its own warmup threshold
DIAMOND_KERNEL = """
double bench(int loop, int n) {
    int l; int i; double q;
    q = 0.0;
    for (l = 0; l < loop; l++) {
        for (i = 0; i < n; i++) {
            if (i & 1) q = q + 1.5;
            else q = q - 0.5;
        }
    }
    return q;
}
"""


def _simulate_sb(executable, args):
    return repro.simulate(
        executable,
        "bench",
        args=args,
        options=repro.SimOptions(
            cache=DirectMappedCache(), superblock=True
        ),
    )


def test_promoting_preloaded_segment_keeps_counters_disjoint(store):
    # cold process: enough iterations to compile segments, too few for
    # the edge profile to trigger trace promotion
    target = load_target("r2000")
    first = repro.compile_c(DIAMOND_KERNEL, target, OPTIONS)
    _simulate_sb(first, (2, 20))
    assert first._segment_jit.compiled > 0
    assert first._segment_jit.superblocks == 0

    # warm process: segments preload from disk, then a long run promotes
    # one of those *preloaded* segments into a superblock — the
    # preloaded/compiled split must not move (promotion is neither a
    # preload nor a fresh segment translation)
    second = repro.compile_c(DIAMOND_KERNEL, target, OPTIONS)
    reference = _simulate_sb(second, (3, 400))
    jit = second._segment_jit
    preloaded = jit.preloaded
    assert preloaded > 0
    assert jit.compiled == 0
    assert jit.superblocks > 0
    assert jit.sb_preloaded == 0  # promoted here, not preloaded as a trace
    assert jit.preloaded == preloaded

    # and the promoted-trace state round-trips: a third "process"
    # preloads the trace itself (sb_preloaded), again without touching
    # compiled
    third = repro.compile_c(DIAMOND_KERNEL, target, OPTIONS)
    warm = _simulate_sb(third, (3, 400))
    assert warm.cycles == reference.cycles
    assert warm.return_value == reference.return_value
    assert third._segment_jit.sb_preloaded > 0
    assert third._segment_jit.superblocks == 0
    assert third._segment_jit.compiled == 0


# -- configuration ---------------------------------------------------------


def test_repro_cache_zero_disables(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    try:
        store = configure()  # re-read the environment
        assert not store.enabled
        assert store.root == tmp_path
        clear_target_cache()
        load_target("toyp")
        repro.compile_c(KERNEL, "toyp", OPTIONS)
        assert store.counters() == {
            "hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
        }
        assert not any(tmp_path.iterdir())
    finally:
        clear_target_cache()
        monkeypatch.undo()
        configure()


def test_store_survives_unpicklable_values(tmp_path):
    store = ArtifactCache(root=tmp_path, enabled=True)
    key = store.key("x")
    assert not store.put("target", key, lambda: None)  # closure
    assert store.get("target", key) is None
    assert store.writes == 0


def test_key_parts_are_framed(tmp_path):
    store = ArtifactCache(root=tmp_path, enabled=True, salt="s")
    assert store.key("ab", "c") != store.key("a", "bc")
    assert store.key("a") != store.key("a", "")


def test_atomic_publication_leaves_no_temp_files(store):
    target = load_target("i860")
    repro.compile_c(KERNEL, target, OPTIONS)
    leftovers = [
        path
        for path in store.root.rglob("*")
        if path.is_file() and path.name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_target_key_depends_on_maril_source(store):
    # the key derivation really consumes the source text
    assert store.key(
        "target", "toyp", maril_source("toyp")
    ) != store.key("target", "toyp", maril_source("toyp") + " ")
