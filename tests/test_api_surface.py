"""Lint for the public API surface.

``repro.api`` is the stable contract; ``import repro`` re-exports a
convenience subset (some of it lazily, through PEP-562 ``__getattr__``).
These tests keep the three views consistent so a new export cannot land
in one place and silently miss the others:

* ``repro.api.__all__`` is sorted and duplicate-free, and every name in
  it actually resolves;
* everything ``repro.__all__`` advertises resolves too — including the
  lazy names, which this exercises through the ``__getattr__`` hook;
* the convenience surface is a subset of the stable contract;
* the serve surface (schema types, ``ServeOptions``, ``serve_app``) is
  reachable through both.
"""

import repro
import repro.api as api

#: the service surface the redesign added; must stay in both views
SERVE_NAMES = ("ServeOptions", "Service", "serve_app")
SERVE_SCHEMA_NAMES = (
    "CompileRequest",
    "CompileResponse",
    "ExplainRequest",
    "ExplainResponse",
    "RunRequest",
    "RunResponse",
    "compile_options_from_json",
    "sim_options_from_json",
)


def test_api_all_is_sorted_and_unique():
    assert api.__all__ == sorted(api.__all__), (
        "repro.api.__all__ must be kept sorted; expected order:\n"
        + "\n".join(sorted(api.__all__))
    )
    assert len(api.__all__) == len(set(api.__all__))


def test_api_all_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_repro_all_resolves_including_lazy_exports():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    # every lazy name is advertised, and the hook resolves it to the
    # same object the source module defines
    import importlib

    for name, module_name in repro._LAZY_EXPORTS.items():
        assert name in repro.__all__, name
        module = importlib.import_module(module_name)
        assert getattr(repro, name) is getattr(module, name)


def test_repro_all_is_subset_of_api_contract():
    convenience = set(repro.__all__) - {"__version__"}
    missing = convenience - set(api.__all__)
    assert not missing, (
        f"names exported from `import repro` but absent from the stable "
        f"contract repro.api.__all__: {sorted(missing)}"
    )


def test_serve_surface_exported_everywhere():
    for name in SERVE_NAMES:
        assert name in repro.__all__, name
        assert name in api.__all__, name
        assert getattr(repro, name) is getattr(api, name)
    for name in SERVE_SCHEMA_NAMES:
        assert name in api.__all__, name
        import repro.serve as serve

        assert getattr(api, name) is getattr(serve, name)


def test_unknown_attribute_still_raises():
    try:
        repro.definitely_not_an_export
    except AttributeError as exc:
        assert "definitely_not_an_export" in str(exc)
    else:
        raise AssertionError("expected AttributeError")


def test_request_error_in_taxonomy_everywhere():
    from repro.errors import RequestError

    assert repro.RequestError is RequestError
    assert api.RequestError is RequestError
    assert issubclass(RequestError, repro.MarionError)
