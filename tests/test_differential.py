"""Differential testing: random C-subset programs, compiled and simulated,
against a direct Python evaluation with C semantics.

This exercises the entire stack — front end, glue, selection, scheduling,
allocation, linking, simulation — on shapes no hand-written test covers.
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.sim.executor import _int_div, _int_mod, _wrap32

# -- random integer expressions -------------------------------------------------

_SMALL = st.integers(min_value=-100, max_value=100)


@st.composite
def int_expr(draw, depth=0):
    """(c_text, python_eval(a, b)) pairs with identical C semantics."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["a", "b", "lit"]))
        if leaf == "a":
            return "a", lambda a, b: a
        if leaf == "b":
            return "b", lambda a, b: b
        value = draw(_SMALL)
        return str(value), lambda a, b, v=value: v

    op = draw(
        st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"])
    )
    left_text, left_fn = draw(int_expr(depth=depth + 1))
    right_text, right_fn = draw(int_expr(depth=depth + 1))

    if op in ("/", "%"):
        # make the denominator provably nonzero and positive
        text = f"({left_text} {op} (({right_text} & 7) + 1))"

        def fn(a, b, lf=left_fn, rf=right_fn, o=op):
            denominator = (_wrap32(rf(a, b)) & 7) + 1
            numerator = _wrap32(lf(a, b))
            return _int_div(numerator, denominator) if o == "/" else _int_mod(
                numerator, denominator
            )

        return text, fn
    if op in ("<<", ">>"):
        shift = draw(st.integers(min_value=0, max_value=12))
        text = f"({left_text} {op} {shift})"

        def fn(a, b, lf=left_fn, s=shift, o=op):
            value = _wrap32(lf(a, b))
            return _wrap32(value << s) if o == "<<" else value >> s

        return text, fn

    text = f"({left_text} {op} {right_text})"
    table = {
        "+": lambda x, y: _wrap32(x + y),
        "-": lambda x, y: _wrap32(x - y),
        "*": lambda x, y: _wrap32(x * y),
        "&": lambda x, y: x & y,
        "|": lambda x, y: x | y,
        "^": lambda x, y: x ^ y,
    }

    def fn(a, b, lf=left_fn, rf=right_fn, o=op):
        return table[o](_wrap32(lf(a, b)), _wrap32(rf(a, b)))

    return text, fn


@given(int_expr(), _SMALL, _SMALL, st.sampled_from(["toyp", "r2000"]))
@settings(max_examples=40, deadline=None)
def test_random_expression_matches_python(expr, a, b, target):
    text, reference = expr
    source = f"int f(int a, int b) {{ return {text}; }}"
    executable = repro.compile_c(source, target)
    result = repro.simulate(executable, "f", args=(a, b), options=repro.SimOptions(model_timing=False))
    assert result.return_value["int"] == _wrap32(reference(a, b))


# -- random branchy accumulation loops ---------------------------------------------


@st.composite
def loop_program(draw):
    comparisons = ["<", "<=", ">", ">=", "==", "!="]
    relop = draw(st.sampled_from(comparisons))
    threshold = draw(st.integers(min_value=-10, max_value=10))
    step_add = draw(st.integers(min_value=1, max_value=5))
    mulitplier = draw(st.integers(min_value=-3, max_value=3))
    source = f"""
    int f(int n) {{
        int i;
        int s = 0;
        for (i = 0; i < n; i++) {{
            if (i % 7 - 3 {relop} {threshold}) {{
                s = s + i * {mulitplier};
            }} else {{
                s = s - {step_add};
            }}
        }}
        return s;
    }}
    """

    def reference(n):
        import operator

        table = {
            "<": operator.lt,
            "<=": operator.le,
            ">": operator.gt,
            ">=": operator.ge,
            "==": operator.eq,
            "!=": operator.ne,
        }
        s = 0
        for i in range(n):
            lhs = _int_mod(i, 7) - 3
            if table[relop](lhs, threshold):
                s = _wrap32(s + _wrap32(i * mulitplier))
            else:
                s = _wrap32(s - step_add)
        return s

    return source, reference


@given(loop_program(), st.integers(min_value=0, max_value=40),
       st.sampled_from(["postpass", "ips", "rase"]))
@settings(max_examples=25, deadline=None)
def test_random_loop_matches_python(program, n, strategy):
    source, reference = program
    executable = repro.compile_c(source, "r2000", repro.CompileOptions(strategy=strategy))
    result = repro.simulate(executable, "f", args=(n,), options=repro.SimOptions(model_timing=False))
    assert result.return_value["int"] == reference(n)


# -- random double expressions -----------------------------------------------------


@st.composite
def double_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["x", "y", "lit"]))
        if leaf == "x":
            return "x", lambda x, y: x
        if leaf == "y":
            return "y", lambda x, y: y
        value = draw(
            st.floats(min_value=-8, max_value=8, allow_nan=False).map(
                lambda v: round(v, 3)
            )
        )
        return repr(value), lambda x, y, v=value: v
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_fn = draw(double_expr(depth=depth + 1))
    right_text, right_fn = draw(double_expr(depth=depth + 1))
    table = {"+": lambda p, q: p + q, "-": lambda p, q: p - q, "*": lambda p, q: p * q}
    return (
        f"({left_text} {op} {right_text})",
        lambda x, y, lf=left_fn, rf=right_fn, o=op: table[o](lf(x, y), rf(x, y)),
    )


@given(
    double_expr(),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.sampled_from(["r2000", "m88000", "i860"]),
)
@settings(max_examples=30, deadline=None)
def test_random_double_expression_bit_exact(expr, x, target):
    text, reference = expr
    source = f"double f(double x) {{ double y = 0.5; return {text}; }}"
    executable = repro.compile_c(source, target)
    result = repro.simulate(executable, "f", args=(x,), options=repro.SimOptions(model_timing=False))
    assert result.return_value["double"] == reference(x, 0.5)
