"""The parallel evaluation grid: deterministic ordering, the serial
fallback, job-count resolution, and — the property everything else
rests on — identical table rows at jobs=1 and jobs=4."""

import pytest

from repro.eval.grid import (
    GridOptions,
    GridTask,
    resolve_jobs,
    resolve_timeout,
    run_grid,
)
from repro.eval.table4 import measure as table4_measure
from repro.workloads import kernel_by_id


def _square(x):
    return x * x


def _fail(x):
    raise RuntimeError(f"unit {x} failed")


def _tasks(values):
    return [GridTask(f"square/{i}", _square, (i,)) for i in values]


def test_run_grid_serial_preserves_order():
    results = run_grid(_tasks(range(6)), GridOptions(jobs=1))
    assert results == [0, 1, 4, 9, 16, 25]


def test_run_grid_parallel_preserves_submission_order():
    results = run_grid(_tasks(range(8)), GridOptions(jobs=4))
    assert results == [i * i for i in range(8)]


def test_run_grid_accepts_tuples_and_callables():
    results = run_grid(
        [(_square, (3,)), lambda: "bare"], GridOptions(jobs=1)
    )
    assert results == [9, "bare"]


def test_run_grid_rejects_duplicate_keys():
    with pytest.raises(ValueError, match="duplicate grid key"):
        run_grid(
            [GridTask("same", _square, (1,)), GridTask("same", _square, (2,))],
            GridOptions(jobs=1),
        )


def test_grid_task_key_comes_first():
    with pytest.raises(TypeError, match="key"):
        GridTask(_square, ("not-a-key",))  # pre-1.1 argument order


def test_run_grid_propagates_worker_exception():
    with pytest.raises(RuntimeError, match="unit 2 failed"):
        run_grid([GridTask("fail/2", _fail, (2,))], GridOptions(jobs=1))
    with pytest.raises(RuntimeError, match="unit 5 failed"):
        run_grid(
            [GridTask("sq/1", _square, (1,)), GridTask("fail/5", _fail, (5,))],
            GridOptions(jobs=2),
        )


def test_resolve_jobs_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_env_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


def test_resolve_jobs_floor(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1
    assert resolve_jobs(None) >= 1


def test_resolve_timeout_env(monkeypatch):
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "2.5")
    assert resolve_timeout(None) == 2.5
    assert resolve_timeout(9.0) == 9.0
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "")
    assert resolve_timeout(None) is None
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "soon")
    with pytest.raises(ValueError, match="REPRO_UNIT_TIMEOUT"):
        resolve_timeout(None)


def test_resolve_timeout_nonpositive_means_unlimited():
    assert resolve_timeout(0) is None
    assert resolve_timeout(-1.0) is None


def test_grid_options_validates_failure_mode():
    with pytest.raises(ValueError, match="failures"):
        GridOptions(failures="ignore")


def test_jobs_parity_on_livermore_subset():
    """jobs=1 and jobs=4 produce identical Table 4 rows — cycles,
    checksums, and row ordering — on a scaled-down kernel subset."""
    kernels = [kernel_by_id(k) for k in (1, 12)]
    serial = table4_measure(kernels=kernels, scale=0.05, jobs=1)
    parallel = table4_measure(kernels=kernels, scale=0.05, jobs=4)
    assert list(serial.runs) == list(parallel.runs)
    for kernel_id, by_strategy in serial.runs.items():
        assert list(by_strategy) == list(parallel.runs[kernel_id])
        for strategy, run in by_strategy.items():
            twin = parallel.runs[kernel_id][strategy]
            assert run.actual_cycles == twin.actual_cycles
            assert run.estimated_cycles == twin.estimated_cycles
            assert run.instructions == twin.instructions
            assert run.code_size == twin.code_size
            assert run.checksum == twin.checksum
