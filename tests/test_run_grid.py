"""The parallel evaluation grid: deterministic ordering, the serial
fallback, job-count resolution, and — the property everything else
rests on — identical table rows at jobs=1 and jobs=4."""

import os

import pytest

from repro.eval.grid import GridTask, resolve_jobs, run_grid
from repro.eval.table4 import measure as table4_measure
from repro.workloads import kernel_by_id


def _square(x):
    return x * x


def _fail(x):
    raise RuntimeError(f"unit {x} failed")


def test_run_grid_serial_preserves_order():
    results = run_grid([GridTask(_square, (i,)) for i in range(6)], jobs=1)
    assert results == [0, 1, 4, 9, 16, 25]


def test_run_grid_parallel_preserves_submission_order():
    results = run_grid([GridTask(_square, (i,)) for i in range(8)], jobs=4)
    assert results == [i * i for i in range(8)]


def test_run_grid_accepts_tuples_and_callables():
    results = run_grid(
        [(_square, (3,)), lambda: "bare"], jobs=1
    )
    assert results == [9, "bare"]


def test_run_grid_propagates_worker_exception():
    with pytest.raises(RuntimeError, match="unit 2 failed"):
        run_grid([GridTask(_fail, (2,))], jobs=1)
    with pytest.raises(RuntimeError, match="unit 5 failed"):
        run_grid(
            [GridTask(_square, (1,)), GridTask(_fail, (5,))], jobs=2
        )


def test_resolve_jobs_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_env_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


def test_resolve_jobs_floor(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1
    assert resolve_jobs(None) >= 1


def test_jobs_parity_on_livermore_subset():
    """jobs=1 and jobs=4 produce identical Table 4 rows — cycles,
    checksums, and row ordering — on a scaled-down kernel subset."""
    kernels = [kernel_by_id(k) for k in (1, 12)]
    serial = table4_measure(kernels=kernels, scale=0.05, jobs=1)
    parallel = table4_measure(kernels=kernels, scale=0.05, jobs=4)
    assert list(serial.runs) == list(parallel.runs)
    for kernel_id, by_strategy in serial.runs.items():
        assert list(by_strategy) == list(parallel.runs[kernel_id])
        for strategy, run in by_strategy.items():
            twin = parallel.runs[kernel_id][strategy]
            assert run.actual_cycles == twin.actual_cycles
            assert run.estimated_cycles == twin.estimated_cycles
            assert run.instructions == twin.instructions
            assert run.code_size == twin.code_size
            assert run.checksum == twin.checksum
