"""Unit tests for IL generation from checked C ASTs."""

import pytest

from repro.errors import CSemanticError
from repro.frontend import compile_to_il
from repro.il.node import count_parents
from repro.il.ops import ILOp


def blocks_of(source, name):
    program = compile_to_il(source)
    return program.function(name).blocks


def test_scalar_locals_become_global_pseudos():
    program = compile_to_il("int f(int x) { int y = x; return y; }")
    fn = program.function("f")
    names = {p.name for p in fn.pseudos if p.name}
    assert {"x", "y"} <= names
    assert all(p.is_global for p in fn.pseudos if p.name in ("x", "y"))


def test_local_array_gets_frame_slot():
    program = compile_to_il("double f(void) { double a[10]; a[0] = 1.0; return a[0]; }")
    fn = program.function("f")
    assert fn.frame_slots and fn.frame_slots[0].size == 80


def test_global_array_recorded():
    program = compile_to_il("int g[7]; void f(void) { g[0] = 1; }")
    assert program.globals["g"].count == 7
    assert program.globals["g"].size == 28


def test_float_literals_pooled_and_deduplicated():
    program = compile_to_il(
        "double f(void) { return 1.5; } double g(void) { return 1.5 + 2.5; }"
    )
    pool = [name for name in program.globals if name.startswith(".fp")]
    assert len(pool) == 2  # 1.5 shared, 2.5 separate


def test_if_else_control_flow():
    blocks = blocks_of(
        "int f(int x) { if (x > 0) { x = 1; } else { x = 2; } return x; }", "f"
    )
    # entry + then + else + join
    assert len(blocks) == 4
    entry = blocks[0]
    assert entry.statements[-2].op is ILOp.CJUMP
    assert entry.statements[-1].op is ILOp.JUMP


def test_while_loop_depths():
    blocks = blocks_of(
        "void f(int n) { int i = 0; while (i < n) { i = i + 1; } }", "f"
    )
    depths = {b.label: b.loop_depth for b in blocks}
    assert max(depths.values()) == 1
    assert depths[[l for l in depths if l == "f"][0]] == 0


def test_nested_loop_depth():
    blocks = blocks_of(
        "void f(int n) { int i; int j;"
        " for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { } } }",
        "f",
    )
    assert max(b.loop_depth for b in blocks) == 2


def test_short_circuit_and():
    blocks = blocks_of(
        "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }",
        "f",
    )
    cjumps = [
        s for b in blocks for s in b.statements if s.op is ILOp.CJUMP
    ]
    assert len(cjumps) == 2  # one test per operand


def test_value_context_comparison_materializes_branches():
    blocks = blocks_of("int f(int a, int b) { int c = a < b; return c; }", "f")
    cjumps = [s for b in blocks for s in b.statements if s.op is ILOp.CJUMP]
    assert cjumps  # lowered through control flow, not a set instruction


def test_break_and_continue():
    blocks = blocks_of(
        "int f(int n) { int i; int s = 0;"
        " for (i = 0; i < n; i++) {"
        "   if (i == 3) { continue; }"
        "   if (i == 7) { break; }"
        "   s = s + i; }"
        " return s; }",
        "f",
    )
    assert len(blocks) >= 8


def test_two_dimensional_indexing_row_major():
    program = compile_to_il(
        "double a[4][8]; double f(int i, int j) { return a[i][j]; }"
    )
    fn = program.function("f")
    ret = fn.blocks[0].statements[-1]
    load = ret.kids[0]
    assert load.op is ILOp.INDIR
    # address tree contains a multiply by the row stride 8*8=64
    strides = [
        n.value
        for n in load.kids[0].walk()
        if n.op is ILOp.CNST and isinstance(n.value, int)
    ]
    assert 64 in strides


def test_local_cse_shares_nodes():
    program = compile_to_il(
        "int g[10]; int f(int i) { return g[i + 1] + g[i + 1]; }"
    )
    fn = program.function("f")
    block = fn.blocks[0]
    counts = count_parents(block.statements)
    assert any(count >= 2 for count in counts.values())


def test_store_invalidates_load_cse():
    program = compile_to_il(
        "int g[4]; int f(int i) { int a = g[i]; g[i] = 0; return a + g[i]; }"
    )
    fn = program.function("f")
    loads = [
        n
        for stmt in fn.blocks[0].statements
        for n in stmt.walk()
        if n.op is ILOp.INDIR
    ]
    # the load after the store must be a distinct node from the one before
    assert len({id(n) for n in loads}) >= 2


def test_call_flattened_to_own_statement():
    program = compile_to_il(
        "int g(int a) { return a; }"
        " int f(int x) { return g(x) + g(x + 1); }"
    )
    fn = program.function("f")
    call_statements = [
        s
        for b in fn.blocks
        for s in b.statements
        if s.op is ILOp.SETREG and s.kids[0].op is ILOp.CALL
    ]
    assert len(call_statements) == 2


def test_void_call_statement():
    program = compile_to_il(
        "void g(void) { } void f(void) { g(); }"
    )
    fn = program.function("f")
    assert any(
        s.op is ILOp.CALL for b in fn.blocks for s in b.statements
    )


def test_incdec_value_context_rejected():
    with pytest.raises(CSemanticError, match="discarded"):
        compile_to_il("int f(int x) { return x++; }")


def test_missing_return_synthesized():
    program = compile_to_il("int f(int x) { if (x) { return 1; } }")
    fn = program.function("f")
    rets = [s for b in fn.blocks for s in b.statements if s.op is ILOp.RET]
    assert len(rets) == 2


def test_unreachable_blocks_pruned():
    program = compile_to_il(
        "int f(void) { return 1; }"
    )
    fn = program.function("f")
    assert all(b.predecessors or b is fn.entry for b in fn.blocks)


def test_too_many_initializers_rejected():
    with pytest.raises(CSemanticError, match="too many"):
        compile_to_il("int a[2] = {1, 2, 3};")


def test_global_scalar_reads_through_memory():
    program = compile_to_il("int g; int f(void) { return g; }")
    fn = program.function("f")
    ret = fn.blocks[0].statements[-1]
    assert ret.kids[0].op is ILOp.INDIR
    assert ret.kids[0].kids[0].op is ILOp.ADDRG
