"""The i860's explicitly advanced pipelines and dual-operation packing.

Reproduces the scenario of the paper's Figure 7: a fragment with a
multiply feeding an add chain is compiled for the i860, whose floating
point unit Marion models as a long instruction word of multiplier fields
(M1/M2/M3), adder fields (A1/A2/A3) and the write-back bus (FWB).  The
printed schedule shows sub-operations of both pipelines *packed* into the
same cycle — the dual-operation instructions (pfam/m12apm and friends) the
machine is famous for — with the latches between stages handled as
temporal registers by the scheduler's Rule 1.

Run:  python examples/i860_dual_operation.py
"""

import repro
from repro.backend.scheduler import ListScheduler
from repro.eval.figure7 import FRAGMENT, figure7

KERNEL = """
double a[256], b[256], c[256];

void fill(int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = (double)i * 0.5;
        b[i] = (double)(n - i) * 0.25;
    }
}

double fma_loop(int n) {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i = i + 2) {
        c[i]     = a[i] * b[i]         + (a[i] + b[i]);
        c[i + 1] = a[i + 1] * b[i + 1] + (a[i + 1] + b[i + 1]);
    }
    for (i = 0; i < n; i++) { s = s + c[i]; }
    return s;
}

double run(int n) { fill(n); return fma_loop(n); }
"""


def packed_cycles(executable, function):
    """Count cycles carrying >1 operation in the function's schedule."""
    machine_fn = executable.machine_program.function(function)
    scheduler = ListScheduler(executable.target)
    packed = total = 0
    for block in machine_fn.blocks:
        result = scheduler.schedule_block(block.instrs)
        per_cycle = {}
        for instr in result.instrs:
            per_cycle.setdefault(result.cycle_of(instr), []).append(instr)
        packed += sum(1 for ops in per_cycle.values() if len(ops) > 1)
        total += len(per_cycle)
    return packed, total


def main() -> None:
    # 1. the paper's figure, regenerated
    print(figure7())

    # 2. a dual-operation-rich loop: how dense is the packing?
    executable = repro.compile_c(KERNEL, "i860", repro.CompileOptions(strategy="postpass"))
    result = repro.simulate(executable, "run", args=(128,))
    packed, total = packed_cycles(executable, "fma_loop")
    print()
    print(
        f"fma_loop on the i860: {result.cycles} cycles for "
        f"{result.instructions} instructions "
        f"(IPC {result.instructions / result.cycles:.2f})"
    )
    print(
        f"schedule density: {packed} of {total} cycles carry more than one "
        "operation (core+fp dual issue and fp long instructions)"
    )
    print(f"checksum: {result.return_value['double']}")


if __name__ == "__main__":
    main()
