"""Retargeting: bring up a brand-new machine from a Maril description.

This is the paper's core thesis — a code generator with a good instruction
scheduler built *from a description*.  We define "RISC-X", a fictional
dual-issue machine (separate integer and memory pipes), entirely in Maril,
build a back end for it with ``build_target``, and immediately compile and
simulate real C code, comparing against a single-issue variant of the same
description to show the scheduler exploiting the second pipe.

Run:  python examples/retarget_new_machine.py
"""

import repro
from repro.cgg import build_target

# A complete machine description for a new target.  Deviating from RISC-X
# to your own design means editing this string — nothing else.
RISCX_MARIL = r"""
declare {
    %reg r[0:15] (int);
    %reg d[0:7] (double);
    %equiv d[0] r[0];
    %resource ALU;                  /* integer pipe */
    %resource MEMPORT;              /* separate load/store pipe: dual issue */
    %resource FP1, FP2, FP3;
    %def c16 [-32768:32767];
    %def c32 [-2147483648:2147483647] +abs;
    %label rlab [-32768:32767] +relative;
    %label flab [-8388608:8388607] +abs;
    %memory m[0:268435455];
}

cwvm {
    %general (int) r;
    %general (double) d;
    %allocable r[1:11], d[1:3];
    %calleesave r[8:11];
    %sp r[15] +down;
    %fp r[14] +down;
    %retaddr r[13];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %arg (double) d[1] 1;
    %result r[2] (int);
    %result d[1] (double);
}

instr {
    %instr li r, r[0], #c16 (int) {$1 = $3;} [ALU] (1,1,0);
    %instr la r, #c32 (int) {$1 = $2;} [ALU] (1,1,0);
    %instr addi r, r, #c16 (int) {$1 = $2 + $3;} [ALU] (1,1,0);
    %instr add r, r, r (int) {$1 = $2 + $3;} [ALU] (1,1,0);
    %instr sub r, r, r (int) {$1 = $2 - $3;} [ALU] (1,1,0);
    %instr mul r, r, r (int) {$1 = $2 * $3;} [ALU; ALU; ALU] (1,3,0);
    %instr div r, r, r (int) {$1 = $2 / $3;}
        [ALU; ALU; ALU; ALU; ALU; ALU; ALU; ALU] (1,8,0);
    %instr rem r, r, r (int) {$1 = $2 % $3;}
        [ALU; ALU; ALU; ALU; ALU; ALU; ALU; ALU] (1,8,0);
    %instr sll r, r, #c16 (int) {$1 = $2 << $3;} [ALU] (1,1,0);
    %instr sra r, r, #c16 (int) {$1 = $2 >> $3;} [ALU] (1,1,0);
    %instr and r, r, r (int) {$1 = $2 & $3;} [ALU] (1,1,0);
    %instr or r, r, r (int) {$1 = $2 | $3;} [ALU] (1,1,0);
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [ALU] (1,1,0);
    %instr cmpi r, r, #c16 (int) {$1 = $2 :: $3;} [ALU] (1,1,0);
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [ALU] (1,1,0);
    %instr fcmp r, d, d {$1 = $2 :: $3;} [FP1; FP2] (1,2,0);

    /* the second pipe: loads and stores issue alongside ALU work */
    %instr ld r, r, #c16 (int) {$1 = m[$2 + $3];} [MEMPORT; MEMPORT] (1,2,0);
    %instr st r, r, #c16 (int) {m[$2 + $3] = $1;} [MEMPORT; MEMPORT] (1,1,0);
    %instr ld.d d, r, #c16 (double) {$1 = m[$2 + $3];}
        [MEMPORT; MEMPORT] (1,2,0);
    %instr st.d d, r, #c16 (double) {m[$2 + $3] = $1;}
        [MEMPORT; MEMPORT] (1,1,0);

    %instr fadd d, d, d {$1 = $2 + $3;} [FP1; FP2; FP3] (1,3,0);
    %instr fsub d, d, d {$1 = $2 - $3;} [FP1; FP2; FP3] (1,3,0);
    %instr fmul d, d, d {$1 = $2 * $3;} [FP1; FP2; FP2; FP3] (1,4,0);
    %instr fdiv d, d, d {$1 = $2 / $3;}
        [FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1; FP1] (1,10,0);
    %instr cvt.d d, r {$1 = double($2);} [FP1; FP2] (1,2,0);
    %instr cvt.w r, d (int) {$1 = int($2);} [FP1; FP2] (1,2,0);

    %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [ALU] (1,2,1);
    %instr bne0 r, #rlab {if ($1 != 0) goto $2;} [ALU] (1,2,1);
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [ALU] (1,2,1);
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [ALU] (1,2,1);
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [ALU] (1,2,1);
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [ALU] (1,2,1);
    %instr jmp #rlab {goto $1;} [ALU] (1,2,1);
    %instr call #flab {call $1;} [ALU; ALU] (1,2,0);
    %instr ret {ret;} [ALU] (1,2,1);
    %instr nop {;} [ALU] (1,1,0);

    %move [x.movs] or r, r, r[0] {$1 = $2;} [ALU] (1,1,0);
    %move fmov d, d {$1 = $2;} [FP1] (1,1,0);

    %glue r, r, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue r, r, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue d, d, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue d, d, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue d, d, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue d, d, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue d, d, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
}
"""

SOURCE = """
double a[128], b[128];

double saxpy(int n) {
    int i;
    double s = 0.0;
    for (i = 0; i < n; i++) {
        a[i] = (double)i * 0.5;
        b[i] = (double)(n - i) * 0.25;
    }
    for (i = 0; i < n; i++) {
        s = s + a[i] * 2.0 + b[i];
    }
    return s;
}
"""


def main() -> None:
    # build the dual-issue machine straight from the description text
    riscx = build_target(RISCX_MARIL, name="risc-x")

    # ... and a single-issue variant: the memory pipe shares the ALU
    single = build_target(
        RISCX_MARIL.replace("[MEMPORT; MEMPORT]", "[ALU,MEMPORT; MEMPORT]"),
        name="risc-x-single",
    )

    print(f"{'machine':16s} {'cycles':>8s} {'instructions':>13s}  result")
    for target in (riscx, single):
        executable = repro.compile_c(SOURCE, target, repro.CompileOptions(strategy="ips"))
        result = repro.simulate(executable, "saxpy", args=(96,))
        print(
            f"{target.name:16s} {result.cycles:8d} {result.instructions:13d}"
            f"  {result.return_value['double']:.4f}"
        )
    print(
        "\nThe same description with a shared issue slot is measurably "
        "slower: the scheduler was already overlapping loads with ALU work "
        "on the dual-issue variant."
    )


if __name__ == "__main__":
    main()
