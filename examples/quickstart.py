"""Quickstart: compile a C function with Marion and run it on the
simulated MIPS R2000.

Shows the three-stage workflow of the public API:

1. ``load_target`` builds a back end from a bundled Maril description;
2. ``compile_c`` runs the front end, glue, selection, a code generation
   strategy (scheduling + graph-coloring allocation) and linking;
3. ``simulate`` executes the result on the cycle-level pipeline model.

Run:  python examples/quickstart.py
"""

import repro
from repro.backend.asmprinter import format_mfunction

SOURCE = """
double samples[256];

void record(int n) {
    int i;
    for (i = 0; i < n; i++) {
        samples[i] = (double)i * 0.125;
    }
}

double smooth(int n) {
    int i;
    double acc = 0.0;
    for (i = 1; i < n - 1; i++) {
        acc = acc + 0.25 * samples[i - 1]
                  + 0.50 * samples[i]
                  + 0.25 * samples[i + 1];
    }
    return acc;
}

double main_entry(int n) {
    record(n);
    return smooth(n);
}
"""


def main() -> None:
    target = repro.load_target("r2000")
    print(f"target: {target.name} "
          f"({len(target.instructions)} instructions, "
          f"{len(target.cwvm.allocable)} allocable registers)")

    for strategy in ("postpass", "ips", "rase"):
        executable = repro.compile_c(SOURCE, target, repro.CompileOptions(strategy=strategy))
        result = repro.simulate(executable, "main_entry", args=(128,))
        print(
            f"{strategy:9s}: result={result.return_value['double']:14.6f}  "
            f"cycles={result.cycles:6d}  instructions={result.instructions}"
        )

    # show the scheduled assembly of the hot function (postpass)
    executable = repro.compile_c(SOURCE, target, repro.CompileOptions(strategy="postpass"))
    print()
    print(format_mfunction(executable.machine_program.function("smooth")))


if __name__ == "__main__":
    main()
