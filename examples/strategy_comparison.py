"""Compare the three code generation strategies (paper section 2, [BEH91b]).

Marion separates the *strategy* — when scheduling and register allocation
run and what they tell each other — from the rest of the code generator.
This example compiles the same computation-intensive code under Postpass,
IPS and RASE on two register files (the MIPS R2000's 24 allocable integer
registers, and the deliberately tiny 8-register TOYP), showing the paper's
trade-off:

* with plenty of registers, scheduling before allocation (IPS/RASE) wins:
  the schedule is not constrained by reused registers;
* with very few registers, prepass scheduling stretches live ranges and
  causes spills the postpass ordering avoids.

Run:  python examples/strategy_comparison.py
"""

import repro
from repro.eval.claims import UNROLLED_HYDRO


def measure(target_name: str) -> None:
    print(f"--- {target_name} ---")
    print(f"{'strategy':10s} {'cycles':>8s} {'code size':>10s} {'spills':>7s}")
    for strategy in ("postpass", "ips", "rase"):
        executable = repro.compile_c(
            UNROLLED_HYDRO, target_name, repro.CompileOptions(strategy=strategy)
        )
        stats = executable.machine_program.stats["kernel"]
        result = repro.simulate(executable, "bench", args=(1, 256))
        print(
            f"{strategy:10s} {result.cycles:8d} "
            f"{executable.instruction_count():10d} "
            f"{stats.spilled_pseudos:7d}"
        )
    print()


def main() -> None:
    print("unrolled hydro fragment (large basic block, double precision)\n")
    measure("r2000")
    measure("toyp")
    print(
        "On the R2000 the prepass strategies win: the scheduler fills the\n"
        "floating point latencies before the allocator pins values to\n"
        "registers.  On the 8-register TOYP the same reordering stretches\n"
        "live ranges into spills, and Postpass pulls ahead — the\n"
        "interaction the RASE work [BEH91b] set out to balance."
    )


if __name__ == "__main__":
    main()
