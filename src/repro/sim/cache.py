"""A direct-mapped write-through data cache.

The paper's Table 4 attributes the gap between scheduler-estimated and
measured cycles mainly to cache misses ("Therefore, cache misses were not
considered").  This model recreates that effect: on a miss, the load's
result latency grows by the miss penalty.  Defaults follow an R2000-era
board-level direct-mapped data cache (8 KB, 16-byte lines, ~12-cycle
refill); the Livermore working sets overflow it the way the paper's did
the DECstation's.

Geometry is restricted to power-of-two sizes and line sizes so an access
is pure shift/mask arithmetic over a preallocated tag array — no
division, no dict.  The segment JIT inlines exactly this arithmetic into
generated code (reading :attr:`line_shift` / :attr:`set_mask` /
:attr:`tag_shift` / :attr:`tags` once per call), so the compiled fast
path and :meth:`access` are the same computation by construction.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

#: tag stored for a never-filled line; no real tag is negative because
#: every simulated address is bounds-checked non-negative before access
_EMPTY_TAG = -1


@dataclass
class DirectMappedCache:
    size: int = 8 * 1024
    line: int = 16
    miss_penalty: int = 12

    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.size % self.line:
            raise ValueError("cache size must be a multiple of the line size")
        if (
            self.size <= 0
            or self.line <= 0
            or self.size & (self.size - 1)
            or self.line & (self.line - 1)
        ):
            raise ValueError(
                "cache size and line size must be powers of two"
            )
        self._sets = self.size // self.line
        #: shift/mask decomposition of ``(address // line) % sets`` and
        #: ``address // size`` — read by generated JIT code
        self.line_shift = self.line.bit_length() - 1
        self.tag_shift = self.size.bit_length() - 1
        self.set_mask = self._sets - 1
        self.tags = array("q", [_EMPTY_TAG]) * self._sets

    def access(self, address: int) -> bool:
        """Touch ``address``; True on hit, False on miss (line is filled)."""
        tags = self.tags
        index = (address >> self.line_shift) & self.set_mask
        tag = address >> self.tag_shift
        if tags[index] == tag:
            self.hits += 1
            return True
        tags[index] = tag
        self.misses += 1
        return False

    def reset(self) -> None:
        self.tags = array("q", [_EMPTY_TAG]) * self._sets
        self.hits = 0
        self.misses = 0
