"""A direct-mapped write-through data cache.

The paper's Table 4 attributes the gap between scheduler-estimated and
measured cycles mainly to cache misses ("Therefore, cache misses were not
considered").  This model recreates that effect: on a miss, the load's
result latency grows by the miss penalty.  Defaults follow an R2000-era
board-level direct-mapped data cache (8 KB, 16-byte lines, ~12-cycle
refill); the Livermore working sets overflow it the way the paper's did
the DECstation's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DirectMappedCache:
    size: int = 8 * 1024
    line: int = 16
    miss_penalty: int = 12

    tags: dict[int, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.size % self.line:
            raise ValueError("cache size must be a multiple of the line size")
        self._sets = self.size // self.line

    def access(self, address: int) -> bool:
        """Touch ``address``; True on hit, False on miss (line is filled)."""
        line_index = (address // self.line) % self._sets
        tag = address // self.size
        if self.tags.get(line_index) == tag:
            self.hits += 1
            return True
        self.tags[line_index] = tag
        self.misses += 1
        return False

    def reset(self) -> None:
        self.tags.clear()
        self.hits = 0
        self.misses = 0
