"""In-order pipeline timing model.

Charges cycles to a dynamic instruction stream using the same Maril-derived
resource vectors, latencies, ``%aux`` overrides and packing classes the
scheduler used — but observed at run time, the way the hardware would:

* an instruction cannot issue before its operands are ready (register
  interlock; the DECstation's R3000-style behaviour);
* it cannot issue on a cycle where its resource vector collides with
  resources already committed (structural hazard, section 4.3);
* several instructions may issue on one cycle when resources are disjoint
  and packing classes intersect (dual-issue i860, sections 4.3/4.5);
* taken control transfers redirect the fetch stream after the producer's
  latency (delay-slot instructions issue in the gap);
* data-cache misses stretch a load's result latency.

This is the simulator's hottest loop (one :meth:`PipelineModel.issue` per
dynamic instruction), so everything static about an instruction is
*predecoded* once into a :class:`_Decoded` record — operand register
units, per-cycle composite resource masks (pool-free fast path), packing
classes, memory flags — and producer→consumer latencies are memoized per
(producer mnemonic, produced register, consumer instruction).
"""

from __future__ import annotations

from repro.backend.insts import MachineInstr, Reg
from repro.machine.registers import PhysReg
from repro.machine.resources import commit, conflicts
from repro.machine.target import TargetMachine
from repro.sim.cache import DirectMappedCache

#: per-cycle resource words live in a tagged ring (cycle tag + busy mask),
#: so the hot hazard scan is two list indexings instead of a dict probe.
#: The window is safe because scans never look below ``last_issue`` and
#: commits never reach more than a vector length past it — far less than
#: the ring size — so a stale slot can never alias a live cycle.
_RING = 1024
_RING_MASK = _RING - 1


class _Decoded:
    """Static per-instruction facts, computed once per instruction id."""

    __slots__ = (
        "use_units",
        "def_entries",
        "implicit_defs",
        "masks",
        "vector",
        "classes",
        "temporal_reads",
        "temporal_writes",
        "reads_memory",
        "writes_memory",
        "mnemonic",
        "lat_memo",
    )


class PipelineModel:
    """Charges cycles to a dynamic instruction stream (one per run)."""

    def __init__(
        self,
        target: TargetMachine,
        cache: DirectMappedCache | None = None,
        static: dict | None = None,
    ):
        self.target = target
        self.registers = target.registers
        self.cache = cache
        self.last_issue = 0
        self.redirect_floor = 0  # earliest issue after a taken transfer
        #: unit key -> (producer issue cycle, (mnemonic, produced reg) token)
        self.producers: dict = {}
        self.temporal_producers: dict[str, tuple[int, str]] = {}
        self.ring_cycle: list[int] = [-1] * _RING
        self.ring_mask: list[int] = [0] * _RING
        self.cycle_classes: dict[int, frozenset] = {}
        self.last_store_issue = -1
        self.last_load_issue = -1
        self._horizon = 0  # cycles below this have been pruned
        #: highest cycle holding any committed resource or packing class —
        #: cycles beyond it cannot conflict, so hazard scans stop there
        self._frontier = -1
        #: instr.id -> _Decoded.  ``static`` lets callers share one decode
        #: table across model instances (the simulator hoists it to the
        #: executable so repeated runs stop re-decoding the program); the
        #: table is only shareable between models of the *same* class —
        #: the accounting subclass stores a different ``lat_memo`` shape.
        self._static: dict[int, _Decoded] = {} if static is None else static
        #: producer mnemonic -> latency (temporal reads)
        self._mnemonic_latency: dict[str, int] = {}

    # -- predecode --------------------------------------------------------------

    def _unit_keys(self, reg) -> tuple[int, ...]:
        """Interned (file, unit) pairs: a single int hashes much faster."""
        return tuple(
            (file_id << 24) | unit
            for file_id, unit in self.registers.units_of(reg)
        )

    def _decode(self, instr: MachineInstr) -> _Decoded:
        """Build (and memoize) the static facts for one instruction."""
        desc = instr.desc
        unit_keys = self._unit_keys
        use_units = []
        for position in desc.use_operands:
            operand = instr.operands[position]
            if isinstance(operand, Reg) and isinstance(operand.reg, PhysReg):
                use_units.extend(unit_keys(operand.reg))
        for reg in instr.implicit_uses:
            use_units.extend(unit_keys(reg))
        # producer *tokens* are long-lived (mnemonic, reg) tuples: consumers
        # key their latency memo on the token's identity, which hashes as
        # an int instead of re-hashing a PhysReg on every operand check
        def_entries = []
        for position in desc.def_operands:
            operand = instr.operands[position]
            if isinstance(operand, Reg) and isinstance(operand.reg, PhysReg):
                def_entries.append(
                    (unit_keys(operand.reg), (desc.mnemonic, operand.reg))
                )

        decoded = _Decoded()
        decoded.use_units = tuple(use_units)
        decoded.def_entries = tuple(def_entries)
        decoded.implicit_defs = tuple(
            (unit_keys(reg), (desc.mnemonic, reg))
            for reg in instr.implicit_defs
        )
        decoded.lat_memo = {}
        fastpath = desc.vector_fastpath()
        decoded.masks = (
            None
            if fastpath is None
            else tuple(
                (offset, mask) for offset, mask in enumerate(fastpath) if mask
            )
        )
        decoded.vector = desc.resource_vector
        decoded.classes = desc.classes or None
        decoded.temporal_reads = desc.temporal_reads
        decoded.temporal_writes = desc.temporal_writes
        decoded.reads_memory = desc.reads_memory
        decoded.writes_memory = desc.writes_memory
        decoded.mnemonic = desc.mnemonic
        self._static[instr.id] = decoded
        return decoded

    # -- latency ---------------------------------------------------------------

    def _latency(self, mnemonic: str, produced_reg, consumer: MachineInstr) -> int:
        rule = self.target.aux_latency(mnemonic, consumer.desc.mnemonic)
        if rule is not None:
            position = rule.second_operand - 1
            if position < len(consumer.operands):
                operand = consumer.operands[position]
                if isinstance(operand, Reg) and operand.reg == produced_reg:
                    return rule.latency
        desc = self.target.instructions.get(mnemonic)
        return desc.latency if desc is not None else 1

    def _temporal_latency(self, mnemonic: str) -> int:
        latency = self._mnemonic_latency.get(mnemonic)
        if latency is None:
            desc = self.target.instructions.get(mnemonic)
            latency = desc.latency if desc is not None else 1
            self._mnemonic_latency[mnemonic] = latency
        return latency

    # -- main entry -----------------------------------------------------------

    def issue(self, instr: MachineInstr, mem_log) -> int:
        """Charge cycles for one executed instruction; returns issue cycle."""
        decoded = self._static.get(instr.id)
        if decoded is None:
            decoded = self._decode(instr)
        producers = self.producers
        producers_get = producers.get
        ring_cycle = self.ring_cycle
        ring_mask = self.ring_mask

        # operand readiness (register interlock)
        start = self.last_issue
        if self.redirect_floor > start:
            start = self.redirect_floor
        lat_memo = decoded.lat_memo
        for unit in decoded.use_units:
            producer = producers_get(unit)
            if producer is None:
                continue
            p_issue, token = producer
            latency = lat_memo.get(id(token))
            if latency is None:
                latency = self._latency(token[0], token[1], instr)
                lat_memo[id(token)] = latency
            if p_issue + latency > start:
                start = p_issue + latency
        if decoded.temporal_reads:
            for name in decoded.temporal_reads:
                producer = self.temporal_producers.get(name)
                if producer is not None:
                    p_issue, p_mnemonic = producer
                    ready = p_issue + self._temporal_latency(p_mnemonic)
                    if ready > start:
                        start = ready

        # memory ordering
        if decoded.reads_memory and self.last_store_issue >= 0:
            if self.last_store_issue + 1 > start:
                start = self.last_store_issue + 1
        if decoded.writes_memory:
            if self.last_store_issue + 1 > start:
                start = self.last_store_issue + 1
            if self.last_load_issue > start:
                start = self.last_load_issue

        # structural hazards + packing classes.  Resources and packing
        # classes only exist at cycles <= _frontier, so the scan stops the
        # moment the candidate cycle passes it — the common case (issuing
        # at the stream frontier) does no dict lookups at all.
        classes = decoded.classes
        cycle_classes = self.cycle_classes
        cycle = start
        frontier = self._frontier
        masks = decoded.masks
        if masks is not None:
            # pool-free fast path: two list indexings per occupied cycle
            while cycle <= frontier:
                for offset, mask in masks:
                    at = cycle + offset
                    slot = at & _RING_MASK
                    if ring_cycle[slot] == at and ring_mask[slot] & mask:
                        break
                else:
                    if classes:
                        existing = cycle_classes.get(cycle)
                        if existing is not None and not (existing & classes):
                            cycle += 1
                            continue
                    break
                cycle += 1
            last = cycle
            for offset, mask in masks:
                at = cycle + offset
                slot = at & _RING_MASK
                if ring_cycle[slot] == at:
                    ring_mask[slot] |= mask
                else:
                    ring_cycle[slot] = at
                    ring_mask[slot] = mask
                last = at
        else:
            vector = decoded.vector
            while cycle <= frontier:
                conflict = False
                for offset, need in enumerate(vector):
                    at = cycle + offset
                    slot = at & _RING_MASK
                    busy = ring_mask[slot] if ring_cycle[slot] == at else 0
                    if conflicts(busy, need):
                        conflict = True
                        break
                if not conflict and classes:
                    existing = cycle_classes.get(cycle)
                    if existing is not None and not (existing & classes):
                        conflict = True
                if not conflict:
                    break
                cycle += 1
            last = cycle + len(vector) - 1
            for offset, need in enumerate(vector):
                at = cycle + offset
                slot = at & _RING_MASK
                busy = ring_mask[slot] if ring_cycle[slot] == at else 0
                ring_cycle[slot] = at
                ring_mask[slot] = commit(busy, need)
        if classes:
            existing = cycle_classes.get(cycle)
            cycle_classes[cycle] = (
                classes if existing is None else existing & classes
            )
        if last < cycle:
            last = cycle
        if last > frontier:
            self._frontier = last

        # memory + cache effects
        extra_latency = 0
        if mem_log:
            cache = self.cache
            for address, is_write, _size in mem_log:
                if cache is not None and not cache.access(address):
                    if not is_write:  # write-through: stores do not stall
                        extra_latency += cache.miss_penalty
                if is_write:
                    if cycle > self.last_store_issue:
                        self.last_store_issue = cycle
                else:
                    if cycle > self.last_load_issue:
                        self.last_load_issue = cycle

        # record produced values (producers store issue cycle; the
        # consumer adds the pair latency at use)
        for units, token in decoded.def_entries:
            entry = (cycle + extra_latency, token)
            for unit in units:
                producers[unit] = entry
        for units, token in decoded.implicit_defs:
            entry = (cycle, token)
            for unit in units:
                producers[unit] = entry
        if decoded.temporal_writes:
            mnemonic = decoded.mnemonic
            for name in decoded.temporal_writes:
                self.temporal_producers[name] = (cycle, mnemonic)

        self.last_issue = cycle
        if cycle - self._horizon > 256:
            self._prune(cycle)
        return cycle

    def transfer(self, instr: MachineInstr, issue_cycle: int) -> None:
        """A taken control transfer: fetch redirects after the latency."""
        self.redirect_floor = max(
            self.redirect_floor, issue_cycle + max(1, instr.desc.latency)
        )

    def _prune(self, cycle: int) -> None:
        """Drop class bookkeeping for long-past cycles (the resource ring
        is fixed-size and recycles itself)."""
        cutoff = cycle - 64
        self.cycle_classes = {
            c: k for c, k in self.cycle_classes.items() if c >= cutoff
        }
        self._horizon = cycle

    @property
    def cycles(self) -> int:
        return self.last_issue + 1


class AccountingPipelineModel(PipelineModel):
    """A :class:`PipelineModel` that attributes every cycle of issue-point
    advance to a hazard kind (``SimOptions(trace=True)`` selects it).

    The accounting identity: each :meth:`issue` call charges exactly
    ``issue_cycle - last_issue`` cycles across the kinds in
    :data:`repro.obs.stalls.SIM_STALL_KINDS`, so over a whole run
    ``sum(cycle_breakdown.values()) == cycles - 1``.  The raises are
    telescoped in program order — branch redirect first, then register
    interlock (split into load-use / fp-advance / cache-miss / plain
    latency), then memory ordering, then the structural scan (split into
    resource and packing-class conflicts).  On a single-issue machine the
    ``resource`` kind therefore *includes* plain issue-slot serialization
    (about one cycle per instruction): the issue stage is itself a
    committed resource, which is exactly how the hardware sees it.

    This is a full override of the hot path so the default model pays
    nothing for the bookkeeping; ``test_pipeline_accounting`` keeps the
    two models' timing in lock-step.
    """

    def __init__(
        self,
        target: TargetMachine,
        cache: DirectMappedCache | None = None,
        static: dict | None = None,
    ):
        super().__init__(target, cache, static)
        from repro.obs import stalls as _stalls

        self._kinds = _stalls
        self.kind_cycles: dict[str, int] = {
            kind: 0 for kind in _stalls.SIM_STALL_KINDS
        }

    @property
    def cycle_breakdown(self) -> dict[str, int]:
        """Stall kind -> attributed cycles (zero entries included)."""
        return dict(self.kind_cycles)

    def issue(self, instr: MachineInstr, mem_log) -> int:
        decoded = self._static.get(instr.id)
        if decoded is None:
            decoded = self._decode(instr)
        kinds = self._kinds
        kind_cycles = self.kind_cycles
        producers = self.producers
        producers_get = producers.get
        ring_cycle = self.ring_cycle
        ring_mask = self.ring_mask

        # branch redirect
        start = self.last_issue
        if self.redirect_floor > start:
            kind_cycles[kinds.BRANCH] += self.redirect_floor - start
            start = self.redirect_floor

        # register interlock.  Producer entries here are 3-tuples
        # (ready, token, miss_extra): miss_extra is the cache-miss stretch
        # folded into ready, remembered so the raise can be split between
        # the miss and the underlying latency.
        lat_memo = decoded.lat_memo
        for unit in decoded.use_units:
            producer = producers_get(unit)
            if producer is None:
                continue
            ready, token, miss_extra = producer
            memo = lat_memo.get(id(token))
            if memo is None:
                latency = self._latency(token[0], token[1], instr)
                producer_desc = self.target.instructions.get(token[0])
                is_load = bool(
                    producer_desc is not None and producer_desc.reads_memory
                )
                memo = (latency, is_load)
                lat_memo[id(token)] = memo
            latency, is_load = memo
            ready += latency
            if ready > start:
                raised = ready - start
                miss_part = min(raised, miss_extra)
                if miss_part:
                    kind_cycles[kinds.CACHE_MISS] += miss_part
                    raised -= miss_part
                if raised:
                    kind_cycles[
                        kinds.LOAD_USE if is_load else kinds.LATENCY_KIND
                    ] += raised
                start = ready
        if decoded.temporal_reads:
            # temporal (EAP) resources model the i860's explicitly-advanced
            # fp pipelines, so a wait on one is an fp-advance stall
            for name in decoded.temporal_reads:
                producer = self.temporal_producers.get(name)
                if producer is not None:
                    p_issue, p_mnemonic = producer
                    ready = p_issue + self._temporal_latency(p_mnemonic)
                    if ready > start:
                        kind_cycles[kinds.FP_ADVANCE] += ready - start
                        start = ready

        # memory ordering
        if decoded.reads_memory and self.last_store_issue >= 0:
            if self.last_store_issue + 1 > start:
                kind_cycles[kinds.MEMORY_ORDER] += (
                    self.last_store_issue + 1 - start
                )
                start = self.last_store_issue + 1
        if decoded.writes_memory:
            if self.last_store_issue + 1 > start:
                kind_cycles[kinds.MEMORY_ORDER] += (
                    self.last_store_issue + 1 - start
                )
                start = self.last_store_issue + 1
            if self.last_load_issue > start:
                kind_cycles[kinds.MEMORY_ORDER] += self.last_load_issue - start
                start = self.last_load_issue

        # structural hazards + packing classes, one attribution per
        # rejected candidate cycle
        classes = decoded.classes
        cycle_classes = self.cycle_classes
        cycle = start
        frontier = self._frontier
        masks = decoded.masks
        if masks is not None:
            while cycle <= frontier:
                blocked = False
                for offset, mask in masks:
                    at = cycle + offset
                    slot = at & _RING_MASK
                    if ring_cycle[slot] == at and ring_mask[slot] & mask:
                        blocked = True
                        break
                if blocked:
                    kind_cycles[kinds.RESOURCE] += 1
                    cycle += 1
                    continue
                if classes:
                    existing = cycle_classes.get(cycle)
                    if existing is not None and not (existing & classes):
                        kind_cycles[kinds.PACKING] += 1
                        cycle += 1
                        continue
                break
            last = cycle
            for offset, mask in masks:
                at = cycle + offset
                slot = at & _RING_MASK
                if ring_cycle[slot] == at:
                    ring_mask[slot] |= mask
                else:
                    ring_cycle[slot] = at
                    ring_mask[slot] = mask
                last = at
        else:
            vector = decoded.vector
            while cycle <= frontier:
                blocked = False
                for offset, need in enumerate(vector):
                    at = cycle + offset
                    slot = at & _RING_MASK
                    busy = ring_mask[slot] if ring_cycle[slot] == at else 0
                    if conflicts(busy, need):
                        blocked = True
                        break
                if blocked:
                    kind_cycles[kinds.RESOURCE] += 1
                    cycle += 1
                    continue
                if classes:
                    existing = cycle_classes.get(cycle)
                    if existing is not None and not (existing & classes):
                        kind_cycles[kinds.PACKING] += 1
                        cycle += 1
                        continue
                break
            last = cycle + len(vector) - 1
            for offset, need in enumerate(vector):
                at = cycle + offset
                slot = at & _RING_MASK
                busy = ring_mask[slot] if ring_cycle[slot] == at else 0
                ring_cycle[slot] = at
                ring_mask[slot] = commit(busy, need)
        if classes:
            existing = cycle_classes.get(cycle)
            cycle_classes[cycle] = (
                classes if existing is None else existing & classes
            )
        if last < cycle:
            last = cycle
        if last > frontier:
            self._frontier = last

        # memory + cache effects
        extra_latency = 0
        if mem_log:
            cache = self.cache
            for address, is_write, _size in mem_log:
                if cache is not None and not cache.access(address):
                    if not is_write:
                        extra_latency += cache.miss_penalty
                if is_write:
                    if cycle > self.last_store_issue:
                        self.last_store_issue = cycle
                else:
                    if cycle > self.last_load_issue:
                        self.last_load_issue = cycle

        for units, token in decoded.def_entries:
            entry = (cycle + extra_latency, token, extra_latency)
            for unit in units:
                producers[unit] = entry
        for units, token in decoded.implicit_defs:
            entry = (cycle, token, 0)
            for unit in units:
                producers[unit] = entry
        if decoded.temporal_writes:
            mnemonic = decoded.mnemonic
            for name in decoded.temporal_writes:
                self.temporal_producers[name] = (cycle, mnemonic)

        self.last_issue = cycle
        if cycle - self._horizon > 256:
            self._prune(cycle)
        return cycle
