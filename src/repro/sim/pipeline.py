"""In-order pipeline timing model.

Charges cycles to a dynamic instruction stream using the same Maril-derived
resource vectors, latencies, ``%aux`` overrides and packing classes the
scheduler used — but observed at run time, the way the hardware would:

* an instruction cannot issue before its operands are ready (register
  interlock; the DECstation's R3000-style behaviour);
* it cannot issue on a cycle where its resource vector collides with
  resources already committed (structural hazard, section 4.3);
* several instructions may issue on one cycle when resources are disjoint
  and packing classes intersect (dual-issue i860, sections 4.3/4.5);
* taken control transfers redirect the fetch stream after the producer's
  latency (delay-slot instructions issue in the gap);
* data-cache misses stretch a load's result latency.
"""

from __future__ import annotations

from repro.backend.insts import MachineInstr, Reg
from repro.machine.registers import PhysReg
from repro.machine.resources import commit, conflicts
from repro.machine.target import TargetMachine
from repro.sim.cache import DirectMappedCache


class PipelineModel:
    """Charges cycles to a dynamic instruction stream (one per run)."""

    def __init__(self, target: TargetMachine, cache: DirectMappedCache | None = None):
        self.target = target
        self.registers = target.registers
        self.cache = cache
        self.last_issue = 0
        self.redirect_floor = 0  # earliest issue after a taken transfer
        #: unit key -> (producer issue cycle, producer mnemonic, produced reg)
        self.producers: dict = {}
        self.temporal_producers: dict[str, tuple[int, str]] = {}
        self.resource_use: dict[int, int] = {}
        self.cycle_classes: dict[int, frozenset] = {}
        self.last_store_issue = -1
        self.last_load_issue = -1
        self._horizon = 0  # cycles below this have been pruned
        #: per-instruction static facts keyed by instr.id:
        #: (use_units, def_units_by_operand, implicit_def_units, temporal)
        self._static: dict[int, tuple] = {}

    # -- helpers ----------------------------------------------------------------

    def _facts(self, instr: MachineInstr):
        """Static register-unit facts for one instruction, memoized."""
        facts = self._static.get(instr.id)
        if facts is not None:
            return facts
        units_of = self.registers.units_of
        use_units = []
        for position in instr.desc.use_operands:
            operand = instr.operands[position]
            if isinstance(operand, Reg) and isinstance(operand.reg, PhysReg):
                use_units.extend(units_of(operand.reg))
        for reg in instr.implicit_uses:
            use_units.extend(units_of(reg))
        def_entries = []
        for position in instr.desc.def_operands:
            operand = instr.operands[position]
            if isinstance(operand, Reg) and isinstance(operand.reg, PhysReg):
                def_entries.append((units_of(operand.reg), operand.reg))
        implicit_defs = [
            (units_of(reg), reg) for reg in instr.implicit_defs
        ]
        facts = (tuple(use_units), tuple(def_entries), tuple(implicit_defs))
        self._static[instr.id] = facts
        return facts

    def _ready_cycle(self, instr: MachineInstr) -> int:
        ready = 0
        use_units, _defs, _implicits = self._facts(instr)
        producers = self.producers
        for unit in use_units:
            producer = producers.get(unit)
            if producer is None:
                continue
            issue, mnemonic, produced_reg = producer
            latency = self._latency(mnemonic, produced_reg, instr)
            if issue + latency > ready:
                ready = issue + latency
        for name in instr.desc.temporal_reads:
            producer = self.temporal_producers.get(name)
            if producer is not None:
                issue, mnemonic = producer
                latency = self.target.instructions[mnemonic].latency \
                    if mnemonic in self.target.instructions else 1
                if issue + latency > ready:
                    ready = issue + latency
        return ready

    def _latency(self, mnemonic: str, produced_reg, consumer: MachineInstr) -> int:
        rule = self.target.aux_latency(mnemonic, consumer.desc.mnemonic)
        if rule is not None:
            position = rule.second_operand - 1
            if position < len(consumer.operands):
                operand = consumer.operands[position]
                if isinstance(operand, Reg) and operand.reg == produced_reg:
                    return rule.latency
        desc = self.target.instructions.get(mnemonic)
        return desc.latency if desc is not None else 1

    # -- main entry -----------------------------------------------------------

    def issue(self, instr: MachineInstr, mem_log) -> int:
        """Charge cycles for one executed instruction; returns issue cycle."""
        desc = instr.desc
        start = max(self.last_issue, self.redirect_floor, self._ready_cycle(instr))

        if desc.reads_memory and self.last_store_issue >= 0:
            start = max(start, self.last_store_issue + 1)
        if desc.writes_memory:
            start = max(start, self.last_store_issue + 1, self.last_load_issue)

        vector = desc.resource_vector
        classes = desc.classes
        cycle = start
        while True:
            conflict = False
            for offset, need in enumerate(vector):
                if conflicts(self.resource_use.get(cycle + offset, 0), need):
                    conflict = True
                    break
            if not conflict and classes:
                existing = self.cycle_classes.get(cycle)
                if existing is not None and not (existing & classes):
                    conflict = True
            if not conflict:
                break
            cycle += 1

        for offset, need in enumerate(vector):
            self.resource_use[cycle + offset] = commit(
                self.resource_use.get(cycle + offset, 0), need
            )
        if classes:
            existing = self.cycle_classes.get(cycle)
            self.cycle_classes[cycle] = (
                classes if existing is None else existing & classes
            )

        # memory + cache effects
        extra_latency = 0
        for address, is_write, _size in mem_log:
            if self.cache is not None and not self.cache.access(address):
                if not is_write:  # write-through: stores do not stall
                    extra_latency += self.cache.miss_penalty
            if is_write:
                self.last_store_issue = max(self.last_store_issue, cycle)
            else:
                self.last_load_issue = max(self.last_load_issue, cycle)

        # record produced values (producers store issue cycle; the
        # consumer adds the pair latency at use)
        _uses, def_entries, implicit_defs = self._facts(instr)
        for units, reg in def_entries:
            entry = (cycle + extra_latency, desc.mnemonic, reg)
            for unit in units:
                self.producers[unit] = entry
        for units, reg in implicit_defs:
            entry = (cycle, desc.mnemonic, reg)
            for unit in units:
                self.producers[unit] = entry
        for name in desc.temporal_writes:
            self.temporal_producers[name] = (cycle, desc.mnemonic)

        self.last_issue = cycle
        self._prune(cycle)
        return cycle

    def transfer(self, instr: MachineInstr, issue_cycle: int) -> None:
        """A taken control transfer: fetch redirects after the latency."""
        self.redirect_floor = max(
            self.redirect_floor, issue_cycle + max(1, instr.desc.latency)
        )

    def _prune(self, cycle: int) -> None:
        """Drop resource bookkeeping for long-past cycles."""
        if cycle - self._horizon > 256:
            cutoff = cycle - 64
            self.resource_use = {
                c: m for c, m in self.resource_use.items() if c >= cutoff
            }
            self.cycle_classes = {
                c: k for c, k in self.cycle_classes.items() if c >= cutoff
            }
            self._horizon = cycle

    @property
    def cycles(self) -> int:
        return self.last_issue + 1
