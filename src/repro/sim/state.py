"""Simulated machine state: register files (as 32-bit units), temporal
registers, and byte-addressed memory."""

from __future__ import annotations

import struct

from repro.errors import SimulationError
from repro.machine.registers import PhysReg, RegisterModel

_INT_MAX = 2**31 - 1


def _to_signed(word: int) -> int:
    word &= 0xFFFFFFFF
    return word - 0x100000000 if word > _INT_MAX else word


class MachineState:
    """Registers + memory for one simulation run."""

    def __init__(self, registers: RegisterModel, memory: bytearray):
        self.registers = registers
        self.units: dict[tuple[int, int], int] = {}  # (file, unit) -> u32
        self.temporal: dict[str, object] = {}  # temporal reg -> typed value
        self.memory = memory

    # -- registers -----------------------------------------------------------

    def read_reg(self, reg: PhysReg, type_name: str):
        units = self.registers.units_of(reg)
        if type_name == "double":
            if len(units) != 2:
                raise SimulationError(f"{reg} cannot hold a double")
            lo = self.units.get(units[0], 0)
            hi = self.units.get(units[1], 0)
            return struct.unpack("<d", struct.pack("<II", lo, hi))[0]
        if type_name == "float":
            word = self.units.get(units[0], 0)
            return struct.unpack("<f", struct.pack("<I", word))[0]
        return _to_signed(self.units.get(units[0], 0))

    def write_reg(self, reg: PhysReg, type_name: str, value) -> None:
        units = self.registers.units_of(reg)
        if type_name == "double":
            if len(units) != 2:
                raise SimulationError(f"{reg} cannot hold a double")
            lo, hi = struct.unpack("<II", struct.pack("<d", float(value)))
            self.units[units[0]] = lo
            self.units[units[1]] = hi
        elif type_name == "float":
            self.units[units[0]] = struct.unpack(
                "<I", struct.pack("<f", float(value))
            )[0]
        else:
            self.units[units[0]] = int(value) & 0xFFFFFFFF

    # -- memory -----------------------------------------------------------------

    def read_mem(self, address: int, type_name: str):
        self._check(address, 8 if type_name == "double" else 4)
        if type_name == "double":
            return struct.unpack_from("<d", self.memory, address)[0]
        if type_name == "float":
            return struct.unpack_from("<f", self.memory, address)[0]
        return struct.unpack_from("<i", self.memory, address)[0]

    def write_mem(self, address: int, type_name: str, value) -> None:
        self._check(address, 8 if type_name == "double" else 4)
        if type_name == "double":
            struct.pack_into("<d", self.memory, address, float(value))
        elif type_name == "float":
            struct.pack_into("<f", self.memory, address, float(value))
        else:
            struct.pack_into("<i", self.memory, address, _to_signed(int(value)))

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > len(self.memory):
            raise SimulationError(
                f"memory access at {address} outside [0, {len(self.memory)})"
            )
