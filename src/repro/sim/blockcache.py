"""Memoized block-timing fast path (the simulator's segment cache).

The Livermore kernels re-execute the same handful of basic blocks for
thousands of iterations, and after warmup the pipeline hazard state
repeats: the same straight-line *segment*, entered with the same
relative hazard state and the same pattern of data-cache load misses,
always costs the same number of cycles and leaves the same relative
hazard state behind.  The fast path exploits this.  Functional
execution (register and memory semantics plus the
:class:`~repro.sim.cache.DirectMappedCache` model) still runs every
iteration, but instead of walking :meth:`PipelineModel.issue` per
instruction the simulator accumulates per-segment events and consults a
timing cache keyed by::

    (entry_pc, end_pc, transfer_pc, load-miss bitmask, entry digest)

A segment is a maximal dynamically straight-line run: from one entry
point up to (and including) the first *taken* control transfer and its
delay slots, or up to :data:`SEGMENT_CAP` instructions.  Given the key,
the executed pc sequence is exactly ``entry_pc..end_pc`` (untaken
conditional branches return no control effect, so they stay inside a
segment), which is what makes the replay reconstructible without
recording instruction streams.

The memo is *chained by exit id*: digests are interned to small integer
ids, and because a digest fully determines all future
:meth:`PipelineModel.issue` behavior, the exit id of segment N simply
*is* the entry id of segment N+1.  Transitions are therefore stored as
one small dict per static segment — ``(entry_pc, end_pc, transfer_pc)
-> {(entry_id, miss_mask): (cycle_delta, exit_id, stall_deltas)}`` — so
a warm boundary crossing is a single two-int-tuple lookup in a dict the
caller already holds, with zero digest hashing.  :func:`state_digest` runs only
on first visit to a transition (counted in
:attr:`BlockTimingCache.digests_computed`); steady state never
re-derives a key it already knows.

The *digest* canonicalizes everything :meth:`PipelineModel.issue` and
:meth:`PipelineModel.transfer` can observe, relative to the entry issue
cycle: producer ready times (aged out once they can no longer
interlock), temporal (EAP) producers, resource-ring occupancy at and
beyond the issue point, packing-class commitments, the memory-ordering
watermarks and the branch-redirect floor.  Two states with equal
digests are indistinguishable to every future issue, so a cached
``(cycle delta, exit digest)`` substitutes for the replay exactly —
steady-state loop iterations reduce to one dictionary probe per block.

On a cache miss the segment is *replayed* through a real
:class:`AccountingPipelineModel` materialized from the entry digest; the
data cache is replaced by a scripted stand-in feeding back the hit/miss
outcomes the functional side already observed, so the real cache model
is consulted exactly once per access.  Replaying under the accounting
model means every record also memoizes the segment's per-hazard-kind
stall attribution, which is what lets ``SimOptions(trace=True)`` runs
ride this fast path: a warm trace run sums memoized stall-delta tuples
instead of attributing every issue.  ``tests/test_block_timing.py``
holds the fast path bit-identical to the reference interleaved model
across the whole target × strategy grid.

The segment JIT (:mod:`repro.sim.jit`) compiles hot segments' functional
side to flat Python but leaves this timing contract untouched: a
compiled segment produces the same ``(entry_pc, end_pc, transfer_pc,
miss mask)`` close key and the same positionally-ordered event list the
interpreter would, so JIT-executed and interpreted iterations share one
timing cache and are indistinguishable to the replay.
"""

from __future__ import annotations

from operator import itemgetter

from repro.sim.pipeline import (
    _RING_MASK,
    AccountingPipelineModel,
    PipelineModel,
)

#: digest of a pristine pipeline — the state every run starts in
EMPTY_DIGEST = (0, (), (), (), (), -1, 0)

#: a segment is force-closed after this many instructions, so one-shot
#: straight-line code cannot grow unbounded keys or event lists
SEGMENT_CAP = 2048

#: the table stops admitting new entries past this size (lookups still
#: hit; further misses replay uncached) — a backstop against degenerate
#: keying, e.g. a workload whose miss masks never repeat
MAX_ENTRIES = 1 << 16


def decode_blocks(executable):
    """Block structure of a linked program, for dynamic block profiling.

    Returns ``(block_of, block_starts)``: the label of the block each
    instruction index belongs to, and the frozen set of block-start
    indices.  Shared by the simulator loops and the segment JIT so both
    attribute dynamic block counts identically."""
    block_of: list[str] = []
    by_index = sorted(executable.labels.items(), key=lambda item: item[1])
    position = 0
    current = ""
    for label, index in by_index:
        while position < index:
            block_of.append(current)
            position += 1
        current = label
    while position < len(executable.instrs):
        block_of.append(current)
        position += 1
    return block_of, frozenset(executable.labels.values())


def target_max_latency(target) -> int:
    """An upper bound on any producer→consumer latency of ``target``.

    A producer that issued more than this many cycles before the issue
    point can never interlock again, so the digest ages it out — which
    is what makes steady-state loop iterations digest-equal."""
    cached = getattr(target, "_sim_max_latency", None)
    if cached is None:
        cached = 1
        for desc in target.instructions.values():
            if desc.latency > cached:
                cached = desc.latency
        for rule in target.aux_rules.values():
            if rule.latency > cached:
                cached = rule.latency
        target._sim_max_latency = cached
    return cached


def state_digest(model: PipelineModel, max_latency: int) -> tuple:
    """Canonicalize ``model``'s timing state relative to its issue point.

    Components that cannot affect any future :meth:`PipelineModel.issue`
    are normalized away: producers and temporal producers older than
    ``max_latency``, ring occupancy and packing classes below the issue
    point, a redirect floor already passed, and memory-ordering
    watermarks that can no longer delay anything.  Every surviving cycle
    is encoded relative to ``model.last_issue``.
    """
    base = model.last_issue
    redirect = model.redirect_floor - base
    if redirect < 0:
        redirect = 0
    horizon = base - max_latency
    # the accounting model's producer entries carry a third component
    # (the cache-miss stretch folded into ready, so the stall raise can
    # be split between miss and latency); it shapes attribution but
    # never cycles, and once a producer can no longer raise
    # (``rel <= 0``) it is unobservable — normalized to 0 so plain and
    # accounting models digest identical steady states identically
    producers = sorted(
        (
            (
                unit,
                entry[0] - base,
                entry[1],
                entry[2] if len(entry) > 2 and entry[0] > base else 0,
            )
            for unit, entry in model.producers.items()
            if entry[0] > horizon
        ),
        key=itemgetter(0),
    )
    temporals = sorted(
        (name, entry[0] - base, entry[1])
        for name, entry in model.temporal_producers.items()
        if entry[0] > horizon
    )
    ring = []
    ring_cycle = model.ring_cycle
    ring_mask = model.ring_mask
    for at in range(base, model._frontier + 1):
        slot = at & _RING_MASK
        if ring_cycle[slot] == at and ring_mask[slot]:
            ring.append((at - base, ring_mask[slot]))
    classes = sorted(
        (cycle - base, kinds)
        for cycle, kinds in model.cycle_classes.items()
        if cycle >= base
    )
    store = model.last_store_issue - base
    load = model.last_load_issue - base
    return (
        redirect,
        tuple(producers),
        tuple(temporals),
        tuple(ring),
        tuple(classes),
        store if store >= 0 else -1,
        load if load > 0 else 0,
    )


def load_state(model: PipelineModel, digest: tuple, base: int) -> None:
    """Materialize ``digest`` into ``model`` at absolute cycle ``base``.

    Only valid for bases at or beyond every absolute cycle the model has
    ever touched — the fast path's bases grow monotonically within a
    run, so a stale resource-ring slot can never alias a materialized
    cycle (its tag is always smaller)."""
    redirect, producers, temporals, ring, classes, store, load = digest
    model.last_issue = base
    model.redirect_floor = base + redirect
    # materialize producer entries in the shape the target model's
    # ``issue`` unpacks: 3-tuples (with the miss stretch) for the
    # accounting model, plain 2-tuples otherwise
    if isinstance(model, AccountingPipelineModel):
        model.producers = {
            unit: (base + rel, token, extra)
            for unit, rel, token, extra in producers
        }
    else:
        model.producers = {
            unit: (base + rel, token) for unit, rel, token, _extra in producers
        }
    model.temporal_producers = {
        name: (base + rel, mnemonic) for name, rel, mnemonic in temporals
    }
    frontier = -1
    ring_cycle = model.ring_cycle
    ring_mask = model.ring_mask
    for rel, mask in ring:
        at = base + rel
        slot = at & _RING_MASK
        ring_cycle[slot] = at
        ring_mask[slot] = mask
        if rel > frontier:
            frontier = rel
    model.cycle_classes = {base + rel: kinds for rel, kinds in classes}
    if classes and classes[-1][0] > frontier:
        frontier = classes[-1][0]
    model._frontier = base + frontier if frontier >= 0 else base - 1
    model._horizon = base
    # stale watermarks materialize just below the issue point: the
    # ordering constraints they impose on cycles >= base are identical
    # to any older value's, and updates overwrite them the same way
    model.last_store_issue = base + store if store >= 0 else base - 1
    model.last_load_issue = base + load


class _ScriptedCache:
    """Replay stand-in for the data cache: feeds back the hit/miss
    outcomes the functional side already observed, in access order, so a
    replayed segment never touches (or double-counts in) the real cache
    model."""

    __slots__ = ("miss_penalty", "_script", "_next")

    def __init__(self, miss_penalty: int):
        self.miss_penalty = miss_penalty
        self._script: list = []
        self._next = 0

    def load(self, script: list) -> None:
        self._script = script
        self._next = 0

    def access(self, address: int) -> bool:
        hit = self._script[self._next]
        self._next += 1
        return hit


class BlockTimingCache:
    """The exit-id-chained ``segment -> {(entry id, miss mask): (cycle
    delta, exit id)}`` memo, plus the replay machinery behind its misses.

    One instance is shared by every fast-path run over one (executable,
    miss-penalty) pair, so warmup paid by one simulation benefits the
    next.  Digests are interned to small integer ids and transitions are
    chained: the exit id a lookup returns is the entry id of the next
    lookup, so the (large) digest tuples are hashed only when a
    transition is replayed for the first time.  Callers that close the
    same static segment repeatedly (the segment JIT's chained loops and
    trace probes) hold that segment's transition dict directly — see
    :meth:`transitions` — making a warm boundary one two-int-tuple
    ``dict.get`` with no call into this class at all."""

    EMPTY_ID = 0

    def __init__(
        self,
        target,
        instrs,
        miss_penalty: int | None,
        static: dict | None = None,
    ):
        self.scripted = (
            _ScriptedCache(miss_penalty) if miss_penalty is not None else None
        )
        # replays run under the *accounting* model so every record also
        # carries its per-hazard-kind stall deltas — the one-time cost
        # makes ``SimOptions(trace=True)`` runs eligible for the fast
        # path (the breakdown is as transition-deterministic as the
        # cycle delta: both are functions of the replayed issue
        # sequence).  Accounting state is not part of the digest, so
        # records are interchangeable with plain-model replays.
        self.pipeline = AccountingPipelineModel(
            target, self.scripted, static=static
        )
        self._kind_names = tuple(self.pipeline.kind_cycles)
        self.max_latency = target_max_latency(target)
        self.instrs = instrs
        self.digests: list[tuple] = [EMPTY_DIGEST]
        self._digest_ids: dict[tuple, int] = {EMPTY_DIGEST: 0}
        #: ``(entry, end, transfer) -> {(entry_id, miss_mask): (delta,
        #: exit_id)}`` — the chained transition memo
        self.segments: dict[tuple, dict] = {}
        #: total records admitted across every segment dict (the
        #: :data:`MAX_ENTRIES` backstop counts the whole memo)
        self.entries = 0
        self.hits = 0
        self.misses = 0
        #: :func:`state_digest` invocations — one per first-visit replay,
        #: and the proof obligation that steady state is digest-free
        self.digests_computed = 0
        #: a new entry was admitted since the last artifact-cache persist
        self.dirty = False
        #: first absolute cycle no replay has ever touched — each run
        #: materializes at ``begin_run() + virtual cycle`` so ring tags
        #: from an earlier run can never alias a later, lower base
        self._next_base = 0

    def begin_run(self) -> int:
        """The absolute-cycle offset a new run must add to its virtual
        cycle counter before materializing states on this cache."""
        return self._next_base

    def transitions(self, entry: int, end: int, transfer: int) -> dict:
        """The transition dict of one static segment (created empty on
        first request).  The dict is long-lived and updated in place by
        :meth:`close`, so generated code binds ``transitions(...).get``
        once per call and probes ``(entry_id, miss_mask)`` keys with no
        further attribute or method lookups."""
        key = (entry, end, transfer)
        table = self.segments.get(key)
        if table is None:
            table = self.segments[key] = {}
        return table

    def close(
        self,
        entry: int,
        end: int,
        transfer: int,
        miss_mask: int,
        events: list,
        entry_id: int,
        base: int,
    ) -> tuple[int, int, tuple]:
        """Finish one segment; returns the full transition record
        ``(cycle delta, exit digest id, stall-kind deltas)`` — callers
        that only advance the chain index ``[0]`` and ``[1]``; trace
        runs accumulate ``[2]`` (ordered as :meth:`stall_kinds`).

        ``events`` is the segment's memory-access record, one
        ``(pc, is_write, hit)`` triple per access in execution order; it
        is only consulted when the lookup misses and the segment must be
        replayed.  ``base`` is the absolute issue cycle at segment entry.
        """
        key = (entry, end, transfer)
        table = self.segments.get(key)
        if table is None:
            table = self.segments[key] = {}
        record = table.get((entry_id, miss_mask))
        if record is not None:
            self.hits += 1
            return record
        self.misses += 1
        record = self._replay(entry, end, transfer, events, entry_id, base)
        if self.entries < MAX_ENTRIES:
            table[(entry_id, miss_mask)] = record
            self.entries += 1
            self.dirty = True
        return record

    def stall_kinds(self) -> tuple:
        """Hazard-kind names, in the order every record's stall-delta
        tuple uses (the accounting model's declaration order)."""
        return self._kind_names

    # -- artifact-cache serialization ------------------------------------

    def export(self) -> dict:
        """A picklable snapshot of the memo: the interned digest list
        and the per-segment transition dicts (digests appear as ids —
        indices into the digest list — so the snapshot is
        self-contained)."""
        return {
            "digests": list(self.digests),
            "segments": {
                key: dict(table) for key, table in self.segments.items()
            },
        }

    def preload(self, payload: dict) -> bool:
        """Adopt an :meth:`export` snapshot wholesale; only valid on a
        virgin cache (no lookups yet).  Returns False (and changes
        nothing) when the payload fails its sanity checks — the cache
        then just warms up normally."""
        if self.segments or len(self.digests) != 1:
            return False
        try:
            digests = [tuple(digest) for digest in payload["digests"]]
            segments = {
                key: dict(table)
                for key, table in payload["segments"].items()
            }
        except (KeyError, TypeError, AttributeError):
            return False
        if not digests or digests[0] != EMPTY_DIGEST:
            return False
        kinds = len(self._kind_names)
        total = 0
        for seg_key, table in segments.items():
            if len(seg_key) != 3:
                return False
            for key, record in table.items():
                if len(key) != 2 or len(record) != 3:
                    return False
                if not (
                    0 <= key[0] < len(digests)
                    and 0 <= record[1] < len(digests)
                ):
                    return False
                if (
                    not isinstance(record[2], tuple)
                    or len(record[2]) != kinds
                ):
                    return False
                total += 1
        self.digests = digests
        self._digest_ids = {
            digest: index for index, digest in enumerate(digests)
        }
        self.segments = segments
        self.entries = total
        return True

    def _replay(
        self, entry: int, end: int, transfer: int, events, entry_id, base
    ) -> tuple[int, int, tuple]:
        model = self.pipeline
        load_state(model, self.digests[entry_id], base)
        scripted = self.scripted
        if scripted is not None:
            scripted.load([hit for _pc, _w, hit in events])
        instrs = self.instrs
        issue = model.issue
        kind_cycles = model.kind_cycles
        kinds = self._kind_names
        before = tuple(kind_cycles[kind] for kind in kinds)
        position = 0
        count = len(events)
        transfer_cycle = 0
        mem_log: list = []
        for pc in range(entry, end + 1):
            del mem_log[:]
            while position < count and events[position][0] == pc:
                mem_log.append((0, events[position][1], 0))
                position += 1
            cycle = issue(instrs[pc], mem_log)
            if pc == transfer:
                transfer_cycle = cycle
        if transfer >= 0:
            model.transfer(instrs[transfer], transfer_cycle)
        top = model._frontier
        if model.last_issue > top:
            top = model.last_issue
        if top + 1 > self._next_base:
            self._next_base = top + 1
        self.digests_computed += 1
        digest = state_digest(model, self.max_latency)
        exit_id = self._digest_ids.get(digest)
        if exit_id is None:
            exit_id = len(self.digests)
            self.digests.append(digest)
            self._digest_ids[digest] = exit_id
        breakdown = tuple(
            kind_cycles[kind] - start for kind, start in zip(kinds, before)
        )
        return (model.last_issue - base, exit_id, breakdown)
