"""Cycle-level simulator.

Substitutes for the paper's hardware (DECstation 5000 timing runs, i860
boards): it executes linked programs *functionally* — every instruction's
effect comes from the same Maril semantics that drove selection — while a
pipeline model derived from the same resource vectors and latencies charges
cycles, including structural hazards, multi-issue packing, branch delay
slots and an optional direct-mapped data cache (the effect the paper
identifies as the main source of its actual/estimated gap in Table 4).
"""

from repro.sim.simulator import SimResult, Simulator, run_program
from repro.sim.blockcache import BlockTimingCache
from repro.sim.cache import DirectMappedCache
from repro.sim.pipeline import AccountingPipelineModel, PipelineModel

__all__ = [
    "AccountingPipelineModel",
    "BlockTimingCache",
    "DirectMappedCache",
    "PipelineModel",
    "SimResult",
    "Simulator",
    "run_program",
]
