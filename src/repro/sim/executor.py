"""Compile instruction semantics into executable closures.

Each linked :class:`MachineInstr` is compiled once: its Maril semantics
tree becomes a Python closure over the machine state.  This keeps the
simulator honest — the instruction set's behaviour comes from the same
description that drove selection and scheduling — while staying fast
enough for the Livermore kernels.

A closure returns a control effect (``('goto', label)``, ``('call',
label)``, ``('ret',)``) or ``None`` and appends ``(address, is_write,
size)`` records to the memory log the caller provides (the pipeline model
uses them for cache simulation and memory ordering).  The *order* of
records within one instruction is part of the contract: the fast timing
path (:mod:`repro.sim.blockcache`) records per-access cache outcomes
during functional execution and feeds them back positionally when a
segment is replayed, so closures must log accesses in the same order the
semantics perform them.
"""

from __future__ import annotations

import operator
import struct

from repro.backend.insts import Imm, Lab, MachineInstr, Reg
from repro.backend.values import fold_halves
from repro.errors import SimulationError
from repro.machine.registers import PhysReg
from repro.machine.target import TargetMachine
from repro.maril import ast

_INT_MIN, _INT_MAX = -(2**31), 2**31 - 1

# prebound codecs for the specialised register closures
_DOUBLE = struct.Struct("<d")
_FLOAT = struct.Struct("<f")
_WORD = struct.Struct("<I")
_PAIR = struct.Struct("<II")


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > _INT_MAX else value


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _int_mod(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


def _promote(a: str, b: str) -> str:
    order = {"int": 0, "float": 1, "double": 2}
    return a if order[a] >= order[b] else b


# operator tables hoisted to module level (built once, not per compiled
# expression) with _wrap32/_int_div prebound as default arguments so the
# interpreter path does no module-global lookups per executed step
_REL_TABLE = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_INT_TABLE = {
    "+": lambda a, b, _w=_wrap32: _w(a + b),
    "-": lambda a, b, _w=_wrap32: _w(a - b),
    "*": lambda a, b, _w=_wrap32: _w(a * b),
    "/": _int_div,
    "%": _int_mod,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<<": lambda a, b, _w=_wrap32: _w(a << (b & 31)),
    ">>": lambda a, b: a >> (b & 31),
}

_FLOAT_TABLE = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class SemanticsCompiler:
    """Compiles one target's instructions; stateless across instructions."""

    def __init__(self, target: TargetMachine):
        self.target = target

    # -- public ------------------------------------------------------------

    def compile_instr(self, instr: MachineInstr):
        """Return ``closure(state, mem_log) -> effect | None``."""
        steps = [
            self._compile_stmt(stmt, instr)
            for stmt in instr.desc.semantics
            if not isinstance(stmt, ast.EmptyStmt)
        ]
        if len(steps) == 1:
            return steps[0]

        def run(state, mem_log, _steps=tuple(steps)):
            effect = None
            for step in _steps:
                result = step(state, mem_log)
                if result is not None:
                    effect = result
            return effect

        return run

    # -- operand helpers ------------------------------------------------------

    def _operand_type(self, instr: MachineInstr, position: int) -> str:
        operand = instr.operands[position]
        if isinstance(operand, Imm):
            return "int"
        if isinstance(operand, Lab):
            return "int"
        spec = instr.desc.operands[position]
        rset = self.target.registers.set(spec.set_name)
        if len(rset.types) == 1:
            return rset.types[0]
        if instr.desc.type is not None:
            return instr.desc.type
        return "int"

    def _temporal_type(self, name: str) -> str:
        rset = self.target.registers.sets.get(name)
        if rset is not None and rset.types:
            return rset.types[0]
        return "double"

    # -- statements ------------------------------------------------------------

    def _compile_stmt(self, stmt: ast.Stmt, instr: MachineInstr):
        if isinstance(stmt, ast.AssignStmt):
            return self._compile_assign(stmt, instr)
        if isinstance(stmt, ast.CondGotoStmt):
            condition, _ = self._compile_expr(stmt.condition, instr, "int")
            label = self._label_of(stmt.target, instr)

            def cond_goto(state, mem_log, _cond=condition, _label=label):
                if _cond(state, mem_log) != 0:
                    return ("goto", _label)
                return None

            return cond_goto
        if isinstance(stmt, ast.GotoStmt):
            label = self._label_of(stmt.target, instr)
            return lambda state, mem_log, _label=label: ("goto", _label)
        if isinstance(stmt, ast.CallStmt):
            label = self._label_of(stmt.target, instr)
            return lambda state, mem_log, _label=label: ("call", _label)
        if isinstance(stmt, ast.RetStmt):
            return lambda state, mem_log: ("ret",)
        raise SimulationError(f"cannot execute statement {stmt}")

    def _label_of(self, target: ast.Expr, instr: MachineInstr) -> str:
        if not isinstance(target, ast.OperandRef):
            raise SimulationError(f"{instr}: branch target must be an operand")
        operand = instr.operands[target.index - 1]
        if not isinstance(operand, Lab):
            raise SimulationError(f"{instr}: operand {target} is not a label")
        return operand.name

    def _compile_assign(self, stmt: ast.AssignStmt, instr: MachineInstr):
        target = stmt.target
        # register-to-register moves copy raw units, not typed values: the
        # bits may not be a valid value of the set's type (e.g. mov.s of a
        # double's half whose pattern is a signaling float NaN)
        if isinstance(target, ast.OperandRef) and isinstance(
            stmt.value, ast.OperandRef
        ):
            dst_operand = instr.operands[target.index - 1]
            src_operand = instr.operands[stmt.value.index - 1]
            if (
                isinstance(dst_operand, Reg)
                and isinstance(src_operand, Reg)
                and isinstance(dst_operand.reg, PhysReg)
                and isinstance(src_operand.reg, PhysReg)
            ):
                registers = self.target.registers
                dst_units = registers.units_of(dst_operand.reg)
                src_units = registers.units_of(src_operand.reg)
                if len(dst_units) == len(src_units):

                    def copy_units(
                        state, mem_log, _dst=dst_units, _src=src_units
                    ):
                        units = state.units
                        for d, s in zip(_dst, _src):
                            units[d] = units.get(s, 0)
                        return None

                    return copy_units
        if isinstance(target, ast.OperandRef):
            position = target.index - 1
            operand = instr.operands[position]
            if not isinstance(operand, Reg) or not isinstance(operand.reg, PhysReg):
                raise SimulationError(
                    f"{instr}: cannot execute with unallocated operand {operand}"
                )
            reg = operand.reg
            type_name = self._operand_type(instr, position)
            value, _ = self._compile_expr(stmt.value, instr, type_name)
            # predecode the destination's register units so the per-step
            # closure writes raw words without units_of/hash lookups
            units = self.target.registers.units_of(reg)
            if type_name == "double":
                if len(units) != 2:  # invalid pairing: report at execute time
                    def write_reg(
                        state, mem_log, _reg=reg, _type=type_name, _value=value
                    ):
                        state.write_reg(_reg, _type, _value(state, mem_log))
                        return None

                    return write_reg
                u0, u1 = units

                def write_double(
                    state,
                    mem_log,
                    _u0=u0,
                    _u1=u1,
                    _value=value,
                    _pack=_DOUBLE.pack,
                    _unpack=_PAIR.unpack,
                    _float=float,
                ):
                    lo, hi = _unpack(_pack(_float(_value(state, mem_log))))
                    state_units = state.units
                    state_units[_u0] = lo
                    state_units[_u1] = hi
                    return None

                return write_double
            if type_name == "float":
                def write_float(
                    state,
                    mem_log,
                    _u0=units[0],
                    _value=value,
                    _pack=_FLOAT.pack,
                    _unpack=_WORD.unpack,
                    _float=float,
                ):
                    state.units[_u0] = _unpack(
                        _pack(_float(_value(state, mem_log)))
                    )[0]
                    return None

                return write_float

            def write_int(
                state, mem_log, _u0=units[0], _value=value, _int=int
            ):
                state.units[_u0] = _int(_value(state, mem_log)) & 0xFFFFFFFF
                return None

            return write_int
        if isinstance(target, ast.NameRef):
            type_name = self._temporal_type(target.name)
            value, _ = self._compile_expr(stmt.value, instr, type_name)

            def write_temporal(
                state, mem_log, _name=target.name, _value=value
            ):
                state.temporal[_name] = _value(state, mem_log)
                return None

            return write_temporal
        if isinstance(target, ast.MemRef):
            address, _ = self._compile_expr(target.address, instr, "int")
            value, value_type = self._compile_expr(stmt.value, instr, None)
            size = 8 if value_type == "double" else 4

            def write_mem(
                state,
                mem_log,
                _addr=address,
                _value=value,
                _type=value_type,
                _size=size,
            ):
                location = _addr(state, mem_log)
                mem_log.append((location, True, _size))
                state.write_mem(location, _type, _value(state, mem_log))
                return None

            return write_mem
        raise SimulationError(f"cannot assign to {target}")

    # -- expressions --------------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr, instr: MachineInstr, expected: str | None):
        """Returns (closure, static_type)."""
        if isinstance(expr, ast.OperandRef):
            position = expr.index - 1
            operand = instr.operands[position]
            if isinstance(operand, Imm):
                value = fold_halves(operand.value)
                if not isinstance(value, (int, float)):
                    raise SimulationError(
                        f"{instr}: unresolved immediate {value!r}"
                    )
                return (lambda state, mem_log, _v=value: _v), "int"
            if isinstance(operand, Reg) and isinstance(operand.reg, PhysReg):
                type_name = self._operand_type(instr, position)
                reg = operand.reg
                units = self.target.registers.units_of(reg)
                if type_name == "double":
                    if len(units) != 2:  # invalid pairing: error at execute time
                        return (
                            lambda state, mem_log, _r=reg, _t=type_name:
                                state.read_reg(_r, _t)
                        ), type_name
                    u0, u1 = units

                    def read_double(
                        state,
                        mem_log,
                        _u0=u0,
                        _u1=u1,
                        _pack=_PAIR.pack,
                        _unpack=_DOUBLE.unpack,
                    ):
                        state_units = state.units
                        return _unpack(
                            _pack(
                                state_units.get(_u0, 0), state_units.get(_u1, 0)
                            )
                        )[0]

                    return read_double, type_name
                if type_name == "float":
                    def read_float(
                        state,
                        mem_log,
                        _u0=units[0],
                        _pack=_WORD.pack,
                        _unpack=_FLOAT.unpack,
                    ):
                        return _unpack(_pack(state.units.get(_u0, 0)))[0]

                    return read_float, type_name

                def read_int(state, mem_log, _u0=units[0]):
                    word = state.units.get(_u0, 0)
                    return word - 0x100000000 if word > _INT_MAX else word

                return read_int, type_name
            raise SimulationError(f"{instr}: cannot read operand {operand}")
        if isinstance(expr, ast.NameRef):
            type_name = self._temporal_type(expr.name)
            default = 0.0 if type_name in ("float", "double") else 0
            return (
                lambda state, mem_log, _n=expr.name, _d=default: state.temporal.get(
                    _n, _d
                )
            ), type_name
        if isinstance(expr, ast.IntLit):
            return (lambda state, mem_log, _v=expr.value: _v), "int"
        if isinstance(expr, ast.FloatLit):
            return (lambda state, mem_log, _v=expr.value: _v), "double"
        if isinstance(expr, ast.MemRef):
            if expected is None:
                raise SimulationError(
                    f"{instr}: memory read with unknown width"
                )
            address, _ = self._compile_expr(expr.address, instr, "int")
            size = 8 if expected == "double" else 4

            def read_mem(state, mem_log, _addr=address, _t=expected, _s=size):
                location = _addr(state, mem_log)
                mem_log.append((location, False, _s))
                return state.read_mem(location, _t)

            return read_mem, expected
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr, instr, expected)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr, instr, expected)
        if isinstance(expr, ast.BuiltinCall):
            return self._compile_builtin(expr, instr)
        raise SimulationError(f"cannot evaluate {expr}")

    def _compile_unary(self, expr: ast.Unary, instr, expected):
        operand, type_name = self._compile_expr(expr.operand, instr, expected)
        if expr.op == "-":
            if type_name == "int":
                return (
                    lambda s, m, _o=operand, _w=_wrap32: _w(-_o(s, m))
                ), "int"
            return (lambda s, m, _o=operand: -_o(s, m)), type_name
        if expr.op == "~":
            return (
                lambda s, m, _o=operand, _w=_wrap32: _w(~_o(s, m))
            ), "int"
        if expr.op == "!":
            return (lambda s, m, _o=operand: 0 if _o(s, m) else 1), "int"
        raise SimulationError(f"unknown unary operator {expr.op}")

    def _compile_binary(self, expr: ast.Binary, instr, expected):
        left, left_type = self._compile_expr(expr.left, instr, expected)
        right, right_type = self._compile_expr(expr.right, instr, expected)
        common = _promote(left_type, right_type)
        op = expr.op

        if op == "::":  # generic compare: sign of (left - right)
            def cmp(s, m, _l=left, _r=right):
                a, b = _l(s, m), _r(s, m)
                return (a > b) - (a < b)

            return cmp, "int"
        relation = _REL_TABLE.get(op)
        if relation is not None:
            return (
                lambda s, m, _l=left, _r=right, _rel=relation: 1
                if _rel(_l(s, m), _r(s, m))
                else 0
            ), "int"

        if common == "int":
            fn = _INT_TABLE.get(op)
            if fn is None:
                raise SimulationError(f"unknown int operator {op}")
            return (lambda s, m, _l=left, _r=right, _f=fn: _f(_l(s, m), _r(s, m))), "int"

        fn = _FLOAT_TABLE.get(op)
        if fn is None:
            raise SimulationError(f"operator {op} is not defined on {common}")

        def float_op(s, m, _l=left, _r=right, _f=fn):
            try:
                return _f(_l(s, m), _r(s, m))
            except ZeroDivisionError:
                raise SimulationError("floating divide by zero") from None

        return float_op, common

    def _compile_builtin(self, expr: ast.BuiltinCall, instr):
        name = expr.name
        arg, arg_type = self._compile_expr(expr.args[0], instr, None)
        if name == "int":
            return (
                lambda s, m, _a=arg, _w=_wrap32, _int=int: _w(_int(_a(s, m)))
            ), "int"
        if name in ("float", "double"):
            return (lambda s, m, _a=arg, _float=float: _float(_a(s, m))), name
        if name == "high":
            return (
                lambda s, m, _a=arg, _int=int: (_int(_a(s, m)) >> 16) & 0xFFFF
            ), "int"
        if name == "low":
            return (
                lambda s, m, _a=arg, _int=int: _int(_a(s, m)) & 0xFFFF
            ), "int"
        if name == "eval":
            return arg, arg_type
        raise SimulationError(f"unknown builtin {name}")
