"""The simulation driver: functional execution + pipeline timing.

:class:`Simulator` runs one function of a linked executable under the
target's calling convention: arguments go to the CWVM argument registers,
``sp`` starts at the top of simulated memory, a sentinel return address
halts the run, and the result is read from the CWVM result register.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.backend.insts import MachineInstr
import repro.cache as artifact_cache
from repro.errors import SimulationError, SimulationTimeout
import repro.obs as obs
from repro.options import UNSET, SimOptions, merge_legacy_kwargs
from repro.program import Executable
from repro.sim.blockcache import SEGMENT_CAP, BlockTimingCache, decode_blocks
from repro.sim.cache import DirectMappedCache
from repro.sim.executor import SemanticsCompiler
from repro.sim.jit import SUPERBLOCK_WARMUP, JitDeopt, SegmentJIT
from repro.sim.pipeline import AccountingPipelineModel, PipelineModel
from repro.sim.state import MachineState
from repro.utils import timing

_HALT = -1

#: sentinel distinguishing "entry not yet considered" from a stored
#: ``None`` (refused/blacklisted) in the JIT dispatch table
_MISS = object()

#: version tag mixed into the ``jit`` artifact-cache key; bumped when
#: the :meth:`SegmentJIT.export` payload format changes (v2: tagged
#: records with trace superblocks and their segment fallbacks; v3:
#: traces may inline calls/returns and truncate nodes at their hot
#: conditional; v4: one unified 15-tuple call contract for segments and
#: traces, with transition-table probes and inline data-cache tag
#: checks, so earlier generated functions are stale; v5: exit kinds
#: 1-3 close their final segment inside generated code — the dispatch
#: loop no longer closes them, so v4 functions would leave segments
#: untimed — and payloads carry marshalled code objects so a warm
#: process skips re-``compile()``-ing every generated source)
_JIT_PAYLOAD_VERSION = "v5"

#: version tag mixed into the ``timing`` artifact-cache key; bumped
#: when the :meth:`BlockTimingCache.export` payload format changes
#: (v2: exit-id-chained per-segment transition tables replace the flat
#: 5-tuple-keyed memo; v3: records carry per-hazard-kind stall deltas
#: so trace runs ride the fast path — v1 payloads have no key and are
#: never fetched)
_TIMING_PAYLOAD_VERSION = "v3"


def _no_timing_close(
    entry, end, transfer, miss_mask, events, entry_id, base,
    _empty=BlockTimingCache.EMPTY_ID,
):
    """Segment close for ``model_timing=False`` fast runs: no pipeline
    model is consulted, so every close is free and contributes nothing."""
    return 0, _empty, ()


def _accounted_close(real_close, totals):
    """Wrap :meth:`BlockTimingCache.close` for ``trace=True`` fast runs:
    every close (dispatch-level *and* the inline probe-miss closes inside
    generated code) adds its record's memoized stall-delta tuple into the
    run's accumulator.  Trace runs disable the inline probe tables (see
    ``_cold_tables``), so every boundary funnels through here and no
    stall cycle escapes attribution."""

    def close(entry, end, transfer, miss_mask, events, entry_id, base):
        record = real_close(
            entry, end, transfer, miss_mask, events, entry_id, base
        )
        index = 0
        for cycles in record[2]:
            if cycles:
                totals[index] += cycles
            index += 1
        return record

    return close


#: shared empty transition table for ``timing_chain=False`` runs
_EMPTY_TRANSITIONS: dict = {}


def _cold_tables(entry, end, transfer, _empty=_EMPTY_TRANSITIONS):
    """Transition-table accessor handed to generated code when the
    timing chain is disabled: every inline probe misses into a shared
    empty table, so each boundary takes the ``close()`` path instead —
    same memo, same records, bit-identical results, just slower."""
    return _empty


class _FreeRecords:
    """Stand-in transition table for ``model_timing=False`` fast runs:
    every inline probe "hits" a free record, so generated code never
    falls back to the close path."""

    __slots__ = ()

    @staticmethod
    def get(key, default=None, _record=(0, BlockTimingCache.EMPTY_ID, ())):
        return _record


_FREE_RECORDS = _FreeRecords()


def _free_tables(entry, end, transfer, _records=_FREE_RECORDS):
    return _records


@dataclass
class SimResult:
    """Everything one simulation run reports."""

    return_value: object
    cycles: int
    instructions: int
    loads: int = 0
    stores: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: dynamic entry count per block label (profiling, Tables 3/4)
    block_counts: dict[str, int] = field(default_factory=dict)
    #: hazard kind -> attributed stall cycles, filled when the run used
    #: ``SimOptions(trace=True)``; every cycle of issue-point advance is
    #: attributed, so the values sum to ``cycles - 1``
    cycle_breakdown: dict[str, int] | None = None
    #: block-timing cache lookups this run (both zero when the run used
    #: the reference interleaved path — watch/max_cycles fallback,
    #: ``fast_timing=False``, or timing off)
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    #: segment-JIT activity this run (all zero when the run took the
    #: reference path or ``SimOptions(jit=False)``): segments newly
    #: compiled, compiled-segment dispatches, and guard deopts
    jit_segments: int = 0
    jit_hits: int = 0
    jit_deopts: int = 0
    #: trace-superblock activity this run (zero when the run took the
    #: reference path or ``SimOptions(superblock=False)``): traces newly
    #: compiled and side exits taken out of compiled traces
    jit_superblocks: int = 0
    jit_side_exits: int = 0
    #: entries with a live compiled function at run end — compiled plus
    #: preloaded; the number that distinguishes a warm run
    #: (``jit_segments == 0`` but hundreds active) from JIT-off
    jit_active_segments: int = 0
    #: pipeline-state digests computed this run (first visits to a
    #: timing transition); on a warm run this stays near zero while
    #: ``block_cache_hits`` counts every boundary
    timing_digests: int = 0

    @property
    def stall_cycles(self) -> int:
        """Total attributed stall cycles (0 when no breakdown was kept)."""
        if not self.cycle_breakdown:
            return 0
        return sum(self.cycle_breakdown.values())

    @property
    def dilation(self) -> float:
        """Instructions executed per instruction generated — set by callers
        that know the static code size (Table 3)."""
        return getattr(self, "_dilation", 0.0)


def _resolve_cache(cache) -> DirectMappedCache | None:
    """``SimOptions.cache`` -> a cache instance or ``None``."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return DirectMappedCache()
    return cache


class Simulator:
    """Executes linked programs; reusable across runs of one executable
    (instruction closures are compiled once)."""

    def __init__(
        self,
        executable: Executable,
        options: SimOptions | None = None,
        *,
        cache=UNSET,
        model_timing=UNSET,
    ):
        options = merge_legacy_kwargs(
            options,
            {"cache": cache, "model_timing": model_timing},
            where="Simulator",
            factory=SimOptions,
        )
        self.executable = executable
        self.target = executable.target
        self.options = options
        self.cache = _resolve_cache(options.cache)
        self.model_timing = options.model_timing
        # the instruction closures and block map depend only on the linked
        # program, so they are compiled once and shared by every Simulator
        # built over the same executable (the eval harness simulates each
        # compiled kernel several times)
        decoded = getattr(executable, "_sim_decode", None)
        if decoded is None:
            compiler = SemanticsCompiler(self.target)
            closures = [compiler.compile_instr(i) for i in executable.instrs]
            # label of the block each instruction belongs to (for profiling)
            block_of, block_starts = decode_blocks(executable)
            decoded = (closures, block_of, block_starts)
            executable._sim_decode = decoded
        self.closures, self.block_of, self._block_starts = decoded
        # the pipeline decode tables are likewise per-program: one dict
        # for the base model (shared with the block-timing replay model)
        # and one for the accounting model, whose latency memo stores a
        # different shape — sharing them across runs stops every new
        # Simulator/_run from re-decoding the whole program
        pipe_static = getattr(executable, "_pipe_static", None)
        if pipe_static is None:
            pipe_static = ({}, {})
            executable._pipe_static = pipe_static
        self._pipe_static = pipe_static

    def run(
        self,
        function: str,
        args: tuple = (),
        arg_types: tuple | None = None,
        options: SimOptions | None = None,
        *,
        max_instructions=UNSET,
        max_cycles=UNSET,
        trace=UNSET,
        watch=None,
    ) -> SimResult:
        """Run ``function`` under one :class:`SimOptions` record.

        ``options``, if given, replaces the record the simulator was
        built with for this run (cache, timing model, limits and trace
        flag all come from it).  ``SimOptions(max_cycles=...)`` arms the
        watchdog: the run raises :class:`SimulationTimeout` (carrying
        function/pc/cycle context) once the pipeline cycle count passes
        the budget; with timing off the instruction count stands in for
        cycles.  ``SimOptions(trace=True)`` selects the accounting
        pipeline model and fills ``SimResult.cycle_breakdown``.

        ``watch``, if given, is called as ``watch(pc, instr, cycle)``
        after every executed instruction (cycle is 0 when timing is off)
        — a debugging hook for watching generated code execute.  The
        pre-1.1 spellings (``max_instructions=``/``max_cycles=``
        keywords, ``trace=`` for the watch callback) have been removed
        and raise :class:`TypeError` naming the replacement.
        """
        run_options = options if options is not None else self.options
        legacy = sorted(
            name
            for name, value in (
                ("max_instructions", max_instructions),
                ("max_cycles", max_cycles),
            )
            if value is not UNSET
        )
        if legacy:
            raise TypeError(
                f"Simulator.run: the {', '.join(legacy)} keyword(s) were"
                " removed; pass options=SimOptions("
                f"{', '.join(f'{name}=...' for name in legacy)}) instead"
            )
        if trace is not UNSET:
            raise TypeError(
                "Simulator.run: the trace= callback keyword was removed;"
                " pass watch=callback (or options=SimOptions(trace=True)"
                " for stall accounting) instead"
            )
        cache = self.cache if options is None else _resolve_cache(
            run_options.cache
        )
        # the memoized block-timing path needs nothing observed per
        # instruction; anything that does — a cycle-exact watchdog
        # raise, a watch callback fed issue cycles — takes the reference
        # interleaved path.  Stall attribution (``trace=True``) *is*
        # fast-path eligible: transition records memoize per-hazard
        # stall deltas, so a trace run sums tuples at segment
        # boundaries instead of attributing every issue.  Timing-off
        # runs (model_timing=False) share the fast loop too, with the
        # block close stubbed out, so they still dispatch the segment
        # JIT.
        fast = (
            run_options.fast_timing
            and run_options.max_cycles is None
            and watch is None
        )
        with obs.span(
            f"simulate:{function}", target=self.target.name
        ) as node:
            if fast:
                result = self._run_fast(
                    function, args, arg_types, run_options, cache
                )
            else:
                result = self._run(
                    function, args, arg_types, run_options, cache, watch
                )
            if node is not None:
                node.attrs["cycles"] = result.cycles
                node.attrs["instructions"] = result.instructions
            if result.block_cache_hits:
                obs.count("sim.block_cache.hit", result.block_cache_hits)
            if result.block_cache_misses:
                obs.count("sim.block_cache.miss", result.block_cache_misses)
            if result.timing_digests:
                obs.count(
                    "sim.timing.digests_computed", result.timing_digests
                )
            if result.jit_segments:
                obs.count("sim.jit.segments", result.jit_segments)
            if result.jit_active_segments:
                obs.count(
                    "sim.jit.active_segments", result.jit_active_segments
                )
            if result.jit_hits:
                obs.count("sim.jit.hit", result.jit_hits)
            if result.jit_deopts:
                obs.count("sim.jit.deopt", result.jit_deopts)
            if result.jit_superblocks:
                obs.count("sim.jit.superblocks", result.jit_superblocks)
            if result.jit_side_exits:
                obs.count("sim.jit.side_exits", result.jit_side_exits)
            if result.cycle_breakdown:
                for kind, count in result.cycle_breakdown.items():
                    if count:
                        obs.count(f"sim.stall.{kind}", count)
        if fast:
            self._persist_sim_artifacts()
        return result

    def _artifact_key(self, layer: str, *extra) -> str | None:
        """Artifact-cache key for this executable's simulator state, or
        ``None`` when the executable did not come through the cached
        compile path (hand-linked programs stay uncached)."""
        base = getattr(self.executable, "content_key", None)
        if not base:
            return None
        store = artifact_cache.get_cache()
        if not store.enabled:
            return None
        return store.key(layer, base, *extra)

    def _persist_sim_artifacts(self) -> None:
        """Publish JIT code and timing digests that changed this run, so
        the *next process* starts with them warm (layers 3 and 4 of
        :mod:`repro.cache`).  Dirty flags keep steady-state runs free of
        filesystem traffic."""
        exe = self.executable
        jit = getattr(exe, "_segment_jit", None)
        if jit is not None and jit.dirty:
            key = self._artifact_key("jit", _JIT_PAYLOAD_VERSION)
            if key is not None and artifact_cache.get_cache().put(
                "jit", key, jit.export()
            ):
                jit.dirty = False
        caches = getattr(exe, "_block_timing", None)
        if caches:
            for miss_penalty, block_cache in caches.items():
                if not block_cache.dirty:
                    continue
                key = self._artifact_key(
                    "timing", _TIMING_PAYLOAD_VERSION, repr(miss_penalty)
                )
                if key is not None and artifact_cache.get_cache().put(
                    "timing", key, block_cache.export()
                ):
                    block_cache.dirty = False

    def _init_state(
        self, function: str, args: tuple, arg_types: tuple | None
    ) -> MachineState:
        """Fresh machine state with the calling convention applied."""
        exe = self.executable
        state = MachineState(self.target.registers, exe.initial_memory())
        cwvm = self.target.cwvm
        stack_top = exe.memory_size - 64
        state.write_reg(cwvm.sp, "int", stack_top)
        state.write_reg(cwvm.fp, "int", stack_top)
        if arg_types is None:
            arg_types = tuple(
                "double" if isinstance(a, float) else "int" for a in args
            )
        counts: dict[str, int] = {}
        for value, type_name in zip(args, arg_types):
            index = counts.get(type_name, 0)
            counts[type_name] = index + 1
            reg = cwvm.arg_register(type_name, index)
            if reg is None:
                raise SimulationError(
                    f"no argument register for {type_name} argument #{index + 1}",
                    function=function,
                )
            state.write_reg(reg, type_name, value)
        if cwvm.gp is not None:
            state.write_reg(cwvm.gp, "int", exe.gp_base)
        if cwvm.retaddr is not None:
            state.write_reg(cwvm.retaddr, "int", _HALT)
        for reg, value in cwvm.hard_registers.items():
            state.write_reg(reg, "int", value)
        return state

    def _segment_jit(self) -> SegmentJIT:
        """The per-executable segment JIT (warmup counts and compiled
        functions amortize across every run of the program).  On first
        attach, previously generated code is staged from the artifact
        cache — entries skip warmup and re-``compile()`` lazily."""
        jit = getattr(self.executable, "_segment_jit", None)
        if jit is None:
            jit = SegmentJIT(self.executable)
            key = self._artifact_key("jit", _JIT_PAYLOAD_VERSION)
            if key is not None:
                payload = artifact_cache.get_cache().get("jit", key)
                if isinstance(payload, dict):
                    jit.preload(payload)
            self.executable._segment_jit = jit
        return jit

    def _block_cache(
        self, cache: DirectMappedCache | None
    ) -> BlockTimingCache:
        """The per-(executable, miss-penalty) block-timing cache; on
        first attach the memo table is preloaded from the artifact
        cache, so a fresh process replays ~nothing."""
        caches = getattr(self.executable, "_block_timing", None)
        if caches is None:
            caches = {}
            self.executable._block_timing = caches
        key = cache.miss_penalty if cache is not None else None
        block_cache = caches.get(key)
        if block_cache is None:
            block_cache = BlockTimingCache(
                self.target,
                self.executable.instrs,
                key,
                static=self._pipe_static[1],
            )
            artifact_key = self._artifact_key(
                "timing", _TIMING_PAYLOAD_VERSION, repr(key)
            )
            if artifact_key is not None:
                payload = artifact_cache.get_cache().get(
                    "timing", artifact_key
                )
                if isinstance(payload, dict):
                    block_cache.preload(payload)
            caches[key] = block_cache
        return block_cache

    def _run(
        self,
        function: str,
        args: tuple,
        arg_types: tuple | None,
        options: SimOptions,
        cache: DirectMappedCache | None,
        watch,
    ) -> SimResult:
        max_instructions = options.max_instructions
        max_cycles = options.max_cycles
        exe = self.executable
        state = self._init_state(function, args, arg_types)
        cwvm = self.target.cwvm
        if cache is not None:
            cache.reset()
        if not options.model_timing:
            pipeline = None
        elif options.trace:
            pipeline = AccountingPipelineModel(
                self.target, cache, static=self._pipe_static[1]
            )
        else:
            pipeline = PipelineModel(
                self.target, cache, static=self._pipe_static[0]
            )

        pc = exe.entry(function)
        executed = 0
        loads = stores = 0
        block_counts: dict[str, int] = {}
        mem_log: list = []
        instrs = exe.instrs
        program_size = len(instrs)
        closures = self.closures
        block_of = self.block_of
        block_starts = self._block_starts
        pipeline_issue = pipeline.issue if pipeline else None
        wall_start = time.perf_counter() if timing.ENABLED else 0.0
        # the watchdog is checked every 256 instructions so its cost on
        # the hot path is one extra branch per instruction
        watchdog = max_cycles is not None

        while pc != _HALT:
            if pc < 0 or pc >= program_size:
                raise SimulationError(
                    f"pc {pc} outside program",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )
            instr = instrs[pc]
            if executed >= max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions (infinite loop?)",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )
            if watchdog and not (executed & 255):
                current = pipeline.cycles if pipeline else executed
                if current > max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded {max_cycles} cycles",
                        max_cycles=max_cycles,
                        function=function,
                        pc=pc,
                        cycle=current,
                    )
            effect = closures[pc](state, mem_log)
            executed += 1
            if pc in block_starts:
                label = block_of[pc]
                block_counts[label] = block_counts.get(label, 0) + 1
            if mem_log:
                for _addr, is_write, _size in mem_log:
                    if is_write:
                        stores += 1
                    else:
                        loads += 1
            if pipeline_issue is not None:
                issue_cycle = pipeline_issue(instr, mem_log)
            else:
                issue_cycle = 0
            if mem_log:
                del mem_log[:]
            if watch is not None:
                watch(pc, instr, issue_cycle)

            if effect is None:
                pc += 1
                continue

            kind = effect[0]
            if kind == "goto":
                target_pc = self._execute_delay_slots(
                    instr, pc, state, pipeline, block_counts
                )
                executed += abs(instr.desc.slots)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = exe.labels.get(effect[1])
                if pc is None:
                    raise SimulationError(
                        f"undefined label {effect[1]!r}",
                        function=function,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
            elif kind == "call":
                if cwvm.retaddr is None:
                    raise SimulationError(
                        "call without a %retaddr register",
                        function=function,
                        pc=pc,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
                state.write_reg(cwvm.retaddr, "int", pc + 1)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = exe.labels.get(effect[1])
                if pc is None:
                    raise SimulationError(
                        f"undefined function {effect[1]!r}",
                        function=function,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
            elif kind == "ret":
                target_pc = self._execute_delay_slots(
                    instr, pc, state, pipeline, block_counts
                )
                executed += abs(instr.desc.slots)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = state.read_reg(cwvm.retaddr, "int")
            else:
                raise SimulationError(
                    f"unknown control effect {effect!r}",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )

        if timing.ENABLED:
            timing.add_seconds("sim.run", time.perf_counter() - wall_start)
            timing.add("sim.instructions", executed)
            timing.add(
                "sim.cycles", (pipeline.cycles if pipeline else executed)
            )
        result = SimResult(
            return_value=None,
            cycles=pipeline.cycles if pipeline else executed,
            instructions=executed,
            loads=loads,
            stores=stores,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            block_counts=block_counts,
            cycle_breakdown=(
                pipeline.cycle_breakdown
                if isinstance(pipeline, AccountingPipelineModel)
                else None
            ),
        )
        result.return_value = self._read_result(state)
        return result

    def _run_fast(
        self,
        function: str,
        args: tuple,
        arg_types: tuple | None,
        options: SimOptions,
        cache: DirectMappedCache | None,
    ) -> SimResult:
        """The memoized block-timing path (see :mod:`repro.sim.blockcache`).

        Functional execution is unchanged — every instruction's closure
        still runs, and the data-cache model is consulted once per memory
        access in reference order — but the pipeline model is consulted
        per *segment* through :class:`BlockTimingCache` instead of per
        instruction.  The timing state between segments is just an
        interned digest id plus a virtual cycle counter."""
        max_instructions = options.max_instructions
        exe = self.executable
        state = self._init_state(function, args, arg_types)
        cwvm = self.target.cwvm
        if cache is not None:
            cache.reset()
        tracing = options.trace and options.model_timing
        stall_totals: list[int] = []
        if options.model_timing:
            block_cache = self._block_cache(cache)
            # materialization bases must never decrease across runs
            # sharing this cache (stale resource-ring tags would alias),
            # so every absolute base is offset by the high-water mark
            base_offset = block_cache.begin_run()
            close = block_cache.close
            start_hits = block_cache.hits
            start_misses = block_cache.misses
            start_digests = block_cache.digests_computed
            # transition tables handed to generated code: the real
            # per-segment tables when the chain is on, a shared empty
            # table (every probe misses into close()) when it is off
            trans_tables = (
                block_cache.transitions
                if options.timing_chain
                else _cold_tables
            )
            if tracing:
                # stall attribution: every boundary must funnel through
                # the accounting close (inline probe commits would skip
                # the stall-delta accumulation), so the chain's probe
                # tables are withheld for this run
                stall_totals = [0] * len(block_cache.stall_kinds())
                close = _accounted_close(block_cache.close, stall_totals)
                trans_tables = _cold_tables
        else:
            # functional-only run: same loop (and segment JIT), but the
            # segment close never consults a pipeline model and every
            # probe hits a free record
            block_cache = None
            base_offset = 0
            close = _no_timing_close
            start_hits = start_misses = start_digests = 0
            trans_tables = _free_tables

        pc = exe.entry(function)
        executed = 0
        loads = stores = 0
        block_counts: dict[str, int] = {}
        mem_log: list = []
        instrs = exe.instrs
        program_size = len(instrs)
        closures = self.closures
        block_of = self.block_of
        block_starts = self._block_starts
        wall_start = time.perf_counter() if timing.ENABLED else 0.0
        # ret reads the %retaddr register on every function return; the
        # unit lookup and sign fix are hoisted out of state.read_reg
        units_get = state.units.get
        ret_unit = (
            self.target.registers.units_of(cwvm.retaddr)[0]
            if cwvm.retaddr is not None
            else None
        )

        entry_id = BlockTimingCache.EMPTY_ID
        virtual_issue = 0
        seg_entry = pc
        seg_len = 0
        events: list = []
        miss_mask = 0
        load_bit = 1

        # segment-JIT dispatch state: compiled functions only ever run at
        # a fresh segment boundary (seg_len == 0 and pc == seg_entry), so
        # the accumulated events/miss-mask they receive are empty/zero
        jit = self._segment_jit() if options.jit else None
        jit_cached = cache is not None
        jit_table = jit.functions(jit_cached) if jit is not None else None
        jit_hits_run = 0
        jit_compiled_before = jit.compiled if jit is not None else 0
        jit_deopts_before = jit.deopts if jit is not None else 0
        jit_active_before = jit.active_segments() if jit is not None else 0
        # trace-superblock dispatch state: the edge profile feeds trace
        # selection
        sb_on = options.superblock and jit is not None
        sb_edges = jit.edges if jit is not None else None
        sb_sites = jit.edge_sites if jit is not None else None
        sb_exits_run = 0
        jit_superblocks_before = jit.superblocks if jit is not None else 0
        jit_preloaded_before = jit.preloaded if jit is not None else 0
        jit_sb_preloaded_before = jit.sb_preloaded if jit is not None else 0
        jit_sb_demoted_before = jit.sb_demoted if jit is not None else 0

        while pc != _HALT:
            if pc < 0 or pc >= program_size:
                raise SimulationError(
                    f"pc {pc} outside program",
                    function=function,
                    pc=pc,
                    cycle=virtual_issue + 1,
                )
            if executed >= max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions (infinite loop?)",
                    function=function,
                    pc=pc,
                    cycle=virtual_issue + 1,
                )
            if seg_len == 0 and jit_table is not None and pc == seg_entry:
                record = jit_table.get(pc, _MISS)
                if record is _MISS:
                    record = jit.warm(pc, jit_cached)
                if record is not None and record[2] and not sb_on:
                    # the entry was promoted into a trace, but this run
                    # has superblocks off: use the plain segment record
                    # the promotion stashed (or stay interpreted)
                    record = jit.segment_fallback(pc, jit_cached)
                if record is not None and (
                    executed + record[1] <= max_instructions
                ):
                    # one contract for segments and traces: probes close
                    # every chained boundary inside generated code,
                    # including the final segment of a taken/call/return
                    # exit (kinds 1-3) and a fuse stop (kind 4); only a
                    # fallthrough exit (kind 0) returns an open segment
                    # for the interpreter to continue
                    is_sb = record[2]
                    try:
                        (
                            jit_kind, seg_end, transfer, jit_label,
                            node_entry, open_len, exec_delta,
                            load_delta, store_delta, miss_mask,
                            load_bit, cycle_delta, eid, probe_hits,
                            probe_closes,
                        ) = record[0](
                            state, cache, events, block_counts,
                            trans_tables, close, entry_id,
                            base_offset + virtual_issue,
                            max_instructions - executed - record[1],
                            miss_mask, load_bit,
                        )
                    except JitDeopt as guard:
                        # the guard fired before any cache access,
                        # memory write or probe: undo the block counts,
                        # drop the (unconsumed) events, and fall through
                        # to the interpreter, which re-executes the
                        # segment and raises the real error
                        jit.note_deopt(pc, jit_cached, guard, block_counts)
                        del events[:]
                        miss_mask = 0
                        load_bit = 1
                    else:
                        executed += exec_delta
                        loads += load_delta
                        stores += store_delta
                        virtual_issue += cycle_delta
                        entry_id = eid
                        jit_hits_run += probe_closes
                        if probe_hits and block_cache is not None:
                            # inline probe hits bypass close(), so the
                            # memo's hit counter is credited here
                            block_cache.hits += probe_hits
                        if jit_kind == 4:
                            pc = seg_entry = node_entry
                            continue
                        if is_sb:
                            sb_exits_run += 1
                            # quality gate: demote a trace whose calls
                            # keep dropping an open tail into the
                            # interpreter before the first back-edge
                            jit.note_trace_exit(
                                seg_entry, jit_cached, probe_closes,
                                jit_kind,
                            )
                        if jit_kind == 0:
                            # fallthrough end: the final segment stays
                            # open at node_entry
                            jit_hits_run += 1
                            pc = seg_end + 1
                            seg_entry = node_entry
                            seg_len = open_len
                            if seg_len >= SEGMENT_CAP:
                                delta, entry_id, _ = close(
                                    node_entry, seg_end, -1, miss_mask,
                                    events, entry_id,
                                    base_offset + virtual_issue,
                                )
                                virtual_issue += delta
                                seg_entry = pc
                                seg_len = 0
                                del events[:]
                                miss_mask = 0
                                load_bit = 1
                            continue
                        # kinds 1-3 return with the final segment
                        # already closed inside generated code (its
                        # close is in probe_closes and cycle_delta, and
                        # mm/lb came back reset): only routing remains
                        seg_len = 0
                        if jit_kind == 2:
                            if ret_unit is not None:
                                word = units_get(ret_unit, 0)
                                pc = (
                                    word - 4294967296
                                    if word > 2147483647
                                    else word
                                )
                            else:
                                pc = state.read_reg(cwvm.retaddr, "int")
                        else:
                            new_pc = exe.labels.get(jit_label)
                            if new_pc is None:
                                noun = (
                                    "label"
                                    if jit_kind == 1
                                    else "function"
                                )
                                raise SimulationError(
                                    f"undefined {noun} {jit_label!r}",
                                    function=function,
                                    cycle=virtual_issue + 1,
                                )
                            if jit_kind == 1 and sb_on:
                                # profile the taken edge until its
                                # promotion decision; a hot edge
                                # triggers one trace-selection attempt
                                # at its source (or target)
                                edge = (node_entry, new_pc)
                                hot = sb_edges.get(edge, 0)
                                if hot < SUPERBLOCK_WARMUP:
                                    hot += 1
                                    sb_edges[edge] = hot
                                    sb_sites[edge] = transfer
                                    if hot == SUPERBLOCK_WARMUP and not (
                                        jit.build_superblock(
                                            node_entry, jit_cached,
                                            block_counts,
                                        )
                                    ):
                                        jit.build_superblock(
                                            new_pc, jit_cached,
                                            block_counts,
                                        )
                            pc = new_pc
                        seg_entry = pc
                        continue
            effect = closures[pc](state, mem_log)
            executed += 1
            seg_len += 1
            if pc in block_starts:
                label = block_of[pc]
                block_counts[label] = block_counts.get(label, 0) + 1
            if mem_log:
                for address, is_write, _size in mem_log:
                    if is_write:
                        stores += 1
                        hit = cache is None or cache.access(address)
                    else:
                        loads += 1
                        if cache is None:
                            hit = True
                        else:
                            hit = cache.access(address)
                            if not hit:
                                miss_mask |= load_bit
                        load_bit <<= 1
                    events.append((pc, is_write, hit))
                del mem_log[:]

            if effect is None:
                pc += 1
                if seg_len >= SEGMENT_CAP:
                    delta, entry_id, _ = close(
                        seg_entry, pc - 1, -1, miss_mask, events,
                        entry_id, base_offset + virtual_issue,
                    )
                    virtual_issue += delta
                    seg_entry = pc
                    seg_len = 0
                    del events[:]
                    miss_mask = 0
                    load_bit = 1
                continue

            kind = effect[0]
            if kind == "goto" or kind == "ret":
                end = pc
                slots = abs(instrs[pc].desc.slots)
                for slot in range(slots):
                    slot_pc = pc + 1 + slot
                    if slot_pc >= program_size:
                        break
                    slot_effect = closures[slot_pc](state, mem_log)
                    if slot_effect is not None:
                        raise SimulationError(
                            "control instruction in a delay slot is not"
                            " supported",
                            pc=slot_pc,
                        )
                    if mem_log:
                        # delay-slot accesses hit the cache and shape the
                        # miss mask, but (matching the reference path)
                        # are not counted in loads/stores
                        for address, is_write, _size in mem_log:
                            if is_write:
                                hit = cache is None or cache.access(address)
                            else:
                                if cache is None:
                                    hit = True
                                else:
                                    hit = cache.access(address)
                                    if not hit:
                                        miss_mask |= load_bit
                                load_bit <<= 1
                            events.append((slot_pc, is_write, hit))
                        del mem_log[:]
                    end = slot_pc
                executed += slots
                delta, entry_id, _ = close(
                    seg_entry, end, pc, miss_mask, events,
                    entry_id, base_offset + virtual_issue,
                )
                virtual_issue += delta
                seg_len = 0
                del events[:]
                miss_mask = 0
                load_bit = 1
                if kind == "goto":
                    pc = exe.labels.get(effect[1])
                    if pc is None:
                        raise SimulationError(
                            f"undefined label {effect[1]!r}",
                            function=function,
                            cycle=virtual_issue + 1,
                        )
                elif ret_unit is not None:
                    word = units_get(ret_unit, 0)
                    pc = word - 4294967296 if word > 2147483647 else word
                else:
                    pc = state.read_reg(cwvm.retaddr, "int")
                seg_entry = pc
            elif kind == "call":
                if cwvm.retaddr is None:
                    raise SimulationError(
                        "call without a %retaddr register",
                        function=function,
                        pc=pc,
                        cycle=virtual_issue + 1,
                    )
                state.write_reg(cwvm.retaddr, "int", pc + 1)
                delta, entry_id, _ = close(
                    seg_entry, pc, pc, miss_mask, events,
                    entry_id, base_offset + virtual_issue,
                )
                virtual_issue += delta
                seg_len = 0
                del events[:]
                miss_mask = 0
                load_bit = 1
                pc = exe.labels.get(effect[1])
                if pc is None:
                    raise SimulationError(
                        f"undefined function {effect[1]!r}",
                        function=function,
                        cycle=virtual_issue + 1,
                    )
                seg_entry = pc
            else:
                raise SimulationError(
                    f"unknown control effect {effect!r}",
                    function=function,
                    pc=pc,
                    cycle=virtual_issue + 1,
                )

        if seg_len:
            # defensive: a run normally ends via ret (which closes its
            # segment), but flush anything outstanding
            delta, entry_id, _ = close(
                seg_entry, seg_entry + seg_len - 1, -1, miss_mask, events,
                entry_id, base_offset + virtual_issue,
            )
            virtual_issue += delta

        if block_cache is not None:
            cycles = virtual_issue + 1
            hits = block_cache.hits - start_hits
            misses = block_cache.misses - start_misses
        else:
            # timing off: the instruction count stands in for cycles,
            # exactly as on the reference path
            cycles = executed
            hits = misses = 0
        digests = (
            block_cache.digests_computed - start_digests
            if block_cache is not None
            else 0
        )
        jit_segments = jit_deopts = jit_superblocks = 0
        jit_preloaded_delta = jit_sb_preloaded_delta = 0
        jit_sb_demoted_delta = 0
        jit_active = 0
        if jit is not None:
            jit.hits += jit_hits_run
            jit.side_exits += sb_exits_run
            jit_segments = jit.compiled - jit_compiled_before
            jit_deopts = jit.deopts - jit_deopts_before
            jit_superblocks = jit.superblocks - jit_superblocks_before
            jit_preloaded_delta = jit.preloaded - jit_preloaded_before
            jit_sb_preloaded_delta = jit.sb_preloaded - jit_sb_preloaded_before
            jit_sb_demoted_delta = jit.sb_demoted - jit_sb_demoted_before
            jit_active = jit.active_segments()
        if timing.ENABLED:
            timing.add_seconds("sim.run", time.perf_counter() - wall_start)
            timing.add("sim.instructions", executed)
            timing.add("sim.cycles", cycles)
            timing.add("sim.block_cache.hit", hits)
            timing.add("sim.block_cache.miss", misses)
            timing.add("sim.timing.digests_computed", digests)
            timing.add("sim.jit.segments", jit_segments)
            timing.add("sim.jit.active_segments", jit_active - jit_active_before)
            timing.add("sim.jit.hit", jit_hits_run)
            timing.add("sim.jit.deopt", jit_deopts)
            timing.add("sim.jit.superblocks", jit_superblocks)
            timing.add("sim.jit.side_exits", sb_exits_run)
            timing.add("sim.jit.preloaded", jit_preloaded_delta)
            timing.add("sim.jit.sb_preloaded", jit_sb_preloaded_delta)
            timing.add("sim.jit.sb_demoted", jit_sb_demoted_delta)
        result = SimResult(
            return_value=None,
            cycles=cycles,
            instructions=executed,
            loads=loads,
            stores=stores,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            block_counts=block_counts,
            cycle_breakdown=(
                dict(zip(block_cache.stall_kinds(), stall_totals))
                if tracing
                else None
            ),
            block_cache_hits=hits,
            block_cache_misses=misses,
            jit_segments=jit_segments,
            jit_hits=jit_hits_run,
            jit_deopts=jit_deopts,
            jit_superblocks=jit_superblocks,
            jit_side_exits=sb_exits_run,
            jit_active_segments=jit_active,
            timing_digests=digests,
        )
        result.return_value = self._read_result(state)
        return result

    def _execute_delay_slots(
        self, instr: MachineInstr, pc: int, state, pipeline, block_counts
    ) -> None:
        """Execute the delay-slot instructions following a taken transfer.

        Marion fills delay slots with nops (section 4.4), so only their
        timing matters, but we execute them faithfully anyway."""
        mem_log: list = []
        for slot in range(abs(instr.desc.slots)):
            slot_pc = pc + 1 + slot
            if slot_pc >= len(self.executable.instrs):
                break
            del mem_log[:]
            effect = self.closures[slot_pc](state, mem_log)
            if effect is not None:
                raise SimulationError(
                    "control instruction in a delay slot is not supported",
                    pc=slot_pc,
                )
            if pipeline:
                pipeline.issue(self.executable.instrs[slot_pc], mem_log)
        return None

    def _read_result(self, state: MachineState):
        # probe both result registers; the caller knows which one is real
        results = {}
        for type_name, reg in self.target.cwvm.results.items():
            try:
                results[type_name] = state.read_reg(reg, type_name)
            except SimulationError:
                pass
        return results


def run_program(
    executable: Executable,
    function: str,
    args: tuple = (),
    options: SimOptions | None = None,
    *,
    cache=UNSET,
    model_timing=UNSET,
    max_instructions=UNSET,
    max_cycles=UNSET,
) -> SimResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    options = merge_legacy_kwargs(
        options,
        {
            "cache": cache,
            "model_timing": model_timing,
            "max_instructions": max_instructions,
            "max_cycles": max_cycles,
        },
        where="run_program",
        factory=SimOptions,
    )
    simulator = Simulator(executable, options)
    return simulator.run(function, args)
