"""The simulation driver: functional execution + pipeline timing.

:class:`Simulator` runs one function of a linked executable under the
target's calling convention: arguments go to the CWVM argument registers,
``sp`` starts at the top of simulated memory, a sentinel return address
halts the run, and the result is read from the CWVM result register.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.backend.insts import MachineInstr
from repro.errors import SimulationError, SimulationTimeout
from repro.program import Executable
from repro.sim.cache import DirectMappedCache
from repro.sim.executor import SemanticsCompiler
from repro.sim.pipeline import PipelineModel
from repro.sim.state import MachineState
from repro.utils import timing

_HALT = -1


@dataclass
class SimResult:
    """Everything one simulation run reports."""

    return_value: object
    cycles: int
    instructions: int
    loads: int = 0
    stores: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: dynamic entry count per block label (profiling, Tables 3/4)
    block_counts: dict[str, int] = field(default_factory=dict)

    @property
    def dilation(self) -> float:
        """Instructions executed per instruction generated — set by callers
        that know the static code size (Table 3)."""
        return getattr(self, "_dilation", 0.0)


class Simulator:
    """Executes linked programs; reusable across runs of one executable
    (instruction closures are compiled once)."""

    def __init__(
        self,
        executable: Executable,
        cache: DirectMappedCache | None = None,
        model_timing: bool = True,
    ):
        self.executable = executable
        self.target = executable.target
        self.cache = cache
        self.model_timing = model_timing
        # the instruction closures and block map depend only on the linked
        # program, so they are compiled once and shared by every Simulator
        # built over the same executable (the eval harness simulates each
        # compiled kernel several times)
        decoded = getattr(executable, "_sim_decode", None)
        if decoded is None:
            compiler = SemanticsCompiler(self.target)
            closures = [compiler.compile_instr(i) for i in executable.instrs]
            # label of the block each instruction belongs to (for profiling)
            block_of: list[str] = []
            by_index = sorted(
                executable.labels.items(), key=lambda item: item[1]
            )
            position = 0
            current = ""
            for label, index in by_index:
                while position < index:
                    block_of.append(current)
                    position += 1
                current = label
            while position < len(executable.instrs):
                block_of.append(current)
                position += 1
            decoded = (closures, block_of, frozenset(executable.labels.values()))
            executable._sim_decode = decoded
        self.closures, self.block_of, self._block_starts = decoded

    def run(
        self,
        function: str,
        args: tuple = (),
        arg_types: tuple | None = None,
        max_instructions: int = 50_000_000,
        max_cycles: int | None = None,
        trace=None,
    ) -> SimResult:
        """Run ``function``.

        ``max_cycles``, if given, is a watchdog: the run raises
        :class:`SimulationTimeout` (carrying function/pc/cycle context)
        once the pipeline cycle count passes the budget, so a runaway
        kernel becomes a catchable failure instead of a hang.  With
        timing off the instruction count stands in for cycles.

        ``trace``, if given, is called as ``trace(pc, instr, cycle)`` after
        every executed instruction (cycle is 0 when timing is off) — a
        debugging hook for watching generated code execute."""
        exe = self.executable
        state = MachineState(self.target.registers, exe.initial_memory())
        cwvm = self.target.cwvm
        if self.cache is not None:
            self.cache.reset()
        pipeline = PipelineModel(self.target, self.cache) if self.model_timing else None

        # calling convention setup
        stack_top = exe.memory_size - 64
        state.write_reg(cwvm.sp, "int", stack_top)
        state.write_reg(cwvm.fp, "int", stack_top)
        if arg_types is None:
            arg_types = tuple(
                "double" if isinstance(a, float) else "int" for a in args
            )
        counts: dict[str, int] = {}
        for value, type_name in zip(args, arg_types):
            index = counts.get(type_name, 0)
            counts[type_name] = index + 1
            reg = cwvm.arg_register(type_name, index)
            if reg is None:
                raise SimulationError(
                    f"no argument register for {type_name} argument #{index + 1}",
                    function=function,
                )
            state.write_reg(reg, type_name, value)
        if cwvm.gp is not None:
            state.write_reg(cwvm.gp, "int", exe.gp_base)
        if cwvm.retaddr is not None:
            state.write_reg(cwvm.retaddr, "int", _HALT)
        for reg, value in cwvm.hard_registers.items():
            state.write_reg(reg, "int", value)

        pc = exe.entry(function)
        executed = 0
        loads = stores = 0
        block_counts: dict[str, int] = {}
        mem_log: list = []
        instrs = exe.instrs
        program_size = len(instrs)
        closures = self.closures
        block_of = self.block_of
        block_starts = self._block_starts
        pipeline_issue = pipeline.issue if pipeline else None
        wall_start = time.perf_counter() if timing.ENABLED else 0.0
        # the watchdog is checked every 256 instructions so its cost on
        # the hot path is one extra branch per instruction
        watchdog = max_cycles is not None

        while pc != _HALT:
            if pc < 0 or pc >= program_size:
                raise SimulationError(
                    f"pc {pc} outside program",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )
            instr = instrs[pc]
            if executed >= max_instructions:
                raise SimulationError(
                    f"exceeded {max_instructions} instructions (infinite loop?)",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )
            if watchdog and not (executed & 255):
                current = pipeline.cycles if pipeline else executed
                if current > max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded {max_cycles} cycles",
                        max_cycles=max_cycles,
                        function=function,
                        pc=pc,
                        cycle=current,
                    )
            effect = closures[pc](state, mem_log)
            executed += 1
            if pc in block_starts:
                label = block_of[pc]
                block_counts[label] = block_counts.get(label, 0) + 1
            if mem_log:
                for _addr, is_write, _size in mem_log:
                    if is_write:
                        stores += 1
                    else:
                        loads += 1
            if pipeline_issue is not None:
                issue_cycle = pipeline_issue(instr, mem_log)
            else:
                issue_cycle = 0
            if mem_log:
                del mem_log[:]
            if trace is not None:
                trace(pc, instr, issue_cycle)

            if effect is None:
                pc += 1
                continue

            kind = effect[0]
            if kind == "goto":
                target_pc = self._execute_delay_slots(
                    instr, pc, state, pipeline, block_counts
                )
                executed += abs(instr.desc.slots)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = exe.labels.get(effect[1])
                if pc is None:
                    raise SimulationError(
                        f"undefined label {effect[1]!r}",
                        function=function,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
            elif kind == "call":
                if cwvm.retaddr is None:
                    raise SimulationError(
                        "call without a %retaddr register",
                        function=function,
                        pc=pc,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
                state.write_reg(cwvm.retaddr, "int", pc + 1)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = exe.labels.get(effect[1])
                if pc is None:
                    raise SimulationError(
                        f"undefined function {effect[1]!r}",
                        function=function,
                        cycle=pipeline.cycles if pipeline else executed,
                    )
            elif kind == "ret":
                target_pc = self._execute_delay_slots(
                    instr, pc, state, pipeline, block_counts
                )
                executed += abs(instr.desc.slots)
                if pipeline:
                    pipeline.transfer(instr, issue_cycle)
                pc = state.read_reg(cwvm.retaddr, "int")
            else:
                raise SimulationError(
                    f"unknown control effect {effect!r}",
                    function=function,
                    pc=pc,
                    cycle=pipeline.cycles if pipeline else executed,
                )

        if timing.ENABLED:
            timing.add_seconds("sim.run", time.perf_counter() - wall_start)
            timing.add("sim.instructions", executed)
            timing.add(
                "sim.cycles", (pipeline.cycles if pipeline else executed)
            )
        result = SimResult(
            return_value=None,
            cycles=pipeline.cycles if pipeline else executed,
            instructions=executed,
            loads=loads,
            stores=stores,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            block_counts=block_counts,
        )
        result.return_value = self._read_result(state)
        return result

    def _execute_delay_slots(
        self, instr: MachineInstr, pc: int, state, pipeline, block_counts
    ) -> None:
        """Execute the delay-slot instructions following a taken transfer.

        Marion fills delay slots with nops (section 4.4), so only their
        timing matters, but we execute them faithfully anyway."""
        mem_log: list = []
        for slot in range(abs(instr.desc.slots)):
            slot_pc = pc + 1 + slot
            if slot_pc >= len(self.executable.instrs):
                break
            del mem_log[:]
            effect = self.closures[slot_pc](state, mem_log)
            if effect is not None:
                raise SimulationError(
                    "control instruction in a delay slot is not supported",
                    pc=slot_pc,
                )
            if pipeline:
                pipeline.issue(self.executable.instrs[slot_pc], mem_log)
        return None

    def _read_result(self, state: MachineState):
        # probe both result registers; the caller knows which one is real
        results = {}
        for type_name, reg in self.target.cwvm.results.items():
            try:
                results[type_name] = state.read_reg(reg, type_name)
            except SimulationError:
                pass
        return results


def run_program(
    executable: Executable,
    function: str,
    args: tuple = (),
    cache: DirectMappedCache | None = None,
    model_timing: bool = True,
    max_instructions: int = 50_000_000,
    max_cycles: int | None = None,
) -> SimResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(executable, cache=cache, model_timing=model_timing)
    return simulator.run(
        function,
        args,
        max_instructions=max_instructions,
        max_cycles=max_cycles,
    )
