"""Block-level JIT: hot straight-line segments compiled to flat Python.

The closure interpreter (:mod:`repro.sim.executor`) pays per-operand
closure dispatch, register-unit packing/unpacking and mem-log
bookkeeping on every executed instruction.  The Livermore kernels spend
essentially all dynamic instructions in a handful of loop bodies, so
once a segment entry (the same ``(entry_pc, ...)`` unit the block-timing
memo keys on in :meth:`Simulator._run_fast`) has been dispatched
:data:`JIT_WARMUP` times, :class:`SegmentTranslator` walks the segment's
Maril semantics trees and emits one flat Python function for the whole
straight-line region via source generation + ``compile()``/``exec``.

Inside the generated function:

* integer and double registers live in Python locals across the whole
  segment — loaded once at entry, stored back only at the exits (and
  only the views the path actually wrote);
* float-typed and aliased register units stay as raw 32-bit words, with
  the same prebound ``struct`` codecs the interpreter uses, so every
  value is bit-identical — including NaN payloads (floats are never
  held as typed locals because the f32<->f64 conversion can quiet a
  signaling NaN);
* memory accesses perform the data-cache tag check (pure shift/mask
  over the cache's preallocated tag array — the same arithmetic
  :meth:`DirectMappedCache.access` runs, inlined), the miss-mask and
  event-list bookkeeping, in exactly the positional order the closure
  contract requires (``executor.py`` module docstring), so the
  block-timing replay sees an indistinguishable event stream;
* conditional branches become early returns; the tail control transfer
  (and its delay slots) is compiled into the exit itself.  Every
  generated function — plain segment or superblock — shares the
  15-tuple exit contract documented on :class:`_TraceCodegen`, which
  threads the timing digest id through the call so the driver never
  re-derives it;
* a segment whose taken transfer targets its *own entry* (an innermost
  loop) is *chained*: the body is wrapped in ``while 1`` and the
  back-edge, instead of returning, commits the iteration's timing
  through an inlined transition-table probe and jumps back to the top —
  registers stay in Python locals and a warm iteration boundary costs
  one integer-tuple dict lookup, with no call out of generated code.
  Such functions raise division errors inline rather than deopting (a
  mid-loop deopt would discard committed register state that only
  lives in locals), and every exit flushes the union of all views the
  body can write (a previous iteration may have taken any path).

On top of single segments, hot multi-segment *traces* are stitched into
**superblocks**: the driver profiles taken segment edges, and once an
edge crosses :data:`SUPERBLOCK_WARMUP` the greedy selector follows
terminal-goto successors while the profile stays hot, bounded by
:data:`SUPERBLOCK_MAX_NODES`.  The whole trace becomes one generated
function with the transition probe inlined at every internal segment
boundary — a warm hit costs one dict lookup inside generated code, and
only a first visit calls back into :meth:`BlockTimingCache.close`.
Any taken exit targeting the trace head becomes a back-edge of one
outer ``while 1`` (probe + fuse check + ``continue``), so steady-state
iterations of multi-segment loops never return to the dispatch loop;
every other exit is a *side exit* that returns with the final segment
left open for the driver to close — timing keys, close order and event
streams are exactly the ones interpreted segments produce, which is
what keeps compiled code bit-identical on/off.  Both shapes share one
codegen (:class:`_TraceCodegen`; a plain segment is a one-node trace)
and therefore one dispatch branch in the driver.

Anything the translator does not cover — temporal registers, invalid
double pairings, control in a delay slot, unallocated operands — is
refused statically (:class:`Uncompilable`) and that entry permanently
stays on the interpreter.  Division guards that trip *before* the first
non-undoable side effect (a real cache access or a memory write) raise
:class:`JitDeopt`: the caller undoes the block-count increments the
compiled prefix made, clears the (still unconsumed) event list, and
re-executes the segment interpreted, which then raises the exact
interpreter error.  Past the first side effect the generated code raises
the interpreter's :class:`~repro.errors.SimulationError` directly with
the same message.  An entry that deopts :data:`MAX_DEOPTS` times is
blacklisted back to the interpreter.
"""

from __future__ import annotations

import marshal
import os
import struct
from importlib.util import MAGIC_NUMBER

from repro.backend.insts import Imm, Lab, MachineInstr, Reg
from repro.backend.values import fold_halves
from repro.errors import SimulationError
from repro.machine.registers import PhysReg
from repro.maril import ast
from repro.sim.blockcache import SEGMENT_CAP, decode_blocks
from repro.sim.executor import (
    _DOUBLE,
    _FLOAT,
    _PAIR,
    _WORD,
    SemanticsCompiler,
    _int_div,
    _int_mod,
    _promote,
    _wrap32,
)

#: dispatches of one segment entry before it is compiled
try:
    JIT_WARMUP = int(os.environ.get("REPRO_JIT_WARMUP", "16"))
except ValueError:  # pragma: no cover - defensive
    JIT_WARMUP = 16

#: guard failures before a compiled entry is blacklisted
MAX_DEOPTS = 8

#: taken-edge traversals of one (from, to) segment edge before a trace
#: superblock is attempted at the edge's source entry
try:
    SUPERBLOCK_WARMUP = int(os.environ.get("REPRO_SB_WARMUP", "64"))
except ValueError:  # pragma: no cover - defensive
    SUPERBLOCK_WARMUP = 64

#: an internal trace edge must have been taken at least this often for
#: the greedy selector to keep extending the trace through it
SUPERBLOCK_MIN_EDGE = max(1, SUPERBLOCK_WARMUP // 4)

#: maximum number of segments stitched into one superblock
SUPERBLOCK_MAX_NODES = 8

#: trace-call quality window: every WINDOW side exits the trace's
#: early-exit rate is judged, and a trace whose cold-side exits (side
#: exits before the first back-edge) exceed RATIO of the window is
#: demoted back to its plain segment.  Selection is profile-guided; a
#: data-dependent branch that is not as biased as warmup suggested
#: leaves a trace that keeps dropping its open tail into the
#: interpreter, costing more than the dispatches it saves
SUPERBLOCK_DEMOTE_WINDOW = 16
SUPERBLOCK_DEMOTE_RATIO = 0.25

#: a mid-segment conditional is only worth truncating a trace node at
#: when its taken side dominates: the profiled taken count must be at
#: least this many times the fall-through block's execution count.
#: Below that, selection keeps the whole segment — both diamond sides
#: stay inline, exactly as the plain segment ran them — because every
#: fall-through at a cut drops the trace's open tail into the
#: interpreter
SUPERBLOCK_CUT_BIAS = 8

_INT_MAX = 2**31 - 1

_INT_OPS = frozenset("+ - * / % & | ^ << >>".split())
_FLOAT_OPS = frozenset("+ - * /".split())
_REL_OPS = frozenset("== != < <= > >=".split())


class Uncompilable(Exception):
    """Static refusal: this segment stays on the closure interpreter."""


class JitDeopt(Exception):
    """A runtime guard failed before any non-undoable side effect.

    ``bc_undo`` lists the block labels whose dynamic counts the compiled
    prefix already incremented; the caller decrements them and re-runs
    the segment interpreted."""

    def __init__(self, bc_undo: tuple[str, ...] = ()):
        super().__init__("jit guard failed")
        self.bc_undo = bc_undo


# names prebound into every generated function's globals; the generated
# code never does a dotted or module-global lookup on its hot path
_BASE_ENV = {
    "_w32": _wrap32,
    "_idiv": _int_div,
    "_imod": _int_mod,
    "_SE": SimulationError,
    "_pk_d": _DOUBLE.pack,
    "_upk_d": _DOUBLE.unpack,
    "_pk_f": _FLOAT.pack,
    "_upk_f": _FLOAT.unpack,
    "_pk_w": _WORD.pack,
    "_upk_w": _WORD.unpack,
    "_pk_p": _PAIR.pack,
    "_upk_p": _PAIR.unpack,
    "_upkm_i": struct.Struct("<i").unpack_from,
    "_pkm_i": struct.Struct("<i").pack_into,
    "_upkm_d": struct.Struct("<d").unpack_from,
    "_pkm_d": struct.Struct("<d").pack_into,
    "_upkm_f": struct.Struct("<f").unpack_from,
    "_pkm_f": struct.Struct("<f").pack_into,
    "int": int,
    "float": float,
}

_CONTROL_STMTS = (
    ast.CondGotoStmt,
    ast.GotoStmt,
    ast.CallStmt,
    ast.RetStmt,
)
_UNCONDITIONAL = (ast.GotoStmt, ast.CallStmt, ast.RetStmt)


def _stmts_of(instr: MachineInstr) -> list[ast.Stmt]:
    return [
        stmt
        for stmt in instr.desc.semantics
        if not isinstance(stmt, ast.EmptyStmt)
    ]


def _control_of(stmts: list[ast.Stmt]) -> ast.Stmt | None:
    """The instruction's single trailing control statement, or ``None``.

    The interpreter runs every statement and keeps the last non-``None``
    effect; a control statement anywhere but last (or more than one)
    would need that generality, so such instructions are refused."""
    controls = [
        index
        for index, stmt in enumerate(stmts)
        if isinstance(stmt, _CONTROL_STMTS)
    ]
    if not controls:
        return None
    if len(controls) > 1 or controls[0] != len(stmts) - 1:
        raise Uncompilable("control statement not in tail position")
    return stmts[-1]


class SegmentTranslator:
    """Translates straight-line segments of one executable to Python."""

    def __init__(self, executable):
        self.executable = executable
        self.target = executable.target
        self.instrs = executable.instrs
        self.compiler = SemanticsCompiler(executable.target)
        self.block_of, self.block_starts = decode_blocks(executable)

    def translate(self, entry: int, cached: bool):
        """Compile the segment at ``entry``; ``(function, max_executed)``.

        A plain segment is emitted as a one-node trace, so segment and
        superblock functions share one call contract and one codegen
        (self-loop back-edges chain in-function with the timing probe
        inlined, exactly like trace back-edges).  Raises
        :class:`Uncompilable` when any instruction on the trace uses a
        construct the translator does not cover."""
        trace, tail = self._trace(entry)
        codegen = _TraceCodegen(
            self, [entry], [(entry, trace, tail)], cached, plain=True
        )
        return codegen.build()

    def translate_trace(
        self, entries: list[int], cached: bool, cuts: dict | None = None
    ):
        """Compile the multi-segment trace headed at ``entries[0]``;
        ``(function, max_executed)`` with the superblock call contract
        (see :class:`_TraceCodegen`).  ``cuts`` maps an entry to the pc
        of a mid-segment conditional whose *taken* side continues the
        trace: the node is truncated there, the not-taken side becomes
        an open side exit.  Raises :class:`Uncompilable`."""
        nodes = []
        for entry in entries:
            trace, tail = self._trace(entry)
            cut = cuts.get(entry) if cuts else None
            if cut is not None:
                index = trace.index(cut)
                trace = trace[: index + 1]
                tail = _control_of(_stmts_of(self.instrs[cut]))
                if not isinstance(tail, ast.CondGotoStmt):
                    raise Uncompilable("trace cut is not a conditional")
            nodes.append((entry, trace, tail))
        codegen = _TraceCodegen(self, entries, nodes, cached)
        # reject non-loop shapes before paying for scan/emit/compile
        codegen._find_trace_shape()
        return codegen.build()

    def _resolve_target(self, pc: int, control) -> int | None:
        """The pc a goto/call/conditional at ``pc`` statically targets."""
        instr = self.instrs[pc]
        target = control.target
        if not isinstance(target, ast.OperandRef):
            return None
        operand = instr.operands[target.index - 1]
        if not isinstance(operand, Lab):
            return None
        return self.executable.labels.get(operand.name)

    def terminal_successor(self, entry: int) -> int | None:
        """The static successor through the segment's terminal
        unconditional goto, or ``None`` for any other tail shape."""
        try:
            trace, tail = self._trace(entry)
        except Uncompilable:
            return None
        if not isinstance(tail, ast.GotoStmt):
            return None
        return self._resolve_target(trace[-1], tail)

    def trace_successor(self, entry: int, returns: list):
        """The static successor through the segment's unconditional
        tail, following in-trace calls and returns: a call pushes its
        static return pc on ``returns`` (and enters the callee), a
        return pops it (the popped pc is what a run-time guard later
        enforces).  ``(successor, via)`` with ``via`` one of ``"goto"``
        / ``"call"`` / ``"ret"``, or ``(None, None)``."""
        try:
            trace, tail = self._trace(entry)
        except Uncompilable:
            return None, None
        if isinstance(tail, ast.GotoStmt):
            return self._resolve_target(trace[-1], tail), "goto"
        if isinstance(tail, ast.CallStmt):
            if self.target.cwvm.retaddr is None:
                return None, None
            succ = self._resolve_target(trace[-1], tail)
            if succ is None:
                return None, None
            returns.append(trace[-1] + 1)
            return succ, "call"
        if isinstance(tail, ast.RetStmt) and returns:
            return returns.pop(), "ret"
        return None, None

    def hot_cut(self, entry: int, target: int, site: int | None = None):
        """How the profiled taken edge ``entry -> target`` leaves the
        segment: ``("tail", None)`` through the terminal goto, or
        ``("cond", pc)`` at the branching conditional (a truncation
        point for trace selection), or ``None``.  ``site`` is the
        branch pc the dispatch profiler observed taking the edge; when
        several conditionals in the segment share the target label it
        disambiguates which one is hot (a label-only scan would cut at
        the first match and leave the actually-hot branch outside the
        trace)."""
        try:
            trace, tail = self._trace(entry)
        except Uncompilable:
            return None
        if site is not None and site in trace:
            try:
                control = _control_of(_stmts_of(self.instrs[site]))
            except Uncompilable:
                return None
            if isinstance(control, ast.CondGotoStmt):
                if self._resolve_target(site, control) == target:
                    return ("cond", site)
            if site == trace[-1] and isinstance(tail, ast.GotoStmt):
                if self._resolve_target(site, tail) == target:
                    return ("tail", None)
            # a recorded site that does not check out falls back to the
            # label scan below
        for pc in trace[:-1]:
            try:
                control = _control_of(_stmts_of(self.instrs[pc]))
            except Uncompilable:
                return None
            if isinstance(control, ast.CondGotoStmt):
                if self._resolve_target(pc, control) == target:
                    return ("cond", pc)
        last = trace[-1]
        try:
            control = _control_of(_stmts_of(self.instrs[last]))
        except Uncompilable:
            return None
        if isinstance(control, ast.CondGotoStmt):
            if self._resolve_target(last, control) == target:
                return ("cond", last)
        if isinstance(tail, ast.GotoStmt):
            if self._resolve_target(last, tail) == target:
                return ("tail", None)
        return None

    def fallthrough_count(self, pc: int, block_counts) -> int | None:
        """How often the fall-through side of the conditional at ``pc``
        ran, read from the profiled block counts — the not-taken
        counterpart of the taken-edge profile.  ``None`` when the
        fall-through point is not a block start (no counter exists)."""
        if block_counts is None:
            return None
        instr = self.instrs[pc]
        fall = pc + 1 + abs(instr.desc.slots)
        if fall not in self.block_starts:
            return None
        return block_counts.get(self.block_of[fall], 0)

    def _trace(self, entry: int):
        """Static straight-line walk: pcs up to (and including) the first
        unconditional transfer, the segment cap, or the program end."""
        pcs: list[int] = []
        pc = entry
        program_size = len(self.instrs)
        while pc < program_size and len(pcs) < SEGMENT_CAP:
            control = _control_of(_stmts_of(self.instrs[pc]))
            pcs.append(pc)
            if isinstance(control, _UNCONDITIONAL):
                return pcs, control
            pc += 1
        return pcs, None

    def slot_pcs(self, pc: int, instr: MachineInstr) -> list[int]:
        program_size = len(self.instrs)
        return [
            pc + 1 + slot
            for slot in range(abs(instr.desc.slots))
            if pc + 1 + slot < program_size
        ]


class _SegmentCodegen:
    """Shared scan/decide/emit machinery (one trace node at a time).

    All emission goes through :class:`_TraceCodegen` — a plain segment
    is a one-node trace — so this base only holds the per-node walkers:
    view scanning, local-representation decisions, expression/statement
    emission, and the flush/entry-load bookkeeping."""

    def __init__(self, translator, entry, trace, tail, cached):
        self.tr = translator
        self.entry = entry
        self.trace = trace
        self.tail = tail
        self.cached = cached
        # scan results
        self.touched: set[tuple[int, int]] = set()
        self.view_types: dict[tuple, set[str]] = {}
        self.unit_views: dict[tuple[int, int], set[tuple]] = {}
        #: any memory access anywhere in the function (a whole-function
        #: property, so prologue/exit data-cache bookkeeping is emitted
        #: consistently regardless of source order)
        self.has_mem = False
        # decided representations
        self.typed: dict[tuple, str] = {}
        # emit state
        self.lines: list[str] = []
        self.indent = 1
        self.tmp_count = 0
        self.written: dict[tuple, None] = {}
        self.entry_reads: set[tuple] = set()
        self.effects = False
        self.bc_trail: list[str] = []
        self.uses_bc = False
        #: block label -> prologue local batching its execution count in
        #: looping functions (committed to ``bc`` at every return site)
        self.bc_locals: dict[str, str] = {}
        self.loads = 0
        self.stores = 0
        self.max_exec = 0
        self.consts: dict[str, object] = {}
        self.looping = False

    # -- driver ---------------------------------------------------------------

    def build(self):
        self._scan()
        self._decide()
        source = self._emit()
        name = self._name()
        env = dict(_BASE_ENV)
        env.update(self.consts)
        code = compile(source, f"<jit:{name}>", "exec")
        exec(code, env)
        fn = env[name]
        fn._jit_source = source
        # everything a fresh process needs to re-materialize this
        # function without re-translating: the consts are all JitDeopt
        # instances, recorded by their undo lists (see _materialize);
        # the code object rides along so export can marshal it
        fn._jit_name = name
        fn._jit_consts = {
            cname: value.bc_undo for cname, value in self.consts.items()
        }
        fn._jit_code = code
        return fn, self.max_exec

    # -- scan: collect register views and refuse what we don't cover ----------

    def _scan(self) -> None:
        instrs = self.tr.instrs
        for pc in self.trace:
            instr = instrs[pc]
            stmts = _stmts_of(instr)
            control = _control_of(stmts)
            for stmt in stmts[:-1] if control is not None else stmts:
                self._scan_stmt(stmt, instr)
            if isinstance(control, ast.CondGotoStmt):
                self._scan_expr(control.condition, instr, "int")
                self._label_of(control.target, instr)
                self._scan_slots(pc, instr)
            elif isinstance(control, (ast.GotoStmt, ast.CallStmt)):
                self._label_of(control.target, instr)
                if isinstance(control, ast.CallStmt):
                    if self.tr.target.cwvm.retaddr is None:
                        raise Uncompilable("call without a %retaddr register")
                else:
                    self._scan_slots(pc, instr)
            elif isinstance(control, ast.RetStmt):
                self._scan_slots(pc, instr)

    def _scan_slots(self, pc: int, instr: MachineInstr) -> None:
        for slot_pc in self.tr.slot_pcs(pc, instr):
            slot_stmts = _stmts_of(self.tr.instrs[slot_pc])
            if _control_of(slot_stmts) is not None:
                raise Uncompilable("control instruction in a delay slot")
            for stmt in slot_stmts:
                self._scan_stmt(stmt, self.tr.instrs[slot_pc])

    def _label_of(self, target: ast.Expr, instr: MachineInstr) -> str:
        if not isinstance(target, ast.OperandRef):
            raise Uncompilable("branch target is not an operand")
        operand = instr.operands[target.index - 1]
        if not isinstance(operand, Lab):
            raise Uncompilable("branch target operand is not a label")
        return operand.name

    def _move_units(self, stmt: ast.AssignStmt, instr: MachineInstr):
        """The (dst_units, src_units) of a raw register-to-register move,
        or ``None`` — mirrors the interpreter's ``copy_units`` fast path
        exactly (same conditions, same raw-bits semantics)."""
        if not (
            isinstance(stmt.target, ast.OperandRef)
            and isinstance(stmt.value, ast.OperandRef)
        ):
            return None
        dst_operand = instr.operands[stmt.target.index - 1]
        src_operand = instr.operands[stmt.value.index - 1]
        if not (
            isinstance(dst_operand, Reg)
            and isinstance(src_operand, Reg)
            and isinstance(dst_operand.reg, PhysReg)
            and isinstance(src_operand.reg, PhysReg)
        ):
            return None
        registers = self.tr.target.registers
        dst_units = registers.units_of(dst_operand.reg)
        src_units = registers.units_of(src_operand.reg)
        if len(dst_units) != len(src_units):
            return None
        return dst_units, src_units

    def _reg_view(self, instr: MachineInstr, position: int):
        """(units, type, view_key) of a register operand access."""
        operand = instr.operands[position]
        if not isinstance(operand, Reg) or not isinstance(
            operand.reg, PhysReg
        ):
            raise Uncompilable("unallocated or non-register operand")
        type_name = self.tr.compiler._operand_type(instr, position)
        units = self.tr.target.registers.units_of(operand.reg)
        if type_name == "double":
            if len(units) != 2:
                raise Uncompilable("invalid double register pairing")
            return units, type_name, (units[0], units[1])
        return units, type_name, (units[0],)

    def _record_view(self, key: tuple, type_name: str) -> None:
        self.view_types.setdefault(key, set()).add(type_name)
        for unit in key:
            self.touched.add(unit)
            self.unit_views.setdefault(unit, set()).add(key)

    def _scan_stmt(self, stmt: ast.Stmt, instr: MachineInstr) -> None:
        if isinstance(stmt, ast.AssignStmt):
            move = self._move_units(stmt, instr)
            if move is not None:
                for unit in move[0] + move[1]:
                    self.touched.add(unit)
                return
            target = stmt.target
            if isinstance(target, ast.OperandRef):
                _units, type_name, key = self._reg_view(
                    instr, target.index - 1
                )
                self._record_view(key, type_name)
                self._scan_expr(stmt.value, instr, type_name)
                return
            if isinstance(target, ast.MemRef):
                self.has_mem = True
                self._scan_expr(target.address, instr, "int")
                self._scan_expr(stmt.value, instr, None)
                return
            # NameRef (temporal register) or anything else
            raise Uncompilable(f"cannot compile assignment to {target}")
        raise Uncompilable(f"cannot compile statement {stmt}")

    def _scan_expr(
        self, expr: ast.Expr, instr: MachineInstr, expected: str | None
    ) -> str:
        if isinstance(expr, ast.OperandRef):
            operand = instr.operands[expr.index - 1]
            if isinstance(operand, Imm):
                value = fold_halves(operand.value)
                if not isinstance(value, (int, float)):
                    raise Uncompilable("unresolved immediate")
                return "int"
            _units, type_name, key = self._reg_view(instr, expr.index - 1)
            self._record_view(key, type_name)
            return type_name
        if isinstance(expr, ast.IntLit):
            return "int"
        if isinstance(expr, ast.FloatLit):
            return "double"
        if isinstance(expr, ast.MemRef):
            if expected is None:
                raise Uncompilable("memory read with unknown width")
            self.has_mem = True
            self._scan_expr(expr.address, instr, "int")
            return expected
        if isinstance(expr, ast.Unary):
            operand_type = self._scan_expr(expr.operand, instr, expected)
            if expr.op == "-":
                return operand_type
            if expr.op in ("~", "!"):
                return "int"
            raise Uncompilable(f"unknown unary operator {expr.op}")
        if isinstance(expr, ast.Binary):
            left = self._scan_expr(expr.left, instr, expected)
            right = self._scan_expr(expr.right, instr, expected)
            if expr.op == "::" or expr.op in _REL_OPS:
                return "int"
            common = _promote(left, right)
            if common == "int":
                if expr.op not in _INT_OPS:
                    raise Uncompilable(f"unknown int operator {expr.op}")
                return "int"
            if expr.op not in _FLOAT_OPS:
                raise Uncompilable(f"operator {expr.op} not on {common}")
            return common
        if isinstance(expr, ast.BuiltinCall):
            arg_type = self._scan_expr(expr.args[0], instr, None)
            if expr.name in ("int", "high", "low"):
                return "int"
            if expr.name in ("float", "double"):
                return expr.name
            if expr.name == "eval":
                return arg_type
            raise Uncompilable(f"unknown builtin {expr.name}")
        # NameRef (temporal register) or anything else
        raise Uncompilable(f"cannot compile expression {expr}")

    # -- decide: which views become typed locals -------------------------------

    def _decide(self) -> None:
        """A view becomes a typed local iff it is the *only* view of every
        unit it covers and its single type is safely representable (int as
        a signed Python int, double as a Python float — the ``<d`` codec
        is a lossless memcpy both ways).  Float views stay raw because the
        f32<->f64 conversion is not bit-stable for signaling NaNs.  Every
        other touched unit is held as a raw 32-bit word local."""
        for key, types in self.view_types.items():
            if len(types) != 1:
                continue
            type_name = next(iter(types))
            if type_name not in ("int", "double"):
                continue
            if all(self.unit_views.get(unit) == {key} for unit in key):
                self.typed[key] = type_name
        typed_units = {unit for key in self.typed for unit in key}
        self.raw = sorted(self.touched - typed_units)

    # -- emit helpers ----------------------------------------------------------

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _tmp(self) -> str:
        self.tmp_count += 1
        return f"t{self.tmp_count}"

    @staticmethod
    def _uname(unit) -> str:
        return f"u{unit[0]}_{unit[1]}"

    @staticmethod
    def _iname(key) -> str:
        return f"i{key[0][0]}_{key[0][1]}"

    @staticmethod
    def _dname(key) -> str:
        return f"d{key[0][0]}_{key[0][1]}"

    def _mark_written(self, kind: str, key) -> None:
        self.written[(kind, key)] = None

    def _need(self, kind: str, key) -> None:
        """Record a read of a view local that happens before any write on
        the current path: exactly these views get an entry load (write-only
        and write-before-read views start uninitialized, which is fine
        because the flush set only ever contains written views)."""
        if (kind, key) not in self.written:
            self.entry_reads.add((kind, key))

    @staticmethod
    def _wrap(code: str) -> str:
        """Branch-free inline 32-bit signed wrap — the same value
        ``executor._wrap32`` computes, without the per-op call."""
        return f"((({code}) + 2147483648 & 4294967295) - 2147483648)"

    def _deopt_name(self) -> str:
        name = f"_D{len(self.consts)}"
        self.consts[name] = JitDeopt(tuple(self.bc_trail))
        return name

    def _guard_zero(self, var: str, message: str) -> None:
        """Division guard: deopt while still undoable, else raise the
        interpreter's exact error inline."""
        if self.effects:
            self._line(f"if {var} == 0: raise _SE({message!r})")
        else:
            self._line(f"if {var} == 0: raise {self._deopt_name()}")

    def _emit_bc(self, pc: int) -> None:
        if pc not in self.tr.block_starts:
            return
        label = self.tr.block_of[pc]
        self.uses_bc = True
        if self.looping:
            # a looping function executes each block once per iteration:
            # batch the count in an int local (committed by every return
            # site) instead of a dict get + set per block per iteration.
            # Deopt undo is unaffected — looping functions raise inline,
            # never JitDeopt, so the bc trail stays a plain-segment tool
            local = self.bc_locals.get(label)
            if local is None:
                local = self.bc_locals[label] = f"bn{len(self.bc_locals)}"
            self._line(f"{local} += 1")
        else:
            self._line(f"bc[{label!r}] = bcg({label!r}, 0) + 1")
            self.bc_trail.append(label)

    def _bounds_check(self, addr: str, size: int) -> None:
        self._line(
            f"if {addr} < 0 or {addr} + {size} > ml:"
            f" raise _SE('memory access at %d outside [0, %d)' % ({addr}, ml))"
        )

    # -- emit: expressions -----------------------------------------------------

    def _expr(
        self,
        expr: ast.Expr,
        instr: MachineInstr,
        expected: str | None,
        pc: int,
        slot: bool,
    ):
        """Returns ``(code, static_type, wrapped)``; ``wrapped`` promises
        the value is a Python int already in signed 32-bit range, so
        redundant ``_wrap32(int(...))`` conversions can be skipped."""
        if isinstance(expr, ast.OperandRef):
            operand = instr.operands[expr.index - 1]
            if isinstance(operand, Imm):
                value = fold_halves(operand.value)
                wrapped = (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and -(2**31) <= value <= _INT_MAX
                )
                return f"({value!r})", "int", wrapped
            return self._emit_reg_read(instr, expr.index - 1)
        if isinstance(expr, ast.IntLit):
            value = expr.value
            wrapped = -(2**31) <= value <= _INT_MAX
            return f"({value!r})", "int", wrapped
        if isinstance(expr, ast.FloatLit):
            return f"({expr.value!r})", "double", False
        if isinstance(expr, ast.MemRef):
            return self._emit_mem_read(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.Unary):
            return self._emit_unary(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.BuiltinCall):
            return self._emit_builtin(expr, instr, pc, slot)
        raise Uncompilable(f"cannot compile expression {expr}")

    def _emit_reg_read(self, instr: MachineInstr, position: int):
        units, type_name, key = self._reg_view(instr, position)
        if type_name == "double":
            if key in self.typed:
                self._need("double", key)
                return self._dname(key), "double", False
            self._need("raw", units[0])
            self._need("raw", units[1])
            lo, hi = self._uname(units[0]), self._uname(units[1])
            return f"_upk_d(_pk_p({lo}, {hi}))[0]", "double", False
        if type_name == "float":
            self._need("raw", units[0])
            word = self._uname(units[0])
            return f"_upk_f(_pk_w({word}))[0]", "float", False
        if key in self.typed:
            self._need("int", key)
            return self._iname(key), "int", True
        self._need("raw", units[0])
        word = self._uname(units[0])
        return (
            f"({word} - 4294967296 if {word} > 2147483647 else {word})",
            "int",
            True,
        )

    def _emit_mem_read(self, expr, instr, expected, pc, slot):
        if expected is None:
            raise Uncompilable("memory read with unknown width")
        addr_code, _, _ = self._expr(expr.address, instr, "int", pc, slot)
        addr = self._tmp()
        self._line(f"{addr} = {addr_code}")
        self._bounds_check(addr, 8 if expected == "double" else 4)
        if self.cached:
            # the data-cache access is pure shift/mask over the
            # preallocated tag array (see sim/cache.py), inlined here so
            # the hot path never leaves generated code
            idx, tag = self._tmp(), self._tmp()
            self._line(f"{idx} = ({addr} >> dls) & dsm")
            self._line(f"{tag} = {addr} >> dts")
            self._line(f"if dtg[{idx}] == {tag}:")
            self._line("    dh += 1")
            self._line(f"    ea(({pc}, False, True))")
            self._line("else:")
            self._line(f"    dtg[{idx}] = {tag}")
            self._line("    dm += 1")
            self._line("    mm |= lb")
            self._line(f"    ea(({pc}, False, False))")
            self._line("lb <<= 1")
            self.effects = True
        else:
            self._line("lb <<= 1")
            self._line(f"ea(({pc}, False, True))")
        if not slot:
            self.loads += 1
        value = self._tmp()
        unpack = {"double": "_upkm_d", "float": "_upkm_f"}.get(
            expected, "_upkm_i"
        )
        self._line(f"{value} = {unpack}(mem, {addr})[0]")
        return value, expected, expected == "int"

    def _emit_unary(self, expr, instr, expected, pc, slot):
        code, type_name, wrapped = self._expr(
            expr.operand, instr, expected, pc, slot
        )
        if expr.op == "-":
            if type_name == "int":
                return self._wrap(f"-({code})"), "int", True
            return f"(-({code}))", type_name, False
        if expr.op == "~":
            return self._wrap(f"~({code})"), "int", True
        if expr.op == "!":
            return f"(0 if {code} else 1)", "int", True
        raise Uncompilable(f"unknown unary operator {expr.op}")

    def _emit_binary(self, expr, instr, expected, pc, slot):
        lcode, ltype, lwrapped = self._expr(
            expr.left, instr, expected, pc, slot
        )
        rcode, rtype, rwrapped = self._expr(
            expr.right, instr, expected, pc, slot
        )
        op = expr.op
        if op == "::":
            left, right = self._tmp(), self._tmp()
            self._line(f"{left} = {lcode}")
            self._line(f"{right} = {rcode}")
            return (
                f"(({left} > {right}) - ({left} < {right}))",
                "int",
                True,
            )
        if op in _REL_OPS:
            return f"(1 if ({lcode}) {op} ({rcode}) else 0)", "int", True
        common = _promote(ltype, rtype)
        if common == "int":
            if op == "+":
                return self._wrap(f"({lcode}) + ({rcode})"), "int", True
            if op == "-":
                return self._wrap(f"({lcode}) - ({rcode})"), "int", True
            if op == "*":
                return self._wrap(f"({lcode}) * ({rcode})"), "int", True
            if op == "&":
                return f"(({lcode}) & ({rcode}))", "int", lwrapped and rwrapped
            if op == "|":
                return f"(({lcode}) | ({rcode}))", "int", lwrapped and rwrapped
            if op == "^":
                return f"(({lcode}) ^ ({rcode}))", "int", lwrapped and rwrapped
            if op == "<<":
                return (
                    self._wrap(f"({lcode}) << (({rcode}) & 31)"),
                    "int",
                    True,
                )
            if op == ">>":
                return f"(({lcode}) >> (({rcode}) & 31))", "int", lwrapped
            if op in ("/", "%"):
                left, right = self._tmp(), self._tmp()
                self._line(f"{left} = {lcode}")
                self._line(f"{right} = {rcode}")
                self._guard_zero(right, "integer division by zero")
                fn = "_idiv" if op == "/" else "_imod"
                return f"{fn}({left}, {right})", "int", False
            raise Uncompilable(f"unknown int operator {op}")
        if op in ("+", "-", "*"):
            return f"(({lcode}) {op} ({rcode}))", common, False
        if op == "/":
            left, right = self._tmp(), self._tmp()
            self._line(f"{left} = {lcode}")
            self._line(f"{right} = {rcode}")
            self._guard_zero(right, "floating divide by zero")
            return f"({left} / {right})", common, False
        raise Uncompilable(f"operator {op} not on {common}")

    def _emit_builtin(self, expr, instr, pc, slot):
        code, arg_type, wrapped = self._expr(
            expr.args[0], instr, None, pc, slot
        )
        name = expr.name
        if name == "int":
            if wrapped:
                return code, "int", True
            # a static int is already a Python int: only the range wrap
            # is needed (int(x) is the identity the interpreter applies)
            inner = code if arg_type == "int" else f"int({code})"
            return self._wrap(inner), "int", True
        if name in ("float", "double"):
            if arg_type in ("float", "double"):
                return code, name, False
            return f"float({code})", name, False
        if name == "high":
            inner = code if arg_type == "int" else f"int({code})"
            return f"((({inner}) >> 16) & 65535)", "int", True
        if name == "low":
            inner = code if arg_type == "int" else f"int({code})"
            return f"(({inner}) & 65535)", "int", True
        if name == "eval":
            return code, arg_type, wrapped
        raise Uncompilable(f"unknown builtin {name}")

    # -- emit: statements ------------------------------------------------------

    def _emit_stmt(self, stmt, instr, pc, slot):
        if isinstance(stmt, ast.AssignStmt):
            move = self._move_units(stmt, instr)
            if move is not None:
                self._emit_move(*move)
                return
            target = stmt.target
            if isinstance(target, ast.OperandRef):
                self._emit_reg_write(stmt, instr, pc, slot)
                return
            if isinstance(target, ast.MemRef):
                self._emit_mem_write(stmt, instr, pc, slot)
                return
        raise Uncompilable(f"cannot compile statement {stmt}")

    def _read_unit_bits(self, unit) -> str:
        """Current 32-bit word of ``unit`` under its representation."""
        for key, type_name in self.typed.items():
            if unit not in key:
                continue
            if type_name == "int":
                self._need("int", key)
                return f"({self._iname(key)} & 4294967295)"
            self._need("double", key)
            half = key.index(unit)
            return f"_upk_p(_pk_d({self._dname(key)}))[{half}]"
        self._need("raw", unit)
        return self._uname(unit)

    def _write_unit_bits(self, unit, bits: str) -> None:
        for key, type_name in self.typed.items():
            if unit not in key:
                continue
            if type_name == "int":
                word = self._tmp()
                self._line(f"{word} = {bits}")
                self._line(
                    f"{self._iname(key)} = {word} - 4294967296"
                    f" if {word} > 2147483647 else {word}"
                )
                self._mark_written("int", key)
            else:
                self._need("double", key)  # the untouched half is read
                name = self._dname(key)
                halves = [
                    bits if key[index] == unit
                    else f"_upk_p(_pk_d({name}))[{index}]"
                    for index in range(2)
                ]
                self._line(
                    f"{name} = _upk_d(_pk_p({halves[0]}, {halves[1]}))[0]"
                )
                self._mark_written("double", key)
            return
        self._line(f"{self._uname(unit)} = {bits}")
        self._mark_written("raw", unit)

    def _emit_move(self, dst_units, src_units) -> None:
        """Raw register move; like the interpreter's ``copy_units`` the
        copy is sequential unit by unit (overlapping pairs observe the
        partially-updated destination)."""
        dkey, skey = tuple(dst_units), tuple(src_units)
        if (
            len(dkey) == 2
            and self.typed.get(dkey) == "double"
            and self.typed.get(skey) == "double"
        ):
            if dkey != skey:
                self._need("double", skey)
                self._line(f"{self._dname(dkey)} = {self._dname(skey)}")
                self._mark_written("double", dkey)
            return
        for dst, src in zip(dst_units, src_units):
            if dst == src:
                continue
            self._write_unit_bits(dst, self._read_unit_bits(src))

    def _emit_reg_write(self, stmt, instr, pc, slot) -> None:
        position = stmt.target.index - 1
        units, type_name, key = self._reg_view(instr, position)
        vcode, vtype, vwrapped = self._expr(
            stmt.value, instr, type_name, pc, slot
        )
        if type_name == "double":
            conv = (
                vcode if vtype in ("float", "double") else f"float({vcode})"
            )
            if key in self.typed:
                self._line(f"{self._dname(key)} = {conv}")
                self._mark_written("double", key)
            else:
                lo, hi = self._uname(units[0]), self._uname(units[1])
                self._line(f"{lo}, {hi} = _upk_p(_pk_d({conv}))")
                self._mark_written("raw", units[0])
                self._mark_written("raw", units[1])
            return
        if type_name == "float":
            conv = (
                vcode if vtype in ("float", "double") else f"float({vcode})"
            )
            self._line(f"{self._uname(units[0])} = _upk_w(_pk_f({conv}))[0]")
            self._mark_written("raw", units[0])
            return
        if key in self.typed:
            if vtype == "int" and vwrapped:
                self._line(f"{self._iname(key)} = {vcode}")
            else:
                inner = vcode if vtype == "int" else f"int({vcode})"
                self._line(f"{self._iname(key)} = {self._wrap(inner)}")
            self._mark_written("int", key)
            return
        if vtype == "int":
            self._line(f"{self._uname(units[0])} = ({vcode}) & 4294967295")
        else:
            self._line(
                f"{self._uname(units[0])} = int({vcode}) & 4294967295"
            )
        self._mark_written("raw", units[0])

    def _emit_mem_write(self, stmt, instr, pc, slot) -> None:
        addr_code, _, _ = self._expr(
            stmt.target.address, instr, "int", pc, slot
        )
        addr = self._tmp()
        self._line(f"{addr} = {addr_code}")
        # the store's log record (and so its cache access) precedes the
        # value expression's loads, matching the closure's append order
        if self.cached:
            idx, tag = self._tmp(), self._tmp()
            self._line(f"{idx} = ({addr} >> dls) & dsm")
            self._line(f"{tag} = {addr} >> dts")
            self._line(f"if dtg[{idx}] == {tag}:")
            self._line("    dh += 1")
            self._line(f"    ea(({pc}, True, True))")
            self._line("else:")
            self._line(f"    dtg[{idx}] = {tag}")
            self._line("    dm += 1")
            self._line(f"    ea(({pc}, True, False))")
            self.effects = True
        else:
            self._line(f"ea(({pc}, True, True))")
        if not slot:
            self.stores += 1
        vcode, vtype, vwrapped = self._expr(stmt.value, instr, None, pc, slot)
        self._bounds_check(addr, 8 if vtype == "double" else 4)
        if vtype == "double":
            self._line(f"_pkm_d(mem, {addr}, {vcode})")
        elif vtype == "float":
            self._line(f"_pkm_f(mem, {addr}, float({vcode}))")
        else:
            if vwrapped:
                signed = vcode
            else:
                signed = self._wrap(
                    vcode if vtype == "int" else f"int({vcode})"
                )
            self._line(f"_pkm_i(mem, {addr}, {signed})")
        self.effects = True

    # -- emit: exits -----------------------------------------------------------

    def _flush(self) -> None:
        for kind, key in self.written:
            if kind == "raw":
                self._line(f"u[{key!r}] = {self._uname(key)}")
            elif kind == "int":
                self._line(f"u[{key[0]!r}] = {self._iname(key)} & 4294967295")
            else:
                self._line(
                    f"u[{key[0]!r}], u[{key[1]!r}] ="
                    f" _upk_p(_pk_d({self._dname(key)}))"
                )

    def _emit_slots(self, pc: int, instr: MachineInstr) -> int:
        """Delay-slot bodies for a taken exit; returns the segment end pc.
        Slot accesses hit the cache and shape the miss mask and events,
        but are not counted in loads/stores (matching ``_run_fast``)."""
        end = pc
        for slot_pc in self.tr.slot_pcs(pc, instr):
            for stmt in _stmts_of(self.tr.instrs[slot_pc]):
                self._emit_stmt(stmt, self.tr.instrs[slot_pc], slot_pc, True)
            end = slot_pc
        return end

    def _entry_loads(self) -> list[str]:
        """Loads for exactly the views the body reads before writing."""
        loads = []
        if self.entry_reads:
            loads.append("    ug = u.get")
        for unit in self.raw:
            if ("raw", unit) in self.entry_reads:
                loads.append(f"    {self._uname(unit)} = ug({unit!r}, 0)")
        for key in sorted(self.typed):
            type_name = self.typed[key]
            if (type_name, key) not in self.entry_reads:
                continue
            if type_name == "int":
                iname = self._iname(key)
                loads.append(f"    {iname} = ug({key[0]!r}, 0)")
                loads.append(
                    f"    if {iname} > 2147483647: {iname} -= 4294967296"
                )
            else:
                loads.append(
                    f"    {self._dname(key)} = _upk_d(_pk_p("
                    f"ug({key[0]!r}, 0), ug({key[1]!r}, 0)))[0]"
                )
        return loads


class _TraceCodegen(_SegmentCodegen):
    """One trace (a chain of segments) -> one generated function.

    Every generated function — plain segment (``plain=True``, a
    one-node trace) or superblock — comes from here and shares one call
    contract.  Structure: single entry at the trace head.  Internal
    transitions (a node's terminal goto targeting the next node) run
    the block-timing transition probe inline and fall through into the
    next node's code; any taken exit targeting the *head* becomes a
    back-edge of one outer ``while 1`` (probe + fuse check +
    ``continue``); every other exit is a side exit returning to the
    dispatch loop — exits at a segment boundary (kinds 1-3) close their
    final segment inline through the same probe machinery, so the
    dispatch loop only routes the pc; only a not-taken/fallthrough exit
    (kind 0) leaves a segment open for the interpreter to continue.

    Call contract::

        fn(state, dcache, events, bc, tt, close, eid, b0, fz, mm, lb)

    ``dcache`` is the data-cache model (its tag array and shift/mask
    geometry are read into locals once; accesses are inlined
    arithmetic), ``events`` the shared event list (the probe consumes
    it), ``tt`` the transition-table accessor — ``tt(entry, end,
    transfer)`` returns the per-segment ``{(eid, mm): (cycle_delta,
    exit_id)}`` dict, whose bound ``get`` the prologue captures per
    probe site so a warm boundary is one two-int-tuple lookup — and
    ``close`` the miss path.  ``eid`` is the entry digest id, ``b0``
    the absolute base cycle at entry, and ``fz`` the
    executed-instruction budget for back-edges.  Returns a 15-tuple
    ``(kind, end, transfer, label, node_entry, open_len, ex, ld, st,
    mm, lb, ci, eid, bch, sbh)``: ``kind`` 1/2/3 are
    taken-branch/return/call exits with every segment (including the
    final one) already closed and mm/lb reset, ``kind`` 0 is a
    not-taken or fallthrough exit whose final segment at ``node_entry``
    stays *open* (events/mm/lb live, ``open_len`` instructions already
    executed) for the interpreter to continue, and ``kind`` 4 is a fuse
    stop at the head with everything closed.  ``ex``/``ld``/``st`` are whole-call
    instruction/load/store totals, ``ci`` the accumulated cycle delta,
    ``eid`` the current digest id, ``bch`` inline probe hits and
    ``sbh`` segments closed in-function.  A function with no probe on
    any path (a non-looping plain segment) elides the running totals
    entirely and returns static literals.

    Inlined probes count as non-undoable side effects (a miss mutates
    the shared memo), so a division guard can deopt only in the head
    node before the first probe — exactly the window where no event has
    been consumed and no register flush happened, making the undo
    argument identical across function shapes.  Looping functions force
    ``effects`` (and all-load-all-flush) upfront: iteration state lives
    only in locals.
    """

    def __init__(self, translator, entries, nodes, cached, plain=False):
        head_entry, head_trace, head_tail = nodes[0]
        super().__init__(translator, head_entry, head_trace, head_tail, cached)
        self.entries = entries
        self.nodes = nodes
        #: single-node "trace" standing in for a plain segment: named
        #: ``_jit_*`` and allowed to have no back-edge
        self.plain = plain
        #: ``(entry, end, transfer) -> prologue local`` holding that
        #: probe site's transition table ``.get``
        self.probe_sites: dict[tuple, str] = {}
        #: a probe has been emitted (monotonic: emission follows
        #: execution order in non-looping functions, so exits emitted
        #: before the first probe can return static literal totals)
        self._totals_live = False
        #: node position -> statically pinned return pc for in-trace
        #: returns (filled by :meth:`_find_trace_shape`); the pc a
        #: run-time guard on the %retaddr register enforces
        self.ret_targets: dict[int, int] = {}
        #: the %retaddr register's first unit, tracked as a view when
        #: the trace contains any call or guarded return
        self.ret_unit = None
        # cumulative executed/loads/stores already committed at the most
        # recent probe on the current emission path (static bookkeeping)
        self.sb_ex_base = 0
        self.sb_ld_base = 0
        self.sb_st_base = 0
        #: instructions executed from the head up to the current node
        self.node_exec_base = 0

    def _name(self) -> str:
        prefix = "_jit" if self.plain else "_sbjit"
        return f"{prefix}_{self.entry}_{'c' if self.cached else 'n'}"

    # -- scan across every node ------------------------------------------------

    def _scan(self) -> None:
        saved = self.trace, self.tail
        for _entry, trace, tail in self.nodes:
            self.trace, self.tail = trace, tail
            super()._scan()
        self.trace, self.tail = saved
        # in-trace calls write the %retaddr register and guarded
        # returns read it, so it must live as a tracked view
        if self.ret_targets or any(
            isinstance(tail, ast.CallStmt) for _e, _t, tail in self.nodes
        ):
            retaddr = self.tr.target.cwvm.retaddr
            if retaddr is None:
                raise Uncompilable("call without a %retaddr register")
            self.ret_unit = self.tr.target.registers.units_of(retaddr)[0]
            self.touched.add(self.ret_unit)

    # -- trace shape -----------------------------------------------------------

    def _find_trace_shape(self) -> None:
        """Validate internal edges and detect back-edges to the head
        (any of which makes the whole trace a loop).  Node successors
        follow unconditional gotos, truncated-node taken conditionals,
        calls (pushing the static return pc) and returns (popping it —
        the pc a run-time guard then enforces, via
        :attr:`ret_targets`)."""
        labels = self.tr.executable.labels
        instrs = self.tr.instrs
        head = self.entry
        self.looping = False
        self.ret_targets = {}
        returns: list[int] = []
        last = len(self.nodes) - 1
        for position, (entry, trace, tail) in enumerate(self.nodes):
            for pc in trace:
                instr = instrs[pc]
                control = _control_of(_stmts_of(instr))
                if isinstance(control, (ast.CondGotoStmt, ast.GotoStmt)):
                    label = self._label_of(control.target, instr)
                    if labels.get(label) == head:
                        self.looping = True
            succ = None
            if isinstance(
                tail, (ast.GotoStmt, ast.CondGotoStmt, ast.CallStmt)
            ):
                instr = instrs[trace[-1]]
                succ = labels.get(self._label_of(tail.target, instr))
                if isinstance(tail, ast.CallStmt):
                    returns.append(trace[-1] + 1)
            elif isinstance(tail, ast.RetStmt) and returns:
                succ = returns.pop()
                self.ret_targets[position] = succ
                if succ == head:
                    self.looping = True
            if position < last:
                if succ is None:
                    raise Uncompilable(
                        "internal trace node lacks a static successor"
                    )
                if succ != self.nodes[position + 1][0]:
                    raise Uncompilable(
                        "trace edge does not match the node tail"
                    )
        if not self.looping and not self.plain:
            # a straight merge only saves one dispatch per invocation but
            # pays a wider register reload/flush at every entry and side
            # exit — measured net-negative, so only loops get traced
            # (plain one-node functions are exempt: they ARE the segment)
            raise Uncompilable("trace has no back-edge to its head")

    # -- emission helpers ------------------------------------------------------

    def _snapshot(self):
        return (
            dict(self.written), self.effects, list(self.bc_trail),
            self.sb_ex_base, self.sb_ld_base, self.sb_st_base,
            self.loads, self.stores,
        )

    def _restore(self, snapshot) -> None:
        (written, effects, bc_trail,
         ex_base, ld_base, st_base, loads, stores) = snapshot
        self.written = dict(written)
        self.effects = effects
        self.bc_trail = list(bc_trail)
        self.sb_ex_base = ex_base
        self.sb_ld_base = ld_base
        self.sb_st_base = st_base
        self.loads = loads
        self.stores = stores

    def _probe_getter(self, nentry, end, transfer) -> str:
        """The prologue local holding this probe site's transition
        table ``.get`` (registered on first use)."""
        site = (nentry, end, transfer)
        getter = self.probe_sites.get(site)
        if getter is None:
            getter = self.probe_sites[site] = f"tg{len(self.probe_sites)}"
        return getter

    def _emit_probe(self, nentry, end, transfer, node_exec) -> None:
        """Close the segment ``[nentry..end]`` inline: probe the
        segment's transition table through a per-site prologue local (a
        warm boundary is one two-int-tuple dict lookup, zero hashing of
        pipeline state), fall back to the real ``close`` on a miss, and
        commit the statically-known instruction/load/store deltas to
        the running totals."""
        total = self.node_exec_base + node_exec
        if total > self.max_exec:
            self.max_exec = total
        ex_delta = total - self.sb_ex_base
        ld_delta = self.loads - self.sb_ld_base
        st_delta = self.stores - self.sb_st_base
        getter = self._probe_getter(nentry, end, transfer)
        self._totals_live = True
        probe = self._tmp()
        self._line(f"{probe} = {getter}((eid, mm))")
        self._line(f"if {probe} is None:")
        self._line(
            f"    {probe} = close({nentry}, {end}, {transfer},"
            " mm, events, eid, b0 + ci)"
        )
        self._line("else:")
        self._line("    bch += 1")
        self._line(f"ci += {probe}[0]")
        self._line(f"eid = {probe}[1]")
        self._line("sbh += 1")
        self._line(f"ex += {ex_delta}")
        if ld_delta:
            self._line(f"ld += {ld_delta}")
        if st_delta:
            self._line(f"st += {st_delta}")
        self._line("del events[:]")
        self._line("mm = 0")
        self._line("lb = 1")
        self.sb_ex_base = total
        self.sb_ld_base = self.loads
        self.sb_st_base = self.stores
        self.effects = True

    def _emit_dflush(self) -> None:
        """Commit the batched block counts and inline data-cache tallies
        before a return (inline ``_SE`` raises skip this: the run
        aborts, matching the totals already lost with
        ``ex``/``ld``/``st``).  A zero block count is not written — the
        reference path never creates the key, and ``block_counts`` is
        compared bit-for-bit."""
        for label, local in self.bc_locals.items():
            self._line(f"if {local}:")
            self._line(f"    bc[{label!r}] = bcg({label!r}, 0) + {local}")
        if self.cached and self.has_mem:
            self._line("dcache.hits += dh; dcache.misses += dm")

    def _emit_side_exit(
        self, nentry, end, transfer, kind, label, node_exec,
        open_len=0, flush=True,
    ) -> None:
        if flush:
            self._flush()
        if kind != 0:
            # exit kinds 1-3 leave at a closed segment boundary: commit
            # it here (chain probe, ``close()`` on a miss) so the
            # dispatch loop only routes the pc — it never closes these
            if self.looping or self._totals_live:
                self._emit_probe(nentry, end, transfer, node_exec)
                self._emit_dflush()
                self._line(
                    f"return ({kind}, {end}, {transfer}, {label!r},"
                    f" {nentry}, 0, ex, ld, st, 0, 1, ci, eid, bch, sbh)"
                )
            else:
                self._emit_static_close(
                    nentry, end, transfer, kind, label, node_exec
                )
            return
        self._emit_dflush()
        total = self.node_exec_base + node_exec
        if total > self.max_exec:
            self.max_exec = total
        ex_delta = total - self.sb_ex_base
        ld_delta = self.loads - self.sb_ld_base
        st_delta = self.stores - self.sb_st_base
        if self.looping or self._totals_live:
            tail = (
                f"ex + {ex_delta}, ld + {ld_delta}, st + {st_delta},"
                " mm, lb, ci, eid, bch, sbh"
            )
        else:
            # no probe has run on this path (and no earlier iteration
            # can exist): the totals are static and the timing id is
            # untouched, so the running-total locals are elided
            tail = (
                f"{ex_delta}, {ld_delta}, {st_delta},"
                " mm, lb, 0, eid, 0, 0"
            )
        self._line(
            f"return ({kind}, {end}, {transfer}, {label!r}, {nentry},"
            f" {open_len}, {tail})"
        )

    def _emit_static_close(
        self, nentry, end, transfer, kind, label, node_exec
    ) -> None:
        """Closing exit of a function that has not probed on this path
        (the common shape: a plain non-looping segment).  Every running
        total is a static literal and the cycle base is exactly ``b0``,
        so only the transition record flows through a local — a warm
        call is one table probe and a constant tuple build."""
        total = self.node_exec_base + node_exec
        if total > self.max_exec:
            self.max_exec = total
        ex_delta = total - self.sb_ex_base
        ld_delta = self.loads - self.sb_ld_base
        st_delta = self.stores - self.sb_st_base
        getter = self._probe_getter(nentry, end, transfer)
        probe = self._tmp()
        head = (
            f"({kind}, {end}, {transfer}, {label!r}, {nentry}, 0,"
            f" {ex_delta}, {ld_delta}, {st_delta}, 0, 1,"
            f" {probe}[0], {probe}[1]"
        )
        self._line(f"{probe} = {getter}((eid, mm))")
        self._line(f"if {probe} is None:")
        self._line(
            f"    {probe} = close({nentry}, {end}, {transfer},"
            " mm, events, eid, b0)"
        )
        self._line("    del events[:]")
        self.indent += 1
        self._emit_dflush()
        self.indent -= 1
        self._line(f"    return {head}, 0, 1)")
        self._line("del events[:]")
        self._emit_dflush()
        self._line(f"return {head}, 1, 1)")

    def _emit_back_edge(self, nentry, pc, instr, index) -> None:
        """A taken exit targeting the trace head: close the segment
        inline, then loop in-function while the fuse budget allows,
        otherwise flush and stop at the head (kind 4: everything
        already closed and accounted in the returned totals)."""
        end = self._emit_slots(pc, instr)
        executed = index + 1 + abs(instr.desc.slots)
        self._emit_probe(nentry, end, pc, executed)
        self._line("if ex <= fz:")
        self._line("    continue")
        self._flush()
        self._emit_dflush()
        self._line(
            f"return (4, 0, -1, None, {self.entry}, 0, ex, ld, st,"
            " 0, 1, ci, eid, bch, sbh)"
        )

    # -- emit: the function ----------------------------------------------------

    def _emit(self) -> str:
        name = self._name()
        self.lines = [
            f"def {name}(state, dcache, events, bc, tt, close,"
            " eid, b0, fz, mm, lb):"
        ]
        # the whole prologue is assembled after the body, once the body
        # says which bindings it actually needs (memory, block counts,
        # data-cache geometry, running totals, probe-site getters,
        # entry loads)
        prologue_at = len(self.lines)
        self._find_trace_shape()
        if self.looping:
            # same argument as chained self-loops: iterations past the
            # first run on register state that only lives in locals, so
            # guards raise inline and every exit flushes every view
            self.effects = True
            for key, type_name in self.typed.items():
                self._mark_written(type_name, key)
                self.entry_reads.add((type_name, key))
            for unit in self.raw:
                self._mark_written("raw", unit)
                self.entry_reads.add(("raw", unit))
            # pre-register every block label the trace can count: an
            # early side exit flushes whatever locals exist at emission
            # time, and a later iteration may reach it carrying counts
            # in locals that are only *emitted* further down the body
            for _entry, trace, _tail in self.nodes:
                for pc in trace:
                    if pc in self.tr.block_starts:
                        label = self.tr.block_of[pc]
                        if label not in self.bc_locals:
                            self.bc_locals[label] = f"bn{len(self.bc_locals)}"
                            self.uses_bc = True
            self._line("while 1:")
            self.indent += 1
        last = len(self.nodes) - 1
        for position, (entry, trace, tail) in enumerate(self.nodes):
            self._emit_node(position, entry, trace, tail, position == last)
        prologue = ["    u = state.units"]
        if self.has_mem:
            prologue.append("    mem = state.memory")
            prologue.append("    ml = len(mem)")
            prologue.append("    ea = events.append")
        if self.uses_bc:
            prologue.append("    bcg = bc.get")
        for local in self.bc_locals.values():
            prologue.append(f"    {local} = 0")
        if self.cached and self.has_mem:
            prologue.append("    dtg = dcache.tags")
            prologue.append(
                "    dls = dcache.line_shift; dsm = dcache.set_mask;"
                " dts = dcache.tag_shift"
            )
            prologue.append("    dh = 0; dm = 0")
        if self.looping or self._totals_live:
            prologue.append(
                "    ex = 0; ld = 0; st = 0; ci = 0; bch = 0; sbh = 0"
            )
        for (entry, end, transfer), getter in self.probe_sites.items():
            prologue.append(
                f"    {getter} = tt({entry}, {end}, {transfer}).get"
            )
        prologue.extend(self._entry_loads())
        self.lines[prologue_at:prologue_at] = prologue
        return "\n".join(self.lines) + "\n"

    def _emit_node(self, position, entry, trace, tail, is_last) -> None:
        labels = self.tr.executable.labels
        head = self.entry
        instrs = self.tr.instrs
        for index, pc in enumerate(trace):
            instr = instrs[pc]
            stmts = _stmts_of(instr)
            control = _control_of(stmts)
            for stmt in stmts[:-1] if control is not None else stmts:
                self._emit_stmt(stmt, instr, pc, False)
            if isinstance(control, ast.CondGotoStmt):
                cond_code, _, _ = self._expr(
                    control.condition, instr, "int", pc, False
                )
                cond = self._tmp()
                self._line(f"{cond} = {cond_code}")
                self._emit_bc(pc)
                label = self._label_of(control.target, instr)
                if control is tail and pc == trace[-1]:
                    # truncated node: the taken side continues the
                    # trace; not-taken leaves with the segment open
                    self._line(f"if {cond} == 0:")
                    self.indent += 1
                    snapshot = self._snapshot()
                    self._emit_side_exit(
                        entry, pc, -1, 0, None, index + 1,
                        open_len=index + 1,
                    )
                    self._restore(snapshot)
                    self.indent -= 1
                    executed = index + 1 + abs(instr.desc.slots)
                    if labels.get(label) == head:
                        self._emit_back_edge(entry, pc, instr, index)
                    elif not is_last:
                        end = self._emit_slots(pc, instr)
                        self._emit_probe(entry, end, pc, executed)
                        self.node_exec_base += executed
                    else:
                        end = self._emit_slots(pc, instr)
                        self._emit_side_exit(
                            entry, end, pc, 1, label, executed
                        )
                    continue
                self._line(f"if {cond} != 0:")
                self.indent += 1
                snapshot = self._snapshot()
                if labels.get(label) == head:
                    self._emit_back_edge(entry, pc, instr, index)
                else:
                    end = self._emit_slots(pc, instr)
                    self._emit_side_exit(
                        entry, end, pc, 1, label,
                        index + 1 + abs(instr.desc.slots),
                    )
                self._restore(snapshot)
                self.indent -= 1
            elif isinstance(control, ast.GotoStmt):
                self._emit_bc(pc)
                label = self._label_of(control.target, instr)
                executed = index + 1 + abs(instr.desc.slots)
                if labels.get(label) == head:
                    self._emit_back_edge(entry, pc, instr, index)
                elif not is_last:
                    # the hot internal edge: probe, then fall through
                    # into the next node's code
                    end = self._emit_slots(pc, instr)
                    self._emit_probe(entry, end, pc, executed)
                    self.node_exec_base += executed
                else:
                    end = self._emit_slots(pc, instr)
                    self._emit_side_exit(entry, end, pc, 1, label, executed)
            elif isinstance(control, ast.RetStmt):
                self._emit_bc(pc)
                end = self._emit_slots(pc, instr)
                executed = index + 1 + abs(instr.desc.slots)
                expected = self.ret_targets.get(position)
                if expected is not None and (
                    expected == head or not is_last
                ):
                    # in-trace return: the matching call pinned the
                    # return address statically — guard on the live
                    # %retaddr view and stay in generated code
                    ra = self._read_unit_bits(self.ret_unit)
                    self._line(f"if {ra} != {expected}:")
                    self.indent += 1
                    snapshot = self._snapshot()
                    self._emit_side_exit(entry, end, pc, 2, None, executed)
                    self._restore(snapshot)
                    self.indent -= 1
                    self._emit_probe(entry, end, pc, executed)
                    if expected == head:
                        self._line("if ex <= fz:")
                        self._line("    continue")
                        self._flush()
                        self._emit_dflush()
                        self._line(
                            f"return (4, 0, -1, None, {self.entry}, 0,"
                            " ex, ld, st, 0, 1, ci, eid, bch, sbh)"
                        )
                    else:
                        self.node_exec_base += executed
                else:
                    self._emit_side_exit(entry, end, pc, 2, None, executed)
            elif isinstance(control, ast.CallStmt):
                self._emit_bc(pc)
                label = self._label_of(control.target, instr)
                # the return-address write stays in the tracked view:
                # internal calls fall through into the callee's code,
                # a tail call side-exits through the dispatch
                self._write_unit_bits(
                    self.ret_unit, str((pc + 1) & 0xFFFFFFFF)
                )
                if not is_last:
                    self._emit_probe(entry, pc, pc, index + 1)
                    self.node_exec_base += index + 1
                else:
                    self._emit_side_exit(
                        entry, pc, pc, 3, label, index + 1
                    )
            else:
                self._emit_bc(pc)
        if tail is None:
            # open fallthrough: only reachable as the trace's last exit
            self._emit_side_exit(
                entry, trace[-1], -1, 0, None, len(trace),
                open_len=len(trace),
            )


class SegmentJIT:
    """Per-executable JIT manager: warmup counting, the compiled-function
    tables (one per data-cache presence, since the bookkeeping differs),
    deopt blacklisting, and lifetime counters.  Shared by every
    :class:`~repro.sim.simulator.Simulator` over one executable, so
    warmup and translation amortize across runs."""

    def __init__(self, executable, warmup: int | None = None):
        self.translator = SegmentTranslator(executable)
        self.warmup = JIT_WARMUP if warmup is None else warmup
        self._tables: tuple[dict, dict] = ({}, {})
        #: artifact-cache payloads not yet materialized: entry pc ->
        #: exported record, consumed lazily at first dispatch so a
        #: preload never eagerly ``compile()``s thousands of segments
        self._pending: tuple[dict, dict] = ({}, {})
        self._dispatches: dict[int, int] = {}
        self._deopt_counts: dict[int, int] = {}
        #: taken-edge profile feeding trace selection:
        #: ``(from_entry, to_entry) -> count``, shared across runs
        self.edges: dict[tuple[int, int], int] = {}
        #: the branch pc last observed taking each profiled edge —
        #: disambiguates which of several same-label conditionals in a
        #: segment is the hot one when placing a trace cut
        self.edge_sites: dict[tuple[int, int], int] = {}
        #: trace heads already decided (built or refused), per table
        self._sb_decided: tuple[set, set] = (set(), set())
        #: ``(flag, head) ->`` the plain segment record a superblock
        #: replaced — live ``(fn, max_exec, False)`` tuple or exported
        #: ``("seg", ...)`` payload — restored when the trace blacklists
        self._sb_fallback: dict = {}
        #: ``(flag, head) ->`` node count of the installed trace, the
        #: yardstick for the quality gate: a call whose probe-close
        #: count stays at or below it never reached the back-edge
        self.sb_nodes: dict = {}
        #: ``(flag, head) -> (side exits, early exits)`` in the current
        #: quality window
        self._sb_bad: dict = {}
        self.compiled = 0
        self.uncompilable = 0
        self.preloaded = 0
        self.deopts = 0
        self.hits = 0
        self.superblocks = 0
        self.sb_preloaded = 0
        self.sb_demoted = 0
        self.side_exits = 0
        #: something export() would return changed since the last
        #: persist — a fresh translation, refusal or blacklisting
        self.dirty = False

    def functions(self, cached: bool) -> dict:
        """entry pc -> ``(function, max_executed, is_superblock)`` |
        ``None`` (refused or blacklisted — permanently interpreted)."""
        return self._tables[1 if cached else 0]

    def active_segments(self) -> int:
        """Entries with a live compiled function (plain segment or
        superblock) in either table — whether freshly compiled or
        preloaded from the artifact cache.  This is the number that
        distinguishes a warm run (``compiled == 0`` but hundreds
        active) from a run with the JIT off."""
        return sum(
            1
            for table in self._tables
            for record in table.values()
            if record is not None
        )

    def warm(self, entry: int, cached: bool):
        """Count one dispatch of a not-yet-compiled entry; compile it
        once it crosses the warmup threshold.  Entries preloaded from
        the artifact cache skip warmup: the marshalled code object (or
        the generated source, when the payload came from a different
        interpreter) is materialized on the spot (counted in
        ``preloaded``, not ``compiled`` — no translation work
        happened)."""
        flag = 1 if cached else 0
        pending = self._pending[flag]
        if entry in pending:
            record = self._materialize((flag, entry), pending.pop(entry))
            self.preloaded += 1
            if record is not None and record[2]:
                self.sb_preloaded += 1
                self._sb_decided[flag].add(entry)
            self.functions(cached)[entry] = record
            return record
        count = self._dispatches.get(entry, 0) + 1
        if count < self.warmup:
            self._dispatches[entry] = count
            return None
        self._dispatches.pop(entry, None)
        try:
            fn, max_exec = self.translator.translate(entry, cached)
            record = (fn, max_exec, False)
            self.compiled += 1
        except Uncompilable:
            record = None
            self.uncompilable += 1
        self.functions(cached)[entry] = record
        self.dirty = True
        return record

    def build_superblock(
        self, head: int, cached: bool, block_counts=None
    ) -> bool:
        """Attempt to promote ``head``'s compiled segment into a trace
        superblock (greedy hot-path selection over :attr:`edges`).  One
        attempt per head; returns whether a superblock was installed.
        The plain record is stashed so blacklisting a trace falls back
        to the segment, and so promotion of a *preloaded* segment never
        perturbs the ``preloaded``/``compiled`` split."""
        flag = 1 if cached else 0
        decided = self._sb_decided[flag]
        if head in decided:
            return False
        decided.add(head)
        current = self._tables[flag].get(head)
        if current is None or current[2]:
            # refused/blacklisted head, or already a superblock
            return False
        selected = self._select_trace(head, block_counts)
        if selected is None:
            return False
        entries, cuts = selected
        try:
            fn, max_exec = self.translator.translate_trace(
                entries, cached, cuts
            )
        except Uncompilable:
            return False
        self._sb_fallback[(flag, head)] = current
        self._tables[flag][head] = (fn, max_exec, True)
        self.sb_nodes[(flag, head)] = len(entries)
        self.superblocks += 1
        self.dirty = True
        return True

    def note_trace_exit(
        self, head: int, cached: bool, closes: int, kind: int
    ) -> None:
        """Trace-quality gate, fed by the dispatch loop on every trace
        side exit.  The harmful pattern is an *open* exit (kind 0)
        before the first back-edge: the call did no better than the
        plain segments it replaced, and its open tail resumes
        mid-segment in the interpreter.  Taken/call/return side exits
        land on block starts and re-enter compiled code, so they stay
        cheap however often they fire — a trace that alternates arms
        of a diamond is doing its job.  ``closes`` is the number of
        probe closes the call performed: at most the trace's node
        count means it never reached the back-edge.  Every
        :data:`SUPERBLOCK_DEMOTE_WINDOW` side exits the early-open
        rate is judged; at or above :data:`SUPERBLOCK_DEMOTE_RATIO`
        the head is demoted back to its stashed segment record.  Fuse
        stops (kind 4) never reach here, so a trace that mostly runs
        to the fuse is never demoted."""
        item = (1 if cached else 0, head)
        nodes = self.sb_nodes.get(item)
        if nodes is None:
            return
        exits, early = self._sb_bad.get(item, (0, 0))
        exits += 1
        if kind == 0 and closes <= nodes:
            early += 1
        if exits < SUPERBLOCK_DEMOTE_WINDOW:
            self._sb_bad[item] = (exits, early)
            return
        if early >= exits * SUPERBLOCK_DEMOTE_RATIO:
            self._sb_bad.pop(item, None)
            self._demote(item)
        else:
            # window passed: start a fresh one so a later phase change
            # can still demote
            self._sb_bad[item] = (0, 0)

    def _demote(self, item) -> None:
        """Replace the trace at ``item`` with the plain segment record
        it was promoted from.  The head stays in ``_sb_decided``, so it
        is never re-promoted in this process."""
        flag, head = item
        fallback = self._sb_fallback.pop(item, None)
        if fallback is None:
            return
        if not callable(fallback[0]):
            fallback = self._materialize(item, fallback)
        self._tables[flag][head] = fallback
        self.sb_nodes.pop(item, None)
        self.sb_demoted += 1
        self.dirty = True

    def _select_trace(self, head: int, block_counts=None):
        """Greedy hot-path selection from ``head``: at each node follow
        the hottest profiled taken edge (truncating the node at a
        mid-segment conditional when that is the hot exit), or the
        static flow through an unconditional tail — calls enter their
        callee and returns follow the pc an earlier in-trace call
        pinned.  Stops at the head itself (the codegen turns
        head-targeting exits into back-edges), a repeated node, a cold
        edge, or the node cap.  ``(entries, cuts)`` or ``None``."""
        entries = [head]
        seen = {head}
        current = head
        returns: list[int] = []
        cuts: dict[int, int] = {}
        while len(entries) < SUPERBLOCK_MAX_NODES:
            succ, cut = self._next_node(current, returns, block_counts)
            if succ is None or succ in seen:
                break
            if cut is not None:
                cuts[current] = cut
            entries.append(succ)
            seen.add(succ)
            current = succ
        return (entries, cuts) if len(entries) >= 2 else None

    def _next_node(self, current: int, returns: list, block_counts=None):
        """The trace successor of ``current`` and an optional
        truncation pc: the hottest profiled taken edge when it is hot
        enough (resolved to the terminal goto or a mid-segment
        conditional), else the deterministic call/return flow.  A
        conditional cut is only used when its taken side dominates the
        fall-through by :data:`SUPERBLOCK_CUT_BIAS`; a weakly biased
        branch keeps the whole segment in the trace and follows the
        static flow instead."""
        best, best_count = None, 0
        for (frm, to), count in self.edges.items():
            if frm == current and count > best_count:
                best, best_count = to, count
        if best is not None and best_count >= SUPERBLOCK_MIN_EDGE:
            cut = self.translator.hot_cut(
                current, best, self.edge_sites.get((current, best))
            )
            if cut is not None:
                kind, pc = cut
                if kind != "cond":
                    return best, None
                fall = self.translator.fallthrough_count(pc, block_counts)
                if fall is not None and (
                    best_count >= fall * SUPERBLOCK_CUT_BIAS
                ):
                    return best, pc
        succ, via = self.translator.trace_successor(current, returns)
        if via in ("call", "ret"):
            return succ, None
        return None, None

    def segment_fallback(self, entry: int, cached: bool):
        """The plain segment record behind a superblock at ``entry``
        (materialized on demand), for runs with superblocks disabled."""
        item = (1 if cached else 0, entry)
        fallback = self._sb_fallback.get(item)
        if fallback is None:
            return None
        if not callable(fallback[0]):
            fallback = self._materialize(item, fallback)
            self._sb_fallback[item] = fallback
        return fallback

    def note_deopt(
        self, entry: int, cached: bool, fault: JitDeopt, block_counts: dict
    ) -> None:
        """Undo the compiled prefix's block-count increments; blacklist
        the entry after :data:`MAX_DEOPTS` guard failures.  A
        blacklisted *superblock* falls back to the plain segment record
        it replaced (with a fresh deopt budget) rather than all the way
        to the interpreter."""
        self.deopts += 1
        for label in fault.bc_undo:
            remaining = block_counts.get(label, 0) - 1
            if remaining > 0:
                block_counts[label] = remaining
            else:
                block_counts.pop(label, None)
        count = self._deopt_counts.get(entry, 0) + 1
        self._deopt_counts[entry] = count
        if count >= MAX_DEOPTS:
            restored = None
            current = self.functions(cached).get(entry)
            if current is not None and current[2]:
                restored = self.segment_fallback(entry, cached)
                item = (1 if cached else 0, entry)
                self._sb_fallback.pop(item, None)
                self.sb_nodes.pop(item, None)
                self._sb_bad.pop(item, None)
                self._deopt_counts[entry] = 0
            self.functions(cached)[entry] = restored
            self.dirty = True

    # -- artifact-cache serialization ------------------------------------

    @staticmethod
    def _compile_payload(payload):
        """``(name, source, consts, max_exec, magic, code_blob)`` ->
        ``(fn, max_exec)``.  ``code_blob`` is the marshalled code
        object; it is only trusted when ``magic`` matches this
        interpreter's bytecode magic (the payload may have been written
        by a different Python), otherwise the source is recompiled."""
        name, source, consts, max_exec, magic, blob = payload
        env = dict(_BASE_ENV)
        for cname, bc_undo in consts.items():
            env[cname] = JitDeopt(tuple(bc_undo))
        if magic == MAGIC_NUMBER and blob is not None:
            code = marshal.loads(blob)
        else:
            code = compile(source, f"<jit:{name}>", "exec")
        exec(code, env)
        fn = env[name]
        fn._jit_source = source
        fn._jit_name = name
        fn._jit_consts = dict(consts)
        fn._jit_code = code
        return fn, max_exec

    def _materialize(self, item, record):
        """Rebuild a table record from its exported form — the inverse
        of what :meth:`export` captures.  ``item`` is ``(flag, entry)``;
        a superblock payload also stashes its segment fallback."""
        if record is None:
            return None
        if record[0] == "sb":
            fn, max_exec = self._compile_payload(record[1])
            if record[2] is not None:
                self._sb_fallback.setdefault(item, record[2])
            if len(record) > 3 and record[3]:
                self.sb_nodes[item] = record[3]
            return (fn, max_exec, True)
        fn, max_exec = self._compile_payload(record[1:])
        return (fn, max_exec, False)

    @staticmethod
    def _export_payload(fn, max_exec):
        try:
            blob = marshal.dumps(fn._jit_code)
        except ValueError:
            blob = None
        return (
            fn._jit_name, fn._jit_source, dict(fn._jit_consts), max_exec,
            MAGIC_NUMBER, blob,
        )

    def export(self) -> dict:
        """A picklable snapshot of every decided entry: ``(cached,
        entry) -> None`` (refused/blacklisted), ``("seg", name, source,
        consts, max_executed, magic, code_blob)``, or ``("sb", payload,
        fallback, nodes)`` for a superblock (``fallback`` is the segment record
        it replaced, in ``("seg", ...)`` form, so a warm process can
        blacklist or demote back to it; ``nodes`` feeds the quality
        gate).  Pending preloads the process never dispatched are passed
        through so a partial warm run does not shrink the artifact."""
        out: dict = {}
        for flag in (0, 1):
            for entry, record in self._tables[flag].items():
                if record is None:
                    out[(flag, entry)] = None
                    continue
                fn, max_exec, is_sb = record
                body = self._export_payload(fn, max_exec)
                if is_sb:
                    fallback = self._sb_fallback.get((flag, entry))
                    if fallback is not None and callable(fallback[0]):
                        fallback = ("seg",) + self._export_payload(
                            fallback[0], fallback[1]
                        )
                    out[(flag, entry)] = (
                        "sb", body, fallback,
                        self.sb_nodes.get((flag, entry), 0),
                    )
                else:
                    out[(flag, entry)] = ("seg",) + body
            for entry, record in self._pending[flag].items():
                out.setdefault((flag, entry), record)
        return out

    def preload(self, payload: dict) -> int:
        """Stage an :meth:`export` payload; returns entries staged.
        Entries this process already decided are left alone; records in
        an unrecognized format are skipped."""
        staged = 0
        for item, record in payload.items():
            try:
                flag, entry = item
                table_index = 1 if flag else 0
            except (TypeError, ValueError):
                continue
            if record is not None and (
                not isinstance(record, tuple)
                or not record
                or record[0] not in ("seg", "sb")
            ):
                continue
            if entry in self._tables[table_index]:
                continue
            self._pending[table_index][entry] = record
            staged += 1
        return staged

    @property
    def stats(self) -> dict:
        return {
            "compiled": self.compiled,
            "uncompilable": self.uncompilable,
            "preloaded": self.preloaded,
            "active_segments": self.active_segments(),
            "deopts": self.deopts,
            "hits": self.hits,
            "superblocks": self.superblocks,
            "sb_preloaded": self.sb_preloaded,
            "sb_demoted": self.sb_demoted,
            "side_exits": self.side_exits,
        }
