"""Block-level JIT: hot straight-line segments compiled to flat Python.

The closure interpreter (:mod:`repro.sim.executor`) pays per-operand
closure dispatch, register-unit packing/unpacking and mem-log
bookkeeping on every executed instruction.  The Livermore kernels spend
essentially all dynamic instructions in a handful of loop bodies, so
once a segment entry (the same ``(entry_pc, ...)`` unit the block-timing
memo keys on in :meth:`Simulator._run_fast`) has been dispatched
:data:`JIT_WARMUP` times, :class:`SegmentTranslator` walks the segment's
Maril semantics trees and emits one flat Python function for the whole
straight-line region via source generation + ``compile()``/``exec``.

Inside the generated function:

* integer and double registers live in Python locals across the whole
  segment — loaded once at entry, stored back only at the exits (and
  only the views the path actually wrote);
* float-typed and aliased register units stay as raw 32-bit words, with
  the same prebound ``struct`` codecs the interpreter uses, so every
  value is bit-identical — including NaN payloads (floats are never
  held as typed locals because the f32<->f64 conversion can quiet a
  signaling NaN);
* memory accesses perform the data-cache access, miss-mask and
  event-list bookkeeping inline, in exactly the positional order the
  closure contract requires (``executor.py`` module docstring), so the
  block-timing replay sees an indistinguishable event stream;
* conditional branches become early returns; the tail control transfer
  (and its delay slots) is compiled into the exit itself.  The caller
  receives ``(end_pc, transfer_pc, kind, label, executed, loads,
  stores, miss_mask, load_bit)`` and performs the segment close;
* a segment whose taken transfer targets its *own entry* (an innermost
  loop) is *chained*: the body is wrapped in ``while 1`` and the
  back-edge, instead of returning, invokes the caller's per-iteration
  close callback and jumps back to the top — registers stay in Python
  locals across every iteration, and the flush/return/dispatch/reload
  round trip happens once per loop, not once per iteration.  Such
  functions raise division errors inline rather than deopting (a
  mid-loop deopt would discard committed register state that only
  lives in locals), and every exit flushes the union of all views the
  body can write (a previous iteration may have taken any path).

Anything the translator does not cover — temporal registers, invalid
double pairings, control in a delay slot, unallocated operands — is
refused statically (:class:`Uncompilable`) and that entry permanently
stays on the interpreter.  Division guards that trip *before* the first
non-undoable side effect (a real cache access or a memory write) raise
:class:`JitDeopt`: the caller undoes the block-count increments the
compiled prefix made, clears the (still unconsumed) event list, and
re-executes the segment interpreted, which then raises the exact
interpreter error.  Past the first side effect the generated code raises
the interpreter's :class:`~repro.errors.SimulationError` directly with
the same message.  An entry that deopts :data:`MAX_DEOPTS` times is
blacklisted back to the interpreter.
"""

from __future__ import annotations

import os
import struct

from repro.backend.insts import Imm, Lab, MachineInstr, Reg
from repro.backend.values import fold_halves
from repro.errors import SimulationError
from repro.machine.registers import PhysReg
from repro.maril import ast
from repro.sim.blockcache import SEGMENT_CAP, decode_blocks
from repro.sim.executor import (
    _DOUBLE,
    _FLOAT,
    _PAIR,
    _WORD,
    SemanticsCompiler,
    _int_div,
    _int_mod,
    _promote,
    _wrap32,
)

#: dispatches of one segment entry before it is compiled
try:
    JIT_WARMUP = int(os.environ.get("REPRO_JIT_WARMUP", "16"))
except ValueError:  # pragma: no cover - defensive
    JIT_WARMUP = 16

#: guard failures before a compiled entry is blacklisted
MAX_DEOPTS = 8

_INT_MAX = 2**31 - 1

_INT_OPS = frozenset("+ - * / % & | ^ << >>".split())
_FLOAT_OPS = frozenset("+ - * /".split())
_REL_OPS = frozenset("== != < <= > >=".split())


class Uncompilable(Exception):
    """Static refusal: this segment stays on the closure interpreter."""


class JitDeopt(Exception):
    """A runtime guard failed before any non-undoable side effect.

    ``bc_undo`` lists the block labels whose dynamic counts the compiled
    prefix already incremented; the caller decrements them and re-runs
    the segment interpreted."""

    def __init__(self, bc_undo: tuple[str, ...] = ()):
        super().__init__("jit guard failed")
        self.bc_undo = bc_undo


# names prebound into every generated function's globals; the generated
# code never does a dotted or module-global lookup on its hot path
_BASE_ENV = {
    "_w32": _wrap32,
    "_idiv": _int_div,
    "_imod": _int_mod,
    "_SE": SimulationError,
    "_pk_d": _DOUBLE.pack,
    "_upk_d": _DOUBLE.unpack,
    "_pk_f": _FLOAT.pack,
    "_upk_f": _FLOAT.unpack,
    "_pk_w": _WORD.pack,
    "_upk_w": _WORD.unpack,
    "_pk_p": _PAIR.pack,
    "_upk_p": _PAIR.unpack,
    "_upkm_i": struct.Struct("<i").unpack_from,
    "_pkm_i": struct.Struct("<i").pack_into,
    "_upkm_d": struct.Struct("<d").unpack_from,
    "_pkm_d": struct.Struct("<d").pack_into,
    "_upkm_f": struct.Struct("<f").unpack_from,
    "_pkm_f": struct.Struct("<f").pack_into,
    "int": int,
    "float": float,
}

_CONTROL_STMTS = (
    ast.CondGotoStmt,
    ast.GotoStmt,
    ast.CallStmt,
    ast.RetStmt,
)
_UNCONDITIONAL = (ast.GotoStmt, ast.CallStmt, ast.RetStmt)


def _stmts_of(instr: MachineInstr) -> list[ast.Stmt]:
    return [
        stmt
        for stmt in instr.desc.semantics
        if not isinstance(stmt, ast.EmptyStmt)
    ]


def _control_of(stmts: list[ast.Stmt]) -> ast.Stmt | None:
    """The instruction's single trailing control statement, or ``None``.

    The interpreter runs every statement and keeps the last non-``None``
    effect; a control statement anywhere but last (or more than one)
    would need that generality, so such instructions are refused."""
    controls = [
        index
        for index, stmt in enumerate(stmts)
        if isinstance(stmt, _CONTROL_STMTS)
    ]
    if not controls:
        return None
    if len(controls) > 1 or controls[0] != len(stmts) - 1:
        raise Uncompilable("control statement not in tail position")
    return stmts[-1]


class SegmentTranslator:
    """Translates straight-line segments of one executable to Python."""

    def __init__(self, executable):
        self.executable = executable
        self.target = executable.target
        self.instrs = executable.instrs
        self.compiler = SemanticsCompiler(executable.target)
        self.block_of, self.block_starts = decode_blocks(executable)

    def translate(self, entry: int, cached: bool):
        """Compile the segment at ``entry``; ``(function, max_executed)``.

        Raises :class:`Uncompilable` when any instruction on the trace
        uses a construct the translator does not cover."""
        trace, tail = self._trace(entry)
        codegen = _SegmentCodegen(self, entry, trace, tail, cached)
        return codegen.build()

    def _trace(self, entry: int):
        """Static straight-line walk: pcs up to (and including) the first
        unconditional transfer, the segment cap, or the program end."""
        pcs: list[int] = []
        pc = entry
        program_size = len(self.instrs)
        while pc < program_size and len(pcs) < SEGMENT_CAP:
            control = _control_of(_stmts_of(self.instrs[pc]))
            pcs.append(pc)
            if isinstance(control, _UNCONDITIONAL):
                return pcs, control
            pc += 1
        return pcs, None

    def slot_pcs(self, pc: int, instr: MachineInstr) -> list[int]:
        program_size = len(self.instrs)
        return [
            pc + 1 + slot
            for slot in range(abs(instr.desc.slots))
            if pc + 1 + slot < program_size
        ]


class _SegmentCodegen:
    """One segment -> one generated function (scan, decide, emit)."""

    def __init__(self, translator, entry, trace, tail, cached):
        self.tr = translator
        self.entry = entry
        self.trace = trace
        self.tail = tail
        self.cached = cached
        # scan results
        self.touched: set[tuple[int, int]] = set()
        self.view_types: dict[tuple, set[str]] = {}
        self.unit_views: dict[tuple[int, int], set[tuple]] = {}
        # decided representations
        self.typed: dict[tuple, str] = {}
        # emit state
        self.lines: list[str] = []
        self.indent = 1
        self.tmp_count = 0
        self.written: dict[tuple, None] = {}
        self.entry_reads: set[tuple] = set()
        self.effects = False
        self.bc_trail: list[str] = []
        self.loads = 0
        self.stores = 0
        self.max_exec = 0
        self.consts: dict[str, object] = {}
        # transfer pcs whose target label resolves back to the entry:
        # these back-edges are chained into an in-function loop
        self.loop_exits: set[int] = set()
        self.looping = False

    # -- driver ---------------------------------------------------------------

    def build(self):
        self._scan()
        self._decide()
        source = self._emit()
        name = f"_jit_{self.entry}_{'c' if self.cached else 'n'}"
        env = dict(_BASE_ENV)
        env.update(self.consts)
        code = compile(source, f"<jit:{name}>", "exec")
        exec(code, env)
        fn = env[name]
        fn._jit_source = source
        # everything a fresh process needs to re-materialize this
        # function without re-translating: the consts are all JitDeopt
        # instances, recorded by their undo lists (see _materialize)
        fn._jit_name = name
        fn._jit_consts = {
            cname: value.bc_undo for cname, value in self.consts.items()
        }
        return fn, self.max_exec

    # -- scan: collect register views and refuse what we don't cover ----------

    def _scan(self) -> None:
        instrs = self.tr.instrs
        for pc in self.trace:
            instr = instrs[pc]
            stmts = _stmts_of(instr)
            control = _control_of(stmts)
            for stmt in stmts[:-1] if control is not None else stmts:
                self._scan_stmt(stmt, instr)
            if isinstance(control, ast.CondGotoStmt):
                self._scan_expr(control.condition, instr, "int")
                self._label_of(control.target, instr)
                self._scan_slots(pc, instr)
            elif isinstance(control, (ast.GotoStmt, ast.CallStmt)):
                self._label_of(control.target, instr)
                if isinstance(control, ast.CallStmt):
                    if self.tr.target.cwvm.retaddr is None:
                        raise Uncompilable("call without a %retaddr register")
                else:
                    self._scan_slots(pc, instr)
            elif isinstance(control, ast.RetStmt):
                self._scan_slots(pc, instr)

    def _scan_slots(self, pc: int, instr: MachineInstr) -> None:
        for slot_pc in self.tr.slot_pcs(pc, instr):
            slot_stmts = _stmts_of(self.tr.instrs[slot_pc])
            if _control_of(slot_stmts) is not None:
                raise Uncompilable("control instruction in a delay slot")
            for stmt in slot_stmts:
                self._scan_stmt(stmt, self.tr.instrs[slot_pc])

    def _label_of(self, target: ast.Expr, instr: MachineInstr) -> str:
        if not isinstance(target, ast.OperandRef):
            raise Uncompilable("branch target is not an operand")
        operand = instr.operands[target.index - 1]
        if not isinstance(operand, Lab):
            raise Uncompilable("branch target operand is not a label")
        return operand.name

    def _move_units(self, stmt: ast.AssignStmt, instr: MachineInstr):
        """The (dst_units, src_units) of a raw register-to-register move,
        or ``None`` — mirrors the interpreter's ``copy_units`` fast path
        exactly (same conditions, same raw-bits semantics)."""
        if not (
            isinstance(stmt.target, ast.OperandRef)
            and isinstance(stmt.value, ast.OperandRef)
        ):
            return None
        dst_operand = instr.operands[stmt.target.index - 1]
        src_operand = instr.operands[stmt.value.index - 1]
        if not (
            isinstance(dst_operand, Reg)
            and isinstance(src_operand, Reg)
            and isinstance(dst_operand.reg, PhysReg)
            and isinstance(src_operand.reg, PhysReg)
        ):
            return None
        registers = self.tr.target.registers
        dst_units = registers.units_of(dst_operand.reg)
        src_units = registers.units_of(src_operand.reg)
        if len(dst_units) != len(src_units):
            return None
        return dst_units, src_units

    def _reg_view(self, instr: MachineInstr, position: int):
        """(units, type, view_key) of a register operand access."""
        operand = instr.operands[position]
        if not isinstance(operand, Reg) or not isinstance(
            operand.reg, PhysReg
        ):
            raise Uncompilable("unallocated or non-register operand")
        type_name = self.tr.compiler._operand_type(instr, position)
        units = self.tr.target.registers.units_of(operand.reg)
        if type_name == "double":
            if len(units) != 2:
                raise Uncompilable("invalid double register pairing")
            return units, type_name, (units[0], units[1])
        return units, type_name, (units[0],)

    def _record_view(self, key: tuple, type_name: str) -> None:
        self.view_types.setdefault(key, set()).add(type_name)
        for unit in key:
            self.touched.add(unit)
            self.unit_views.setdefault(unit, set()).add(key)

    def _scan_stmt(self, stmt: ast.Stmt, instr: MachineInstr) -> None:
        if isinstance(stmt, ast.AssignStmt):
            move = self._move_units(stmt, instr)
            if move is not None:
                for unit in move[0] + move[1]:
                    self.touched.add(unit)
                return
            target = stmt.target
            if isinstance(target, ast.OperandRef):
                _units, type_name, key = self._reg_view(
                    instr, target.index - 1
                )
                self._record_view(key, type_name)
                self._scan_expr(stmt.value, instr, type_name)
                return
            if isinstance(target, ast.MemRef):
                self._scan_expr(target.address, instr, "int")
                self._scan_expr(stmt.value, instr, None)
                return
            # NameRef (temporal register) or anything else
            raise Uncompilable(f"cannot compile assignment to {target}")
        raise Uncompilable(f"cannot compile statement {stmt}")

    def _scan_expr(
        self, expr: ast.Expr, instr: MachineInstr, expected: str | None
    ) -> str:
        if isinstance(expr, ast.OperandRef):
            operand = instr.operands[expr.index - 1]
            if isinstance(operand, Imm):
                value = fold_halves(operand.value)
                if not isinstance(value, (int, float)):
                    raise Uncompilable("unresolved immediate")
                return "int"
            _units, type_name, key = self._reg_view(instr, expr.index - 1)
            self._record_view(key, type_name)
            return type_name
        if isinstance(expr, ast.IntLit):
            return "int"
        if isinstance(expr, ast.FloatLit):
            return "double"
        if isinstance(expr, ast.MemRef):
            if expected is None:
                raise Uncompilable("memory read with unknown width")
            self._scan_expr(expr.address, instr, "int")
            return expected
        if isinstance(expr, ast.Unary):
            operand_type = self._scan_expr(expr.operand, instr, expected)
            if expr.op == "-":
                return operand_type
            if expr.op in ("~", "!"):
                return "int"
            raise Uncompilable(f"unknown unary operator {expr.op}")
        if isinstance(expr, ast.Binary):
            left = self._scan_expr(expr.left, instr, expected)
            right = self._scan_expr(expr.right, instr, expected)
            if expr.op == "::" or expr.op in _REL_OPS:
                return "int"
            common = _promote(left, right)
            if common == "int":
                if expr.op not in _INT_OPS:
                    raise Uncompilable(f"unknown int operator {expr.op}")
                return "int"
            if expr.op not in _FLOAT_OPS:
                raise Uncompilable(f"operator {expr.op} not on {common}")
            return common
        if isinstance(expr, ast.BuiltinCall):
            arg_type = self._scan_expr(expr.args[0], instr, None)
            if expr.name in ("int", "high", "low"):
                return "int"
            if expr.name in ("float", "double"):
                return expr.name
            if expr.name == "eval":
                return arg_type
            raise Uncompilable(f"unknown builtin {expr.name}")
        # NameRef (temporal register) or anything else
        raise Uncompilable(f"cannot compile expression {expr}")

    # -- decide: which views become typed locals -------------------------------

    def _decide(self) -> None:
        """A view becomes a typed local iff it is the *only* view of every
        unit it covers and its single type is safely representable (int as
        a signed Python int, double as a Python float — the ``<d`` codec
        is a lossless memcpy both ways).  Float views stay raw because the
        f32<->f64 conversion is not bit-stable for signaling NaNs.  Every
        other touched unit is held as a raw 32-bit word local."""
        for key, types in self.view_types.items():
            if len(types) != 1:
                continue
            type_name = next(iter(types))
            if type_name not in ("int", "double"):
                continue
            if all(self.unit_views.get(unit) == {key} for unit in key):
                self.typed[key] = type_name
        typed_units = {unit for key in self.typed for unit in key}
        self.raw = sorted(self.touched - typed_units)

    # -- emit helpers ----------------------------------------------------------

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _tmp(self) -> str:
        self.tmp_count += 1
        return f"t{self.tmp_count}"

    @staticmethod
    def _uname(unit) -> str:
        return f"u{unit[0]}_{unit[1]}"

    @staticmethod
    def _iname(key) -> str:
        return f"i{key[0][0]}_{key[0][1]}"

    @staticmethod
    def _dname(key) -> str:
        return f"d{key[0][0]}_{key[0][1]}"

    def _mark_written(self, kind: str, key) -> None:
        self.written[(kind, key)] = None

    def _need(self, kind: str, key) -> None:
        """Record a read of a view local that happens before any write on
        the current path: exactly these views get an entry load (write-only
        and write-before-read views start uninitialized, which is fine
        because the flush set only ever contains written views)."""
        if (kind, key) not in self.written:
            self.entry_reads.add((kind, key))

    @staticmethod
    def _wrap(code: str) -> str:
        """Branch-free inline 32-bit signed wrap — the same value
        ``executor._wrap32`` computes, without the per-op call."""
        return f"((({code}) + 2147483648 & 4294967295) - 2147483648)"

    def _deopt_name(self) -> str:
        name = f"_D{len(self.consts)}"
        self.consts[name] = JitDeopt(tuple(self.bc_trail))
        return name

    def _guard_zero(self, var: str, message: str) -> None:
        """Division guard: deopt while still undoable, else raise the
        interpreter's exact error inline."""
        if self.effects:
            self._line(f"if {var} == 0: raise _SE({message!r})")
        else:
            self._line(f"if {var} == 0: raise {self._deopt_name()}")

    def _emit_bc(self, pc: int) -> None:
        if pc in self.tr.block_starts:
            label = self.tr.block_of[pc]
            self._line(f"bc[{label!r}] = bcg({label!r}, 0) + 1")
            self.bc_trail.append(label)

    def _bounds_check(self, addr: str, size: int) -> None:
        self._line(
            f"if {addr} < 0 or {addr} + {size} > ml:"
            f" raise _SE('memory access at %d outside [0, %d)' % ({addr}, ml))"
        )

    # -- emit: expressions -----------------------------------------------------

    def _expr(
        self,
        expr: ast.Expr,
        instr: MachineInstr,
        expected: str | None,
        pc: int,
        slot: bool,
    ):
        """Returns ``(code, static_type, wrapped)``; ``wrapped`` promises
        the value is a Python int already in signed 32-bit range, so
        redundant ``_wrap32(int(...))`` conversions can be skipped."""
        if isinstance(expr, ast.OperandRef):
            operand = instr.operands[expr.index - 1]
            if isinstance(operand, Imm):
                value = fold_halves(operand.value)
                wrapped = (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and -(2**31) <= value <= _INT_MAX
                )
                return f"({value!r})", "int", wrapped
            return self._emit_reg_read(instr, expr.index - 1)
        if isinstance(expr, ast.IntLit):
            value = expr.value
            wrapped = -(2**31) <= value <= _INT_MAX
            return f"({value!r})", "int", wrapped
        if isinstance(expr, ast.FloatLit):
            return f"({expr.value!r})", "double", False
        if isinstance(expr, ast.MemRef):
            return self._emit_mem_read(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.Unary):
            return self._emit_unary(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr, instr, expected, pc, slot)
        if isinstance(expr, ast.BuiltinCall):
            return self._emit_builtin(expr, instr, pc, slot)
        raise Uncompilable(f"cannot compile expression {expr}")

    def _emit_reg_read(self, instr: MachineInstr, position: int):
        units, type_name, key = self._reg_view(instr, position)
        if type_name == "double":
            if key in self.typed:
                self._need("double", key)
                return self._dname(key), "double", False
            self._need("raw", units[0])
            self._need("raw", units[1])
            lo, hi = self._uname(units[0]), self._uname(units[1])
            return f"_upk_d(_pk_p({lo}, {hi}))[0]", "double", False
        if type_name == "float":
            self._need("raw", units[0])
            word = self._uname(units[0])
            return f"_upk_f(_pk_w({word}))[0]", "float", False
        if key in self.typed:
            self._need("int", key)
            return self._iname(key), "int", True
        self._need("raw", units[0])
        word = self._uname(units[0])
        return (
            f"({word} - 4294967296 if {word} > 2147483647 else {word})",
            "int",
            True,
        )

    def _emit_mem_read(self, expr, instr, expected, pc, slot):
        if expected is None:
            raise Uncompilable("memory read with unknown width")
        addr_code, _, _ = self._expr(expr.address, instr, "int", pc, slot)
        addr = self._tmp()
        self._line(f"{addr} = {addr_code}")
        self._bounds_check(addr, 8 if expected == "double" else 4)
        if self.cached:
            hit = self._tmp()
            self._line(f"{hit} = access({addr})")
            self._line(f"if not {hit}: mm |= lb")
            self._line("lb <<= 1")
            self._line(f"ea(({pc}, False, {hit}))")
            self.effects = True
        else:
            self._line("lb <<= 1")
            self._line(f"ea(({pc}, False, True))")
        if not slot:
            self.loads += 1
        value = self._tmp()
        unpack = {"double": "_upkm_d", "float": "_upkm_f"}.get(
            expected, "_upkm_i"
        )
        self._line(f"{value} = {unpack}(mem, {addr})[0]")
        return value, expected, expected == "int"

    def _emit_unary(self, expr, instr, expected, pc, slot):
        code, type_name, wrapped = self._expr(
            expr.operand, instr, expected, pc, slot
        )
        if expr.op == "-":
            if type_name == "int":
                return self._wrap(f"-({code})"), "int", True
            return f"(-({code}))", type_name, False
        if expr.op == "~":
            return self._wrap(f"~({code})"), "int", True
        if expr.op == "!":
            return f"(0 if {code} else 1)", "int", True
        raise Uncompilable(f"unknown unary operator {expr.op}")

    def _emit_binary(self, expr, instr, expected, pc, slot):
        lcode, ltype, lwrapped = self._expr(
            expr.left, instr, expected, pc, slot
        )
        rcode, rtype, rwrapped = self._expr(
            expr.right, instr, expected, pc, slot
        )
        op = expr.op
        if op == "::":
            left, right = self._tmp(), self._tmp()
            self._line(f"{left} = {lcode}")
            self._line(f"{right} = {rcode}")
            return (
                f"(({left} > {right}) - ({left} < {right}))",
                "int",
                True,
            )
        if op in _REL_OPS:
            return f"(1 if ({lcode}) {op} ({rcode}) else 0)", "int", True
        common = _promote(ltype, rtype)
        if common == "int":
            if op == "+":
                return self._wrap(f"({lcode}) + ({rcode})"), "int", True
            if op == "-":
                return self._wrap(f"({lcode}) - ({rcode})"), "int", True
            if op == "*":
                return self._wrap(f"({lcode}) * ({rcode})"), "int", True
            if op == "&":
                return f"(({lcode}) & ({rcode}))", "int", lwrapped and rwrapped
            if op == "|":
                return f"(({lcode}) | ({rcode}))", "int", lwrapped and rwrapped
            if op == "^":
                return f"(({lcode}) ^ ({rcode}))", "int", lwrapped and rwrapped
            if op == "<<":
                return (
                    self._wrap(f"({lcode}) << (({rcode}) & 31)"),
                    "int",
                    True,
                )
            if op == ">>":
                return f"(({lcode}) >> (({rcode}) & 31))", "int", lwrapped
            if op in ("/", "%"):
                left, right = self._tmp(), self._tmp()
                self._line(f"{left} = {lcode}")
                self._line(f"{right} = {rcode}")
                self._guard_zero(right, "integer division by zero")
                fn = "_idiv" if op == "/" else "_imod"
                return f"{fn}({left}, {right})", "int", False
            raise Uncompilable(f"unknown int operator {op}")
        if op in ("+", "-", "*"):
            return f"(({lcode}) {op} ({rcode}))", common, False
        if op == "/":
            left, right = self._tmp(), self._tmp()
            self._line(f"{left} = {lcode}")
            self._line(f"{right} = {rcode}")
            self._guard_zero(right, "floating divide by zero")
            return f"({left} / {right})", common, False
        raise Uncompilable(f"operator {op} not on {common}")

    def _emit_builtin(self, expr, instr, pc, slot):
        code, arg_type, wrapped = self._expr(
            expr.args[0], instr, None, pc, slot
        )
        name = expr.name
        if name == "int":
            if wrapped:
                return code, "int", True
            # a static int is already a Python int: only the range wrap
            # is needed (int(x) is the identity the interpreter applies)
            inner = code if arg_type == "int" else f"int({code})"
            return self._wrap(inner), "int", True
        if name in ("float", "double"):
            if arg_type in ("float", "double"):
                return code, name, False
            return f"float({code})", name, False
        if name == "high":
            inner = code if arg_type == "int" else f"int({code})"
            return f"((({inner}) >> 16) & 65535)", "int", True
        if name == "low":
            inner = code if arg_type == "int" else f"int({code})"
            return f"(({inner}) & 65535)", "int", True
        if name == "eval":
            return code, arg_type, wrapped
        raise Uncompilable(f"unknown builtin {name}")

    # -- emit: statements ------------------------------------------------------

    def _emit_stmt(self, stmt, instr, pc, slot):
        if isinstance(stmt, ast.AssignStmt):
            move = self._move_units(stmt, instr)
            if move is not None:
                self._emit_move(*move)
                return
            target = stmt.target
            if isinstance(target, ast.OperandRef):
                self._emit_reg_write(stmt, instr, pc, slot)
                return
            if isinstance(target, ast.MemRef):
                self._emit_mem_write(stmt, instr, pc, slot)
                return
        raise Uncompilable(f"cannot compile statement {stmt}")

    def _read_unit_bits(self, unit) -> str:
        """Current 32-bit word of ``unit`` under its representation."""
        for key, type_name in self.typed.items():
            if unit not in key:
                continue
            if type_name == "int":
                self._need("int", key)
                return f"({self._iname(key)} & 4294967295)"
            self._need("double", key)
            half = key.index(unit)
            return f"_upk_p(_pk_d({self._dname(key)}))[{half}]"
        self._need("raw", unit)
        return self._uname(unit)

    def _write_unit_bits(self, unit, bits: str) -> None:
        for key, type_name in self.typed.items():
            if unit not in key:
                continue
            if type_name == "int":
                word = self._tmp()
                self._line(f"{word} = {bits}")
                self._line(
                    f"{self._iname(key)} = {word} - 4294967296"
                    f" if {word} > 2147483647 else {word}"
                )
                self._mark_written("int", key)
            else:
                self._need("double", key)  # the untouched half is read
                name = self._dname(key)
                halves = [
                    bits if key[index] == unit
                    else f"_upk_p(_pk_d({name}))[{index}]"
                    for index in range(2)
                ]
                self._line(
                    f"{name} = _upk_d(_pk_p({halves[0]}, {halves[1]}))[0]"
                )
                self._mark_written("double", key)
            return
        self._line(f"{self._uname(unit)} = {bits}")
        self._mark_written("raw", unit)

    def _emit_move(self, dst_units, src_units) -> None:
        """Raw register move; like the interpreter's ``copy_units`` the
        copy is sequential unit by unit (overlapping pairs observe the
        partially-updated destination)."""
        dkey, skey = tuple(dst_units), tuple(src_units)
        if (
            len(dkey) == 2
            and self.typed.get(dkey) == "double"
            and self.typed.get(skey) == "double"
        ):
            if dkey != skey:
                self._need("double", skey)
                self._line(f"{self._dname(dkey)} = {self._dname(skey)}")
                self._mark_written("double", dkey)
            return
        for dst, src in zip(dst_units, src_units):
            if dst == src:
                continue
            self._write_unit_bits(dst, self._read_unit_bits(src))

    def _emit_reg_write(self, stmt, instr, pc, slot) -> None:
        position = stmt.target.index - 1
        units, type_name, key = self._reg_view(instr, position)
        vcode, vtype, vwrapped = self._expr(
            stmt.value, instr, type_name, pc, slot
        )
        if type_name == "double":
            conv = (
                vcode if vtype in ("float", "double") else f"float({vcode})"
            )
            if key in self.typed:
                self._line(f"{self._dname(key)} = {conv}")
                self._mark_written("double", key)
            else:
                lo, hi = self._uname(units[0]), self._uname(units[1])
                self._line(f"{lo}, {hi} = _upk_p(_pk_d({conv}))")
                self._mark_written("raw", units[0])
                self._mark_written("raw", units[1])
            return
        if type_name == "float":
            conv = (
                vcode if vtype in ("float", "double") else f"float({vcode})"
            )
            self._line(f"{self._uname(units[0])} = _upk_w(_pk_f({conv}))[0]")
            self._mark_written("raw", units[0])
            return
        if key in self.typed:
            if vtype == "int" and vwrapped:
                self._line(f"{self._iname(key)} = {vcode}")
            else:
                inner = vcode if vtype == "int" else f"int({vcode})"
                self._line(f"{self._iname(key)} = {self._wrap(inner)}")
            self._mark_written("int", key)
            return
        if vtype == "int":
            self._line(f"{self._uname(units[0])} = ({vcode}) & 4294967295")
        else:
            self._line(
                f"{self._uname(units[0])} = int({vcode}) & 4294967295"
            )
        self._mark_written("raw", units[0])

    def _emit_mem_write(self, stmt, instr, pc, slot) -> None:
        addr_code, _, _ = self._expr(
            stmt.target.address, instr, "int", pc, slot
        )
        addr = self._tmp()
        self._line(f"{addr} = {addr_code}")
        # the store's log record (and so its cache access) precedes the
        # value expression's loads, matching the closure's append order
        if self.cached:
            self._line(f"ea(({pc}, True, access({addr})))")
            self.effects = True
        else:
            self._line(f"ea(({pc}, True, True))")
        if not slot:
            self.stores += 1
        vcode, vtype, vwrapped = self._expr(stmt.value, instr, None, pc, slot)
        self._bounds_check(addr, 8 if vtype == "double" else 4)
        if vtype == "double":
            self._line(f"_pkm_d(mem, {addr}, {vcode})")
        elif vtype == "float":
            self._line(f"_pkm_f(mem, {addr}, float({vcode}))")
        else:
            if vwrapped:
                signed = vcode
            else:
                signed = self._wrap(
                    vcode if vtype == "int" else f"int({vcode})"
                )
            self._line(f"_pkm_i(mem, {addr}, {signed})")
        self.effects = True

    # -- emit: exits -----------------------------------------------------------

    def _flush(self) -> None:
        for kind, key in self.written:
            if kind == "raw":
                self._line(f"u[{key!r}] = {self._uname(key)}")
            elif kind == "int":
                self._line(f"u[{key[0]!r}] = {self._iname(key)} & 4294967295")
            else:
                self._line(
                    f"u[{key[0]!r}], u[{key[1]!r}] ="
                    f" _upk_p(_pk_d({self._dname(key)}))"
                )

    def _emit_exit(self, end, transfer, kind, label, executed) -> None:
        self._flush()
        if executed > self.max_exec:
            self.max_exec = executed
        self._line(
            f"return ({end}, {transfer}, {kind}, {label!r},"
            f" {executed}, {self.loads}, {self.stores}, mm, lb)"
        )

    def _emit_slots(self, pc: int, instr: MachineInstr) -> int:
        """Delay-slot bodies for a taken exit; returns the segment end pc.
        Slot accesses hit the cache and shape the miss mask and events,
        but are not counted in loads/stores (matching ``_run_fast``)."""
        end = pc
        for slot_pc in self.tr.slot_pcs(pc, instr):
            for stmt in _stmts_of(self.tr.instrs[slot_pc]):
                self._emit_stmt(stmt, self.tr.instrs[slot_pc], slot_pc, True)
            end = slot_pc
        return end

    # -- emit: the function ----------------------------------------------------

    def _find_loop_exits(self) -> None:
        """Back-edges to the segment's own entry — chained in-function."""
        labels = self.tr.executable.labels
        for pc in self.trace:
            instr = self.tr.instrs[pc]
            control = _control_of(_stmts_of(instr))
            if isinstance(control, (ast.CondGotoStmt, ast.GotoStmt)):
                label = self._label_of(control.target, instr)
                if labels.get(label) == self.entry:
                    self.loop_exits.add(pc)
        self.looping = bool(self.loop_exits)

    def _emit_loop_exit(self, pc: int, instr, index: int) -> None:
        """A chained back-edge: close the iteration through the caller's
        callback and loop in-function while it allows, otherwise flush
        and hand control back (kind 4: everything already accounted)."""
        end = self._emit_slots(pc, instr)
        executed = index + 1 + abs(instr.desc.slots)
        if executed > self.max_exec:
            self.max_exec = executed
        self._line(
            f"if lc({end}, {pc}, {executed},"
            f" {self.loads}, {self.stores}, mm):"
        )
        self.indent += 1
        self._line("mm = 0")
        self._line("lb = 1")
        self._line("continue")
        self.indent -= 1
        self._flush()
        self._line("return (0, 0, 4, None, 0, 0, 0, 0, 1)")

    def _emit(self) -> str:
        name = f"_jit_{self.entry}_{'c' if self.cached else 'n'}"
        self.lines = [f"def {name}(state, access, ea, bc, mm, lb, lc):"]
        self._line("u = state.units")
        self._line("mem = state.memory")
        self._line("ml = len(mem)")
        self._line("bcg = bc.get")
        # entry loads are inserted here once the body has been emitted and
        # self.entry_reads says which views are read before being written
        prologue_at = len(self.lines)
        self._find_loop_exits()
        if self.looping:
            # iterations past the first run on register state that only
            # lives in locals: a deopt could not restore it, so guards
            # raise the interpreter's error inline instead (bit-identical
            # message, same observable effect)...
            self.effects = True
            # ...and any exit may be reached after an iteration that took
            # a different path, so every exit flushes — and therefore
            # every entry loads — every view the body can touch
            for key, type_name in self.typed.items():
                self._mark_written(type_name, key)
                self.entry_reads.add((type_name, key))
            for unit in self.raw:
                self._mark_written("raw", unit)
                self.entry_reads.add(("raw", unit))
            self._line("while 1:")
            self.indent += 1

        instrs = self.tr.instrs
        for index, pc in enumerate(self.trace):
            instr = instrs[pc]
            stmts = _stmts_of(instr)
            control = _control_of(stmts)
            for stmt in stmts[:-1] if control is not None else stmts:
                self._emit_stmt(stmt, instr, pc, False)
            if isinstance(control, ast.CondGotoStmt):
                cond_code, _, _ = self._expr(
                    control.condition, instr, "int", pc, False
                )
                cond = self._tmp()
                self._line(f"{cond} = {cond_code}")
                self._emit_bc(pc)
                label = self._label_of(control.target, instr)
                self._line(f"if {cond} != 0:")
                self.indent += 1
                snapshot = (
                    dict(self.written),
                    self.effects,
                    list(self.bc_trail),
                )
                if pc in self.loop_exits:
                    self._emit_loop_exit(pc, instr, index)
                else:
                    end = self._emit_slots(pc, instr)
                    self._emit_exit(
                        end, pc, 1, label,
                        index + 1 + abs(instr.desc.slots),
                    )
                self.written, self.effects, self.bc_trail = (
                    dict(snapshot[0]), snapshot[1], list(snapshot[2])
                )
                self.indent -= 1
            elif isinstance(control, ast.GotoStmt):
                self._emit_bc(pc)
                if pc in self.loop_exits:
                    self._emit_loop_exit(pc, instr, index)
                else:
                    end = self._emit_slots(pc, instr)
                    label = self._label_of(control.target, instr)
                    self._emit_exit(
                        end, pc, 1, label, index + 1 + abs(instr.desc.slots)
                    )
            elif isinstance(control, ast.RetStmt):
                self._emit_bc(pc)
                end = self._emit_slots(pc, instr)
                self._emit_exit(
                    end, pc, 2, None, index + 1 + abs(instr.desc.slots)
                )
            elif isinstance(control, ast.CallStmt):
                self._emit_bc(pc)
                self._flush()
                retaddr = self.tr.target.cwvm.retaddr
                unit = self.tr.target.registers.units_of(retaddr)[0]
                self._line(f"u[{unit!r}] = {(pc + 1) & 0xFFFFFFFF}")
                label = self._label_of(control.target, instr)
                if index + 1 > self.max_exec:
                    self.max_exec = index + 1
                self._line(
                    f"return ({pc}, {pc}, 3, {label!r}, {index + 1},"
                    f" {self.loads}, {self.stores}, mm, lb)"
                )
            else:
                self._emit_bc(pc)
        if self.tail is None:
            last = self.trace[-1]
            self._emit_exit(last, -1, 0, None, len(self.trace))
        self.lines[prologue_at:prologue_at] = self._entry_loads()
        return "\n".join(self.lines) + "\n"

    def _entry_loads(self) -> list[str]:
        """Loads for exactly the views the body reads before writing."""
        loads = []
        if self.entry_reads:
            loads.append("    ug = u.get")
        for unit in self.raw:
            if ("raw", unit) in self.entry_reads:
                loads.append(f"    {self._uname(unit)} = ug({unit!r}, 0)")
        for key in sorted(self.typed):
            type_name = self.typed[key]
            if (type_name, key) not in self.entry_reads:
                continue
            if type_name == "int":
                iname = self._iname(key)
                loads.append(f"    {iname} = ug({key[0]!r}, 0)")
                loads.append(
                    f"    if {iname} > 2147483647: {iname} -= 4294967296"
                )
            else:
                loads.append(
                    f"    {self._dname(key)} = _upk_d(_pk_p("
                    f"ug({key[0]!r}, 0), ug({key[1]!r}, 0)))[0]"
                )
        return loads


class SegmentJIT:
    """Per-executable JIT manager: warmup counting, the compiled-function
    tables (one per data-cache presence, since the bookkeeping differs),
    deopt blacklisting, and lifetime counters.  Shared by every
    :class:`~repro.sim.simulator.Simulator` over one executable, so
    warmup and translation amortize across runs."""

    def __init__(self, executable, warmup: int | None = None):
        self.translator = SegmentTranslator(executable)
        self.warmup = JIT_WARMUP if warmup is None else warmup
        self._tables: tuple[dict, dict] = ({}, {})
        #: artifact-cache payloads not yet materialized: entry pc ->
        #: exported record, consumed lazily at first dispatch so a
        #: preload never eagerly ``compile()``s thousands of segments
        self._pending: tuple[dict, dict] = ({}, {})
        self._dispatches: dict[int, int] = {}
        self._deopt_counts: dict[int, int] = {}
        self.compiled = 0
        self.uncompilable = 0
        self.preloaded = 0
        self.deopts = 0
        self.hits = 0
        #: something export() would return changed since the last
        #: persist — a fresh translation, refusal or blacklisting
        self.dirty = False

    def functions(self, cached: bool) -> dict:
        """entry pc -> ``(function, max_executed)`` | ``None`` (refused
        or blacklisted — permanently interpreted)."""
        return self._tables[1 if cached else 0]

    def warm(self, entry: int, cached: bool):
        """Count one dispatch of a not-yet-compiled entry; compile it
        once it crosses the warmup threshold.  Entries preloaded from
        the artifact cache skip warmup: the generated source is
        re-``compile()``d on the spot (counted in ``preloaded``, not
        ``compiled`` — no translation work happened)."""
        pending = self._pending[1 if cached else 0]
        if entry in pending:
            record = self._materialize(pending.pop(entry))
            self.preloaded += 1
            self.functions(cached)[entry] = record
            return record
        count = self._dispatches.get(entry, 0) + 1
        if count < self.warmup:
            self._dispatches[entry] = count
            return None
        self._dispatches.pop(entry, None)
        try:
            record = self.translator.translate(entry, cached)
            self.compiled += 1
        except Uncompilable:
            record = None
            self.uncompilable += 1
        self.functions(cached)[entry] = record
        self.dirty = True
        return record

    def note_deopt(
        self, entry: int, cached: bool, fault: JitDeopt, block_counts: dict
    ) -> None:
        """Undo the compiled prefix's block-count increments; blacklist
        the entry after :data:`MAX_DEOPTS` guard failures."""
        self.deopts += 1
        for label in fault.bc_undo:
            remaining = block_counts.get(label, 0) - 1
            if remaining > 0:
                block_counts[label] = remaining
            else:
                block_counts.pop(label, None)
        count = self._deopt_counts.get(entry, 0) + 1
        self._deopt_counts[entry] = count
        if count >= MAX_DEOPTS:
            self.functions(cached)[entry] = None
            self.dirty = True

    # -- artifact-cache serialization ------------------------------------

    @staticmethod
    def _materialize(record):
        """Rebuild a ``(function, max_executed)`` record from its
        exported form — the inverse of what :meth:`export` captures."""
        if record is None:
            return None
        name, source, consts, max_exec = record
        env = dict(_BASE_ENV)
        for cname, bc_undo in consts.items():
            env[cname] = JitDeopt(tuple(bc_undo))
        code = compile(source, f"<jit:{name}>", "exec")
        exec(code, env)
        fn = env[name]
        fn._jit_source = source
        fn._jit_name = name
        fn._jit_consts = dict(consts)
        return fn, max_exec

    def export(self) -> dict:
        """A picklable snapshot of every decided entry: ``(cached,
        entry) -> None`` (refused/blacklisted) or ``(name, source,
        consts, max_executed)``.  Pending preloads the process never
        dispatched are passed through so a partial warm run does not
        shrink the stored artifact."""
        out: dict = {}
        for flag in (0, 1):
            for entry, record in self._tables[flag].items():
                if record is None:
                    out[(flag, entry)] = None
                else:
                    fn, max_exec = record
                    out[(flag, entry)] = (
                        fn._jit_name,
                        fn._jit_source,
                        dict(fn._jit_consts),
                        max_exec,
                    )
            for entry, record in self._pending[flag].items():
                out.setdefault((flag, entry), record)
        return out

    def preload(self, payload: dict) -> int:
        """Stage an :meth:`export` payload; returns entries staged.
        Entries this process already decided are left alone."""
        staged = 0
        for item, record in payload.items():
            try:
                flag, entry = item
                table_index = 1 if flag else 0
            except (TypeError, ValueError):
                continue
            if entry in self._tables[table_index]:
                continue
            self._pending[table_index][entry] = record
            staged += 1
        return staged

    @property
    def stats(self) -> dict:
        return {
            "compiled": self.compiled,
            "uncompilable": self.uncompilable,
            "preloaded": self.preloaded,
            "deopts": self.deopts,
            "hits": self.hits,
        }
