"""AST for the C subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceLocation

# -- types -------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """``base`` is 'int' | 'float' | 'double' | 'void'; dims for arrays."""

    base: str
    dims: tuple[int, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_scalar(self) -> bool:
        return not self.dims and self.base != "void"

    def element(self) -> "CType":
        return CType(self.base, self.dims[1:])

    def __str__(self) -> str:
        return self.base + "".join(f"[{d}]" for d in self.dims)


TYPE_RANK = {"int": 0, "float": 1, "double": 2}


def usual_conversion(a: str, b: str) -> str:
    """The usual arithmetic conversions over our three scalar types."""
    return a if TYPE_RANK[a] >= TYPE_RANK[b] else b


# -- expressions ------------------------------------------------------------


class CExpr:
    """Base class; ``ctype`` (a scalar type name) is filled by the checker."""

    ctype: str | None = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class IntLit(CExpr):
    value: int
    location: SourceLocation | None = None


@dataclass(eq=False)
class FloatLit(CExpr):
    value: float
    location: SourceLocation | None = None


@dataclass(eq=False)
class VarRef(CExpr):
    name: str
    location: SourceLocation | None = None


@dataclass(eq=False)
class Index(CExpr):
    """``a[i]`` or ``a[i][j]`` — base is a VarRef to an array."""

    base: "VarRef"
    indices: list[CExpr] = field(default_factory=list)
    location: SourceLocation | None = None


@dataclass(eq=False)
class Unary(CExpr):
    op: str  # '-', '~', '!'
    operand: CExpr = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class Binary(CExpr):
    op: str
    left: CExpr = None
    right: CExpr = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class Logical(CExpr):
    """Short-circuit ``&&`` / ``||``."""

    op: str
    left: CExpr = None
    right: CExpr = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class Assign(CExpr):
    """``target = value`` (or compound ``op=``); target VarRef or Index."""

    target: CExpr = None
    value: CExpr = None
    op: str = "="  # '=', '+=', '-=', '*=', '/=', '%='
    location: SourceLocation | None = None


@dataclass(eq=False)
class IncDec(CExpr):
    """``x++`` / ``--x``; only valid where the value is discarded."""

    target: CExpr = None
    op: str = "++"
    prefix: bool = False
    location: SourceLocation | None = None


@dataclass(eq=False)
class Call(CExpr):
    name: str = ""
    args: list[CExpr] = field(default_factory=list)
    location: SourceLocation | None = None


@dataclass(eq=False)
class Cast(CExpr):
    """Implicit conversion inserted by the type checker."""

    to: str = "int"
    operand: CExpr = None
    location: SourceLocation | None = None


# -- statements ---------------------------------------------------------------


class CStmt:
    location: SourceLocation | None = None


@dataclass(eq=False)
class DeclStmt(CStmt):
    type: CType = None
    name: str = ""
    init: CExpr | None = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class ExprStmt(CStmt):
    expr: CExpr = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class IfStmt(CStmt):
    condition: CExpr = None
    then_body: "Block" = None
    else_body: "Block | None" = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class WhileStmt(CStmt):
    condition: CExpr = None
    body: "Block" = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class ForStmt(CStmt):
    init: CStmt | None = None
    condition: CExpr | None = None
    step: CExpr | None = None
    body: "Block" = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class ReturnStmt(CStmt):
    value: CExpr | None = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class BreakStmt(CStmt):
    location: SourceLocation | None = None


@dataclass(eq=False)
class ContinueStmt(CStmt):
    location: SourceLocation | None = None


@dataclass(eq=False)
class Block(CStmt):
    statements: list[CStmt] = field(default_factory=list)
    location: SourceLocation | None = None
    #: False for synthetic groups (e.g. `int a, b;`) that must not open a
    #: new declaration scope
    scoped: bool = True


# -- top level -----------------------------------------------------------------


@dataclass(eq=False)
class Param:
    type: CType = None
    name: str = ""


@dataclass(eq=False)
class FunctionDef:
    return_type: CType = None
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block = None
    location: SourceLocation | None = None


@dataclass(eq=False)
class GlobalDecl:
    type: CType = None
    name: str = ""
    init: list | None = None  # scalar: [value]; arrays: list of values
    location: SourceLocation | None = None


@dataclass(eq=False)
class TranslationUnit:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
