"""An ANSI-C-subset front end, standing in for the paper's Lcc front end.

The subset covers what the workloads (Livermore Loops, the compile-time
program suite) need: ``int``/``float``/``double`` scalars, one- and
two-dimensional arrays (global and local), ``if``/``else``, ``while``,
``for``, ``break``/``continue``, ``return``, function calls, the usual
operators with usual arithmetic conversions, and short-circuit ``&&``/
``||``/``!``.

:func:`compile_to_il` parses, checks and lowers a translation unit to the
IL of :mod:`repro.il`.
"""

from repro.frontend.ilgen import compile_to_il
from repro.frontend.cparser import parse_c

__all__ = ["compile_to_il", "parse_c"]
