"""Lexer for the C subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CSyntaxError, SourceLocation

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "double",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)


class CTok(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    EOF = "eof"


#: Multi-character punctuators, longest first.
_PUNCTUATORS = [
    "<<=",
    ">>=",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    "?",
    ":",
]


@dataclass(frozen=True)
class CToken:
    kind: CTok
    value: object
    location: SourceLocation

    def __repr__(self) -> str:
        return f"CToken({self.kind.name}, {self.value!r})"


def tokenize_c(text: str, filename: str = "<c>") -> list[CToken]:
    tokens: list[CToken] = []
    pos = 0
    line = 1
    column = 1
    length = len(text)

    def location() -> SourceLocation:
        return SourceLocation(filename, line, column)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if text[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", pos):
            while pos < length and text[pos] != "\n":
                advance(1)
            continue
        if text.startswith("/*", pos):
            start = location()
            advance(2)
            while not text.startswith("*/", pos):
                if pos >= length:
                    raise CSyntaxError("unterminated comment", start)
                advance(1)
            advance(2)
            continue
        if ch.isalpha() or ch == "_":
            loc = location()
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                advance(1)
            word = text[start:pos]
            kind = CTok.KEYWORD if word in KEYWORDS else CTok.IDENT
            tokens.append(CToken(kind, word, loc))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length and text[pos + 1].isdigit()):
            tokens.append(_lex_number(text, pos, location(), advance))
            continue
        for punct in _PUNCTUATORS:
            if text.startswith(punct, pos):
                tokens.append(CToken(CTok.PUNCT, punct, location()))
                advance(len(punct))
                break
        else:
            raise CSyntaxError(f"unexpected character {ch!r}", location())
    tokens.append(CToken(CTok.EOF, None, location()))
    return tokens


def _lex_number(text: str, pos: int, loc: SourceLocation, advance) -> CToken:
    start = pos
    length = len(text)
    is_float = False
    if text.startswith("0x", pos) or text.startswith("0X", pos):
        advance(2)
        pos += 2
        digits = pos
        while pos < length and text[pos] in "0123456789abcdefABCDEF":
            advance(1)
            pos += 1
        if pos == digits:
            raise CSyntaxError("malformed hex literal", loc)
        return CToken(CTok.INT, int(text[start:pos], 16), loc)
    while pos < length and text[pos].isdigit():
        advance(1)
        pos += 1
    if pos < length and text[pos] == ".":
        is_float = True
        advance(1)
        pos += 1
        while pos < length and text[pos].isdigit():
            advance(1)
            pos += 1
    if pos < length and text[pos] in "eE":
        probe = pos + 1
        if probe < length and text[probe] in "+-":
            probe += 1
        if probe < length and text[probe].isdigit():
            is_float = True
            count = probe - pos
            advance(count)
            pos = probe
            while pos < length and text[pos].isdigit():
                advance(1)
                pos += 1
    literal = text[start:pos]
    if is_float:
        return CToken(CTok.FLOAT, float(literal), loc)
    return CToken(CTok.INT, int(literal), loc)
