"""Lower checked C ASTs to the IL of :mod:`repro.il`.

Following the paper (section 2.1): user scalars that may reside in
registers become *global pseudo-registers*; local common subexpressions are
detected by block-local value numbering, so repeated pure expressions share
one IL node (a node with more than one parent, which the selector forces
into a register); double/float literals go to a pooled data segment.
Short-circuit logic, loops and comparisons lower to explicit control flow;
calls are flattened into their own statements so argument registers cannot
be clobbered by nested calls.
"""

from __future__ import annotations

import itertools

from repro.errors import CSemanticError
from repro.frontend import cast as C
from repro.frontend.cparser import parse_c
from repro.frontend.csema import CheckedUnit, check_unit
from repro.il.block import BasicBlock
from repro.il.function import GlobalVar, ILFunction, ILProgram
from repro.il.node import FrameSlot, Node, PseudoReg
from repro.il.ops import ILOp

_SIZE = {"int": 4, "float": 4, "double": 8}

_BINARY_IL = {
    "+": ILOp.ADD,
    "-": ILOp.SUB,
    "*": ILOp.MUL,
    "/": ILOp.DIV,
    "%": ILOp.MOD,
    "&": ILOp.BAND,
    "|": ILOp.BOR,
    "^": ILOp.BXOR,
    "<<": ILOp.LSH,
    ">>": ILOp.RSH,
    "==": ILOp.EQ,
    "!=": ILOp.NE,
    "<": ILOp.LT,
    "<=": ILOp.LE,
    ">": ILOp.GT,
    ">=": ILOp.GE,
}

_NEGATED = {
    ILOp.EQ: ILOp.NE,
    ILOp.NE: ILOp.EQ,
    ILOp.LT: ILOp.GE,
    ILOp.LE: ILOp.GT,
    ILOp.GT: ILOp.LE,
    ILOp.GE: ILOp.LT,
}


def compile_to_il(source: str, filename: str = "<c>") -> ILProgram:
    """Parse, check and lower a C translation unit to an IL program."""
    unit = parse_c(source, filename)
    checked = check_unit(unit)
    return _Generator(checked).run()


class _Generator:
    def __init__(self, checked: CheckedUnit):
        self.checked = checked
        self.program = ILProgram()
        self.label_counter = itertools.count(1)
        self.float_pool: dict[tuple[str, float], str] = {}

    def run(self) -> ILProgram:
        for decl in self.checked.unit.globals:
            initial = list(decl.init) if decl.init is not None else None
            count = 1
            for dim in decl.type.dims:
                count *= dim
            if initial is not None:
                if len(initial) > count:
                    raise CSemanticError(
                        f"too many initializers for {decl.name}", decl.location
                    )
                caster = float if decl.type.base != "int" else int
                initial = [caster(v) for v in initial]
            self.program.globals[decl.name] = GlobalVar(
                name=decl.name, type=decl.type.base, count=count, initial=initial
            )
        for fn in self.checked.unit.functions:
            self.program.functions.append(self._lower_function(fn))
        return self.program

    # -- function state -----------------------------------------------------------

    def _lower_function(self, fn: C.FunctionDef) -> ILFunction:
        return_type = None if fn.return_type.base == "void" else fn.return_type.base
        self.fn = ILFunction(fn.name, return_type)
        self.vars: dict[str, PseudoReg] = {}
        self.slots: dict[str, FrameSlot] = {}
        self.block: BasicBlock | None = None
        self.loop_depth = 0
        self.break_targets: list[BasicBlock] = []
        self.continue_targets: list[BasicBlock] = []
        self._value_table: dict = {}
        self._reg_version: dict[int, int] = {}
        self._memory_epoch = 0

        scope = self.checked.locals[fn.name]
        for param in fn.params:
            pseudo = self.fn.new_pseudo(
                param.type.base, name=param.name, is_global=True
            )
            self.vars[param.name] = pseudo
            self.fn.params.append(pseudo)
        for name, symbol in scope.items():
            if symbol.kind == "param":
                continue
            if symbol.type.is_array:
                size = _SIZE[symbol.type.base]
                count = 1
                for dim in symbol.type.dims:
                    count *= dim
                self.slots[name] = self.fn.new_slot(
                    size * count, align=_SIZE[symbol.type.base], name=name
                )
            else:
                self.vars[name] = self.fn.new_pseudo(
                    symbol.type.base, name=name, is_global=True
                )

        entry = self._new_block(fn.name)
        self._set_block(entry)
        self._lower_block(fn.body)
        self._ensure_terminated(return_type)
        self._prune_unreachable()
        return self.fn

    def _new_block(self, label: str | None = None) -> BasicBlock:
        if label is None:
            label = f"{self.fn.name}.L{next(self.label_counter)}"
        block = BasicBlock(label, loop_depth=self.loop_depth)
        self.fn.blocks.append(block)
        return block

    def _set_block(self, block: BasicBlock | None) -> None:
        self.block = block
        # value numbering is block-local
        self._value_table = {}
        self._reg_version = {}
        self._memory_epoch = 0

    def _emit(self, stmt: Node) -> None:
        if self.block is not None:
            self.block.append(stmt)

    def _ensure_terminated(self, return_type: str | None) -> None:
        if self.block is None:
            return
        if self.block.terminator is None:
            if return_type is None:
                self._emit(Node(ILOp.RET, None, ()))
            else:
                zero = Node(ILOp.CNST, "int", (), 0)
                value = (
                    zero
                    if return_type == "int"
                    else Node(ILOp.CVT, return_type, (zero,))
                )
                self._emit(Node(ILOp.RET, None, (value,)))

    def _prune_unreachable(self) -> None:
        reachable = set()
        stack = [self.fn.entry]
        while stack:
            block = stack.pop()
            if block.label in reachable:
                continue
            reachable.add(block.label)
            stack.extend(block.successors)
        self.fn.blocks = [b for b in self.fn.blocks if b.label in reachable]
        for block in self.fn.blocks:
            block.predecessors = [
                p for p in block.predecessors if p.label in reachable
            ]

    # -- value numbering ------------------------------------------------------------

    def _number(self, op: ILOp, type_: str | None, kids: tuple, value) -> Node:
        """Build (or reuse) a pure node via block-local value numbering."""
        if op is ILOp.REG:
            key = (op, value.id, self._reg_version.get(value.id, 0))
        elif op is ILOp.CNST:
            key = (op, type_, value)
        elif op is ILOp.ADDRG:
            key = (op, value)
        elif op is ILOp.ADDRL:
            key = (op, value.id)
        elif op is ILOp.INDIR:
            key = (op, type_, tuple(id(k) for k in kids), self._memory_epoch)
        else:
            key = (op, type_, tuple(id(k) for k in kids), value)
        node = self._value_table.get(key)
        if node is None:
            node = Node(op, type_, kids, value)
            self._value_table[key] = node
        return node

    def _invalidate_memory(self) -> None:
        self._memory_epoch += 1

    def _invalidate_reg(self, pseudo: PseudoReg) -> None:
        self._reg_version[pseudo.id] = self._reg_version.get(pseudo.id, 0) + 1

    # -- statements -----------------------------------------------------------------

    def _lower_block(self, block: C.Block) -> None:
        for statement in block.statements:
            self._lower_statement(statement)

    def _lower_statement(self, statement: C.CStmt) -> None:
        if self.block is None and not isinstance(statement, C.Block):
            return  # unreachable code after return/break
        if isinstance(statement, C.Block):
            self._lower_block(statement)
        elif isinstance(statement, C.DeclStmt):
            if statement.init is not None:
                pseudo = self.vars[statement.name]
                self._assign_pseudo(pseudo, self._lower_expr(statement.init))
        elif isinstance(statement, C.ExprStmt):
            self._lower_expr_for_effect(statement.expr)
        elif isinstance(statement, C.IfStmt):
            self._lower_if(statement)
        elif isinstance(statement, C.WhileStmt):
            self._lower_while(statement)
        elif isinstance(statement, C.ForStmt):
            self._lower_for(statement)
        elif isinstance(statement, C.ReturnStmt):
            if statement.value is None:
                self._emit(Node(ILOp.RET, None, ()))
            else:
                value = self._lower_expr(statement.value)
                self._emit(Node(ILOp.RET, None, (value,)))
            self._set_block(None)
        elif isinstance(statement, C.BreakStmt):
            self._jump_to(self.break_targets[-1])
            self._set_block(None)
        elif isinstance(statement, C.ContinueStmt):
            self._jump_to(self.continue_targets[-1])
            self._set_block(None)
        else:
            raise CSemanticError(f"cannot lower statement {statement!r}")

    def _jump_to(self, target: BasicBlock) -> None:
        if self.block is None:
            return
        self._emit(Node(ILOp.JUMP, None, (), target.label))
        self.block.link_to(target)

    def _lower_if(self, statement: C.IfStmt) -> None:
        then_block = self._new_block()
        else_block = self._new_block() if statement.else_body else None
        join = self._new_block()
        self._lower_condition(
            statement.condition, then_block, else_block or join
        )
        self._set_block(then_block)
        self._lower_block(statement.then_body)
        self._jump_to(join)
        if else_block is not None:
            self._set_block(else_block)
            self._lower_block(statement.else_body)
            self._jump_to(join)
        self._set_block(join)
        if not join.predecessors:
            self.fn.blocks.remove(join)
            self._set_block(None)

    def _lower_while(self, statement: C.WhileStmt) -> None:
        head = self._new_block()
        self._jump_to(head)
        self.loop_depth += 1
        body = self._new_block()
        self.loop_depth -= 1
        exit_block = self._new_block()
        self._set_block(head)
        self.block.loop_depth = self.loop_depth + 1
        self._lower_condition(statement.condition, body, exit_block)
        self.loop_depth += 1
        self._set_block(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(head)
        self._lower_block(statement.body)
        self._jump_to(head)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.loop_depth -= 1
        self._set_block(exit_block)

    def _lower_for(self, statement: C.ForStmt) -> None:
        if statement.init is not None:
            self._lower_statement(statement.init)
        head = self._new_block()
        self._jump_to(head)
        self.loop_depth += 1
        body = self._new_block()
        step_block = self._new_block()
        self.loop_depth -= 1
        exit_block = self._new_block()
        self._set_block(head)
        self.block.loop_depth = self.loop_depth + 1
        if statement.condition is not None:
            self._lower_condition(statement.condition, body, exit_block)
        else:
            self._jump_to(body)
        self.loop_depth += 1
        self._set_block(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        self._lower_block(statement.body)
        self._jump_to(step_block)
        self._set_block(step_block)
        if statement.step is not None:
            self._lower_expr_for_effect(statement.step)
        self._jump_to(head)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.loop_depth -= 1
        self._set_block(exit_block)

    # -- conditions (short-circuit lowering) ----------------------------------------

    def _lower_condition(
        self, condition: C.CExpr, if_true: BasicBlock, if_false: BasicBlock
    ) -> None:
        if self.block is None:
            return
        if isinstance(condition, C.Logical):
            middle = self._new_block()
            if condition.op == "&&":
                self._lower_condition(condition.left, middle, if_false)
            else:
                self._lower_condition(condition.left, if_true, middle)
            self._set_block(middle)
            self._lower_condition(condition.right, if_true, if_false)
            return
        if isinstance(condition, C.Unary) and condition.op == "!":
            self._lower_condition(condition.operand, if_false, if_true)
            return
        node = self._condition_node(condition)
        # branch on the *negated* condition to if_false, so the hot/lexically
        # next block (then-body, loop body) is reached by the unconditional
        # jump that the layout pass removes when it targets the next block
        negated = Node(_NEGATED[node.op], "int", node.kids)
        self._emit(Node(ILOp.CJUMP, None, (negated,), if_false.label))
        self.block.link_to(if_false)
        self.block.link_to(if_true)
        self._emit(Node(ILOp.JUMP, None, (), if_true.label))
        self._set_block(None)

    def _condition_node(self, condition: C.CExpr) -> Node:
        if isinstance(condition, C.Binary) and condition.op in (
            "==",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            left = self._lower_expr(condition.left)
            right = self._lower_expr(condition.right)
            return Node(
                _BINARY_IL[condition.op], "int", (left, right)
            )
        value = self._lower_expr(condition)
        zero_type = value.type or "int"
        zero = (
            Node(ILOp.CNST, "int", (), 0)
            if zero_type == "int"
            else Node(ILOp.CVT, zero_type, (Node(ILOp.CNST, "int", (), 0),))
        )
        return Node(ILOp.NE, "int", (value, zero))

    # -- expressions ------------------------------------------------------------------

    def _lower_expr_for_effect(self, expr: C.CExpr) -> None:
        if isinstance(expr, C.Assign):
            self._lower_assign(expr)
        elif isinstance(expr, C.IncDec):
            one = C.IntLit(1, location=expr.location)
            one.ctype = "int"
            assign = C.Assign(
                target=expr.target,
                value=one,
                op="+=" if expr.op == "++" else "-=",
                location=expr.location,
            )
            assign.ctype = expr.target.ctype
            self._lower_assign(assign)
        elif isinstance(expr, C.Call):
            self._lower_call(expr, want_value=False)
        else:
            self._lower_expr(expr)  # value discarded; pure, so emit nothing

    def _lower_expr(self, expr: C.CExpr) -> Node:
        if isinstance(expr, C.IntLit):
            return self._number(ILOp.CNST, "int", (), expr.value)
        if isinstance(expr, C.FloatLit):
            return self._float_constant(expr.value, expr.ctype)
        if isinstance(expr, C.VarRef):
            pseudo = self.vars.get(expr.name)
            if pseudo is not None:
                return self._number(ILOp.REG, pseudo.type, (), pseudo)
            # global scalar: a memory load through its symbol
            address = self._number(ILOp.ADDRG, "int", (), expr.name)
            return self._number(ILOp.INDIR, expr.ctype, (address,), None)
        if isinstance(expr, C.Index):
            address = self._index_address(expr)
            return self._number(ILOp.INDIR, expr.ctype, (address,), None)
        if isinstance(expr, C.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, C.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, C.Logical):
            return self._materialize_bool(expr)
        if isinstance(expr, C.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, C.Call):
            return self._lower_call(expr, want_value=True)
        if isinstance(expr, C.IncDec):
            raise CSemanticError(
                "++/-- may only be used where the value is discarded "
                "(statement or for-step)",
                expr.location,
            )
        if isinstance(expr, C.Cast):
            operand = self._lower_expr(expr.operand)
            if operand.type == expr.to:
                return operand
            return self._number(ILOp.CVT, expr.to, (operand,), None)
        raise CSemanticError(f"cannot lower expression {expr!r}")

    def _float_constant(self, value: float, ctype: str) -> Node:
        key = (ctype, value)
        name = self.float_pool.get(key)
        if name is None:
            name = f".fp{len(self.float_pool)}"
            self.float_pool[key] = name
            self.program.globals[name] = GlobalVar(
                name=name, type=ctype, count=1, initial=[value]
            )
        address = self._number(ILOp.ADDRG, "int", (), name)
        return self._number(ILOp.INDIR, ctype, (address,), None)

    def _index_address(self, expr: C.Index) -> Node:
        symbol_type = None
        name = expr.base.name
        if name in self.slots:
            base = self._number(ILOp.ADDRL, "int", (), self.slots[name])
            dims = self._local_dims(name)
        else:
            base = self._number(ILOp.ADDRG, "int", (), name)
            dims = self._global_dims(name)
        element_size = _SIZE[expr.ctype]
        # row-major linearisation
        linear: Node | None = None
        for position, index in enumerate(expr.indices):
            index_node = self._lower_expr(index)
            stride = element_size
            for dim in dims[position + 1 :]:
                stride *= dim
            scaled = (
                index_node
                if stride == 1
                else self._number(
                    ILOp.MUL,
                    "int",
                    (index_node, self._number(ILOp.CNST, "int", (), stride)),
                    None,
                )
            )
            linear = (
                scaled
                if linear is None
                else self._number(ILOp.ADD, "int", (linear, scaled), None)
            )
        return self._number(ILOp.ADD, "int", (base, linear), None)

    def _local_dims(self, name: str) -> tuple[int, ...]:
        for fn_locals in self.checked.locals.values():
            if name in fn_locals:
                return fn_locals[name].type.dims
        raise CSemanticError(f"unknown local array {name!r}")

    def _global_dims(self, name: str) -> tuple[int, ...]:
        symbol = self.checked.globals.get(name)
        if symbol is None:
            raise CSemanticError(f"unknown global {name!r}")
        return symbol.type.dims

    def _lower_unary(self, expr: C.Unary) -> Node:
        if expr.op == "!":
            return self._materialize_bool(expr)
        operand = self._lower_expr(expr.operand)
        op = ILOp.NEG if expr.op == "-" else ILOp.BNOT
        return self._number(op, expr.ctype, (operand,), None)

    def _lower_binary(self, expr: C.Binary) -> Node:
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            # value-producing comparison: materialize 0/1 via control flow
            # (RISC targets may have no set-on-condition instruction)
            return self._materialize_bool(expr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        return self._number(_BINARY_IL[expr.op], expr.ctype, (left, right), None)

    def _materialize_bool(self, expr: C.CExpr) -> Node:
        result = self.fn.new_pseudo("int", is_global=True)
        true_block = self._new_block()
        false_block = self._new_block()
        join = self._new_block()
        join.loop_depth = self.block.loop_depth
        true_block.loop_depth = self.block.loop_depth
        false_block.loop_depth = self.block.loop_depth
        self._lower_condition(expr, true_block, false_block)
        self._set_block(true_block)
        self._emit(
            Node(ILOp.SETREG, None, (Node(ILOp.CNST, "int", (), 1),), result)
        )
        self._jump_to(join)
        self._set_block(false_block)
        self._emit(
            Node(ILOp.SETREG, None, (Node(ILOp.CNST, "int", (), 0),), result)
        )
        self._jump_to(join)
        self._set_block(join)
        return self._number(ILOp.REG, "int", (), result)

    def _assign_pseudo(self, pseudo: PseudoReg, value: Node) -> None:
        self._emit(Node(ILOp.SETREG, None, (value,), pseudo))
        self._invalidate_reg(pseudo)

    def _lower_assign(self, expr: C.Assign) -> Node:
        target = expr.target
        if expr.op != "=":
            base_op = expr.op[:-1]
            read = C.Binary(op=base_op, left=target, right=expr.value)
            read.ctype = expr.ctype
            # re-wrap as a plain assignment with the combined value; types
            # were already checked, and `target OP= v` has the target's type
            value_node = self._combined_value(target, base_op, expr.value, expr.ctype)
        else:
            value_node = self._lower_expr(expr.value)
        if isinstance(target, C.VarRef):
            pseudo = self.vars.get(target.name)
            if pseudo is not None:
                self._assign_pseudo(pseudo, value_node)
                return self._number(ILOp.REG, pseudo.type, (), pseudo)
            address = self._number(ILOp.ADDRG, "int", (), target.name)
            self._emit(Node(ILOp.ASGN, None, (address, value_node)))
            self._invalidate_memory()
            return value_node
        assert isinstance(target, C.Index)
        address = self._index_address(target)
        self._emit(Node(ILOp.ASGN, None, (address, value_node)))
        self._invalidate_memory()
        return value_node

    def _combined_value(
        self, target: C.CExpr, op: str, value: C.CExpr, ctype: str
    ) -> Node:
        current = self._lower_expr(target)
        operand = self._lower_expr(value)
        if operand.type != ctype and op not in ("<<", ">>"):
            operand = self._number(ILOp.CVT, ctype, (operand,), None)
        return self._number(_BINARY_IL[op], ctype, (current, operand), None)

    def _lower_call(self, expr: C.Call, want_value: bool) -> Node | None:
        args = tuple(self._lower_expr(arg) for arg in expr.args)
        call = Node(ILOp.CALL, expr.ctype, args, expr.name)
        self._invalidate_memory()
        if expr.ctype is None or not want_value:
            self._emit(call)
            return None
        temp = self.fn.new_pseudo(expr.ctype, is_global=True)
        self._emit(Node(ILOp.SETREG, None, (call,), temp))
        self._invalidate_reg(temp)
        return self._number(ILOp.REG, expr.ctype, (), temp)

