"""Recursive-descent parser for the C subset."""

from __future__ import annotations

from repro.errors import CSyntaxError
from repro.frontend import cast
from repro.frontend.clexer import CTok, CToken, tokenize_c


def parse_c(text: str, filename: str = "<c>") -> cast.TranslationUnit:
    return _Parser(tokenize_c(text, filename)).parse_unit()


_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=")

#: binary operator precedence levels, loosest first (logical ops handled
#: separately for short-circuit)
_BINARY_LEVELS = [
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: list[CToken]):
        self.tokens = tokens
        self.pos = 0

    # -- plumbing --------------------------------------------------------------

    def peek(self, offset: int = 0) -> CToken:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> CToken:
        token = self.tokens[self.pos]
        if token.kind is not CTok.EOF:
            self.pos += 1
        return token

    def check(self, kind: CTok, value=None) -> bool:
        token = self.peek()
        return token.kind is kind and (value is None or token.value == value)

    def check_punct(self, value: str) -> bool:
        return self.check(CTok.PUNCT, value)

    def accept_punct(self, value: str) -> bool:
        if self.check_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> CToken:
        if not self.check_punct(value):
            token = self.peek()
            raise CSyntaxError(
                f"expected {value!r}, found {token.value!r}", token.location
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind is not CTok.IDENT:
            raise CSyntaxError(
                f"expected identifier, found {token.value!r}", token.location
            )
        return self.advance().value

    # -- top level -------------------------------------------------------------

    def parse_unit(self) -> cast.TranslationUnit:
        unit = cast.TranslationUnit()
        while not self.check(CTok.EOF):
            base = self._parse_base_type()
            name = self.expect_ident()
            if self.check_punct("("):
                unit.functions.append(self._parse_function(base, name))
            else:
                unit.globals.extend(self._parse_globals(base, name))
        return unit

    def _parse_base_type(self) -> str:
        token = self.peek()
        if token.kind is CTok.KEYWORD and token.value in (
            "int",
            "float",
            "double",
            "void",
        ):
            return self.advance().value
        raise CSyntaxError(f"expected a type, found {token.value!r}", token.location)

    def _parse_dims(self) -> tuple[int, ...]:
        dims = []
        while self.accept_punct("["):
            token = self.peek()
            if token.kind is not CTok.INT:
                raise CSyntaxError(
                    "array dimensions must be integer literals", token.location
                )
            dims.append(self.advance().value)
            self.expect_punct("]")
        return tuple(dims)

    def _parse_globals(self, base: str, first_name: str) -> list[cast.GlobalDecl]:
        decls = []
        name = first_name
        while True:
            dims = self._parse_dims()
            init = None
            if self.accept_punct("="):
                init = self._parse_initializer()
            decls.append(
                cast.GlobalDecl(type=cast.CType(base, dims), name=name, init=init)
            )
            if self.accept_punct(","):
                name = self.expect_ident()
                continue
            self.expect_punct(";")
            return decls

    def _parse_initializer(self) -> list:
        if self.accept_punct("{"):
            values = []
            if not self.check_punct("}"):
                values.append(self._parse_const_value())
                while self.accept_punct(","):
                    if self.check_punct("}"):
                        break
                    values.append(self._parse_const_value())
            self.expect_punct("}")
            return values
        return [self._parse_const_value()]

    def _parse_const_value(self):
        negative = self.accept_punct("-")
        token = self.peek()
        if token.kind in (CTok.INT, CTok.FLOAT):
            value = self.advance().value
            return -value if negative else value
        raise CSyntaxError(
            "initializers must be numeric literals", token.location
        )

    def _parse_function(self, base: str, name: str) -> cast.FunctionDef:
        self.expect_punct("(")
        params: list[cast.Param] = []
        if not self.check_punct(")"):
            if self.check(CTok.KEYWORD, "void") and self.peek(1).value == ")":
                self.advance()
            else:
                params.append(self._parse_param())
                while self.accept_punct(","):
                    params.append(self._parse_param())
        self.expect_punct(")")
        body = self._parse_block()
        return cast.FunctionDef(
            return_type=cast.CType(base), name=name, params=params, body=body
        )

    def _parse_param(self) -> cast.Param:
        base = self._parse_base_type()
        name = self.expect_ident()
        dims = self._parse_dims()
        return cast.Param(type=cast.CType(base, dims), name=name)

    # -- statements -------------------------------------------------------------

    def _parse_block(self) -> cast.Block:
        start = self.expect_punct("{")
        block = cast.Block(location=start.location)
        while not self.accept_punct("}"):
            block.statements.append(self._parse_statement())
        return block

    def _parse_statement(self) -> cast.CStmt:
        token = self.peek()
        if token.kind is CTok.KEYWORD:
            keyword = token.value
            if keyword in ("int", "float", "double"):
                return self._parse_decl()
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                self.advance()
                value = None
                if not self.check_punct(";"):
                    value = self._parse_expr()
                self.expect_punct(";")
                return cast.ReturnStmt(value=value, location=token.location)
            if keyword == "break":
                self.advance()
                self.expect_punct(";")
                return cast.BreakStmt(location=token.location)
            if keyword == "continue":
                self.advance()
                self.expect_punct(";")
                return cast.ContinueStmt(location=token.location)
        if self.check_punct("{"):
            return self._parse_block()
        if self.accept_punct(";"):
            return cast.Block(location=token.location)  # empty statement
        expr = self._parse_expr()
        self.expect_punct(";")
        return cast.ExprStmt(expr=expr, location=token.location)

    def _parse_decl(self) -> cast.DeclStmt:
        token = self.peek()
        base = self._parse_base_type()
        name = self.expect_ident()
        dims = self._parse_dims()
        init = None
        if self.accept_punct("="):
            init = self._parse_expr()
        decl = cast.DeclStmt(
            type=cast.CType(base, dims), name=name, init=init, location=token.location
        )
        if self.accept_punct(","):
            # split `int a = 1, b = 2;` into a synthetic unscoped group
            block = cast.Block(location=token.location, scoped=False)
            block.statements.append(decl)
            while True:
                name = self.expect_ident()
                dims = self._parse_dims()
                init = None
                if self.accept_punct("="):
                    init = self._parse_expr()
                block.statements.append(
                    cast.DeclStmt(
                        type=cast.CType(base, dims),
                        name=name,
                        init=init,
                        location=token.location,
                    )
                )
                if not self.accept_punct(","):
                    break
            self.expect_punct(";")
            return block
        self.expect_punct(";")
        return decl

    def _parse_if(self) -> cast.IfStmt:
        token = self.advance()
        self.expect_punct("(")
        condition = self._parse_expr()
        self.expect_punct(")")
        then_body = self._statement_as_block()
        else_body = None
        if self.check(CTok.KEYWORD, "else"):
            self.advance()
            else_body = self._statement_as_block()
        return cast.IfStmt(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            location=token.location,
        )

    def _parse_while(self) -> cast.WhileStmt:
        token = self.advance()
        self.expect_punct("(")
        condition = self._parse_expr()
        self.expect_punct(")")
        body = self._statement_as_block()
        return cast.WhileStmt(condition=condition, body=body, location=token.location)

    def _parse_for(self) -> cast.ForStmt:
        token = self.advance()
        self.expect_punct("(")
        init = None
        if not self.check_punct(";"):
            if self.peek().kind is CTok.KEYWORD and self.peek().value in (
                "int",
                "float",
                "double",
            ):
                init = self._parse_decl()
                # _parse_decl consumed the ';'
            else:
                init = cast.ExprStmt(expr=self._parse_expr(), location=token.location)
                self.expect_punct(";")
        else:
            self.advance()
        condition = None
        if not self.check_punct(";"):
            condition = self._parse_expr()
        self.expect_punct(";")
        step = None
        if not self.check_punct(")"):
            step = self._parse_expr()
        self.expect_punct(")")
        body = self._statement_as_block()
        return cast.ForStmt(
            init=init, condition=condition, step=step, body=body, location=token.location
        )

    def _statement_as_block(self) -> cast.Block:
        statement = self._parse_statement()
        if isinstance(statement, cast.Block):
            return statement
        block = cast.Block(location=statement.location)
        block.statements.append(statement)
        return block

    # -- expressions -------------------------------------------------------------

    def _parse_expr(self) -> cast.CExpr:
        return self._parse_assignment()

    def _parse_assignment(self) -> cast.CExpr:
        left = self._parse_logical_or()
        token = self.peek()
        if token.kind is CTok.PUNCT and token.value in _ASSIGN_OPS:
            op = self.advance().value
            value = self._parse_assignment()
            if not isinstance(left, (cast.VarRef, cast.Index)):
                raise CSyntaxError("invalid assignment target", token.location)
            return cast.Assign(target=left, value=value, op=op, location=token.location)
        return left

    def _parse_logical_or(self) -> cast.CExpr:
        left = self._parse_logical_and()
        while self.check_punct("||"):
            token = self.advance()
            right = self._parse_logical_and()
            left = cast.Logical(op="||", left=left, right=right, location=token.location)
        return left

    def _parse_logical_and(self) -> cast.CExpr:
        left = self._parse_binary(0)
        while self.check_punct("&&"):
            token = self.advance()
            right = self._parse_binary(0)
            left = cast.Logical(op="&&", left=left, right=right, location=token.location)
        return left

    def _parse_binary(self, level: int) -> cast.CExpr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.kind is CTok.PUNCT and token.value in _BINARY_LEVELS[level]:
                op = self.advance().value
                right = self._parse_binary(level + 1)
                left = cast.Binary(op=op, left=left, right=right, location=token.location)
            else:
                return left

    def _parse_unary(self) -> cast.CExpr:
        token = self.peek()
        if token.kind is CTok.PUNCT and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            if not isinstance(target, (cast.VarRef, cast.Index)):
                raise CSyntaxError("invalid ++/-- target", token.location)
            return cast.IncDec(
                target=target, op=token.value, prefix=True, location=token.location
            )
        if token.kind is CTok.PUNCT and token.value in ("-", "~", "!"):
            self.advance()
            operand = self._parse_unary()
            return cast.Unary(op=token.value, operand=operand, location=token.location)
        if token.kind is CTok.PUNCT and token.value == "+":
            self.advance()
            return self._parse_unary()
        if self.check_punct("(") and self.peek(1).kind is CTok.KEYWORD and self.peek(
            1
        ).value in ("int", "float", "double"):
            self.advance()
            to = self.advance().value
            self.expect_punct(")")
            operand = self._parse_unary()
            return cast.Cast(to=to, operand=operand, location=token.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> cast.CExpr:
        token = self.peek()
        if token.kind is CTok.INT:
            self.advance()
            return cast.IntLit(token.value, location=token.location)
        if token.kind is CTok.FLOAT:
            self.advance()
            return cast.FloatLit(token.value, location=token.location)
        if self.accept_punct("("):
            expr = self._parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind is CTok.IDENT:
            name = self.advance().value
            if self.accept_punct("("):
                args = []
                if not self.check_punct(")"):
                    args.append(self._parse_expr())
                    while self.accept_punct(","):
                        args.append(self._parse_expr())
                self.expect_punct(")")
                return cast.Call(name=name, args=args, location=token.location)
            ref = cast.VarRef(name, location=token.location)
            result: cast.CExpr = ref
            if self.check_punct("["):
                indices = []
                while self.accept_punct("["):
                    indices.append(self._parse_expr())
                    self.expect_punct("]")
                result = cast.Index(
                    base=ref, indices=indices, location=token.location
                )
            if self.check_punct("++") or self.check_punct("--"):
                op = self.advance().value
                return cast.IncDec(
                    target=result, op=op, prefix=False, location=token.location
                )
            return result
        raise CSyntaxError(
            f"expected an expression, found {token.value!r}", token.location
        )
