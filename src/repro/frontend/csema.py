"""Type checking for the C subset.

Annotates every expression with its scalar type, inserts explicit
:class:`~repro.frontend.cast.Cast` nodes for the usual arithmetic
conversions, and validates scopes, arity and l-values.  The IL generator
can then lower without re-deriving types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CSemanticError
from repro.frontend import cast as C

_INT_ONLY_OPS = frozenset({"%", "<<", ">>", "&", "|", "^"})
_RELATIONAL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})


@dataclass
class Symbol:
    kind: str  # 'global' | 'local' | 'param'
    type: C.CType
    name: str


@dataclass
class FunctionSig:
    name: str
    return_type: str  # scalar type name or 'void'
    param_types: list[str]


class CheckedUnit:
    """The annotated translation unit plus its symbol information."""

    def __init__(self, unit: C.TranslationUnit):
        self.unit = unit
        self.globals: dict[str, Symbol] = {}
        self.functions: dict[str, FunctionSig] = {}
        self.locals: dict[str, dict[str, Symbol]] = {}  # fn name -> scope


def check_unit(unit: C.TranslationUnit) -> CheckedUnit:
    return _Checker(unit).run()


class _Checker:
    def __init__(self, unit: C.TranslationUnit):
        self.checked = CheckedUnit(unit)
        self.scopes: list[dict[str, Symbol]] = []
        self.current_fn: C.FunctionDef | None = None
        self.loop_depth = 0

    def fail(self, message: str, node=None):
        raise CSemanticError(message, getattr(node, "location", None))

    def run(self) -> CheckedUnit:
        unit = self.checked.unit
        for decl in unit.globals:
            if decl.name in self.checked.globals:
                self.fail(f"duplicate global {decl.name!r}", decl)
            if decl.type.base == "void":
                self.fail(f"global {decl.name!r} cannot be void", decl)
            self.checked.globals[decl.name] = Symbol("global", decl.type, decl.name)
        for fn in unit.functions:
            if fn.name in self.checked.functions:
                self.fail(f"duplicate function {fn.name!r}", fn)
            for param in fn.params:
                if param.type.is_array:
                    self.fail(
                        f"{fn.name}: array parameters are not supported "
                        "(use globals)",
                        fn,
                    )
                if param.type.base == "void":
                    self.fail(f"{fn.name}: void parameter", fn)
            self.checked.functions[fn.name] = FunctionSig(
                fn.name,
                fn.return_type.base,
                [p.type.base for p in fn.params],
            )
        for fn in unit.functions:
            self._check_function(fn)
        return self.checked

    # -- functions ---------------------------------------------------------------

    def _check_function(self, fn: C.FunctionDef) -> None:
        self.current_fn = fn
        scope: dict[str, Symbol] = {}
        for param in fn.params:
            if param.name in scope:
                self.fail(f"duplicate parameter {param.name!r}", fn)
            scope[param.name] = Symbol("param", param.type, param.name)
        self.scopes = [scope]
        self.flat_locals: dict[str, Symbol] = dict(scope)
        self._check_block(fn.body)
        self.checked.locals[fn.name] = self.flat_locals
        self.scopes = []
        self.current_fn = None

    def _lookup(self, name: str, node) -> Symbol:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        symbol = self.checked.globals.get(name)
        if symbol is None:
            self.fail(f"undeclared identifier {name!r}", node)
        return symbol

    # -- statements ---------------------------------------------------------------

    def _check_block(self, block: C.Block) -> None:
        if block.scoped:
            self.scopes.append({})
        for statement in block.statements:
            self._check_statement(statement)
        if block.scoped:
            self.scopes.pop()

    def _check_statement(self, statement: C.CStmt) -> None:
        if isinstance(statement, C.Block):
            self._check_block(statement)
        elif isinstance(statement, C.DeclStmt):
            self._check_decl(statement)
        elif isinstance(statement, C.ExprStmt):
            self._check_expr(statement.expr)
        elif isinstance(statement, C.IfStmt):
            self._check_condition(statement.condition)
            self._check_block(statement.then_body)
            if statement.else_body is not None:
                self._check_block(statement.else_body)
        elif isinstance(statement, C.WhileStmt):
            self._check_condition(statement.condition)
            self.loop_depth += 1
            self._check_block(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, C.ForStmt):
            self.scopes.append({})
            if statement.init is not None:
                self._check_statement(statement.init)
            if statement.condition is not None:
                self._check_condition(statement.condition)
            if statement.step is not None:
                self._check_expr(statement.step)
            self.loop_depth += 1
            self._check_block(statement.body)
            self.loop_depth -= 1
            self.scopes.pop()
        elif isinstance(statement, C.ReturnStmt):
            self._check_return(statement)
        elif isinstance(statement, (C.BreakStmt, C.ContinueStmt)):
            if self.loop_depth == 0:
                which = "break" if isinstance(statement, C.BreakStmt) else "continue"
                self.fail(f"{which} outside of a loop", statement)
        else:
            self.fail(f"unknown statement {statement!r}", statement)

    def _check_decl(self, decl: C.DeclStmt) -> None:
        scope = self.scopes[-1]
        if decl.name in scope:
            self.fail(f"duplicate declaration of {decl.name!r}", decl)
        if decl.type.base == "void":
            self.fail(f"variable {decl.name!r} cannot be void", decl)
        symbol = Symbol("local", decl.type, self._unique_local_name(decl))
        scope[decl.name] = symbol
        self.flat_locals[symbol.name] = symbol
        if decl.init is not None:
            if decl.type.is_array:
                self.fail("array locals cannot have initializers", decl)
            self._check_expr(decl.init)
            decl.init = self._convert(decl.init, decl.type.base)
        decl.name = symbol.name  # rename to the unique flat name

    def _unique_local_name(self, decl: C.DeclStmt) -> str:
        name = decl.name
        if name not in self.flat_locals:
            return name
        suffix = 2
        while f"{name}.{suffix}" in self.flat_locals:
            suffix += 1
        return f"{name}.{suffix}"

    def _check_return(self, statement: C.ReturnStmt) -> None:
        expected = self.current_fn.return_type.base
        if statement.value is None:
            if expected != "void":
                self.fail(
                    f"{self.current_fn.name}: return without a value", statement
                )
            return
        if expected == "void":
            self.fail(
                f"{self.current_fn.name}: void function returns a value", statement
            )
        self._check_expr(statement.value)
        statement.value = self._convert(statement.value, expected)

    def _check_condition(self, condition: C.CExpr) -> None:
        self._check_expr(condition)

    # -- expressions -------------------------------------------------------------

    def _check_expr(self, expr: C.CExpr) -> None:
        if isinstance(expr, C.IntLit):
            expr.ctype = "int"
        elif isinstance(expr, C.FloatLit):
            expr.ctype = "double"
        elif isinstance(expr, C.VarRef):
            symbol = self._lookup(expr.name, expr)
            if symbol.type.is_array:
                self.fail(
                    f"array {expr.name!r} used without an index", expr
                )
            expr.name = symbol.name
            expr.ctype = symbol.type.base
        elif isinstance(expr, C.Index):
            self._check_index(expr)
        elif isinstance(expr, C.Unary):
            self._check_unary(expr)
        elif isinstance(expr, C.Binary):
            self._check_binary(expr)
        elif isinstance(expr, C.Logical):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            expr.ctype = "int"
        elif isinstance(expr, C.Assign):
            self._check_assign(expr)
        elif isinstance(expr, C.IncDec):
            self._check_expr(expr.target)
            expr.ctype = expr.target.ctype
        elif isinstance(expr, C.Call):
            self._check_call(expr)
        elif isinstance(expr, C.Cast):
            self._check_expr(expr.operand)
            expr.ctype = expr.to
        else:
            self.fail(f"unknown expression {expr!r}", expr)

    def _check_index(self, expr: C.Index) -> None:
        symbol = self._lookup(expr.base.name, expr)
        if not symbol.type.is_array:
            self.fail(f"{expr.base.name!r} is not an array", expr)
        if len(expr.indices) != len(symbol.type.dims):
            self.fail(
                f"{expr.base.name!r} needs {len(symbol.type.dims)} indices, "
                f"got {len(expr.indices)}",
                expr,
            )
        expr.base.name = symbol.name
        for position, index in enumerate(expr.indices):
            self._check_expr(index)
            if index.ctype != "int":
                self.fail("array indices must be int", expr)
        expr.ctype = symbol.type.base

    def _check_unary(self, expr: C.Unary) -> None:
        self._check_expr(expr.operand)
        if expr.op in ("~", "!"):
            if expr.op == "~" and expr.operand.ctype != "int":
                self.fail("~ requires an int operand", expr)
            expr.ctype = "int"
        else:  # '-'
            expr.ctype = expr.operand.ctype

    def _check_binary(self, expr: C.Binary) -> None:
        self._check_expr(expr.left)
        self._check_expr(expr.right)
        if expr.op in _INT_ONLY_OPS:
            if expr.left.ctype != "int" or expr.right.ctype != "int":
                self.fail(f"operator {expr.op} requires int operands", expr)
            expr.ctype = "int"
            return
        common = C.usual_conversion(expr.left.ctype, expr.right.ctype)
        expr.left = self._convert(expr.left, common)
        expr.right = self._convert(expr.right, common)
        expr.ctype = "int" if expr.op in _RELATIONAL_OPS else common

    def _check_assign(self, expr: C.Assign) -> None:
        self._check_expr(expr.target)
        self._check_expr(expr.value)
        if expr.op != "=":
            base_op = expr.op[:-1]
            if base_op in _INT_ONLY_OPS and expr.target.ctype != "int":
                self.fail(f"operator {expr.op} requires int operands", expr)
        expr.value = self._convert(expr.value, expr.target.ctype)
        expr.ctype = expr.target.ctype

    def _check_call(self, expr: C.Call) -> None:
        signature = self.checked.functions.get(expr.name)
        if signature is None:
            self.fail(f"call to undeclared function {expr.name!r}", expr)
        if len(expr.args) != len(signature.param_types):
            self.fail(
                f"{expr.name} expects {len(signature.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr,
            )
        for position, (arg, expected) in enumerate(
            zip(expr.args, signature.param_types)
        ):
            self._check_expr(arg)
            expr.args[position] = self._convert(arg, expected)
        if signature.return_type == "void":
            expr.ctype = None
        else:
            expr.ctype = signature.return_type

    def _convert(self, expr: C.CExpr, to: str) -> C.CExpr:
        if expr.ctype == to:
            return expr
        # fold literal conversions immediately
        if isinstance(expr, C.IntLit) and to in ("float", "double"):
            lit = C.FloatLit(float(expr.value), location=expr.location)
            lit.ctype = to
            return lit
        converted = C.Cast(to=to, operand=expr, location=expr.location)
        converted.ctype = to
        return converted
