"""Maril — the Marion machine description language (paper section 3).

A description has three sections:

* ``declare`` — registers, resources, immediate ranges, memories, clocks;
* ``cwvm`` — the Compiler Writer's Virtual Machine (runtime model);
* ``instr`` — instructions with selection patterns and scheduling
  properties, plus ``%move``, ``%aux``, ``%glue`` and ``%element``
  directives.

The public entry point is :func:`parse_maril`, which returns a checked
:class:`repro.maril.ast.Description`.
"""

from repro.maril.parser import parse_maril
from repro.maril.lexer import tokenize
from repro.maril import ast

__all__ = ["parse_maril", "tokenize", "ast"]
