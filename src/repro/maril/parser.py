"""Recursive-descent parser for Maril machine descriptions.

The grammar follows paper figures 1-3 and 5; machine-checkable deviations
(comma-separated ``%resource`` lists, an explicit ``%element`` directive and
``<...>`` class clauses) are documented in DESIGN.md.

:func:`parse_maril` lexes, parses and semantically checks a description,
returning a validated :class:`~repro.maril.ast.Description`.
"""

from __future__ import annotations

from repro.errors import MarilSyntaxError
from repro.maril import ast
from repro.maril.lexer import tokenize
from repro.maril.tokens import Token, TokenKind


def parse_maril(text: str, filename: str = "<maril>") -> ast.Description:
    """Parse and validate a Maril description."""
    from repro.maril.sema import check_description

    parser = _Parser(tokenize(text, filename), filename)
    description = parser.parse_description()
    check_description(description)
    return description


def parse_maril_unchecked(text: str, filename: str = "<maril>") -> ast.Description:
    """Parse without semantic validation (used by sema's own tests)."""
    return _Parser(tokenize(text, filename), filename).parse_description()


class _Parser:
    def __init__(self, tokens: list[Token], filename: str):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: TokenKind, value: object = None) -> bool:
        token = self.peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: TokenKind, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, value: object = None) -> Token:
        token = self.peek()
        if not self.check(kind, value):
            wanted = value if value is not None else kind.value
            raise MarilSyntaxError(
                f"expected {wanted!r}, found {token.value!r}", token.location
            )
        return self.advance()

    def error(self, message: str) -> MarilSyntaxError:
        return MarilSyntaxError(message, self.peek().location)

    # -- description / sections --------------------------------------------

    def parse_description(self) -> ast.Description:
        description = ast.Description(filename=self.filename)
        while not self.check(TokenKind.EOF):
            section = self.expect(TokenKind.IDENT)
            if section.value == "declare":
                self._parse_block(description.declare, self._parse_declare_item)
            elif section.value == "cwvm":
                self._parse_block(description.cwvm, self._parse_cwvm_item)
            elif section.value == "instr":
                self._parse_block(description.instrs, self._parse_instr_item)
            else:
                raise MarilSyntaxError(
                    f"expected a section name (declare/cwvm/instr), found "
                    f"{section.value!r}",
                    section.location,
                )
        return description

    def _parse_block(self, into: list, item_parser) -> None:
        self.expect(TokenKind.LBRACE)
        while not self.accept(TokenKind.RBRACE):
            into.append(item_parser())

    # -- declare section ----------------------------------------------------

    def _parse_declare_item(self):
        token = self.expect(TokenKind.DIRECTIVE)
        name = token.value
        if name == "reg":
            return self._parse_reg(token)
        if name == "equiv":
            return self._parse_equiv(token)
        if name == "resource":
            entries = [self._parse_resource_entry()]
            while self.accept(TokenKind.COMMA):
                entries.append(self._parse_resource_entry())
            self.expect(TokenKind.SEMI)
            return ast.ResourceDecl(
                tuple(n for n, _ in entries),
                token.location,
                capacities=tuple(c for _, c in entries),
            )
        if name in ("def", "label"):
            return self._parse_def_or_label(token)
        if name == "memory":
            ref = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.LBRACKET)
            lo = self._parse_int()
            self.expect(TokenKind.COLON)
            hi = self._parse_int()
            self.expect(TokenKind.RBRACKET)
            self.expect(TokenKind.SEMI)
            return ast.MemoryDecl(ref, lo, hi, token.location)
        if name == "clock":
            clock = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.SEMI)
            return ast.ClockDecl(clock, token.location)
        raise MarilSyntaxError(
            f"%{name} is not valid in the declare section", token.location
        )

    def _parse_reg(self, token: Token) -> ast.RegDecl:
        reg_name = self.expect(TokenKind.IDENT).value
        lo = hi = 0
        if self.accept(TokenKind.LBRACKET):
            lo = self._parse_int()
            self.expect(TokenKind.COLON)
            hi = self._parse_int()
            self.expect(TokenKind.RBRACKET)
        types: list[str] = []
        clock = None
        if self.accept(TokenKind.LPAREN):
            types.append(self.expect(TokenKind.IDENT).value)
            while self.accept(TokenKind.COMMA):
                types.append(self.expect(TokenKind.IDENT).value)
            if self.accept(TokenKind.SEMI):
                clock = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.RPAREN)
        flags = self._parse_flags()
        self.expect(TokenKind.SEMI)
        return ast.RegDecl(reg_name, lo, hi, tuple(types), clock, flags, token.location)

    def _parse_equiv(self, token: Token) -> ast.EquivDecl:
        first = self._parse_regref()
        second = self._parse_regref()
        self.expect(TokenKind.SEMI)
        # Which ref is the wide one is resolved in sema using register sizes.
        return ast.EquivDecl(first, second, token.location)

    def _parse_resource_entry(self) -> tuple[str, int]:
        name = self.expect(TokenKind.IDENT).value
        capacity = 1
        if self.accept(TokenKind.LBRACKET):
            capacity = self._parse_int()
            self.expect(TokenKind.RBRACKET)
        return name, capacity

    def _parse_def_or_label(self, token: Token):
        def_name = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.LBRACKET)
        lo = self._parse_int()
        self.expect(TokenKind.COLON)
        hi = self._parse_int()
        self.expect(TokenKind.RBRACKET)
        flags = self._parse_flags()
        self.expect(TokenKind.SEMI)
        cls = ast.DefDecl if token.value == "def" else ast.LabelDecl
        return cls(def_name, lo, hi, flags, token.location)

    # -- cwvm section ---------------------------------------------------------

    def _parse_cwvm_item(self):
        token = self.expect(TokenKind.DIRECTIVE)
        name = token.value
        if name == "general":
            self.expect(TokenKind.LPAREN)
            type_name = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.RPAREN)
            set_name = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.SEMI)
            return ast.GeneralDecl(type_name, set_name, token.location)
        if name in ("allocable", "calleesave"):
            ranges = [self._parse_regrange()]
            while self.accept(TokenKind.COMMA):
                ranges.append(self._parse_regrange())
            self.expect(TokenKind.SEMI)
            cls = ast.AllocableDecl if name == "allocable" else ast.CalleeSaveDecl
            return cls(tuple(ranges), token.location)
        if name in ("sp", "fp", "gp"):
            ref = self._parse_regref()
            flags = self._parse_flags()
            self.expect(TokenKind.SEMI)
            return ast.PointerDecl(name, ref, flags, token.location)
        if name == "retaddr":
            ref = self._parse_regref()
            self.expect(TokenKind.SEMI)
            return ast.RetAddrDecl(ref, token.location)
        if name == "hard":
            ref = self._parse_regref()
            value = self._parse_int()
            self.expect(TokenKind.SEMI)
            return ast.HardDecl(ref, value, token.location)
        if name == "arg":
            self.expect(TokenKind.LPAREN)
            type_name = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.RPAREN)
            ref = self._parse_regref()
            index = self._parse_int()
            self.expect(TokenKind.SEMI)
            return ast.ArgDecl(type_name, ref, index, token.location)
        if name == "result":
            ref = self._parse_regref()
            self.expect(TokenKind.LPAREN)
            type_name = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.SEMI)
            return ast.ResultDecl(ref, type_name, token.location)
        raise MarilSyntaxError(f"%{name} is not valid in the cwvm section", token.location)

    # -- instr section ----------------------------------------------------

    def _parse_instr_item(self):
        token = self.expect(TokenKind.DIRECTIVE)
        name = token.value
        if name in ("instr", "move"):
            return self._parse_instruction(token, is_move=(name == "move"))
        if name == "aux":
            return self._parse_aux(token)
        if name == "glue":
            return self._parse_glue(token)
        if name == "element":
            names = self._parse_ident_list()
            self.expect(TokenKind.SEMI)
            return ast.ElementDecl(tuple(names), token.location)
        raise MarilSyntaxError(
            f"%{name} is not valid in the instr section", token.location
        )

    def _parse_instruction(self, token: Token, is_move: bool) -> ast.InstrDecl:
        label = None
        func = None
        if self.check(TokenKind.LBRACKET):
            # optional [s.movs] label for *func references
            self.advance()
            label = self.expect(TokenKind.IDENT).value
            self.expect(TokenKind.RBRACKET)
        if self.accept(TokenKind.STAR):
            func = self.expect(TokenKind.IDENT).value
            mnemonic = "*" + func
        else:
            mnemonic = self.expect(TokenKind.IDENT).value

        operands = self._parse_operand_list()
        type_name, clock = self._parse_type_clause()
        semantics = self._parse_semantics()
        resources = self._parse_resources()
        cost, latency, slots = self._parse_triple()
        classes: tuple[str, ...] = ()
        if self.accept(TokenKind.LANGLE):
            classes = tuple(self._parse_ident_list())
            self.expect(TokenKind.RANGLE)
        self.expect(TokenKind.SEMI)
        return ast.InstrDecl(
            mnemonic=mnemonic,
            operands=tuple(operands),
            semantics=tuple(semantics),
            resources=tuple(resources),
            cost=cost,
            latency=latency,
            slots=slots,
            type=type_name,
            clock=clock,
            label=label,
            func=func,
            classes=classes,
            is_move=is_move,
            location=token.location,
        )

    def _parse_operand_list(self) -> list[ast.OperandSpec]:
        operands: list[ast.OperandSpec] = []
        if not (self.check(TokenKind.IDENT) or self.check(TokenKind.HASH)):
            return operands
        operands.append(self._parse_operand())
        while self.accept(TokenKind.COMMA):
            operands.append(self._parse_operand())
        return operands

    def _parse_operand(self) -> ast.OperandSpec:
        if self.accept(TokenKind.HASH):
            return ast.ImmOperand(self.expect(TokenKind.IDENT).value)
        set_name = self.expect(TokenKind.IDENT).value
        index = None
        if self.accept(TokenKind.LBRACKET):
            index = self._parse_int()
            self.expect(TokenKind.RBRACKET)
        return ast.RegOperand(set_name, index)

    def _parse_type_clause(self) -> tuple[str | None, str | None]:
        """``(int)`` or ``(double; clk_m)`` or ``(; clk_m)`` or absent."""
        if not self.check(TokenKind.LPAREN):
            return None, None
        # Disambiguate from the (cost,latency,slots) triple: a triple starts
        # with an integer or '-'.
        after = self.peek(1)
        if after.kind in (TokenKind.INT, TokenKind.MINUS):
            return None, None
        self.advance()
        type_name = None
        clock = None
        if self.check(TokenKind.IDENT):
            type_name = self.advance().value
        if self.accept(TokenKind.SEMI):
            clock = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.RPAREN)
        return type_name, clock

    def _parse_semantics(self) -> list[ast.Stmt]:
        self.expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self.accept(TokenKind.RBRACE):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        if self.accept(TokenKind.SEMI):
            return ast.EmptyStmt()
        if self.check(TokenKind.IDENT, "if"):
            self.advance()
            self.expect(TokenKind.LPAREN)
            condition = self._parse_expr()
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.IDENT, "goto")
            target = self._parse_primary()
            self.expect(TokenKind.SEMI)
            return ast.CondGotoStmt(condition, target)
        if self.check(TokenKind.IDENT, "goto"):
            self.advance()
            target = self._parse_primary()
            self.expect(TokenKind.SEMI)
            return ast.GotoStmt(target)
        if self.check(TokenKind.IDENT, "call"):
            self.advance()
            target = self._parse_primary()
            self.expect(TokenKind.SEMI)
            return ast.CallStmt(target)
        if self.check(TokenKind.IDENT, "ret"):
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.RetStmt()
        target = self._parse_lvalue()
        self.expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        self.expect(TokenKind.SEMI)
        return ast.AssignStmt(target, value)

    def _parse_lvalue(self) -> ast.Expr:
        if self.check(TokenKind.DOLLAR):
            return ast.OperandRef(self.advance().value)
        name = self.expect(TokenKind.IDENT).value
        if self.accept(TokenKind.LBRACKET):
            address = self._parse_expr()
            self.expect(TokenKind.RBRACKET)
            return ast.MemRef(name, address)
        return ast.NameRef(name)

    def _parse_resources(self) -> list[tuple[str, ...]]:
        self.expect(TokenKind.LBRACKET)
        cycles: list[tuple[str, ...]] = []
        while not self.check(TokenKind.RBRACKET):
            cycle = [self.expect(TokenKind.IDENT).value]
            while self.accept(TokenKind.COMMA):
                cycle.append(self.expect(TokenKind.IDENT).value)
            cycles.append(tuple(cycle))
            if not self.accept(TokenKind.SEMI):
                break
        self.expect(TokenKind.RBRACKET)
        return cycles

    def _parse_triple(self) -> tuple[int, int, int]:
        self.expect(TokenKind.LPAREN)
        cost = self._parse_int()
        self.expect(TokenKind.COMMA)
        latency = self._parse_int()
        self.expect(TokenKind.COMMA)
        slots = self._parse_int()
        self.expect(TokenKind.RPAREN)
        return cost, latency, slots

    def _parse_aux(self, token: Token) -> ast.AuxDecl:
        first = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.COLON)
        second = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.LPAREN)
        first_instr = self._parse_int()
        self.expect(TokenKind.DOT)
        first_op = self.expect(TokenKind.DOLLAR).value
        self.expect(TokenKind.EQ)
        second_instr = self._parse_int()
        self.expect(TokenKind.DOT)
        second_op = self.expect(TokenKind.DOLLAR).value
        self.expect(TokenKind.RPAREN)
        if (first_instr, second_instr) != (1, 2):
            raise MarilSyntaxError(
                "aux condition must compare operand of instruction 1 with "
                "operand of instruction 2 (e.g. 1.$1 == 2.$1)",
                token.location,
            )
        self.expect(TokenKind.LPAREN)
        latency = self._parse_int()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.SEMI)
        return ast.AuxDecl(first, second, first_op, second_op, latency, token.location)

    def _parse_glue(self, token: Token) -> ast.GlueDecl:
        operands = self._parse_operand_list()
        self.expect(TokenKind.LBRACE)
        pattern = self._parse_glue_item()
        self.expect(TokenKind.ARROW)
        replacement = self._parse_glue_item()
        self.accept(TokenKind.SEMI)
        self.expect(TokenKind.RBRACE)
        self.accept(TokenKind.SEMI)
        if isinstance(pattern, ast.Stmt) != isinstance(replacement, ast.Stmt):
            raise MarilSyntaxError(
                "glue pattern and replacement must both be statements or "
                "both be expressions",
                token.location,
            )
        return ast.GlueDecl(tuple(operands), pattern, replacement, token.location)

    def _parse_glue_item(self):
        """A statement (without trailing ';') or an expression."""
        if self.check(TokenKind.IDENT, "if"):
            self.advance()
            self.expect(TokenKind.LPAREN)
            condition = self._parse_expr()
            self.expect(TokenKind.RPAREN)
            self.expect(TokenKind.IDENT, "goto")
            target = self._parse_primary()
            return ast.CondGotoStmt(condition, target)
        if self.check(TokenKind.IDENT, "goto"):
            self.advance()
            return ast.GotoStmt(self._parse_primary())
        return self._parse_expr()

    # -- expressions ------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    _PRECEDENCE: list[list[tuple[TokenKind, str]]] = [
        [(TokenKind.PIPE, "|")],
        [(TokenKind.CARET, "^")],
        [(TokenKind.AMP, "&")],
        [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
        [
            (TokenKind.LANGLE, "<"),
            (TokenKind.LE, "<="),
            (TokenKind.RANGLE, ">"),
            (TokenKind.GE, ">="),
        ],
        [(TokenKind.COLONCOLON, "::")],
        [(TokenKind.LSHIFT, "<<"), (TokenKind.RSHIFT, ">>")],
        [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
        [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            for kind, op in self._PRECEDENCE[level]:
                if self.check(kind):
                    self.advance()
                    right = self._parse_binary(level + 1)
                    left = ast.Binary(op, left, right)
                    break
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        for kind, op in ((TokenKind.MINUS, "-"), (TokenKind.TILDE, "~"), (TokenKind.BANG, "!")):
            if self.check(kind):
                self.advance()
                return ast.Unary(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.DOLLAR:
            self.advance()
            return ast.OperandRef(token.value)
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(token.value)
        if token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(token.value)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self._parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            name = token.value
            if self.accept(TokenKind.LPAREN):
                args = []
                if not self.check(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self.accept(TokenKind.COMMA):
                        args.append(self._parse_expr())
                self.expect(TokenKind.RPAREN)
                if name not in ast.BUILTIN_NAMES:
                    raise MarilSyntaxError(f"unknown builtin {name!r}", token.location)
                return ast.BuiltinCall(name, tuple(args))
            if self.accept(TokenKind.LBRACKET):
                address = self._parse_expr()
                self.expect(TokenKind.RBRACKET)
                return ast.MemRef(name, address)
            return ast.NameRef(name)
        raise MarilSyntaxError(
            f"expected an expression, found {token.value!r}", token.location
        )

    # -- shared helpers ------------------------------------------------------

    def _parse_int(self) -> int:
        negative = bool(self.accept(TokenKind.MINUS))
        value = self.expect(TokenKind.INT).value
        return -value if negative else value

    def _parse_regref(self) -> ast.RegRef:
        set_name = self.expect(TokenKind.IDENT).value
        self.expect(TokenKind.LBRACKET)
        index = self._parse_int()
        self.expect(TokenKind.RBRACKET)
        return ast.RegRef(set_name, index)

    def _parse_regrange(self) -> ast.RegRange:
        set_name = self.expect(TokenKind.IDENT).value
        if not self.accept(TokenKind.LBRACKET):
            return ast.RegRange(set_name, None, None)
        lo = self._parse_int()
        hi = lo
        if self.accept(TokenKind.COLON):
            hi = self._parse_int()
        self.expect(TokenKind.RBRACKET)
        return ast.RegRange(set_name, lo, hi)

    def _parse_flags(self) -> tuple[str, ...]:
        flags: list[str] = []
        while self.check(TokenKind.PLUS) and self.peek(1).kind is TokenKind.IDENT:
            self.advance()
            flags.append(self.advance().value)
        return tuple(flags)

    def _parse_ident_list(self) -> list[str]:
        names = [self.expect(TokenKind.IDENT).value]
        while self.accept(TokenKind.COMMA):
            names.append(self.expect(TokenKind.IDENT).value)
        return names
