"""Semantic checks for parsed Maril descriptions.

A description that passes :func:`check_description` is internally
consistent: every name referenced by an instruction, cwvm directive or glue
transformation is declared, operand references ``$n`` are in range, ranges
are sane, and classes/clocks are declared before use.  The CGG can then
compile the description without re-validating.
"""

from __future__ import annotations

from repro.errors import MarilSemanticError
from repro.maril import ast

#: Valid Maril datatype names and their sizes in bits.
TYPE_SIZES = {"int": 32, "float": 32, "double": 64}


def check_description(description: ast.Description) -> None:
    _Checker(description).run()


class _Checker:
    def __init__(self, description: ast.Description):
        self.d = description
        self.reg_sets: dict[str, ast.RegDecl] = {}
        self.resources: set[str] = set()
        self.defs: dict[str, ast.DefDecl] = {}
        self.labels: dict[str, ast.LabelDecl] = {}
        self.memories: dict[str, ast.MemoryDecl] = {}
        self.clocks: set[str] = set()
        self.elements: set[str] = set()

    def fail(self, message: str, node=None) -> None:
        location = getattr(node, "location", None)
        raise MarilSemanticError(message, location)

    def run(self) -> None:
        self._check_declare()
        self._check_cwvm()
        self._collect_elements()
        self._check_instrs()

    # -- declare ------------------------------------------------------------

    def _check_declare(self) -> None:
        for decl in self.d.declare:
            if isinstance(decl, ast.RegDecl):
                self._declare_name(decl.name, decl)
                if decl.lo > decl.hi:
                    self.fail(f"register range {decl.name} is empty", decl)
                for type_name in decl.types:
                    if type_name not in TYPE_SIZES:
                        self.fail(f"unknown type {type_name!r} in %reg {decl.name}", decl)
                if decl.is_temporal and decl.clock is None:
                    self.fail(f"+temporal register {decl.name} must name a clock", decl)
                self.reg_sets[decl.name] = decl
            elif isinstance(decl, ast.ResourceDecl):
                for name in decl.names:
                    self._declare_name(name, decl)
                    self.resources.add(name)
            elif isinstance(decl, ast.DefDecl):
                self._declare_name(decl.name, decl)
                if decl.lo > decl.hi:
                    self.fail(f"%def {decl.name} range is empty", decl)
                self.defs[decl.name] = decl
            elif isinstance(decl, ast.LabelDecl):
                self._declare_name(decl.name, decl)
                self.labels[decl.name] = decl
            elif isinstance(decl, ast.MemoryDecl):
                self._declare_name(decl.name, decl)
                self.memories[decl.name] = decl
            elif isinstance(decl, ast.ClockDecl):
                self._declare_name(decl.name, decl)
                self.clocks.add(decl.name)
            elif isinstance(decl, ast.EquivDecl):
                pass  # checked below, after all %reg are known
            else:
                self.fail(f"unexpected declaration {decl!r}", decl)

        for decl in self.d.declarations(ast.EquivDecl):
            # equal sizes are allowed: the sets alias one register file with
            # different type views (e.g. the 88100's float view of r)
            self._check_regref(decl.wide, decl)
            self._check_regref(decl.narrow, decl)

        # temporal registers must name declared clocks
        for decl in self.reg_sets.values():
            if decl.clock is not None and decl.clock not in self.clocks:
                self.fail(
                    f"register {decl.name} names undeclared clock {decl.clock!r}",
                    decl,
                )

    def _declare_name(self, name: str, node) -> None:
        namespaces = (
            self.reg_sets,
            self.resources,
            self.defs,
            self.labels,
            self.memories,
            self.clocks,
        )
        if any(name in space for space in namespaces):
            self.fail(f"duplicate declaration of {name!r}", node)

    def _reg_size(self, set_name: str) -> int:
        decl = self.reg_sets[set_name]
        if not decl.types:
            return 32
        return max(TYPE_SIZES[t] for t in decl.types)

    # -- cwvm -----------------------------------------------------------------

    def _check_cwvm(self) -> None:
        seen_pointer: set[str] = set()
        for decl in self.d.cwvm:
            if isinstance(decl, ast.GeneralDecl):
                self._check_type(decl.type, decl)
                self._check_regset(decl.set_name, decl)
            elif isinstance(decl, (ast.AllocableDecl, ast.CalleeSaveDecl)):
                for rng in decl.ranges:
                    self._check_regrange(rng, decl)
            elif isinstance(decl, ast.PointerDecl):
                if decl.which in seen_pointer:
                    self.fail(f"duplicate %{decl.which} declaration", decl)
                seen_pointer.add(decl.which)
                self._check_regref(decl.ref, decl)
            elif isinstance(decl, ast.RetAddrDecl):
                self._check_regref(decl.ref, decl)
            elif isinstance(decl, ast.HardDecl):
                self._check_regref(decl.ref, decl)
            elif isinstance(decl, ast.ArgDecl):
                self._check_type(decl.type, decl)
                self._check_regref(decl.ref, decl)
                if decl.index < 1:
                    self.fail("%arg index is 1-based", decl)
            elif isinstance(decl, ast.ResultDecl):
                self._check_type(decl.type, decl)
                self._check_regref(decl.ref, decl)
            else:
                self.fail(f"unexpected cwvm declaration {decl!r}", decl)
        if "sp" not in seen_pointer or "fp" not in seen_pointer:
            self.fail("cwvm must declare %sp and %fp (paper section 3.2)")

    def _check_type(self, name: str, node) -> None:
        if name not in TYPE_SIZES:
            self.fail(f"unknown type {name!r}", node)

    def _check_regset(self, name: str, node) -> None:
        if name not in self.reg_sets:
            self.fail(f"unknown register set {name!r}", node)

    def _check_regref(self, ref: ast.RegRef, node) -> None:
        self._check_regset(ref.set_name, node)
        decl = self.reg_sets[ref.set_name]
        if not decl.lo <= ref.index <= decl.hi:
            self.fail(f"register index {ref} out of range [{decl.lo}:{decl.hi}]", node)

    def _check_regrange(self, rng: ast.RegRange, node) -> None:
        self._check_regset(rng.set_name, node)
        if rng.lo is None:
            return
        decl = self.reg_sets[rng.set_name]
        if not (decl.lo <= rng.lo <= rng.hi <= decl.hi):
            self.fail(f"register range {rng} outside [{decl.lo}:{decl.hi}]", node)

    # -- instr ------------------------------------------------------------

    def _collect_elements(self) -> None:
        for decl in self.d.element_decls():
            for name in decl.names:
                if name in self.elements:
                    self.fail(f"duplicate %element {name!r}", decl)
                self.elements.add(name)

    def _check_instrs(self) -> None:
        mnemonics: set[str] = set()
        for decl in self.d.instr_decls():
            self._check_instr(decl)
            mnemonics.add(decl.mnemonic)
        for decl in self.d.aux_decls():
            for mnemonic in (decl.first, decl.second):
                if mnemonic not in mnemonics:
                    self.fail(f"%aux names unknown instruction {mnemonic!r}", decl)
            if decl.latency < 0:
                self.fail("%aux latency must be non-negative", decl)
        for decl in self.d.glue_decls():
            self._check_glue(decl)

    def _check_instr(self, decl: ast.InstrDecl) -> None:
        if decl.type is not None:
            self._check_type(decl.type, decl)
        if decl.clock is not None and decl.clock not in self.clocks:
            self.fail(
                f"instruction {decl.mnemonic} affects undeclared clock "
                f"{decl.clock!r}",
                decl,
            )
        for operand in decl.operands:
            self._check_operand_spec(operand, decl)
        for cycle in decl.resources:
            for resource in cycle:
                if resource not in self.resources:
                    self.fail(
                        f"instruction {decl.mnemonic} uses undeclared resource "
                        f"{resource!r}",
                        decl,
                    )
        for element in decl.classes:
            if element not in self.elements:
                self.fail(
                    f"instruction {decl.mnemonic} names undeclared class "
                    f"element {element!r}",
                    decl,
                )
        if decl.cost < 0 or decl.latency < 0:
            self.fail(f"instruction {decl.mnemonic}: cost/latency must be >= 0", decl)
        for stmt in decl.semantics:
            self._check_stmt(stmt, decl, len(decl.operands))

    def _check_operand_spec(self, operand: ast.OperandSpec, decl) -> None:
        if isinstance(operand, ast.RegOperand):
            self._check_regset(operand.set_name, decl)
            if operand.index is not None:
                self._check_regref(ast.RegRef(operand.set_name, operand.index), decl)
        elif isinstance(operand, ast.ImmOperand):
            if operand.def_name not in self.defs and operand.def_name not in self.labels:
                self.fail(f"unknown immediate class #{operand.def_name}", decl)
        else:
            self.fail(f"unexpected operand spec {operand!r}", decl)

    def _check_stmt(self, stmt: ast.Stmt, decl, operand_count: int) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._check_lvalue(stmt.target, decl, operand_count)
            self._check_expr(stmt.value, decl, operand_count)
        elif isinstance(stmt, ast.CondGotoStmt):
            self._check_expr(stmt.condition, decl, operand_count)
            self._check_expr(stmt.target, decl, operand_count)
        elif isinstance(stmt, (ast.GotoStmt, ast.CallStmt)):
            self._check_expr(stmt.target, decl, operand_count)
        elif isinstance(stmt, (ast.RetStmt, ast.EmptyStmt)):
            pass
        else:
            self.fail(f"unexpected statement {stmt!r}", decl)

    def _check_lvalue(self, expr: ast.Expr, decl, operand_count: int) -> None:
        if isinstance(expr, ast.OperandRef):
            self._check_operand_ref(expr, decl, operand_count)
        elif isinstance(expr, ast.NameRef):
            if expr.name not in self.reg_sets:
                self.fail(
                    f"assignment target {expr.name!r} is not a register", decl
                )
        elif isinstance(expr, ast.MemRef):
            if expr.memory not in self.memories:
                self.fail(f"unknown memory {expr.memory!r}", decl)
            self._check_expr(expr.address, decl, operand_count)
        else:
            self.fail(f"invalid assignment target {expr}", decl)

    def _check_operand_ref(self, ref: ast.OperandRef, decl, operand_count: int) -> None:
        if not 1 <= ref.index <= operand_count:
            self.fail(
                f"operand reference ${ref.index} out of range (instruction has "
                f"{operand_count} operands)",
                decl,
            )

    def _check_expr(self, expr: ast.Expr, decl, operand_count: int) -> None:
        if isinstance(expr, ast.OperandRef):
            self._check_operand_ref(expr, decl, operand_count)
        elif isinstance(expr, ast.NameRef):
            if expr.name not in self.reg_sets:
                self.fail(f"unknown name {expr.name!r} in expression", decl)
        elif isinstance(expr, (ast.IntLit, ast.FloatLit)):
            pass
        elif isinstance(expr, ast.MemRef):
            if expr.memory not in self.memories:
                self.fail(f"unknown memory {expr.memory!r}", decl)
            self._check_expr(expr.address, decl, operand_count)
        elif isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, decl, operand_count)
        elif isinstance(expr, ast.Binary):
            self._check_expr(expr.left, decl, operand_count)
            self._check_expr(expr.right, decl, operand_count)
        elif isinstance(expr, ast.BuiltinCall):
            if len(expr.args) != 1:
                self.fail(f"builtin {expr.name} takes one argument", decl)
            self._check_expr(expr.args[0], decl, operand_count)
        else:
            self.fail(f"unexpected expression {expr!r}", decl)

    def _check_glue(self, decl: ast.GlueDecl) -> None:
        operand_count = len(decl.operands)
        for operand in decl.operands:
            self._check_operand_spec(operand, decl)
        for item in (decl.pattern, decl.replacement):
            if isinstance(item, ast.Stmt):
                self._check_stmt(item, decl, operand_count)
            else:
                self._check_expr(item, decl, operand_count)
