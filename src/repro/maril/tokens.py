"""Token definitions for the Maril lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    DIRECTIVE = "directive"  # %reg, %instr, ...  value excludes the '%'
    IDENT = "ident"  # names; dots allowed inside (fadd.d, s.movs)
    INT = "int"  # integer literal (no sign; '-' is an operator)
    FLOAT = "float"  # floating literal
    DOLLAR = "dollar"  # $n operand reference; value is the index int
    HASH = "hash"  # '#' (immediate operand marker)
    STAR = "star"  # '*'
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    LPAREN = "lparen"
    RPAREN = "rparen"
    LANGLE = "langle"  # '<'
    RANGLE = "rangle"  # '>'
    SEMI = "semi"
    COMMA = "comma"
    COLON = "colon"
    COLONCOLON = "coloncolon"  # '::' generic compare
    DOT = "dot"
    ASSIGN = "assign"  # '='
    ARROW = "arrow"  # '==>' glue rewrite
    PLUS = "plus"
    MINUS = "minus"
    SLASH = "slash"
    PERCENT = "percent"  # '%' as modulo inside expressions
    AMP = "amp"
    PIPE = "pipe"
    CARET = "caret"
    TILDE = "tilde"
    BANG = "bang"
    LSHIFT = "lshift"
    RSHIFT = "rshift"
    EQ = "eq"  # '=='
    NE = "ne"
    LE = "le"
    GE = "ge"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: object
    location: SourceLocation

    def __repr__(self) -> str:  # compact for test failure messages
        return f"Token({self.kind.name}, {self.value!r})"


# Directive spellings accepted after '%'.  The lexer validates against this
# set so that a typo like %registr fails at lex time with a clear message.
DIRECTIVE_NAMES = frozenset(
    {
        # declare section
        "reg",
        "equiv",
        "resource",
        "def",
        "label",
        "memory",
        "clock",
        # cwvm section
        "general",
        "allocable",
        "calleesave",
        "sp",
        "fp",
        "gp",
        "retaddr",
        "hard",
        "arg",
        "result",
        # instr section
        "instr",
        "move",
        "aux",
        "glue",
        "element",
    }
)
