"""Abstract syntax for Maril machine descriptions.

The node classes mirror the three description sections from paper section 3:
``declare`` (registers, resources, immediates, memories, clocks), ``cwvm``
(runtime model) and ``instr`` (instructions, moves, auxiliary latencies,
glue transformations, packing-class elements).

Expressions and statements are shared between instruction semantics
(``{$1 = $2 + $3;}``) and glue transformations; both are ordinary trees the
CGG later compiles into selection patterns and executable semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceLocation

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for semantic expressions."""


@dataclass(frozen=True)
class OperandRef(Expr):
    """``$n`` — reference to the n-th instruction operand (1-based)."""

    index: int

    def __str__(self) -> str:
        return f"${self.index}"


@dataclass(frozen=True)
class NameRef(Expr):
    """A bare identifier: a temporal register or a hard register name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MemRef(Expr):
    """``m[addr]`` — a reference into a declared memory bank."""

    memory: str
    address: Expr

    def __str__(self) -> str:
        return f"{self.memory}[{self.address}]"


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-', '~', '!'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic / logical / relational / '::'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BuiltinCall(Expr):
    """``high(e)``, ``low(e)``, ``eval(e)`` or a type-conversion builtin
    (``int(e)``, ``float(e)``, ``double(e)``)."""

    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


BUILTIN_NAMES = frozenset({"high", "low", "eval", "int", "float", "double"})

# --------------------------------------------------------------------------
# Statements (instruction semantics)
# --------------------------------------------------------------------------


class Stmt:
    """Base class for semantic statements."""


@dataclass(frozen=True)
class AssignStmt(Stmt):
    target: Expr  # OperandRef | NameRef | MemRef
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass(frozen=True)
class CondGotoStmt(Stmt):
    condition: Expr
    target: Expr  # OperandRef (a label operand)

    def __str__(self) -> str:
        return f"if ({self.condition}) goto {self.target};"


@dataclass(frozen=True)
class GotoStmt(Stmt):
    target: Expr

    def __str__(self) -> str:
        return f"goto {self.target};"


@dataclass(frozen=True)
class CallStmt(Stmt):
    """``call $n;`` — procedure call through a label operand."""

    target: Expr

    def __str__(self) -> str:
        return f"call {self.target};"


@dataclass(frozen=True)
class RetStmt(Stmt):
    """``ret;`` — return through the CWVM return-address register."""

    def __str__(self) -> str:
        return "ret;"


@dataclass(frozen=True)
class EmptyStmt(Stmt):
    """``;`` — no effect (e.g. the semantics of a nop)."""

    def __str__(self) -> str:
        return ";"


# --------------------------------------------------------------------------
# Declare section
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RegRef:
    """``r[3]`` — one element of a register set."""

    set_name: str
    index: int

    def __str__(self) -> str:
        return f"{self.set_name}[{self.index}]"


@dataclass(frozen=True)
class RegRange:
    """``r[1:5]`` (or ``r[3]`` with lo == hi, or bare ``r`` = whole set)."""

    set_name: str
    lo: int | None
    hi: int | None

    def __str__(self) -> str:
        if self.lo is None:
            return self.set_name
        return f"{self.set_name}[{self.lo}:{self.hi}]"


@dataclass(frozen=True)
class RegDecl:
    """``%reg r[0:7] (int);`` — a register array.

    Scalar temporal registers (``%reg m1 (double; clk_m) +temporal;``) have
    ``lo == hi == 0`` and the ``temporal`` flag, and name their clock.
    """

    name: str
    lo: int
    hi: int
    types: tuple[str, ...]
    clock: str | None
    flags: tuple[str, ...]
    location: SourceLocation | None = None

    @property
    def is_temporal(self) -> bool:
        return "temporal" in self.flags


@dataclass(frozen=True)
class EquivDecl:
    """``%equiv d[0] r[0];`` — the wide register overlays narrow ones
    starting at the given element (paper: d regs overlap r regs)."""

    wide: RegRef
    narrow: RegRef
    location: SourceLocation | None = None


@dataclass(frozen=True)
class ResourceDecl:
    """``%resource IF, ID, ALU[2];`` — pipeline stages, buses, fields; a
    ``[N]`` suffix declares an array of N identical units (section 5's
    multiple-functional-unit extension)."""

    names: tuple[str, ...]
    location: SourceLocation | None = None
    capacities: tuple[int, ...] = ()

    def capacity_of(self, index: int) -> int:
        if index < len(self.capacities):
            return self.capacities[index]
        return 1


@dataclass(frozen=True)
class DefDecl:
    """``%def const16 [-32768:32767];`` — an immediate-operand range."""

    name: str
    lo: int
    hi: int
    flags: tuple[str, ...]
    location: SourceLocation | None = None


@dataclass(frozen=True)
class LabelDecl:
    """``%label rlab [-32768:32767] +relative;`` — a branch-offset range."""

    name: str
    lo: int
    hi: int
    flags: tuple[str, ...]
    location: SourceLocation | None = None


@dataclass(frozen=True)
class MemoryDecl:
    """``%memory m[0:2147483647];``"""

    name: str
    lo: int
    hi: int
    location: SourceLocation | None = None


@dataclass(frozen=True)
class ClockDecl:
    """``%clock clk_m;`` — a clock for an explicitly advanced pipeline."""

    name: str
    location: SourceLocation | None = None


# --------------------------------------------------------------------------
# Cwvm section
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneralDecl:
    """``%general (int) r;`` — r is the general-purpose set for ints."""

    type: str
    set_name: str
    location: SourceLocation | None = None


@dataclass(frozen=True)
class AllocableDecl:
    """``%allocable r[1:5];`` — registers owned by the global allocator."""

    ranges: tuple[RegRange, ...]
    location: SourceLocation | None = None


@dataclass(frozen=True)
class CalleeSaveDecl:
    """``%calleesave r[4:7];``"""

    ranges: tuple[RegRange, ...]
    location: SourceLocation | None = None


@dataclass(frozen=True)
class PointerDecl:
    """``%sp r[7] +down;`` / ``%fp r[6] +down;`` / ``%gp r[5];``"""

    which: str  # 'sp' | 'fp' | 'gp'
    ref: RegRef
    flags: tuple[str, ...]
    location: SourceLocation | None = None


@dataclass(frozen=True)
class RetAddrDecl:
    """``%retaddr r[1];``"""

    ref: RegRef
    location: SourceLocation | None = None


@dataclass(frozen=True)
class HardDecl:
    """``%hard r[0] 0;`` — a register hard-wired to a constant."""

    ref: RegRef
    value: int
    location: SourceLocation | None = None


@dataclass(frozen=True)
class ArgDecl:
    """``%arg (int) r[2] 1;`` — 1st int argument is passed in r[2]."""

    type: str
    ref: RegRef
    index: int
    location: SourceLocation | None = None


@dataclass(frozen=True)
class ResultDecl:
    """``%result r[2] (int);``"""

    ref: RegRef
    type: str
    location: SourceLocation | None = None


# --------------------------------------------------------------------------
# Instr section
# --------------------------------------------------------------------------


class OperandSpec:
    """Base class for an operand position in an instruction directive."""


@dataclass(frozen=True)
class RegOperand(OperandSpec):
    """``r`` (any register of set r) or ``r[0]`` (that specific register)."""

    set_name: str
    index: int | None = None

    def __str__(self) -> str:
        return self.set_name if self.index is None else f"{self.set_name}[{self.index}]"


@dataclass(frozen=True)
class ImmOperand(OperandSpec):
    """``#const16`` or ``#rlab`` — immediate or label operand."""

    def_name: str

    def __str__(self) -> str:
        return f"#{self.def_name}"


@dataclass(frozen=True)
class InstrDecl:
    """One ``%instr`` or ``%move`` directive (paper section 3.3).

    * ``label`` — optional ``[s.movs]`` handle for ``*func`` escapes;
    * ``func`` — for ``*name`` escape directives, the escape function name;
    * ``type`` — optional type constraint used during selection;
    * ``clock`` — the clock this instruction *affects* (EAP support);
    * ``resources`` — per-cycle resource lists (the resource vector);
    * ``classes`` — long-instruction-word elements this sub-operation may
      appear in (packing classes, paper section 4.5).
    """

    mnemonic: str
    operands: tuple[OperandSpec, ...]
    semantics: tuple[Stmt, ...]
    resources: tuple[tuple[str, ...], ...]
    cost: int
    latency: int
    slots: int
    type: str | None = None
    clock: str | None = None
    label: str | None = None
    func: str | None = None
    classes: tuple[str, ...] = ()
    is_move: bool = False
    location: SourceLocation | None = None


@dataclass(frozen=True)
class AuxDecl:
    """``%aux fadd.d : st.d (1.$1 == 2.$1) (7);`` — override the latency of
    the first instruction when followed by the second and the named operands
    refer to the same value."""

    first: str
    second: str
    first_operand: int
    second_operand: int
    latency: int
    location: SourceLocation | None = None


@dataclass(frozen=True)
class GlueDecl:
    """A tree-to-tree IL rewrite applied before selection.

    ``pattern`` and ``replacement`` are either both expressions or both
    statements (statement-level glue rewrites branch shapes).  The operand
    list gives the sort (register set / immediate class) of each ``$n``
    metavariable.
    """

    operands: tuple[OperandSpec, ...]
    pattern: object  # Expr | Stmt
    replacement: object  # Expr | Stmt
    location: SourceLocation | None = None


@dataclass(frozen=True)
class ElementDecl:
    """``%element pfmul, pfadd;`` — long-instruction-word class elements."""

    names: tuple[str, ...]
    location: SourceLocation | None = None


# --------------------------------------------------------------------------
# Whole description
# --------------------------------------------------------------------------


@dataclass
class Description:
    """A parsed (and, after sema, validated) machine description."""

    declare: list[object] = field(default_factory=list)
    cwvm: list[object] = field(default_factory=list)
    instrs: list[object] = field(default_factory=list)
    filename: str = "<maril>"

    def declarations(self, cls: type) -> list:
        return [d for d in self.declare if isinstance(d, cls)]

    def cwvm_declarations(self, cls: type) -> list:
        return [d for d in self.cwvm if isinstance(d, cls)]

    def instr_decls(self) -> list[InstrDecl]:
        return [d for d in self.instrs if isinstance(d, InstrDecl)]

    def aux_decls(self) -> list[AuxDecl]:
        return [d for d in self.instrs if isinstance(d, AuxDecl)]

    def glue_decls(self) -> list[GlueDecl]:
        return [d for d in self.instrs if isinstance(d, GlueDecl)]

    def element_decls(self) -> list[ElementDecl]:
        return [d for d in self.instrs if isinstance(d, ElementDecl)]
