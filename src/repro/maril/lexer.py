"""Hand-written lexer for Maril descriptions.

Lexical notes (deviations from the paper's informal figures are listed in
DESIGN.md):

* identifiers may contain dots after the first character, so instruction
  mnemonics like ``fadd.d`` and labels like ``s.movs`` are single tokens;
* ``%`` immediately followed by a letter introduces a directive keyword and
  is validated against :data:`~repro.maril.tokens.DIRECTIVE_NAMES`;
  elsewhere ``%`` is the modulo operator;
* ``$3`` lexes as a single DOLLAR token carrying the operand index;
* comments are ``/* ... */`` and ``// ...``.
"""

from __future__ import annotations

from repro.errors import MarilSyntaxError, SourceLocation
from repro.maril.tokens import DIRECTIVE_NAMES, Token, TokenKind

_SIMPLE = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "#": TokenKind.HASH,
}


class _Cursor:
    def __init__(self, text: str, filename: str):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(text: str, filename: str = "<maril>") -> list[Token]:
    """Tokenize a Maril description; raises :class:`MarilSyntaxError`."""
    cursor = _Cursor(text, filename)
    tokens: list[Token] = []
    while True:
        _skip_trivia(cursor)
        if cursor.at_end():
            tokens.append(Token(TokenKind.EOF, None, cursor.location()))
            return tokens
        tokens.append(_next_token(cursor))


def _skip_trivia(cursor: _Cursor) -> None:
    while not cursor.at_end():
        ch = cursor.peek()
        if ch in " \t\r\n":
            cursor.advance()
        elif ch == "/" and cursor.peek(1) == "/":
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
        elif ch == "/" and cursor.peek(1) == "*":
            start = cursor.location()
            cursor.advance()
            cursor.advance()
            while not (cursor.peek() == "*" and cursor.peek(1) == "/"):
                if cursor.at_end():
                    raise MarilSyntaxError("unterminated /* comment", start)
                cursor.advance()
            cursor.advance()
            cursor.advance()
        else:
            return


def _next_token(cursor: _Cursor) -> Token:
    loc = cursor.location()
    ch = cursor.peek()

    if ch == "%" and (cursor.peek(1).isalpha() or cursor.peek(1) == "_"):
        cursor.advance()
        name = _lex_name(cursor, allow_dots=False)
        if name not in DIRECTIVE_NAMES:
            raise MarilSyntaxError(f"unknown directive %{name}", loc)
        return Token(TokenKind.DIRECTIVE, name, loc)
    if ch == "%":
        cursor.advance()
        return Token(TokenKind.PERCENT, "%", loc)

    if ch == "$":
        cursor.advance()
        if not cursor.peek().isdigit():
            raise MarilSyntaxError("expected operand index after '$'", loc)
        digits = []
        while cursor.peek().isdigit():
            digits.append(cursor.advance())
        return Token(TokenKind.DOLLAR, int("".join(digits)), loc)

    if ch.isalpha() or ch == "_":
        name = _lex_name(cursor, allow_dots=True)
        return Token(TokenKind.IDENT, name, loc)

    if ch.isdigit():
        return _lex_number(cursor, loc)

    if ch == "=":
        cursor.advance()
        if cursor.peek() == "=" and cursor.peek(1) == ">":
            cursor.advance()
            cursor.advance()
            return Token(TokenKind.ARROW, "==>", loc)
        if cursor.peek() == "=":
            cursor.advance()
            return Token(TokenKind.EQ, "==", loc)
        return Token(TokenKind.ASSIGN, "=", loc)
    if ch == "!":
        cursor.advance()
        if cursor.peek() == "=":
            cursor.advance()
            return Token(TokenKind.NE, "!=", loc)
        return Token(TokenKind.BANG, "!", loc)
    if ch == "<":
        cursor.advance()
        if cursor.peek() == "<":
            cursor.advance()
            return Token(TokenKind.LSHIFT, "<<", loc)
        if cursor.peek() == "=":
            cursor.advance()
            return Token(TokenKind.LE, "<=", loc)
        return Token(TokenKind.LANGLE, "<", loc)
    if ch == ">":
        cursor.advance()
        if cursor.peek() == ">":
            cursor.advance()
            return Token(TokenKind.RSHIFT, ">>", loc)
        if cursor.peek() == "=":
            cursor.advance()
            return Token(TokenKind.GE, ">=", loc)
        return Token(TokenKind.RANGLE, ">", loc)
    if ch == ":":
        cursor.advance()
        if cursor.peek() == ":":
            cursor.advance()
            return Token(TokenKind.COLONCOLON, "::", loc)
        return Token(TokenKind.COLON, ":", loc)

    if ch in _SIMPLE:
        cursor.advance()
        return Token(_SIMPLE[ch], ch, loc)

    raise MarilSyntaxError(f"unexpected character {ch!r}", loc)


def _lex_name(cursor: _Cursor, allow_dots: bool) -> str:
    chars = [cursor.advance()]
    while True:
        ch = cursor.peek()
        if ch.isalnum() or ch == "_":
            chars.append(cursor.advance())
        elif allow_dots and ch == "." and (cursor.peek(1).isalnum() or cursor.peek(1) == "_"):
            chars.append(cursor.advance())
        else:
            return "".join(chars)


def _lex_number(cursor: _Cursor, loc: SourceLocation) -> Token:
    digits = []
    while cursor.peek().isdigit():
        digits.append(cursor.advance())
    if cursor.peek() == "." and cursor.peek(1).isdigit():
        digits.append(cursor.advance())
        while cursor.peek().isdigit():
            digits.append(cursor.advance())
        return Token(TokenKind.FLOAT, float("".join(digits)), loc)
    if cursor.peek() == "x" and digits == ["0"]:
        cursor.advance()
        hex_digits = []
        while cursor.peek() and cursor.peek() in "0123456789abcdefABCDEF":
            hex_digits.append(cursor.advance())
        if not hex_digits:
            raise MarilSyntaxError("malformed hex literal", loc)
        return Token(TokenKind.INT, int("".join(hex_digits), 16), loc)
    return Token(TokenKind.INT, int("".join(digits)), loc)
