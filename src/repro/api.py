"""The canonical public API, in one import.

``import repro`` re-exports the same names for convenience; this module
is the *stable contract* — everything here is documented in
``docs/api.md``, covered by the deprecation policy, and safe to build
against.  Anything reachable only through submodule paths
(``repro.backend...``, ``repro.sim.pipeline...``) is internal and may
change between minor versions.
"""

from repro import compile_c, simulate
from repro.backend.codegen import CodeGenerator, MachineProgram
from repro.cache import ArtifactCache, get_cache
from repro.cache import configure as configure_cache
from repro.cgg import build_target
from repro.eval.executors import (
    Executor,
    ExecutorProbe,
    InprocessAsyncExecutor,
    LocalPoolExecutor,
    SocketExecutor,
    UnitEvent,
)
from repro.eval.grid import (
    FailureCollector,
    GridFailure,
    GridOptions,
    GridTask,
    run_grid,
)
from repro.eval.journal import Journal
from repro.errors import (
    GridTimeout,
    JournalError,
    MarionError,
    RequestError,
    SimulationError,
    SimulationTimeout,
)
from repro.frontend import compile_to_il
from repro.machine.target import TargetMachine
from repro.maril import parse_maril
from repro.obs import Span, Trace, current_trace, span, tracing
from repro.options import CompileOptions, SimOptions
from repro.program import Executable, link
from repro.serve import (
    CompileRequest,
    CompileResponse,
    ExplainRequest,
    ExplainResponse,
    RunRequest,
    RunResponse,
    Service,
    ServeOptions,
    compile_options_from_json,
    serve_app,
    sim_options_from_json,
)
from repro.sim import DirectMappedCache, SimResult, Simulator, run_program
from repro.targets import TARGET_NAMES, clear_target_cache, load_target

#: kept sorted — ``tests/test_api_surface.py`` enforces it
__all__ = [
    "ArtifactCache",
    "CodeGenerator",
    "CompileOptions",
    "CompileRequest",
    "CompileResponse",
    "DirectMappedCache",
    "Executable",
    "Executor",
    "ExecutorProbe",
    "ExplainRequest",
    "ExplainResponse",
    "FailureCollector",
    "GridFailure",
    "GridOptions",
    "GridTask",
    "GridTimeout",
    "InprocessAsyncExecutor",
    "Journal",
    "JournalError",
    "LocalPoolExecutor",
    "MachineProgram",
    "MarionError",
    "RequestError",
    "RunRequest",
    "RunResponse",
    "ServeOptions",
    "Service",
    "SimOptions",
    "SimResult",
    "SimulationError",
    "SimulationTimeout",
    "Simulator",
    "SocketExecutor",
    "Span",
    "TARGET_NAMES",
    "TargetMachine",
    "Trace",
    "UnitEvent",
    "build_target",
    "clear_target_cache",
    "compile_c",
    "compile_options_from_json",
    "compile_to_il",
    "configure_cache",
    "current_trace",
    "get_cache",
    "link",
    "load_target",
    "parse_maril",
    "run_grid",
    "run_program",
    "serve_app",
    "sim_options_from_json",
    "simulate",
    "span",
    "tracing",
]
