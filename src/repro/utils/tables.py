"""Plain-text table rendering for the evaluation harness.

The paper's evaluation section is a set of tables; the harness in
:mod:`repro.eval` renders each reproduced table with this formatter so the
benchmark output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


class TextTable:
    """Incrementally built table; ``str()`` renders it."""

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.headers = list(headers)
        self.title = title
        self.rows: list[list[object]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, self.title)
