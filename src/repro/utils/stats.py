"""Mean helpers used by the evaluation tables.

Table 4 of the paper reports an arithmetic mean for execution times and a
harmonic mean for actual/estimated ratios; both are provided here.
"""

from __future__ import annotations

from typing import Iterable


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; raises ``ValueError`` on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
