"""Small shared helpers: text tables and numeric utilities."""

from repro.utils.tables import TextTable, format_table
from repro.utils.stats import harmonic_mean, arithmetic_mean

__all__ = ["TextTable", "format_table", "harmonic_mean", "arithmetic_mean"]
