"""Ambient process metrics: a thin adapter over :mod:`repro.obs`.

This module keeps the lightweight phase-timer/counter API the hot paths
were built against (PR 1), but the recorder behind it is now an
:class:`repro.obs.trace.Trace` — one process-wide trace holding only
aggregates.  The evaluation harness turns instrumentation on with
:func:`enable`; hot paths guard every record with the module-level
``ENABLED`` boolean so the disabled cost stays one attribute load and a
branch.

Usage::

    from repro.utils import timing

    timing.enable()
    with timing.phase("compile.frontend"):
        ...
    timing.add("target_cache.hit")
    print(timing.snapshot())

Relationship to :mod:`repro.obs`: an obs :class:`~repro.obs.trace.Trace`
scopes one *activity* and is activated per-context; this module is the
*process-wide* metrics sink that ``BENCH_eval.json`` reads.  Counters
and phase timings are process-local: worker processes of the parallel
harness each keep their own recorder, and the grid carries each worker's
:func:`snapshot` back for the parent to :func:`merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.trace import Trace

#: instrumentation master switch — read directly by hot paths
ENABLED = False

_recorder = Trace("timing")


def enable(on: bool = True) -> None:
    """Turn instrumentation on (or off with ``enable(False)``)."""
    global ENABLED
    ENABLED = on


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Drop all recorded data (the enabled flag is left alone)."""
    global _recorder
    _recorder = Trace("timing")


def recorder() -> Trace:
    """The process-wide aggregate recorder (an obs Trace)."""
    return _recorder


@contextmanager
def phase(name: str):
    """Time a named phase; a no-op (beyond one branch) when disabled."""
    if not ENABLED:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _recorder.add_seconds(name, time.perf_counter() - start)


def add(name: str, amount: int = 1) -> None:
    """Bump a named counter (no-op when disabled)."""
    if ENABLED:
        _recorder.count(name, amount)


def add_seconds(name: str, seconds: float) -> None:
    """Credit wall time to a phase without the context-manager overhead."""
    if ENABLED:
        _recorder.add_seconds(name, seconds)


def counter(name: str) -> int:
    return _recorder.counters.get(name, 0)


def merge(summary: dict) -> None:
    """Fold a worker's :func:`snapshot` into this process's recorder."""
    _recorder.merge_summary(summary)


class Stopwatch:
    """A tiny always-on wall-clock timer.

    Unlike :func:`phase`/:func:`add_seconds`, a stopwatch measures even
    when instrumentation is disabled — the fault-tolerant grid stamps
    every unit result and journal record with its wall time regardless
    of whether the perf recorder is on.
    """

    __slots__ = ("start",)

    def __init__(self) -> None:
        self.start = time.perf_counter()

    @property
    def seconds(self) -> float:
        return time.perf_counter() - self.start

    def restart(self) -> None:
        self.start = time.perf_counter()


def stopwatch() -> Stopwatch:
    """Start and return a new :class:`Stopwatch`."""
    return Stopwatch()


def snapshot() -> dict:
    """A JSON-ready copy of everything recorded so far."""
    return _recorder.summary()
