"""Lightweight phase timers and counters for the performance layer.

The evaluation harness (and anything else that wants a perf trace) turns
instrumentation on with :func:`enable`; the hot paths it is wired into —
:func:`repro.compile_c`, the list scheduler and the simulator — guard
every record with a single module-level boolean so the disabled cost is
one attribute load and a branch.

Usage::

    from repro.utils import timing

    timing.enable()
    with timing.phase("compile.frontend"):
        ...
    timing.add("target_cache.hit")
    print(timing.snapshot())

Counters and phase timings are process-local: worker processes of the
parallel harness each keep their own recorder, so aggregate numbers in
``BENCH_eval.json`` either come from the parent process or are carried
back explicitly in result rows (see ``repro/eval/common.py``).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

#: instrumentation master switch — read directly by hot paths
ENABLED = False


class Recorder:
    """Accumulates phase wall times, call counts and event counters."""

    __slots__ = ("phase_seconds", "phase_calls", "counters")

    def __init__(self) -> None:
        self.phase_seconds: dict[str, float] = defaultdict(float)
        self.phase_calls: dict[str, int] = defaultdict(int)
        self.counters: dict[str, int] = defaultdict(int)


_recorder = Recorder()


def enable(on: bool = True) -> None:
    """Turn instrumentation on (or off with ``enable(False)``)."""
    global ENABLED
    ENABLED = on


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Drop all recorded data (the enabled flag is left alone)."""
    global _recorder
    _recorder = Recorder()


@contextmanager
def phase(name: str):
    """Time a named phase; a no-op (beyond one branch) when disabled."""
    if not ENABLED:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _recorder.phase_seconds[name] += time.perf_counter() - start
        _recorder.phase_calls[name] += 1


def add(name: str, amount: int = 1) -> None:
    """Bump a named counter (no-op when disabled)."""
    if ENABLED:
        _recorder.counters[name] += amount


def add_seconds(name: str, seconds: float) -> None:
    """Credit wall time to a phase without the context-manager overhead."""
    if ENABLED:
        _recorder.phase_seconds[name] += seconds
        _recorder.phase_calls[name] += 1


def counter(name: str) -> int:
    return _recorder.counters.get(name, 0)


class Stopwatch:
    """A tiny always-on wall-clock timer.

    Unlike :func:`phase`/:func:`add_seconds`, a stopwatch measures even
    when instrumentation is disabled — the fault-tolerant grid stamps
    every unit result and journal record with its wall time regardless
    of whether the perf recorder is on.
    """

    __slots__ = ("start",)

    def __init__(self) -> None:
        self.start = time.perf_counter()

    @property
    def seconds(self) -> float:
        return time.perf_counter() - self.start

    def restart(self) -> None:
        self.start = time.perf_counter()


def stopwatch() -> Stopwatch:
    """Start and return a new :class:`Stopwatch`."""
    return Stopwatch()


def snapshot() -> dict:
    """A JSON-ready copy of everything recorded so far."""
    return {
        "phases": {
            name: {
                "seconds": round(seconds, 6),
                "calls": _recorder.phase_calls.get(name, 0),
            }
            for name, seconds in sorted(_recorder.phase_seconds.items())
        },
        "counters": dict(sorted(_recorder.counters.items())),
    }
