"""Motorola 88000 (MC88100).

The 88100 keeps floating point values in the general register file: floats
occupy one ``r`` register, doubles an even/odd pair (the ``d`` overlay).
The FP unit (SFU1) is pipelined with separate add and multiply stages and a
long non-pipelined divide.  The write-back bus is shared between the
integer pipe and the FP unit — the paper singles this out (section 5): we
model it as the ``WB`` resource appearing in the final cycle of every
result-producing vector, so the scheduler resolves the contention in favour
of the instruction scheduled first, exactly the policy the paper adopts.

Branches follow the 88100's compare-into-register style (``cmp`` produces a
condition value a ``bcnd``-family branch tests), one delay slot (``.n``
forms).
"""

from __future__ import annotations

from repro.cgg import build_target
from repro.machine.target import TargetMachine

M88000_MARIL = r"""
declare {
    %reg r[0:31] (int);
    %reg s[0:31] (float);           /* float view of the r file */
    %equiv s[0] r[0];
    %reg d[0:15] (double);          /* doubles are even/odd r pairs */
    %equiv d[0] r[0];
    %resource IF, ID, EX, WB;       /* integer pipe + shared writeback */
    %resource FA1, FA2, FA3;        /* FP add stages    */
    %resource FM1, FM2, FM3;        /* FP multiply stages */
    %resource FDIV;                 /* non-pipelined divide */
    %resource MD;                   /* integer multiply/divide */
    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-65536:65535] +relative;
    %label flab [-67108864:67108863] +abs;
    %memory m[0:268435455];
}

cwvm {
    %general (int) r;
    %general (float) s;
    %general (double) d;
    %allocable r[2:13], r[14:25], s[2:13], s[14:25], d[1:6], d[7:12];
    %calleesave r[14:25], s[14:25], d[7:12];
    %sp r[31] +down;
    %fp r[30] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %arg (int) r[4] 3;
    %arg (int) r[5] 4;
    %arg (double) d[3] 1;
    %arg (double) d[4] 2;
    %arg (float) s[10] 1;
    %arg (float) s[11] 2;
    %result r[2] (int);
    %result d[1] (double);
    %result s[2] (float);
}

instr {
    /* ---- constants ---- */
    %instr addi r, r[0], #const16 (int) {$1 = $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr or.u r, #uconst16 (int) {$1 = $2 << 16;}
        [IF; ID; EX; WB] (1,1,0);
    %instr or.l r, r, #uconst16 (int) {$1 = $2 | $3;}
        [IF; ID; EX; WB] (1,1,0);

    /* ---- integer ALU ---- */
    %instr addi r, r, #const16 (int) {$1 = $2 + $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr add r, r, r (int) {$1 = $2 + $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr subi r, r, #const16 (int) {$1 = $2 - $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr sub r, r, r (int) {$1 = $2 - $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr neg r, r (int) {$1 = -$2;}
        [IF; ID; EX; WB] (1,1,0);
    %instr mul r, r, r (int) {$1 = $2 * $3;}
        [IF; ID; MD; MD; MD; WB] (1,4,0);
    %instr divs r, r, r (int) {$1 = $2 / $3;}
        [IF; ID; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; WB] (1,37,0);
    %instr rems r, r, r (int) {$1 = $2 % $3;}
        [IF; ID; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; WB] (1,37,0);
    %instr andi r, r, #uconst16 (int) {$1 = $2 & $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr and r, r, r (int) {$1 = $2 & $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr or r, r, r (int) {$1 = $2 | $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr xori r, r, #uconst16 (int) {$1 = $2 ^ $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr xor r, r, r (int) {$1 = $2 ^ $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr not r, r (int) {$1 = ~$2;}
        [IF; ID; EX; WB] (1,1,0);
    %instr maki r, r, #const16 (int) {$1 = $2 << $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr mak r, r, r (int) {$1 = $2 << $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr exti r, r, #const16 (int) {$1 = $2 >> $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr ext r, r, r (int) {$1 = $2 >> $3;}
        [IF; ID; EX; WB] (1,1,0);

    /* ---- compares: generic compare into a register ---- */
    %instr cmpi r, r, #const16 (int) {$1 = $2 :: $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr cmp r, r, r (int) {$1 = $2 :: $3;}
        [IF; ID; EX; WB] (1,1,0);
    %instr fcmp.sdd r, d, d {$1 = $2 :: $3;}
        [IF; ID; FA1; FA2; WB] (1,3,0);
    %instr fcmp.sss r, s, s {$1 = $2 :: $3;}
        [IF; ID; FA1; FA2; WB] (1,3,0);

    /* ---- memory: 3-cycle loads ---- */
    %instr ld r, r, #const16 (int) {$1 = m[$2 + $3];}
        [IF; ID; EX; EX; WB] (1,3,0);
    %instr st r, r, #const16 (int) {m[$2 + $3] = $1;}
        [IF; ID; EX; EX] (1,1,0);
    %instr ld.s s, r, #const16 (float) {$1 = m[$2 + $3];}
        [IF; ID; EX; EX; WB] (1,3,0);
    %instr st.s s, r, #const16 (float) {m[$2 + $3] = $1;}
        [IF; ID; EX; EX] (1,1,0);
    %instr ld.d d, r, #const16 (double) {$1 = m[$2 + $3];}
        [IF; ID; EX; EX; EX; WB] (1,4,0);
    %instr st.d d, r, #const16 (double) {m[$2 + $3] = $1;}
        [IF; ID; EX; EX; EX] (1,1,0);

    /* ---- floating point (SFU1); results arbitrate for WB ---- */
    %instr fadd.ddd d, d, d {$1 = $2 + $3;}
        [IF; ID; FA1; FA2; FA3; WB] (1,5,0);
    %instr fsub.ddd d, d, d {$1 = $2 - $3;}
        [IF; ID; FA1; FA2; FA3; WB] (1,5,0);
    %instr fmul.ddd d, d, d {$1 = $2 * $3;}
        [IF; ID; FM1; FM2; FM2; FM3; WB] (1,6,0);
    %instr fdiv.ddd d, d, d {$1 = $2 / $3;}
        [IF; ID; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; WB] (1,28,0);
    %instr fneg.dd d, d {$1 = -$2;}
        [IF; ID; FA1; WB] (1,2,0);
    %instr fadd.sss s, s, s {$1 = $2 + $3;}
        [IF; ID; FA1; FA2; FA3; WB] (1,5,0);
    %instr fsub.sss s, s, s {$1 = $2 - $3;}
        [IF; ID; FA1; FA2; FA3; WB] (1,5,0);
    %instr fmul.sss s, s, s {$1 = $2 * $3;}
        [IF; ID; FM1; FM2; FM3; WB] (1,5,0);
    %instr fdiv.sss s, s, s {$1 = $2 / $3;}
        [IF; ID; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; WB]
        (1,20,0);
    %instr fneg.ss s, s {$1 = -$2;}
        [IF; ID; FA1; WB] (1,2,0);

    /* ---- conversions ---- */
    %instr flt.dw d, r {$1 = double($2);}
        [IF; ID; FA1; FA2; WB] (1,4,0);
    %instr int.wd r, d (int) {$1 = int($2);}
        [IF; ID; FA1; FA2; WB] (1,4,0);
    %instr flt.sw s, r {$1 = float($2);}
        [IF; ID; FA1; FA2; WB] (1,4,0);
    %instr int.ws r, s (int) {$1 = int($2);}
        [IF; ID; FA1; FA2; WB] (1,4,0);
    %instr fcvt.ds d, s {$1 = double($2);}
        [IF; ID; FA1; FA2; WB] (1,3,0);
    %instr fcvt.sd s, d (float) {$1 = float($2);}
        [IF; ID; FA1; FA2; WB] (1,3,0);

    /* ---- control: one delay slot (.n forms) ---- */
    %instr beq0.n r, #rlab {if ($1 == 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bne0.n r, #rlab {if ($1 != 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr blt0.n r, #rlab {if ($1 < 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr ble0.n r, #rlab {if ($1 <= 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bgt0.n r, #rlab {if ($1 > 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bge0.n r, #rlab {if ($1 >= 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr br.n #rlab {goto $1;} [IF; ID; EX] (1,2,1);
    %instr bsr #flab {call $1;} [IF; ID; EX; EX] (1,2,0);
    %instr jmp.r1 {ret;} [IF; ID; EX] (1,2,1);
    %instr nop {;} [IF; ID] (1,1,0);

    /* ---- moves ---- */
    %move [m.movs] or r, r, r[0] {$1 = $2;}
        [IF; ID; EX; WB] (1,1,0);
    %move *movd d, d {$1 = $2;} [] (0,0,0);

    /* ---- glue: big constants via or.u/or.l ---- */
    %glue #const32 { $1 ==> ((high($1) << 16) | low($1)); };

    /* ---- glue: compare + branch-on-condition (TOYP style) ---- */
    %glue r, r, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue r, r, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue d, d, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue d, d, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue d, d, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue d, d, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};

    %glue s, s, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue s, s, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue s, s, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue s, s, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue s, s, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue s, s, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};

    /* ---- single float move (same file as r, float view) ---- */
    %move fmov.ss s, s {$1 = $2;} [IF; ID; EX; WB] (1,1,0);

    /* ---- aux latencies: a store consuming an FP result needs an extra
       cycle through the shared write-back bus (section 5) ---- */
    %aux fadd.ddd : st.d (1.$1 == 2.$1) (6);
    %aux fmul.ddd : st.d (1.$1 == 2.$1) (7);
}
"""


def _movd(ctx) -> None:
    """88100 double move: two single moves over the r halves."""
    dst = ctx.reg_operand(0)
    src = ctx.reg_operand(1)
    for half in (0, 1):
        ctx.emit_labelled(
            "m.movs",
            ctx.reg("r", 2 * dst.index + half),
            ctx.reg("r", 2 * src.index + half),
            ctx.reg("r", 0),
        )


def build_m88000() -> TargetMachine:
    target = build_target(M88000_MARIL, name="m88000")
    target.register_func("movd", _movd)
    return target
