"""Intel i860 — the paper's most challenging target (sections 4.5-4.6).

Two instructions can issue per cycle (an integer-core operation and a
floating point operation); the floating point add and multiply pipelines
are *explicitly advanced* (EAPs).  Following the paper's model exactly:

* the floating point unit is a long instruction word whose fields are the
  three multiplier stages (``M1``/``M2``/``M3``), three adder stages
  (``A1``/``A2``/``A3``) and the write-back bus ``FWB``;
* each pipestage sub-operation is declared as an instruction occupying only
  its field's resource, so sub-operations pack into long instructions when
  their *classes* intersect (``M1`` + ``M3`` -> a ``pfmul``;
  ``M2`` + ``A1`` -> an ``m12apm`` dual-operation instruction);
* the latches between stages are *temporal registers* (``m1..m3`` on clock
  ``clk_m``, ``a1..a3`` on ``clk_a``); every sub-operation in a pipe
  affects that pipe's clock, so the scheduler's Rule 1 and the protection
  edges keep values alive without backtracking;
* the code selector produces sub-operation sequences through ``*func``
  escapes (the original's i860 description spent 399 lines of C on seven
  funcs, Table 1), including the chained ``A1M`` sub-operation that feeds
  the multiplier output straight into the adder pipe;
* the integer core runs in parallel: core instructions use the ``CORE``
  resource, disjoint from the floating point fields.

Idealisations (DESIGN.md): double-precision pipelines only (the paper's
evaluation is double-precision Livermore/NAS code); divide is one
long-latency instruction standing for the i860's reciprocal-iteration
sequence; compare/branch uses a generic-compare register idiom.
"""

from __future__ import annotations

from repro.cgg import build_target
from repro.machine.target import TargetMachine

I860_MARIL = r"""
declare {
    %reg r[0:31] (int);
    %reg f[0:31] (float);
    %reg d[0:15] (double);          /* doubles are even f pairs */
    %equiv d[0] f[0];

    %clock clk_m;                   /* multiplier EAP */
    %clock clk_a;                   /* adder EAP      */
    %reg m1 (double; clk_m) +temporal;
    %reg m2 (double; clk_m) +temporal;
    %reg m3 (double; clk_m) +temporal;
    %reg a1 (double; clk_a) +temporal;
    %reg a2 (double; clk_a) +temporal;
    %reg a3 (double; clk_a) +temporal;

    %resource CORE, CMEM;           /* integer core, load/store port */
    %resource FISSUE;               /* the single fp instruction slot:
                                       sub-operations of one long
                                       instruction share it via their
                                       fields; whole operations own it */
    %resource FM1, FM2, FM3;        /* multiplier fields */
    %resource FA1, FA2, FA3;        /* adder fields */
    %resource FWB;                  /* fp result write-back field */
    %resource FDIV;

    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-65536:65535] +relative;
    %label flab [-67108864:67108863] +abs;
    %memory m[0:268435455];
}

cwvm {
    %general (int) r;
    %general (float) f;
    %general (double) d;
    %allocable r[4:27], f[2:31], d[1:15];
    %calleesave r[4:15], f[2:7], d[1:3];
    %sp r[2] +down;
    %fp r[3] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[16] 1;
    %arg (int) r[17] 2;
    %arg (int) r[18] 3;
    %arg (int) r[19] 4;
    %arg (double) d[4] 1;
    %arg (double) d[5] 2;
    %arg (double) d[6] 3;
    %arg (double) d[7] 4;
    %arg (float) f[16] 1;
    %arg (float) f[17] 2;
    %result r[16] (int);
    %result d[4] (double);
    %result f[8] (float);
}

instr {
    /* ---- long-instruction-word elements (packing classes) ---- */
    %element pfadd, pfsub, pfmul, m12apm, m12asm, m12tpm, i2ap1, r2p1;

    /* ---- constants ---- */
    %instr adds r, r[0], #const16 (int) {$1 = $3;}
        [CORE] (1,1,0);
    %instr orh r, #uconst16 (int) {$1 = $2 << 16;}
        [CORE] (1,1,0);
    %instr or.l r, r, #uconst16 (int) {$1 = $2 | $3;}
        [CORE] (1,1,0);

    /* ---- integer core ---- */
    %instr addsi r, r, #const16 (int) {$1 = $2 + $3;} [CORE] (1,1,0);
    %instr adds r, r, r (int) {$1 = $2 + $3;} [CORE] (1,1,0);
    %instr subsi r, r, #const16 (int) {$1 = $2 - $3;} [CORE] (1,1,0);
    %instr subs r, r, r (int) {$1 = $2 - $3;} [CORE] (1,1,0);
    %instr neg r, r (int) {$1 = -$2;} [CORE] (1,1,0);
    %instr imul r, r, r (int) {$1 = $2 * $3;}
        [CORE; FM1; FM2; FM3] (1,4,0);
    %instr idiv r, r, r (int) {$1 = $2 / $3;}
        [CORE; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV] (1,37,0);
    %instr irem r, r, r (int) {$1 = $2 % $3;}
        [CORE; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV] (1,37,0);
    %instr andi r, r, #uconst16 (int) {$1 = $2 & $3;} [CORE] (1,1,0);
    %instr and r, r, r (int) {$1 = $2 & $3;} [CORE] (1,1,0);
    %instr or r, r, r (int) {$1 = $2 | $3;} [CORE] (1,1,0);
    %instr xori r, r, #uconst16 (int) {$1 = $2 ^ $3;} [CORE] (1,1,0);
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [CORE] (1,1,0);
    %instr not r, r (int) {$1 = ~$2;} [CORE] (1,1,0);
    %instr shli r, r, #const16 (int) {$1 = $2 << $3;} [CORE] (1,1,0);
    %instr shl r, r, r (int) {$1 = $2 << $3;} [CORE] (1,1,0);
    %instr shrai r, r, #const16 (int) {$1 = $2 >> $3;} [CORE] (1,1,0);
    %instr shra r, r, r (int) {$1 = $2 >> $3;} [CORE] (1,1,0);

    /* ---- compares (generic-compare register idiom) ---- */
    %instr cmpi r, r, #const16 (int) {$1 = $2 :: $3;} [CORE] (1,1,0);
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [CORE] (1,1,0);
    %instr fcmp.dd r, d, d {$1 = $2 :: $3;}
        [CORE; FA1; FA2] (1,3,0);
    %instr fcmp.ss r, f, f {$1 = $2 :: $3;}
        [CORE; FA1; FA2] (1,3,0);

    /* ---- memory (core pipeline, pipelined loads) ---- */
    %instr ld.l r, r, #const16 (int) {$1 = m[$2 + $3];}
        [CORE,CMEM; CMEM] (1,2,0);
    %instr st.l r, r, #const16 (int) {m[$2 + $3] = $1;}
        [CORE,CMEM; CMEM] (1,1,0);
    %instr fld.l f, r, #const16 (float) {$1 = m[$2 + $3];}
        [CORE,CMEM; CMEM] (1,2,0);
    %instr fst.l f, r, #const16 (float) {m[$2 + $3] = $1;}
        [CORE,CMEM; CMEM] (1,1,0);
    %instr fld.d d, r, #const16 (double) {$1 = m[$2 + $3];}
        [CORE,CMEM; CMEM] (1,3,0);
    %instr fst.d d, r, #const16 (double) {m[$2 + $3] = $1;}
        [CORE,CMEM; CMEM] (1,1,0);

    /* ---- explicitly advanced floating point pipelines (figure 5) ----
       Each sub-operation occupies one long-instruction-word field and
       affects its pipeline's clock; the classes list the long instructions
       the sub-operation may appear in. */
    %instr M1 d, d (double; clk_m) {m1 = $1 * $2;}
        [FM1] (1,1,0) <pfmul, m12apm, m12asm, m12tpm>;
    %instr M2 (double; clk_m) {m2 = m1;}
        [FM2] (1,1,0) <pfmul, m12apm, m12asm, m12tpm>;
    %instr M3 (double; clk_m) {m3 = m2;}
        [FM3] (1,1,0) <pfmul, m12apm, m12asm, m12tpm>;
    %instr FWBM d (double; clk_m) {$1 = m3;}
        [FWB] (1,1,0) <pfmul, m12apm, m12asm, m12tpm>;

    %instr A1 d, d (double; clk_a) {a1 = $1 + $2;}
        [FA1] (1,1,0) <pfadd, m12apm, i2ap1, r2p1>;
    %instr A1S d, d (double; clk_a) {a1 = $1 - $2;}
        [FA1] (1,1,0) <pfsub, m12asm>;
    %instr A2 (double; clk_a) {a2 = a1;}
        [FA2] (1,1,0) <pfadd, pfsub, m12apm, m12asm, i2ap1, r2p1>;
    %instr A3 (double; clk_a) {a3 = a2;}
        [FA3] (1,1,0) <pfadd, pfsub, m12apm, m12asm, i2ap1, r2p1>;
    %instr FWBA d (double; clk_a) {$1 = a3;}
        [FWB] (1,1,0) <pfadd, pfsub, m12apm, m12asm, i2ap1, r2p1>;

    /* chained sub-operation: adder takes the multiplier output directly
       (the T-register path between the pipelines, section 4.6) */
    %instr A1M d (double; clk_a) {a1 = m3 + $1;}
        [FA1] (1,1,0) <m12apm, m12tpm>;

    /* the *func escapes below expand to these sequences.  The fused
       multiply-add forms come first in the ordered pattern list: they
       chain the multiplier output straight into the adder pipe through
       the A1M sub-operation (the T-register path, section 4.6). */
    %instr *fmad d, d, d, d {$1 = ($2 * $3) + $4;} [] (0,0,0);
    %instr *fmadr d, d, d, d {$1 = $2 + ($3 * $4);} [] (0,0,0);
    %instr *fmuld d, d, d {$1 = $2 * $3;} [] (0,0,0);
    %instr *faddd d, d, d {$1 = $2 + $3;} [] (0,0,0);
    %instr *fsubd d, d, d {$1 = $2 - $3;} [] (0,0,0);

    /* ---- whole-operation double ops: unreachable in normal selection
       (the *func patterns above match first) but used by the temporal
       scheduling ablation.  Treating the EAP as an ordinary pipeline
       means one operation owns every stage until its result is written:
       operations cannot interleave stage-by-stage and nothing can pack
       into the unused fields (the drawbacks section 4.6 describes). ---- */
    %instr fadd.dd d, d, d {$1 = $2 + $3;}
        [FISSUE, FA1; FISSUE, FA2; FISSUE, FA3; FISSUE, FWB] (1,4,0);
    %instr fsub.dd d, d, d {$1 = $2 - $3;}
        [FISSUE, FA1; FISSUE, FA2; FISSUE, FA3; FISSUE, FWB] (1,4,0);
    %instr fmul.dd d, d, d {$1 = $2 * $3;}
        [FISSUE, FM1; FISSUE, FM2; FISSUE, FM3; FISSUE, FWB] (1,4,0);

    /* ---- remaining scalar fp (idealised, see module docstring) ---- */
    %instr fdiv.dd d, d, d {$1 = $2 / $3;}
        [FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV] (1,38,0);
    %instr fneg.dd d, d {$1 = -$2;} [FISSUE, FA1; FA2] (1,2,0);
    %instr fadd.ss f, f, f {$1 = $2 + $3;} [FISSUE, FA1; FA2; FA3] (1,3,0);
    %instr fsub.ss f, f, f {$1 = $2 - $3;} [FISSUE, FA1; FA2; FA3] (1,3,0);
    %instr fmul.ss f, f, f {$1 = $2 * $3;} [FISSUE, FM1; FM2; FM3] (1,3,0);
    %instr fdiv.ss f, f, f {$1 = $2 / $3;}
        [FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV;
         FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV; FDIV]
        (1,22,0);
    %instr fneg.ss f, f {$1 = -$2;} [FA1; FA2] (1,2,0);

    /* ---- conversions ---- */
    %instr fcvt.dw d, r {$1 = double($2);} [CORE; FA1; FA2] (1,3,0);
    %instr fcvt.wd r, d (int) {$1 = int($2);} [CORE; FA1; FA2] (1,3,0);
    %instr fcvt.sw f, r {$1 = float($2);} [CORE; FA1; FA2] (1,3,0);
    %instr fcvt.ws r, f (int) {$1 = int($2);} [CORE; FA1; FA2] (1,3,0);
    %instr fcvt.ds d, f {$1 = double($2);} [FA1; FA2] (1,2,0);
    %instr fcvt.sd f, d (float) {$1 = float($2);} [FA1; FA2] (1,2,0);

    /* ---- control: one delay slot ---- */
    %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [CORE] (1,2,1);
    %instr bne0 r, #rlab {if ($1 != 0) goto $2;} [CORE] (1,2,1);
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [CORE] (1,2,1);
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [CORE] (1,2,1);
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [CORE] (1,2,1);
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [CORE] (1,2,1);
    %instr bte r, r, #rlab {if ($1 == $2) goto $3;} [CORE] (1,2,1);
    %instr btne r, r, #rlab {if ($1 != $2) goto $3;} [CORE] (1,2,1);
    %instr br #rlab {goto $1;} [CORE] (1,2,1);
    %instr call #flab {call $1;} [CORE; CORE] (1,2,0);
    %instr bri.r1 {ret;} [CORE] (1,2,1);
    %instr nop {;} [CORE] (1,1,0);

    /* ---- moves ---- */
    %move [i.movs] shl r, r[0], r {$1 = $3;} [CORE] (1,1,0);
    %move fmov.ss f, f {$1 = $2;} [FA1] (1,1,0);
    %move *movd d, d {$1 = $2;} [] (0,0,0);

    /* ---- glue ---- */
    %glue #const32 { $1 ==> ((high($1) << 16) | low($1)); };
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue d, d, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue d, d, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue d, d, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue d, d, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue f, f, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue f, f, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue f, f, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue f, f, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue f, f, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue f, f, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
}
"""


def _movd(ctx) -> None:
    """Double move via the float halves (fmov.ss pairs)."""
    dst = ctx.reg_operand(0)
    src = ctx.reg_operand(1)
    for half in (0, 1):
        ctx.emit(
            "fmov.ss",
            ctx.reg("f", 2 * dst.index + half),
            ctx.reg("f", 2 * src.index + half),
        )


def _fmuld(ctx) -> None:
    """Launch, advance (x2) and catch a double multiply (figure 5b)."""
    dst = ctx.reg_operand(0)
    ctx.emit("M1", ctx.reg_operand(1), ctx.reg_operand(2))
    ctx.emit("M2")
    ctx.emit("M3")
    ctx.emit("FWBM", dst)


def _faddd(ctx) -> None:
    dst = ctx.reg_operand(0)
    ctx.emit("A1", ctx.reg_operand(1), ctx.reg_operand(2))
    ctx.emit("A2")
    ctx.emit("A3")
    ctx.emit("FWBA", dst)


def _fsubd(ctx) -> None:
    dst = ctx.reg_operand(0)
    ctx.emit("A1S", ctx.reg_operand(1), ctx.reg_operand(2))
    ctx.emit("A2")
    ctx.emit("A3")
    ctx.emit("FWBA", dst)


def _chain_mul_add(ctx, mul_a, mul_b, addend, dst) -> None:
    """Multiply, then feed m3 into the adder pipe without a write-back
    (the i860's pipeline chaining through the T register)."""
    ctx.emit("M1", mul_a, mul_b)
    ctx.emit("M2")
    ctx.emit("M3")
    ctx.emit("A1M", addend)  # a1 = m3 + addend
    ctx.emit("A2")
    ctx.emit("A3")
    ctx.emit("FWBA", dst)


def _fmad(ctx) -> None:
    """$1 = ($2 * $3) + $4"""
    _chain_mul_add(
        ctx,
        ctx.reg_operand(1),
        ctx.reg_operand(2),
        ctx.reg_operand(3),
        ctx.reg_operand(0),
    )


def _fmadr(ctx) -> None:
    """$1 = $2 + ($3 * $4)"""
    _chain_mul_add(
        ctx,
        ctx.reg_operand(2),
        ctx.reg_operand(3),
        ctx.reg_operand(1),
        ctx.reg_operand(0),
    )


class _scalar:
    """Ablation variant: the escape emits one scalar (non-pipelined)
    instruction instead of the explicitly-advanced sub-operation
    sequence.  A class rather than a closure so the built target stays
    picklable for the artifact cache."""

    def __init__(self, mnemonic: str):
        self.mnemonic = mnemonic

    def __call__(self, ctx) -> None:
        ctx.emit(
            self.mnemonic,
            ctx.reg_operand(0),
            ctx.reg_operand(1),
            ctx.reg_operand(2),
        )


def build_i860(eap: bool = True) -> TargetMachine:
    """Build the i860; ``eap=False`` treats the floating point pipelines as
    ordinary pipelines (the alternative section 4.6 argues against)."""
    target = build_target(I860_MARIL, name="i860" if eap else "i860-scalar")
    target.register_func("movd", _movd)
    if eap:
        target.register_func("fmuld", _fmuld)
        target.register_func("faddd", _faddd)
        target.register_func("fsubd", _fsubd)
        target.register_func("fmad", _fmad)
        target.register_func("fmadr", _fmadr)
    else:
        target.register_func("fmuld", _scalar("fmul.dd"))
        target.register_func("faddd", _scalar("fadd.dd"))
        target.register_func("fsubd", _scalar("fsub.dd"))
        target.register_func("fmad", _scalar_mul_add)
        target.register_func("fmadr", _scalar_mul_add_right)
    return target


def _scalar_mul_add(ctx) -> None:
    """Ablation variant of *fmad: separate scalar multiply and add."""
    temp = ctx.new_pseudo("double")
    ctx.emit("fmul.dd", temp, ctx.reg_operand(1), ctx.reg_operand(2))
    ctx.emit("fadd.dd", ctx.reg_operand(0), temp, ctx.reg_operand(3))


def _scalar_mul_add_right(ctx) -> None:
    temp = ctx.new_pseudo("double")
    ctx.emit("fmul.dd", temp, ctx.reg_operand(2), ctx.reg_operand(3))
    ctx.emit("fadd.dd", ctx.reg_operand(0), ctx.reg_operand(1), temp)
