"""MIPS R2000 — the paper's primary evaluation target.

Modelled after the R2000/R3010 pair the DECstation uses: 32 integer
registers (r0 hard-wired to zero, standard o32-style roles), 32 single
floats overlaid by 16 even-pair doubles, a floating-point condition flag
(``fcc``) written by compares and read by ``bc1t``/``bc1f``, one branch
delay slot, 2-cycle loads and R3010 floating-point latencies.  Big
constants and global addresses split into ``lui``/``ori`` halves through a
glue rule with the ``high``/``low`` builtins; the double move is the
``*movd`` escape (MIPS-I ``mov.d`` really is two ``mov.s``).

Idealisations (documented in DESIGN.md): conversions are single
instructions (hardware needs ``mtc1``/``mfc1`` shuffles), and ``mul``/
``div`` stand for the ``mult``/``mflo`` macro sequences with their
combined latency.
"""

from __future__ import annotations

from repro.cgg import build_target
from repro.machine.target import TargetMachine

R2000_MARIL = r"""
declare {
    %reg r[0:31] (int);
    %reg f[0:31] (float);
    %reg d[0:15] (double);          /* doubles are even f pairs */
    %equiv d[0] f[0];
    %reg fcc[0:0] (int);            /* floating point condition flag */
    %resource IF, ID, EX, MEM, WB;  /* integer pipeline */
    %resource MD;                   /* multiply/divide unit */
    %resource FPA1, FPA2;           /* R3010 adder stages */
    %resource FPM1, FPM2, FPM3;     /* multiplier stages */
    %resource FPD;                  /* divide unit (not pipelined) */
    %def const16 [-32768:32767];
    %def uconst16 [0:65535];
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-131072:131071] +relative;
    %label flab [-134217728:134217727] +abs;
    %memory m[0:268435455];
}

cwvm {
    %general (int) r;
    %general (float) f;
    %general (double) d;
    %allocable r[2:25], f[0:19], d[0:15], fcc[0:0];
    %calleesave r[16:23], d[10:15];
    %sp r[29] +down;
    %fp r[30] +down;
    %gp r[28];
    %retaddr r[31];
    %hard r[0] 0;
    %arg (int) r[4] 1;
    %arg (int) r[5] 2;
    %arg (int) r[6] 3;
    %arg (int) r[7] 4;
    %arg (double) d[6] 1;
    %arg (double) d[7] 2;
    %arg (float) f[12] 1;
    %arg (float) f[14] 2;
    %result r[2] (int);
    %result d[0] (double);
    %result f[0] (float);
}

instr {
    /* ---- constants and addresses: immediate forms first ---- */
    %instr addiu r, r[0], #const16 (int) {$1 = $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr lui r, #uconst16 (int) {$1 = $2 << 16;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr ori r, r, #uconst16 (int) {$1 = $2 | $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);

    /* ---- integer ALU ---- */
    %instr addiu r, r, #const16 (int) {$1 = $2 + $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr addu r, r, r (int) {$1 = $2 + $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr subu r, r, r (int) {$1 = $2 - $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr negu r, r (int) {$1 = -$2;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr mul r, r, r (int) {$1 = $2 * $3;}
        [IF; ID; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD] (1,12,0);
    %instr div r, r, r (int) {$1 = $2 / $3;}
        [IF; ID; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD] (1,35,0);
    %instr rem r, r, r (int) {$1 = $2 % $3;}
        [IF; ID; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD; MD;
         MD] (1,35,0);
    %instr andi r, r, #uconst16 (int) {$1 = $2 & $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr and r, r, r (int) {$1 = $2 & $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr or r, r, r (int) {$1 = $2 | $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr xori r, r, #uconst16 (int) {$1 = $2 ^ $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr xor r, r, r (int) {$1 = $2 ^ $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr nor r, r (int) {$1 = ~$2;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr sll r, r, #const16 (int) {$1 = $2 << $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr sllv r, r, r (int) {$1 = $2 << $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr sra r, r, #const16 (int) {$1 = $2 >> $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr srav r, r, r (int) {$1 = $2 >> $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr slti r, r, #const16 (int) {$1 = $2 < $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr slt r, r, r (int) {$1 = $2 < $3;}
        [IF; ID; EX; MEM; WB] (1,1,0);

    /* ---- memory: 2-cycle loads (one load delay slot, interlocked) ---- */
    %instr lw r, r, #const16 (int) {$1 = m[$2 + $3];}
        [IF; ID; EX; MEM; WB] (1,2,0);
    %instr sw r, r, #const16 (int) {m[$2 + $3] = $1;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr l.s f, r, #const16 (float) {$1 = m[$2 + $3];}
        [IF; ID; EX; MEM; WB] (1,2,0);
    %instr s.s f, r, #const16 (float) {m[$2 + $3] = $1;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %instr l.d d, r, #const16 (double) {$1 = m[$2 + $3];}
        [IF; ID; EX; MEM; MEM; WB] (1,3,0);
    %instr s.d d, r, #const16 (double) {m[$2 + $3] = $1;}
        [IF; ID; EX; MEM; MEM; WB] (1,1,0);

    /* ---- R3010 floating point ---- */
    %instr add.d d, d, d {$1 = $2 + $3;}
        [IF; ID; FPA1; FPA2] (1,2,0);
    %instr sub.d d, d, d {$1 = $2 - $3;}
        [IF; ID; FPA1; FPA2] (1,2,0);
    %instr mul.d d, d, d {$1 = $2 * $3;}
        [IF; ID; FPM1; FPM2; FPM2; FPM3; FPM3] (1,5,0);
    %instr div.d d, d, d {$1 = $2 / $3;}
        [IF; ID; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD;
         FPD; FPD; FPD; FPD; FPD; FPD; FPD] (1,19,0);
    %instr neg.d d, d {$1 = -$2;}
        [IF; ID; FPA1] (1,1,0);
    %instr add.s f, f, f {$1 = $2 + $3;}
        [IF; ID; FPA1; FPA2] (1,2,0);
    %instr sub.s f, f, f {$1 = $2 - $3;}
        [IF; ID; FPA1; FPA2] (1,2,0);
    %instr mul.s f, f, f {$1 = $2 * $3;}
        [IF; ID; FPM1; FPM2; FPM2; FPM3] (1,4,0);
    %instr div.s f, f, f {$1 = $2 / $3;}
        [IF; ID; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD; FPD]
        (1,12,0);
    %instr neg.s f, f {$1 = -$2;}
        [IF; ID; FPA1] (1,1,0);

    /* ---- conversions (idealised single instructions) ---- */
    %instr cvt.d.w d, r {$1 = double($2);}
        [IF; ID; FPA1; FPA2; FPA2] (1,4,0);
    %instr cvt.w.d r, d (int) {$1 = int($2);}
        [IF; ID; FPA1; FPA2; FPA2] (1,4,0);
    %instr cvt.s.w f, r {$1 = float($2);}
        [IF; ID; FPA1; FPA2; FPA2] (1,4,0);
    %instr cvt.w.s r, f (int) {$1 = int($2);}
        [IF; ID; FPA1; FPA2; FPA2] (1,4,0);
    %instr cvt.d.s d, f {$1 = double($2);}
        [IF; ID; FPA1; FPA2] (1,2,0);
    %instr cvt.s.d f, d {$1 = float($2);}
        [IF; ID; FPA1; FPA2] (1,2,0);

    /* ---- floating point compares: write the condition flag ---- */
    %instr c.eq.d fcc, d, d {$1 = $2 == $3;}
        [IF; ID; FPA1] (1,2,0);
    %instr c.lt.d fcc, d, d {$1 = $2 < $3;}
        [IF; ID; FPA1] (1,2,0);
    %instr c.eq.s fcc, f, f {$1 = $2 == $3;}
        [IF; ID; FPA1] (1,2,0);
    %instr c.lt.s fcc, f, f {$1 = $2 < $3;}
        [IF; ID; FPA1] (1,2,0);

    /* ---- control: one branch delay slot ---- */
    %instr beq r, r, #rlab {if ($1 == $2) goto $3;} [IF; ID; EX] (1,2,1);
    %instr bne r, r, #rlab {if ($1 != $2) goto $3;} [IF; ID; EX] (1,2,1);
    %instr blez r, #rlab {if ($1 <= 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bgtz r, #rlab {if ($1 > 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bltz r, #rlab {if ($1 < 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bgez r, #rlab {if ($1 >= 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bc1t fcc, #rlab {if ($1 != 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr bc1f fcc, #rlab {if ($1 == 0) goto $2;} [IF; ID; EX] (1,2,1);
    %instr j #rlab {goto $1;} [IF; ID; EX] (1,2,1);
    %instr jal #flab {call $1;} [IF; ID; EX; EX] (1,2,0);
    %instr jr.ra {ret;} [IF; ID; EX] (1,2,1);
    %instr nop {;} [IF; ID] (1,1,0);

    /* ---- moves ---- */
    %move [m.movs] move r, r, r[0] {$1 = $2;}
        [IF; ID; EX; MEM; WB] (1,1,0);
    %move [m.fmovs] mov.s f, f {$1 = $2;}
        [IF; ID; FPA1] (1,1,0);
    %move *movd d, d {$1 = $2;} [] (0,0,0);
    %move movcc fcc, fcc {$1 = $2;} [IF; ID; EX] (1,1,0);

    /* ---- glue: big constants/addresses split into lui/ori halves ---- */
    %glue #const32 { $1 ==> ((high($1) << 16) | low($1)); };

    /* ---- glue: general integer relational branches through slt ---- */
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 < $2) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 < $2) == 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($2 < $1) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($2 < $1) == 0) goto $3;};

    /* ---- glue: floating branches through the condition flag ---- */
    %glue d, d, #rlab {if ($1 < $2) goto $3 ==> if (($1 < $2) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 >= $2) goto $3 ==> if (($1 < $2) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 > $2) goto $3 ==> if (($2 < $1) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 <= $2) goto $3 ==> if (($2 < $1) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 == $2) goto $3 ==> if (($1 == $2) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 != $2) goto $3 ==> if (($1 == $2) == 0) goto $3;};
    %glue f, f, #rlab {if ($1 < $2) goto $3 ==> if (($1 < $2) != 0) goto $3;};
    %glue f, f, #rlab {if ($1 >= $2) goto $3 ==> if (($1 < $2) == 0) goto $3;};
    %glue f, f, #rlab {if ($1 > $2) goto $3 ==> if (($2 < $1) != 0) goto $3;};
    %glue f, f, #rlab {if ($1 <= $2) goto $3 ==> if (($2 < $1) == 0) goto $3;};
    %glue f, f, #rlab {if ($1 == $2) goto $3 ==> if (($1 == $2) != 0) goto $3;};
    %glue f, f, #rlab {if ($1 != $2) goto $3 ==> if (($1 == $2) == 0) goto $3;};
}
"""


def _movd(ctx) -> None:
    """MIPS-I double move: two single moves over the f halves."""
    dst = ctx.reg_operand(0)
    src = ctx.reg_operand(1)
    for half in (0, 1):
        ctx.emit_labelled(
            "m.fmovs",
            ctx.reg("f", 2 * dst.index + half),
            ctx.reg("f", 2 * src.index + half),
        )


def build_r2000() -> TargetMachine:
    target = build_target(R2000_MARIL, name="r2000")
    target.register_func("movd", _movd)
    return target
