"""Built-in target machine descriptions.

Four targets, as in the paper: TOYP (the tutorial machine of figures 1-3),
the MIPS R2000, the Motorola 88000 and the Intel i860 (dual issue,
explicitly advanced floating point pipelines, packing classes).

:func:`load_target` builds a :class:`TargetMachine` by name.  Building a
target means lexing, parsing and semantically checking its Maril
description and then running the code generator generator over it — a
few hundred milliseconds of pure-Python work that the evaluation harness
used to repeat for every compile.  Results are therefore memoized
per process: repeated ``load_target("r2000")`` calls return the *same*
:class:`TargetMachine` instance, which is safe because compilation never
mutates a target (enforced by ``tests/test_target_cache.py``).  Pass
``fresh=True`` to bypass the cache and get a private instance — useful
when an experiment wants to monkeypatch a description in place.

On top of the in-process memo sits the persistent artifact cache
(:mod:`repro.cache`): the built target is pickled under a content key
derived from the variant name and its Maril source text, so a *new
process* unpickles ~50 KB instead of re-running the CGG.  ``fresh=True``
bypasses and invalidates both layers — the disk entry is deleted and the
private instance is written nowhere.
"""

from __future__ import annotations

from typing import Callable

from repro.cache import get_cache
from repro.errors import MarionError
from repro.machine.target import TargetMachine
from repro.utils import timing

TARGET_NAMES = ("toyp", "r2000", "m88000", "i860")

#: name -> memoized TargetMachine (process-local)
_CACHE: dict[str, TargetMachine] = {}

#: name -> how many times the Maril description was actually CGG-built
_BUILD_COUNTS: dict[str, int] = {}


def _build(name: str) -> TargetMachine:
    if name == "toyp":
        from repro.targets.toyp import build_toyp

        builder = build_toyp
    elif name == "r2000":
        from repro.targets.r2000 import build_r2000

        builder = build_r2000
    elif name == "m88000":
        from repro.targets.m88000 import build_m88000

        builder = build_m88000
    elif name == "i860":
        from repro.targets.i860 import build_i860

        builder = build_i860
    else:
        raise MarionError(
            f"unknown target {name!r}; known: {', '.join(TARGET_NAMES)}"
        )
    _BUILD_COUNTS[name] = _BUILD_COUNTS.get(name, 0) + 1
    with timing.phase(f"target_build.{name}"):
        return builder()


def _target_key(variant: str, source: str) -> str:
    """Disk-cache key for a built target: variant name + Maril source
    (the code-version salt rides inside :meth:`ArtifactCache.key`)."""
    return get_cache().key("target", variant, source)


def _disk_load(variant: str, source: str) -> TargetMachine | None:
    """The pickled target for (variant, source), or None on a miss."""
    store = get_cache()
    if not store.enabled:
        return None
    key = _target_key(variant, source)
    target = store.get("target", key)
    if target is None:
        return None
    if not isinstance(target, TargetMachine) or target.name != variant:
        # a key collision or foreign artifact — rebuild cleanly
        store.invalidate("target", key)
        return None
    timing.add("target_cache.disk_hit")
    target.content_key = key
    return target


def _disk_store(variant: str, source: str, target: TargetMachine) -> None:
    store = get_cache()
    if not store.enabled:
        return
    key = _target_key(variant, source)
    target.content_key = key
    store.put("target", key, target)


def load_cached_variant(
    variant: str, source: str, builder: Callable[[], TargetMachine]
) -> TargetMachine:
    """Build-or-load a *named variant* through the disk layer only.

    For targets outside the :data:`TARGET_NAMES` table (the ablation's
    i860 EAP-off variant): no in-process memo here — callers keep their
    own — but the CGG build is skipped when the disk artifact exists.
    """
    target = _disk_load(variant, source)
    if target is not None:
        return target
    target = builder()
    _disk_store(variant, source, target)
    return target


def load_target(name: str, fresh: bool = False) -> TargetMachine:
    """Build the named target from its Maril description.

    Cached per process: the description is parsed and CGG-built at most
    once per name, and the build is published to the persistent artifact
    cache so later *processes* skip the CGG too.  ``fresh=True``
    bypasses both cache layers and invalidates the disk entry (the
    returned instance is private: it is stored nowhere, and any cached
    in-process instance is left alone).
    """
    if fresh:
        timing.add("target_cache.bypass")
        store = get_cache()
        if store.enabled and name in TARGET_NAMES:
            store.invalidate("target", _target_key(name, maril_source(name)))
        return _build(name)
    cached = _CACHE.get(name)
    if cached is not None:
        timing.add("target_cache.hit")
        return cached
    timing.add("target_cache.miss")
    target = None
    source = maril_source(name) if name in TARGET_NAMES else None
    if source is not None:
        target = _disk_load(name, source)
    if target is None:
        target = _build(name)
        if source is not None:
            _disk_store(name, source, target)
    _CACHE[name] = target
    return target


def clear_target_cache() -> None:
    """Forget every cached target (build counts are kept)."""
    _CACHE.clear()


def target_build_count(name: str) -> int:
    """How many times ``name`` has been CGG-built in this process."""
    return _BUILD_COUNTS.get(name, 0)


def maril_source(name: str) -> str:
    """The Maril description text for a built-in target (for Table 1)."""
    if name == "toyp":
        from repro.targets.toyp import TOYP_MARIL

        return TOYP_MARIL
    if name == "r2000":
        from repro.targets.r2000 import R2000_MARIL

        return R2000_MARIL
    if name == "m88000":
        from repro.targets.m88000 import M88000_MARIL

        return M88000_MARIL
    if name == "i860":
        from repro.targets.i860 import I860_MARIL

        return I860_MARIL
    raise MarionError(f"unknown target {name!r}")
