"""Built-in target machine descriptions.

Four targets, as in the paper: TOYP (the tutorial machine of figures 1-3),
the MIPS R2000, the Motorola 88000 and the Intel i860 (dual issue,
explicitly advanced floating point pipelines, packing classes).

:func:`load_target` builds a :class:`TargetMachine` by name.  Building a
target means lexing, parsing and semantically checking its Maril
description and then running the code generator generator over it — a
few hundred milliseconds of pure-Python work that the evaluation harness
used to repeat for every compile.  Results are therefore memoized
per process: repeated ``load_target("r2000")`` calls return the *same*
:class:`TargetMachine` instance, which is safe because compilation never
mutates a target (enforced by ``tests/test_target_cache.py``).  Pass
``fresh=True`` to bypass the cache and get a private instance — useful
when an experiment wants to monkeypatch a description in place.
"""

from __future__ import annotations

from repro.errors import MarionError
from repro.machine.target import TargetMachine
from repro.utils import timing

TARGET_NAMES = ("toyp", "r2000", "m88000", "i860")

#: name -> memoized TargetMachine (process-local)
_CACHE: dict[str, TargetMachine] = {}

#: name -> how many times the Maril description was actually CGG-built
_BUILD_COUNTS: dict[str, int] = {}


def _build(name: str) -> TargetMachine:
    if name == "toyp":
        from repro.targets.toyp import build_toyp

        builder = build_toyp
    elif name == "r2000":
        from repro.targets.r2000 import build_r2000

        builder = build_r2000
    elif name == "m88000":
        from repro.targets.m88000 import build_m88000

        builder = build_m88000
    elif name == "i860":
        from repro.targets.i860 import build_i860

        builder = build_i860
    else:
        raise MarionError(
            f"unknown target {name!r}; known: {', '.join(TARGET_NAMES)}"
        )
    _BUILD_COUNTS[name] = _BUILD_COUNTS.get(name, 0) + 1
    with timing.phase(f"target_build.{name}"):
        return builder()


def load_target(name: str, fresh: bool = False) -> TargetMachine:
    """Build the named target from its Maril description.

    Cached per process: the description is parsed and CGG-built at most
    once per name.  ``fresh=True`` bypasses the cache both ways (the
    returned instance is not stored, and any cached instance is left
    alone).
    """
    if fresh:
        timing.add("target_cache.bypass")
        return _build(name)
    cached = _CACHE.get(name)
    if cached is not None:
        timing.add("target_cache.hit")
        return cached
    timing.add("target_cache.miss")
    target = _build(name)
    _CACHE[name] = target
    return target


def clear_target_cache() -> None:
    """Forget every cached target (build counts are kept)."""
    _CACHE.clear()


def target_build_count(name: str) -> int:
    """How many times ``name`` has been CGG-built in this process."""
    return _BUILD_COUNTS.get(name, 0)


def maril_source(name: str) -> str:
    """The Maril description text for a built-in target (for Table 1)."""
    if name == "toyp":
        from repro.targets.toyp import TOYP_MARIL

        return TOYP_MARIL
    if name == "r2000":
        from repro.targets.r2000 import R2000_MARIL

        return R2000_MARIL
    if name == "m88000":
        from repro.targets.m88000 import M88000_MARIL

        return M88000_MARIL
    if name == "i860":
        from repro.targets.i860 import I860_MARIL

        return I860_MARIL
    raise MarionError(f"unknown target {name!r}")
