"""Built-in target machine descriptions.

Four targets, as in the paper: TOYP (the tutorial machine of figures 1-3),
the MIPS R2000, the Motorola 88000 and the Intel i860 (dual issue,
explicitly advanced floating point pipelines, packing classes).

:func:`load_target` builds a fresh :class:`TargetMachine` by name.
"""

from __future__ import annotations

from repro.errors import MarionError
from repro.machine.target import TargetMachine

TARGET_NAMES = ("toyp", "r2000", "m88000", "i860")


def load_target(name: str) -> TargetMachine:
    """Build the named target from its Maril description."""
    if name == "toyp":
        from repro.targets.toyp import build_toyp

        return build_toyp()
    if name == "r2000":
        from repro.targets.r2000 import build_r2000

        return build_r2000()
    if name == "m88000":
        from repro.targets.m88000 import build_m88000

        return build_m88000()
    if name == "i860":
        from repro.targets.i860 import build_i860

        return build_i860()
    raise MarionError(f"unknown target {name!r}; known: {', '.join(TARGET_NAMES)}")


def maril_source(name: str) -> str:
    """The Maril description text for a built-in target (for Table 1)."""
    if name == "toyp":
        from repro.targets.toyp import TOYP_MARIL

        return TOYP_MARIL
    if name == "r2000":
        from repro.targets.r2000 import R2000_MARIL

        return R2000_MARIL
    if name == "m88000":
        from repro.targets.m88000 import M88000_MARIL

        return M88000_MARIL
    if name == "i860":
        from repro.targets.i860 import I860_MARIL

        return I860_MARIL
    raise MarionError(f"unknown target {name!r}")
