"""TOYP — the paper's tutorial target (figures 1-3), completed.

The paper's TOYP shows five operations; this description fills in the rest
of a usable instruction set (integer/double arithmetic, all six relational
branches, conversions) in the same style: a 5-stage integer pipeline
IF/ID/IE/IA/IW and a 5-stage floating-point pipe F1..F5, one delay slot on
branches, 3-cycle loads, and the ``%aux`` override that stretches
``fadd.d`` -> ``st.d`` latency from 6 to 7 cycles exactly as in figure 3.

Double registers overlay the integer registers (``%equiv``); the double
move is the paper's ``*movd`` escape function generating two single moves.
"""

from __future__ import annotations

from repro.cgg import build_target
from repro.machine.target import TargetMachine

TOYP_MARIL = r"""
declare {
    %reg r[0:7] (int);               /* integer registers            */
    %reg d[0:3] (double);            /* doubles overlay the r regs   */
    %equiv d[0] r[0];
    %resource IF, ID, IE, IA, IW;    /* fetch decode execute access writeback */
    %resource F1, F2, F3, F4, F5;    /* floating point pipe          */
    %def const16 [-32768:32767];     /* signed immediate             */
    %def const32 [-2147483648:2147483647] +abs;
    %label rlab [-32768:32767] +relative;   /* branch offset         */
    %label flab [-134217728:134217727] +abs; /* call target          */
    %memory m[0:268435455];
}

cwvm {
    %general (int) r;
    %general (double) d;
    %allocable r[1:5], d[1:2];
    %calleesave r[4:7];
    %sp r[7] +down;
    %fp r[6] +down;
    %retaddr r[1];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %arg (double) d[1] 1;
    %result r[2] (int);
    %result d[1] (double);
}

instr {
    /* ---- integer ALU: immediate forms first (ordered pattern list) ---- */
    %instr add r, r[0], #const16 (int) {$1 = $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr la r, #const32 (int) {$1 = $2;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr addi r, r, #const16 (int) {$1 = $2 + $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr subi r, r, #const16 (int) {$1 = $2 - $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr add r, r, r (int) {$1 = $2 + $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr sub r, r, r (int) {$1 = $2 - $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr neg r, r (int) {$1 = -$2;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr mul r, r, r (int) {$1 = $2 * $3;}
        [IF; ID; IE; IE; IE; IA; IW] (1,3,0);
    %instr div r, r, r (int) {$1 = $2 / $3;}
        [IF; ID; IE; IE; IE; IE; IE; IE; IE; IE; IA; IW] (1,10,0);
    %instr rem r, r, r (int) {$1 = $2 % $3;}
        [IF; ID; IE; IE; IE; IE; IE; IE; IE; IE; IA; IW] (1,10,0);
    %instr andi r, r, #const16 (int) {$1 = $2 & $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr and r, r, r (int) {$1 = $2 & $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr ori r, r, #const16 (int) {$1 = $2 | $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr or r, r, r (int) {$1 = $2 | $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr xori r, r, #const16 (int) {$1 = $2 ^ $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr xor r, r, r (int) {$1 = $2 ^ $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr not r, r (int) {$1 = ~$2;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr slli r, r, #const16 (int) {$1 = $2 << $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr sll r, r, r (int) {$1 = $2 << $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr srai r, r, #const16 (int) {$1 = $2 >> $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr sra r, r, r (int) {$1 = $2 >> $3;}
        [IF; ID; IE; IA; IW] (1,1,0);

    /* ---- compares (generic compare '::' as in figure 3) ---- */
    %instr cmpi r, r, #const16 (int) {$1 = $2 :: $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr cmp r, r, r (int) {$1 = $2 :: $3;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr fcmp.d r, d, d {$1 = $2 :: $3;}
        [IF; ID; F1,ID; F1; F2; F3] (1,4,0);

    /* ---- memory ---- */
    %instr ld r, r, #const16 (int) {$1 = m[$2 + $3];}
        [IF; ID; IE; IA; IW] (1,3,0);
    %instr st r, r, #const16 (int) {m[$2 + $3] = $1;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %instr ld.d d, r, #const16 (double) {$1 = m[$2 + $3];}
        [IF; ID; IE; IA; IA; IW] (1,4,0);
    %instr st.d d, r, #const16 (double) {m[$2 + $3] = $1;}
        [IF; ID; IE; IA; IA; IW] (1,1,0);

    /* ---- double float pipe ---- */
    %instr fadd.d d, d, d {$1 = $2 + $3;}
        [IF; ID; F1,ID; F1; F2; F3; F4; F5,IW] (1,6,0);
    %instr fsub.d d, d, d {$1 = $2 - $3;}
        [IF; ID; F1,ID; F1; F2; F3; F4; F5,IW] (1,6,0);
    %instr fmul.d d, d, d {$1 = $2 * $3;}
        [IF; ID; F1,ID; F1; F2; F2; F3; F4; F5,IW] (1,7,0);
    %instr fdiv.d d, d, d {$1 = $2 / $3;}
        [IF; ID; F1,ID; F1; F1; F1; F1; F1; F1; F1; F1; F2; F3; F4; F5,IW] (1,14,0);
    %instr fneg.d d, d {$1 = -$2;}
        [IF; ID; F1,ID; F1; F2] (1,3,0);

    /* ---- conversions ---- */
    %instr cvt.d.w d, r {$1 = double($2);}
        [IF; ID; F1,ID; F1; F2; F3] (1,4,0);
    %instr cvt.w.d r, d (int) {$1 = int($2);}
        [IF; ID; F1,ID; F1; F2; F3] (1,4,0);

    /* ---- control: one always-executed delay slot ---- */
    %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr bne0 r, #rlab {if ($1 != 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr blt0 r, #rlab {if ($1 < 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr ble0 r, #rlab {if ($1 <= 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr bgt0 r, #rlab {if ($1 > 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr bge0 r, #rlab {if ($1 >= 0) goto $2;} [IF; ID; IE] (1,2,1);
    %instr jmp #rlab {goto $1;} [IF; ID; IE] (1,2,1);
    %instr call #flab {call $1;} [IF; ID; IE; IE] (1,2,0);
    %instr ret {ret;} [IF; ID; IE] (1,2,1);
    %instr nop {;} [IF; ID] (1,1,0);

    /* ---- moves (figure 3) ---- */
    %move [s.movs] add r, r, r[0] {$1 = $2;}
        [IF; ID; IE; IA; IW] (1,1,0);
    %move *movd d, d {$1 = $2;} [] (0,0,0);
    %move fmov.d d, d {$1 = $2;}
        [IF; ID; F1,ID; F1; F2] (1,2,0);

    /* ---- auxiliary latency (figure 3): fadd.d feeding a store of the
       same register takes 7 cycles, not 6 ---- */
    %aux fadd.d : st.d (1.$1 == 2.$1) (7);

    /* ---- glue: rewrite two-register branches into compare + branch-on
       -zero (figure 3), and double branches through fcmp.d ---- */
    %glue r, r, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue r, r, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue r, r, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue r, r, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue r, r, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue r, r, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
    %glue d, d, #rlab {if ($1 == $2) goto $3 ==> if (($1 :: $2) == 0) goto $3;};
    %glue d, d, #rlab {if ($1 != $2) goto $3 ==> if (($1 :: $2) != 0) goto $3;};
    %glue d, d, #rlab {if ($1 < $2) goto $3 ==> if (($1 :: $2) < 0) goto $3;};
    %glue d, d, #rlab {if ($1 <= $2) goto $3 ==> if (($1 :: $2) <= 0) goto $3;};
    %glue d, d, #rlab {if ($1 > $2) goto $3 ==> if (($1 :: $2) > 0) goto $3;};
    %glue d, d, #rlab {if ($1 >= $2) goto $3 ==> if (($1 :: $2) >= 0) goto $3;};
}
"""


def _movd(ctx) -> None:
    """The paper's ``*movd`` escape: a double move is two single moves.

    Only meaningful after register allocation, when the halves of each
    ``d`` register are known ``r`` registers (d[i] overlays r[2i], r[2i+1]).
    """
    dst = ctx.reg_operand(0)
    src = ctx.reg_operand(1)
    for half in (0, 1):
        ctx.emit_labelled(
            "s.movs",
            ctx.reg("r", 2 * dst.index + half),
            ctx.reg("r", 2 * src.index + half),
            ctx.reg("r", 0),
        )


def build_toyp() -> TargetMachine:
    target = build_target(TOYP_MARIL, name="toyp")
    target.register_func("movd", _movd)
    return target
