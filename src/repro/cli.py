"""Command line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE.c`` — compile to assembly text (choose target/strategy);
* ``run FILE.c --entry FN [--args ...]`` — compile, link, simulate;
* ``serve`` — the compile-and-simulate HTTP service (``repro.serve``);
* ``targets`` — list the bundled targets with description statistics;
* ``report`` — regenerate the paper's tables and figures;
* ``worker --connect HOST:PORT`` — join a multi-host evaluation grid;
* ``cache`` — inspect or clear the persistent artifact cache.

``compile`` and ``run`` accept their options either as individual flags
or as ``--options-json`` / ``--sim-json`` documents — the *same*
documents ``POST /v1/compile`` and ``POST /v1/run`` take, parsed by the
same :mod:`repro.serve.schema` validators, so the CLI and the service
cannot drift apart.  Explicit flags overlay the document.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.backend.asmprinter import format_program
from repro.errors import RequestError
from repro.targets import TARGET_NAMES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target", default="r2000", choices=TARGET_NAMES, help="machine to compile for"
    )
    parser.add_argument(
        "--options-json",
        default="",
        metavar="DOC",
        help="compile options as a JSON document (or @FILE), the same "
        "document the service's POST /v1/compile accepts, e.g. "
        '\'{"strategy": "ips", "fill_delay_slots": true}\'; explicit '
        "flags overlay it",
    )
    parser.add_argument(
        "--strategy",
        default=None,
        choices=("postpass", "ips", "rase"),
        help="code generation strategy (default: postpass)",
    )
    parser.add_argument(
        "--heuristic",
        default=None,
        choices=("maxdist", "fifo"),
        help="list scheduling priority heuristic (default: maxdist)",
    )
    parser.add_argument(
        "--no-schedule",
        action="store_true",
        help="disable instruction scheduling (nop-filled baseline)",
    )
    parser.add_argument(
        "--fill-delay-slots",
        action="store_true",
        help="fill branch delay slots with useful work (GH82 extension)",
    )
    parser.add_argument(
        "--jit",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="segment JIT for functional simulation (default: on, or the "
        "REPRO_JIT environment override; bit-identical either way)",
    )


def _load_json_document(text: str, flag: str):
    """An ``--options-json``/``--sim-json`` value -> parsed JSON.

    ``@FILE`` reads the document from a file; anything else is inline
    JSON.  Validation beyond well-formedness belongs to the schema
    parsers this feeds.
    """
    if not text:
        return {}
    import json

    if text.startswith("@"):
        with open(text[1:]) as handle:
            text = handle.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise RequestError(
            f"{flag} is not valid JSON: {exc}", details={"field": flag}
        ) from None


def _compile_options(arguments) -> repro.CompileOptions:
    """The service's options path, CLI-shaped: start from the
    ``--options-json`` document, overlay explicit flags, validate through
    :func:`repro.serve.schema.compile_options_from_json`."""
    from repro.serve.schema import compile_options_from_json

    doc = _load_json_document(arguments.options_json, "--options-json")
    if isinstance(doc, dict):
        doc = dict(doc)
        if arguments.strategy is not None:
            doc["strategy"] = arguments.strategy
        if arguments.heuristic is not None:
            doc["heuristic"] = arguments.heuristic
        if arguments.no_schedule:
            doc["schedule"] = False
        if arguments.fill_delay_slots:
            doc["fill_delay_slots"] = True
    return compile_options_from_json(doc)


def _compile(arguments) -> repro.Executable:
    with open(arguments.file) as handle:
        source = handle.read()
    return repro.compile_c(source, arguments.target, _compile_options(arguments))


def cmd_compile(arguments) -> int:
    executable = _compile(arguments)
    text = format_program(
        executable.machine_program, explain=arguments.explain_schedule
    )
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def _sim_options(arguments, trace_enabled: bool) -> repro.SimOptions:
    """Same deal as :func:`_compile_options`, for the simulation side:
    the ``--sim-json`` document is exactly the ``"sim"`` member of a
    ``POST /v1/run`` body."""
    from repro.serve.schema import sim_options_from_json

    doc = _load_json_document(arguments.sim_json, "--sim-json")
    if isinstance(doc, dict):
        doc = dict(doc)
        if arguments.cache:
            doc["cache"] = True
        if trace_enabled:
            doc["trace"] = True
        if arguments.jit is not None:
            doc["jit"] = arguments.jit
    return sim_options_from_json(doc)


def cmd_run(arguments) -> int:
    trace_path = arguments.trace
    trace = repro.Trace(f"repro run {arguments.file}") if trace_path else None
    options = _sim_options(arguments, trace_enabled=bool(trace_path))

    def _go():
        executable = _compile(arguments)
        args = tuple(
            float(a) if "." in a else int(a) for a in (arguments.args or [])
        )
        return repro.simulate(
            executable, arguments.entry, args=args, options=options
        )

    if trace is not None:
        with repro.tracing(trace):
            result = _go()
    else:
        result = _go()
    print(f"result:       {result.return_value}")
    print(f"cycles:       {result.cycles}")
    print(f"instructions: {result.instructions}")
    print(f"loads/stores: {result.loads}/{result.stores}")
    if options.cache:
        print(f"cache:        {result.cache_hits} hits, {result.cache_misses} misses")
    if result.jit_active_segments or result.jit_hits or result.jit_deopts:
        # active = compiled this run + preloaded from the artifact cache,
        # so a fully warm run does not read as "JIT off"
        print(
            f"jit:          {result.jit_active_segments} segments active "
            f"({result.jit_segments} compiled this run), "
            f"{result.jit_hits} dispatch hits, {result.jit_deopts} deopts"
        )
    if result.block_cache_hits or result.block_cache_misses:
        print(
            f"timing memo:  {result.block_cache_hits} hits, "
            f"{result.block_cache_misses} misses, "
            f"{result.timing_digests} digests computed"
        )
    if result.cycle_breakdown is not None:
        shown = ", ".join(
            f"{kind}={count}"
            for kind, count in result.cycle_breakdown.items()
            if count
        )
        print(f"stalls:       {result.stall_cycles} ({shown or 'none'})")
    if trace is not None:
        trace.write(trace_path, format=arguments.trace_format)
        print(f"trace:        {trace_path} ({arguments.trace_format})")
    return 0


def cmd_serve(arguments) -> int:
    from repro.serve import ServeOptions, serve_app

    options = ServeOptions(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        executor=arguments.executor,
        request_timeout=arguments.request_timeout,
        warm=tuple(arguments.warm or ()),
        memo_size=arguments.memo_size,
        drain_grace=arguments.drain_grace,
    )
    return serve_app(options).run()


def cmd_targets(arguments) -> int:
    from repro.eval.table1 import description_stats

    if arguments.json:
        import json

        payload = []
        for name in TARGET_NAMES:
            target = repro.load_target(name)
            stats = description_stats(name)
            payload.append(
                {
                    "name": name,
                    "register_classes": sorted(target.registers.sets),
                    "resources": len(target.resources.names),
                    "instructions": len(target.instructions),
                    "description": {
                        "instructions": stats.instructions,
                        "clocks": stats.clocks,
                        "class_elements": stats.elements,
                        "glue_transformations": stats.glue_transformations,
                        "funcs": stats.funcs,
                    },
                }
            )
        print(json.dumps(payload, indent=2))
        return 0
    for name in TARGET_NAMES:
        stats = description_stats(name)
        print(
            f"{name:8s} {stats.instructions:3d} instructions, "
            f"{stats.clocks} clocks, {stats.elements} class elements, "
            f"{stats.glue_transformations} glue rules, {stats.funcs} funcs"
        )
    return 0


def cmd_report(arguments) -> int:
    from repro.eval.report import run_report_command

    return run_report_command(arguments, bench_default=None)


def cmd_worker(arguments) -> int:
    from repro.eval.executors import worker_main

    return worker_main(arguments.connect)


def cmd_cache(arguments) -> int:
    from repro.cache import get_cache

    store = get_cache()
    if arguments.cache_command == "path":
        print(store.root)
        return 0
    if arguments.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    # stats
    stats = store.stats()
    if arguments.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    state = "enabled" if stats["enabled"] else "DISABLED (REPRO_CACHE=0)"
    print(f"root:  {stats['root']}  [{state}, salt {stats['salt']}]")
    layers = stats["layers"]
    if not layers:
        print("empty")
    session_layers = stats.get("session_layers", {})
    for layer, entry in sorted(layers.items()):
        line = (
            f"{layer:8s} {entry['entries']:5d} entr{'y' if entry['entries'] == 1 else 'ies'}, "
            f"{entry['bytes'] / 1024:.1f} KiB"
        )
        session = session_layers.get(layer)
        if session:
            line += (
                f"  (session: {session['hits']} hit(s), "
                f"{session['misses']} miss(es), "
                f"{session['writes']} write(s))"
            )
        print(line)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Marion retargetable code generator"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser("compile", help="compile C to assembly")
    compile_parser.add_argument("file")
    compile_parser.add_argument("-o", "--output", help="write assembly here")
    compile_parser.add_argument(
        "--explain-schedule",
        action="store_true",
        help="annotate the listing with issue cycles and stall reasons "
        "from the final scheduling pass",
    )
    _add_common(compile_parser)
    compile_parser.set_defaults(handler=cmd_compile)

    run_parser = commands.add_parser("run", help="compile and simulate")
    run_parser.add_argument("file")
    run_parser.add_argument("--entry", required=True, help="function to run")
    run_parser.add_argument(
        "--args", nargs="*", help="arguments (ints, or floats with a '.')"
    )
    run_parser.add_argument(
        "--cache", action="store_true", help="enable the data cache model"
    )
    run_parser.add_argument(
        "--sim-json",
        default="",
        metavar="DOC",
        help="simulation options as a JSON document (or @FILE), the same "
        '"sim" member the service\'s POST /v1/run accepts, e.g. '
        '\'{"cache": true, "max_cycles": 1000000}\'; explicit flags '
        "overlay it",
    )
    run_parser.add_argument(
        "--trace",
        default="",
        metavar="FILE",
        help="record a compile+simulate trace (spans, counters, per-kind "
        "stall cycles) and write it here",
    )
    run_parser.add_argument(
        "--trace-format",
        default="json",
        choices=("json", "chrome"),
        help="trace file format: plain JSON or Chrome trace_event "
        "(load chrome://tracing or https://ui.perfetto.dev)",
    )
    _add_common(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    serve_parser = commands.add_parser(
        "serve",
        help="run the compile-and-simulate HTTP service",
        description="Serve POST /v1/compile, /v1/run, /v1/explain and "
        "GET /v1/targets, /v1/healthz, /v1/stats over HTTP/JSON, backed "
        "by a warm worker pool, the persistent artifact cache, in-flight "
        "request deduplication and per-request deadlines.  SIGTERM "
        "drains gracefully.",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8177,
        help="port to bind (0 picks a free port, printed on startup)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size (default: REPRO_JOBS or the cpu count)",
    )
    serve_parser.add_argument(
        "--executor",
        default="local",
        help="execution backend: local (process pool, the default), "
        "inprocess (serial), socket, or socket:HOST:PORT",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request deadline ceiling; a request's own timeout_s "
        "may only tighten it (default: 60)",
    )
    serve_parser.add_argument(
        "--warm",
        nargs="*",
        choices=TARGET_NAMES,
        help="targets to build before serving, so forked workers "
        "inherit warm caches",
    )
    serve_parser.add_argument(
        "--memo-size",
        type=int,
        default=256,
        help="completed-response memo entries (0 disables; default: 256)",
    )
    serve_parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests (default: 10)",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    targets_parser = commands.add_parser("targets", help="list bundled targets")
    targets_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (name, register classes, resource "
        "and instruction counts)",
    )
    targets_parser.set_defaults(handler=cmd_targets)

    report_parser = commands.add_parser(
        "report",
        help="regenerate the paper's tables and figures (fault-tolerant: "
        "--timeout bounds each unit, --resume checkpoints into a journal; "
        "exits nonzero when any unit fails)",
    )
    from repro.eval.report import add_report_arguments

    add_report_arguments(report_parser)
    report_parser.add_argument(
        "--bench-out",
        default="",
        help="write a machine-readable BENCH_eval.json here",
    )
    report_parser.set_defaults(handler=cmd_report)

    worker_parser = commands.add_parser(
        "worker",
        help="join a SocketExecutor grid as a remote worker",
        description="Connect to a running evaluation-grid coordinator "
        "(repro report --executor socket:HOST:PORT) and execute work "
        "units until told to shut down.",
    )
    worker_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to connect to",
    )
    worker_parser.set_defaults(handler=cmd_worker)

    cache_parser = commands.add_parser(
        "cache",
        help="the persistent artifact cache (REPRO_CACHE_DIR overrides "
        "the ~/.cache/repro default; REPRO_CACHE=0 disables it)",
    )
    cache_commands = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    stats_parser = cache_commands.add_parser(
        "stats", help="per-layer artifact counts and sizes"
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="machine-readable statistics"
    )
    cache_commands.add_parser("clear", help="delete every cached artifact")
    cache_commands.add_parser("path", help="print the cache directory")
    cache_parser.set_defaults(handler=cmd_cache)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except RequestError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
