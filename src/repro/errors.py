"""Exception hierarchy for the Marion reproduction.

Every user-facing failure raised by this package derives from
:class:`MarionError` so that callers can catch one type.  Errors that point
at a location in source text (Maril descriptions or C-subset programs)
derive from :class:`SourceError` and render ``file:line:col`` prefixes.

The taxonomy also crosses process boundaries: the parallel evaluation
grid runs work units in worker processes and reports their failures as
data, not raises.  :func:`error_payload` flattens any exception to a
JSON-ready dict (type, module, message, structured details, traceback)
and :func:`reconstruct_error` rebuilds the closest possible exception
from such a payload in the parent.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in an input text, for diagnostics."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MarionError(Exception):
    """Base class for all errors raised by the repro package."""


class SourceError(MarionError):
    """An error tied to a location in some source text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        self.message = message
        prefix = f"{location}: " if location is not None else ""
        super().__init__(prefix + message)


class MarilSyntaxError(SourceError):
    """Lexical or grammatical error in a Maril machine description."""


class MarilSemanticError(SourceError):
    """A Maril description that parses but is inconsistent."""


class CSyntaxError(SourceError):
    """Lexical or grammatical error in a C-subset source program."""


class CSemanticError(SourceError):
    """Type or scope error in a C-subset source program."""


class SelectionError(MarionError):
    """No instruction pattern matched an IL tree."""


class SchedulingError(MarionError):
    """The scheduler could not produce a legal schedule."""


class AllocationError(MarionError):
    """The register allocator could not color the interference graph."""


class SimulationError(MarionError):
    """The simulator encountered an illegal state at run time.

    Carries the dynamic context of the fault — ``function`` (the entry
    point being simulated), ``pc`` (instruction index) and ``cycle``
    (pipeline cycle, or instruction count when timing is off) — whenever
    the raise site knows it, so a failed evaluation cell can say *where*
    a kernel died, not just that it did.
    """

    def __init__(
        self,
        message: str,
        *,
        function: str | None = None,
        pc: int | None = None,
        cycle: int | None = None,
    ):
        self.function = function
        self.pc = pc
        self.cycle = cycle
        context = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("function", function),
                ("pc", pc),
                ("cycle", cycle),
            )
            if value is not None
        )
        super().__init__(f"{message} [{context}]" if context else message)


class SimulationTimeout(SimulationError):
    """The simulator's cycle watchdog fired (``Simulator.run(max_cycles=...)``).

    A runaway kernel becomes a structured, catchable failure — the
    evaluation harness renders it as a FAILED table cell — instead of an
    open-ended hang.  ``max_cycles`` records the budget that was
    exceeded; the inherited ``function``/``pc``/``cycle`` fields say
    where execution was when the watchdog fired.
    """

    def __init__(
        self,
        message: str,
        *,
        max_cycles: int | None = None,
        function: str | None = None,
        pc: int | None = None,
        cycle: int | None = None,
    ):
        self.max_cycles = max_cycles
        super().__init__(message, function=function, pc=pc, cycle=cycle)


class GridTimeout(MarionError):
    """A grid work unit exceeded its wall-clock budget (``--timeout``)."""

    def __init__(self, message: str, *, seconds: float | None = None):
        self.seconds = seconds
        super().__init__(message)


class JournalError(MarionError):
    """A run journal could not be read, written, or safely resumed."""


class RequestError(MarionError):
    """A malformed request to the compile-and-simulate service.

    Raised by the versioned request codecs (:mod:`repro.serve.schema`)
    — and by the CLI's ``--options-json`` path, which shares them — for
    anything wrong with the request document itself: invalid JSON, an
    unsupported API version, unknown or ill-typed fields.  ``code`` is
    the stable machine-readable discriminator (``bad_request``,
    ``unsupported_version``, ``unknown_endpoint``, ...) that the HTTP
    layer returns in the structured error payload; ``details`` carries
    field-level specifics.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "bad_request",
        details: dict | None = None,
    ):
        self.code = code
        self.details = dict(details or {})
        super().__init__(message)


#: exception attributes worth carrying across a process boundary
_DETAIL_FIELDS = (
    "function",
    "pc",
    "cycle",
    "max_cycles",
    "seconds",
    "location",
    "code",
)


def error_payload(exc: BaseException, traceback_limit: int = 2000) -> dict:
    """Flatten ``exc`` to a JSON-ready dict for cross-process transport.

    The payload keeps the taxonomy (type + module), the rendered
    message, any structured detail fields the taxonomy defines
    (``function``/``pc``/``cycle``/``max_cycles``/``seconds``/
    ``location``), and the tail of the formatted traceback.
    """
    details = {}
    extra = getattr(exc, "details", None)
    if isinstance(extra, dict):
        for name, value in extra.items():
            details[str(name)] = (
                value
                if isinstance(value, (bool, int, float, str, list))
                else str(value)
            )
    for name in _DETAIL_FIELDS:
        value = getattr(exc, name, None)
        if value is None:
            continue
        details[name] = (
            value if isinstance(value, (bool, int, float, str)) else str(value)
        )
    formatted = "".join(
        _traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return {
        "type": type(exc).__name__,
        "module": type(exc).__module__,
        "message": str(exc),
        "marion": isinstance(exc, MarionError),
        "details": details,
        "traceback": formatted[-traceback_limit:],
    }


def reconstruct_error(payload: dict) -> BaseException:
    """Rebuild the closest possible exception from an :func:`error_payload`.

    The original class is re-imported and instantiated with the rendered
    message when possible; otherwise a plain :class:`MarionError` carries
    the type name and message.  Detail fields are re-attached either way.
    """
    import importlib

    exc: BaseException
    try:
        module = importlib.import_module(payload.get("module", "builtins"))
        cls = getattr(module, payload["type"])
        if not (isinstance(cls, type) and issubclass(cls, BaseException)):
            raise TypeError(payload["type"])
        exc = cls(payload.get("message", ""))
    except Exception:
        exc = MarionError(
            f"{payload.get('type', 'Exception')}: {payload.get('message', '')}"
        )
    for name, value in payload.get("details", {}).items():
        try:
            setattr(exc, name, value)
        except Exception:
            pass
    return exc
