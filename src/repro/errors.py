"""Exception hierarchy for the Marion reproduction.

Every user-facing failure raised by this package derives from
:class:`MarionError` so that callers can catch one type.  Errors that point
at a location in source text (Maril descriptions or C-subset programs)
derive from :class:`SourceError` and render ``file:line:col`` prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in an input text, for diagnostics."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MarionError(Exception):
    """Base class for all errors raised by the repro package."""


class SourceError(MarionError):
    """An error tied to a location in some source text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        self.message = message
        prefix = f"{location}: " if location is not None else ""
        super().__init__(prefix + message)


class MarilSyntaxError(SourceError):
    """Lexical or grammatical error in a Maril machine description."""


class MarilSemanticError(SourceError):
    """A Maril description that parses but is inconsistent."""


class CSyntaxError(SourceError):
    """Lexical or grammatical error in a C-subset source program."""


class CSemanticError(SourceError):
    """Type or scope error in a C-subset source program."""


class SelectionError(MarionError):
    """No instruction pattern matched an IL tree."""


class SchedulingError(MarionError):
    """The scheduler could not produce a legal schedule."""


class AllocationError(MarionError):
    """The register allocator could not color the interference graph."""


class SimulationError(MarionError):
    """The simulator encountered an illegal state at run time."""
