"""Build a :class:`TargetMachine` from a Maril description.

This is the heart of the code generator generator: one pass over the
description compiles registers into the unit-aliasing model, resources into
bitmask vectors, and instructions into descriptors with analysed semantics
and selection patterns.  The pattern list preserves description order —
"the matcher examines the patterns in the order given" (paper section 2.1).
"""

from __future__ import annotations

from repro.cgg.patterns import compile_pattern
from repro.errors import MarilSemanticError
from repro.machine.instruction import InstrDesc, OperandDesc, OperandMode, analyze_semantics
from repro.machine.registers import UNIT_BITS, PhysReg, RegisterModel, RegisterSet
from repro.machine.resources import ResourceTable
from repro.machine.target import AuxRule, CallingConvention, TargetMachine
from repro.maril import ast
from repro.maril.parser import parse_maril
from repro.utils import timing


def build_target(description: ast.Description | str, name: str = "target") -> TargetMachine:
    """Compile a (parsed or textual) Maril description into a target."""
    timing.add("cgg.builds")
    if isinstance(description, str):
        description = parse_maril(description, filename=f"<{name}>")
    return _Generator(description, name).build()


class _Generator:
    def __init__(self, description: ast.Description, name: str):
        self.d = description
        self.name = name

    def build(self) -> TargetMachine:
        registers = self._build_registers()
        resources = self._build_resources()
        target = TargetMachine(
            name=self.name,
            registers=registers,
            resources=resources,
            description=self.d,
        )
        for decl in self.d.declarations(ast.MemoryDecl):
            target.memories[decl.name] = (decl.lo, decl.hi)
        for decl in self.d.element_decls():
            target.elements.extend(decl.names)
        for decl in self.d.declarations(ast.ClockDecl):
            target.clocks.append(decl.name)
        self._build_cwvm(target)
        self._build_instructions(target)
        self._build_aux(target)
        target.glue_rules = list(self.d.glue_decls())
        return target

    # -- registers ---------------------------------------------------------

    def _build_registers(self) -> RegisterModel:
        model = RegisterModel()
        decls = self.d.declarations(ast.RegDecl)
        for decl in decls:
            model.sets[decl.name] = RegisterSet(
                name=decl.name,
                lo=decl.lo,
                hi=decl.hi,
                types=decl.types,
                clock=decl.clock,
                is_temporal=decl.is_temporal,
            )

        # group sets into files via %equiv (union-find over set names)
        parent = {name: name for name in model.sets}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        equivs = self.d.declarations(ast.EquivDecl)
        for decl in equivs:
            a, b = find(decl.wide.set_name), find(decl.narrow.set_name)
            if a != b:
                parent[a] = b

        file_ids: dict[str, int] = {}
        for name in model.sets:
            root = find(name)
            if root not in file_ids:
                file_ids[root] = len(file_ids)
            model.sets[name].file_id = file_ids[root]

        # units per register and offsets within the file
        for rset in model.sets.values():
            rset.units_per_reg = max(1, rset.size_bits // UNIT_BITS)
            rset.unit_offset = 0

        for decl in equivs:
            wide_set = model.sets[decl.wide.set_name]
            narrow_set = model.sets[decl.narrow.set_name]
            if wide_set.size_bits < narrow_set.size_bits:
                wide_set, narrow_set = narrow_set, wide_set
                wide_ref, narrow_ref = decl.narrow, decl.wide
            else:
                wide_ref, narrow_ref = decl.wide, decl.narrow
            # wide[wide_ref.index] starts at narrow[narrow_ref.index]
            narrow_unit = (
                narrow_set.unit_offset
                + (narrow_ref.index - narrow_set.lo) * narrow_set.units_per_reg
            )
            wide_set.unit_offset = narrow_unit - (
                (wide_ref.index - wide_set.lo) * wide_set.units_per_reg
            )
            if wide_set.unit_offset < 0:
                raise MarilSemanticError(
                    f"%equiv {decl.wide} {decl.narrow} places "
                    f"{wide_set.name} before the start of its file",
                    decl.location,
                )

        for rset in model.sets.values():
            top = rset.unit_offset + rset.count * rset.units_per_reg
            model.file_sizes[rset.file_id] = max(
                model.file_sizes.get(rset.file_id, 0), top
            )
        return model

    # -- resources ---------------------------------------------------------

    def _build_resources(self) -> ResourceTable:
        table = ResourceTable()
        for decl in self.d.declarations(ast.ResourceDecl):
            for index, resource in enumerate(decl.names):
                table.declare(resource, capacity=decl.capacity_of(index))
        return table

    # -- cwvm ---------------------------------------------------------------

    def _build_cwvm(self, target: TargetMachine) -> None:
        cwvm = target.cwvm
        arg_lists: dict[str, list[tuple[int, PhysReg]]] = {}
        for decl in self.d.cwvm:
            if isinstance(decl, ast.GeneralDecl):
                cwvm.general[decl.type] = decl.set_name
            elif isinstance(decl, ast.AllocableDecl):
                cwvm.allocable.extend(self._expand_ranges(decl.ranges, target))
            elif isinstance(decl, ast.CalleeSaveDecl):
                cwvm.callee_save.extend(self._expand_ranges(decl.ranges, target))
            elif isinstance(decl, ast.PointerDecl):
                reg = PhysReg(decl.ref.set_name, decl.ref.index)
                if decl.which == "sp":
                    cwvm.sp = reg
                    cwvm.stack_grows_down = "down" in decl.flags
                elif decl.which == "fp":
                    cwvm.fp = reg
                else:
                    cwvm.gp = reg
            elif isinstance(decl, ast.RetAddrDecl):
                cwvm.retaddr = PhysReg(decl.ref.set_name, decl.ref.index)
            elif isinstance(decl, ast.HardDecl):
                cwvm.hard_registers[PhysReg(decl.ref.set_name, decl.ref.index)] = (
                    decl.value
                )
            elif isinstance(decl, ast.ArgDecl):
                arg_lists.setdefault(decl.type, []).append(
                    (decl.index, PhysReg(decl.ref.set_name, decl.ref.index))
                )
            elif isinstance(decl, ast.ResultDecl):
                cwvm.results[decl.type] = PhysReg(decl.ref.set_name, decl.ref.index)
        for type_name, entries in arg_lists.items():
            cwvm.args[type_name] = [reg for _, reg in sorted(entries)]

    def _expand_ranges(self, ranges, target: TargetMachine) -> list[PhysReg]:
        registers: list[PhysReg] = []
        for rng in ranges:
            rset = target.registers.set(rng.set_name)
            lo = rset.lo if rng.lo is None else rng.lo
            hi = rset.hi if rng.hi is None else rng.hi
            registers.extend(PhysReg(rng.set_name, i) for i in range(lo, hi + 1))
        return registers

    # -- instructions -------------------------------------------------------

    def _build_instructions(self, target: TargetMachine) -> None:
        temporal_names = frozenset(
            s.name for s in target.registers.temporal_sets()
        )
        defs = {d.name: d for d in self.d.declarations(ast.DefDecl)}
        labels = {d.name: d for d in self.d.declarations(ast.LabelDecl)}

        for decl in self.d.instr_decls():
            operands = tuple(
                self._compile_operand(op, defs, labels) for op in decl.operands
            )
            desc = InstrDesc(
                mnemonic=decl.mnemonic,
                operands=operands,
                semantics=decl.semantics,
                resource_vector=target.resources.vector(decl.resources),
                cost=decl.cost,
                latency=decl.latency,
                slots=decl.slots,
                type=decl.type,
                clock=decl.clock,
                classes=frozenset(decl.classes),
                label=decl.label,
                func=decl.func,
                is_move=decl.is_move,
            )
            analyze_semantics(desc, temporal_names)
            if desc.mnemonic in target.instructions:
                # several directives may share a mnemonic (e.g. `add` with a
                # register form and an immediate form); keep them distinct by
                # suffixing an internal discriminator.
                discriminator = 2
                base = desc.mnemonic
                while f"{base}@{discriminator}" in target.instructions:
                    discriminator += 1
                desc_key = f"{base}@{discriminator}"
            else:
                desc_key = desc.mnemonic
            target.instructions[desc_key] = desc
            pattern = compile_pattern(desc, temporal_names)
            if pattern is not None:
                desc.patterns.append(pattern)
                target.pattern_order.append(pattern)

    def _compile_operand(self, spec, defs, labels) -> OperandDesc:
        if isinstance(spec, ast.RegOperand):
            if spec.index is None:
                return OperandDesc(OperandMode.REG, set_name=spec.set_name)
            return OperandDesc(
                OperandMode.FIXED_REG, set_name=spec.set_name, reg_index=spec.index
            )
        assert isinstance(spec, ast.ImmOperand)
        if spec.def_name in defs:
            decl = defs[spec.def_name]
            return OperandDesc(
                OperandMode.IMM,
                def_name=decl.name,
                lo=decl.lo,
                hi=decl.hi,
                absolute="abs" in decl.flags,
            )
        decl = labels[spec.def_name]
        return OperandDesc(
            OperandMode.LABEL,
            def_name=decl.name,
            lo=decl.lo,
            hi=decl.hi,
            absolute="abs" in decl.flags,
        )

    # -- aux latencies -------------------------------------------------------

    def _build_aux(self, target: TargetMachine) -> None:
        for decl in self.d.aux_decls():
            rule = AuxRule(
                first=decl.first,
                second=decl.second,
                first_operand=decl.first_operand,
                second_operand=decl.second_operand,
                latency=decl.latency,
            )
            target.aux_rules[(decl.first, decl.second)] = rule
