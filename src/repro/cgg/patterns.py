"""Selection patterns compiled from instruction semantics.

Each ``%instr`` whose semantics are a single matchable statement yields one
pattern.  A pattern is a tree over three leaf kinds:

* :class:`PatOperand` — binds an instruction operand position; register
  operands match any subtree reducible into that register set, immediate
  operands match constants in range (paper section 2.1's "ordered pattern
  list");
* :class:`PatConst` — a literal that must match exactly (the ``0`` in
  ``if ($1 == 0) goto $2``);
* :class:`PatOp` — an IL operator with pattern children.

Instructions whose semantics write temporal registers, or that contain
multiple statements, produce no pattern: they are emitted by ``*func``
escapes or by the back end directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MarionError
from repro.il.ops import ILOp
from repro.machine.instruction import InstrDesc, OperandDesc, OperandMode
from repro.maril import ast

_BINARY_OPS = {
    "+": ILOp.ADD,
    "-": ILOp.SUB,
    "*": ILOp.MUL,
    "/": ILOp.DIV,
    "%": ILOp.MOD,
    "&": ILOp.BAND,
    "|": ILOp.BOR,
    "^": ILOp.BXOR,
    "<<": ILOp.LSH,
    ">>": ILOp.RSH,
    "==": ILOp.EQ,
    "!=": ILOp.NE,
    "<": ILOp.LT,
    "<=": ILOp.LE,
    ">": ILOp.GT,
    ">=": ILOp.GE,
    "::": ILOp.CMP,
}

_UNARY_OPS = {"-": ILOp.NEG, "~": ILOp.BNOT}

_CVT_BUILTINS = {"int", "float", "double"}


class PatNode:
    """Base class for pattern tree nodes."""


@dataclass(frozen=True)
class PatOp(PatNode):
    op: ILOp
    kids: tuple[PatNode, ...]
    type: str | None = None  # for CVT: destination type

    def __str__(self) -> str:
        return f"{self.op.value}({', '.join(map(str, self.kids))})"


@dataclass(frozen=True)
class PatOperand(PatNode):
    position: int  # 0-based operand index
    spec: OperandDesc

    def __str__(self) -> str:
        return f"${self.position + 1}:{self.spec}"


@dataclass(frozen=True)
class PatConst(PatNode):
    value: object

    def __str__(self) -> str:
        return str(self.value)


class PatternKind(enum.Enum):
    VALUE = "value"  # defines a register operand
    STORE = "store"  # writes memory
    BRANCH = "branch"  # conditional branch
    JUMP = "jump"  # unconditional branch


@dataclass
class Pattern:
    """One selection pattern tied to its instruction descriptor."""

    desc: InstrDesc
    kind: PatternKind
    root: PatNode
    def_position: int | None = None  # operand written, for VALUE patterns
    label_position: int | None = None  # branch target operand

    def __str__(self) -> str:
        return f"{self.desc.mnemonic}: {self.root}"

    @property
    def result_type(self) -> str | None:
        """The type a VALUE pattern produces."""
        if self.kind is not PatternKind.VALUE:
            return None
        if self.desc.type is not None:
            return self.desc.type
        return None


def compile_pattern(desc: InstrDesc, temporal_names: frozenset) -> Pattern | None:
    """Compile ``desc``'s semantics into a pattern, or None if unmatchable."""
    statements = [s for s in desc.semantics if not isinstance(s, ast.EmptyStmt)]
    if len(statements) != 1:
        return None
    stmt = statements[0]
    builder = _PatternBuilder(desc, temporal_names)

    if isinstance(stmt, ast.AssignStmt):
        if isinstance(stmt.target, ast.OperandRef):
            root = builder.expr(stmt.value)
            if root is None:
                return None
            return Pattern(
                desc,
                PatternKind.VALUE,
                root,
                def_position=stmt.target.index - 1,
            )
        if isinstance(stmt.target, ast.MemRef):
            address = builder.expr(stmt.target.address)
            value = builder.expr(stmt.value)
            if address is None or value is None:
                return None
            return Pattern(desc, PatternKind.STORE, PatOp(ILOp.ASGN, (address, value)))
        return None  # temporal-register writes are emitted by *funcs

    if isinstance(stmt, ast.CondGotoStmt):
        condition = builder.expr(stmt.condition)
        if condition is None or not isinstance(stmt.target, ast.OperandRef):
            return None
        return Pattern(
            desc,
            PatternKind.BRANCH,
            PatOp(ILOp.CJUMP, (condition,)),
            label_position=stmt.target.index - 1,
        )

    if isinstance(stmt, ast.GotoStmt):
        if not isinstance(stmt.target, ast.OperandRef):
            return None
        return Pattern(
            desc,
            PatternKind.JUMP,
            PatOp(ILOp.JUMP, ()),
            label_position=stmt.target.index - 1,
        )

    return None  # call/ret are handled by the back end directly


class _PatternBuilder:
    def __init__(self, desc: InstrDesc, temporal_names: frozenset):
        self.desc = desc
        self.temporal_names = temporal_names

    def expr(self, expr: ast.Expr) -> PatNode | None:
        if isinstance(expr, ast.OperandRef):
            position = expr.index - 1
            if position >= len(self.desc.operands):
                raise MarionError(
                    f"{self.desc.mnemonic}: ${expr.index} out of range"
                )
            return PatOperand(position, self.desc.operands[position])
        if isinstance(expr, ast.IntLit):
            return PatConst(expr.value)
        if isinstance(expr, ast.FloatLit):
            return PatConst(expr.value)
        if isinstance(expr, ast.NameRef):
            return None  # temporal registers do not appear in patterns
        if isinstance(expr, ast.MemRef):
            address = self.expr(expr.address)
            if address is None:
                return None
            return PatOp(ILOp.INDIR, (address,))
        if isinstance(expr, ast.Unary):
            il_op = _UNARY_OPS.get(expr.op)
            if il_op is None:
                return None
            kid = self.expr(expr.operand)
            if kid is None:
                return None
            return PatOp(il_op, (kid,))
        if isinstance(expr, ast.Binary):
            il_op = _BINARY_OPS.get(expr.op)
            if il_op is None:
                return None
            left = self.expr(expr.left)
            right = self.expr(expr.right)
            if left is None or right is None:
                return None
            return PatOp(il_op, (left, right))
        if isinstance(expr, ast.BuiltinCall):
            if expr.name in _CVT_BUILTINS:
                kid = self.expr(expr.args[0])
                if kid is None:
                    return None
                return PatOp(ILOp.CVT, (kid,), type=expr.name)
            return None  # high/low/eval appear only in glue replacements
        return None
