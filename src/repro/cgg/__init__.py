"""The code generator generator (paper section 2).

:func:`build_target` compiles a Maril description into a
:class:`~repro.machine.target.TargetMachine`: the register/resource model,
instruction descriptors with analysed semantics, and the ordered selection
pattern list derived from each instruction's semantic expression.
"""

from repro.cgg.generator import build_target
from repro.cgg.patterns import Pattern, PatternKind, compile_pattern

__all__ = ["build_target", "Pattern", "PatternKind", "compile_pattern"]
