"""The Marion back end.

Target- and strategy-independent parts (paper section 2): the glue
transformer, instruction selector, code-DAG builder, list scheduler with
structural-hazard/packing/temporal support, and the Chaitin/Briggs register
allocator.  The three code generation strategies live in
:mod:`repro.backend.strategies`.
"""

from repro.backend.insts import Imm, Lab, MachineInstr, Reg

__all__ = ["MachineInstr", "Imm", "Lab", "Reg"]
