"""Instruction selection (paper section 2.1).

A recursive-descent brute-force tree pattern matcher: for each IL tree the
selector tries the target's patterns *in description order*, taking the
first whose structure, types and immediate ranges fit, then recursively
reduces register-operand subtrees.  If a subtree cannot be reduced the
whole attempt is rolled back and the next pattern is tried.  When no
pattern matches, the glue transformer rewrites the node and selection
retries (section 3.4); ``*func`` escapes emit instruction sequences through
:class:`FuncContext`.

Local common subexpressions (IL nodes with more than one parent) are forced
into pseudo-registers unless they are constants an addressing mode or
immediate operand can subsume.
"""

from __future__ import annotations

from repro.backend.glue import GlueTransformer
from repro.backend.insts import Imm, Lab, MachineInstr, Reg, make_instr
from repro.backend.mfunc import MBlock, MFunction
from repro.backend.values import immediate_fits
from repro.cgg.patterns import (
    PatConst,
    PatNode,
    PatOp,
    PatOperand,
    Pattern,
    PatternKind,
)
from repro.errors import SelectionError
from repro.il.function import ILFunction, ILProgram
from repro.il.node import Node, PseudoReg, count_parents
from repro.il.ops import ILOp
from repro.machine.instruction import InstrDesc, InstrKind, OperandMode
from repro.machine.registers import PhysReg
from repro.machine.target import TargetMachine

_MAX_GLUE_DEPTH = 8


class _MatchFailure(Exception):
    """Internal: the current pattern attempt cannot complete."""


class FuncContext:
    """The interface exported to ``*func`` escape functions (section 3.4).

    A func receives its bound operands and emits individually schedulable
    instructions via :meth:`emit` / :meth:`emit_labelled`.
    """

    def __init__(self, target: TargetMachine, emit, operands=(), new_pseudo=None):
        self.target = target
        self._emit = emit
        self._operands = list(operands)
        self._new_pseudo = new_pseudo

    def reg_operand(self, position: int):
        """The register bound at operand ``position`` (0-based)."""
        operand = self._operands[position]
        if not isinstance(operand, Reg):
            raise SelectionError(
                f"func operand {position} is not a register: {operand}"
            )
        return operand.reg

    def imm_operand(self, position: int):
        operand = self._operands[position]
        if not isinstance(operand, Imm):
            raise SelectionError(
                f"func operand {position} is not an immediate: {operand}"
            )
        return operand.value

    def reg(self, set_name: str, index: int) -> PhysReg:
        return PhysReg(set_name, index)

    def new_pseudo(self, type_name: str) -> PseudoReg:
        if self._new_pseudo is None:
            raise SelectionError("this func context cannot create pseudo-registers")
        return self._new_pseudo(type_name)

    def emit(self, mnemonic: str, *operands, comment: str = "") -> MachineInstr:
        desc = self.target.instruction(mnemonic)
        return self._emit_desc(desc, operands, comment)

    def emit_labelled(self, label: str, *operands, comment: str = "") -> MachineInstr:
        desc = self.target.instruction_by_label(label)
        return self._emit_desc(desc, operands, comment)

    def _emit_desc(self, desc: InstrDesc, operands, comment: str) -> MachineInstr:
        wrapped = [self._wrap(op) for op in operands]
        # pad with None so fixed-register slots auto-fill
        while len(wrapped) < len(desc.operands):
            wrapped.append(None)
        instr = make_instr(desc, wrapped, comment=comment)
        self._emit(instr)
        return instr

    @staticmethod
    def _wrap(operand):
        if isinstance(operand, (Reg, Imm, Lab)) or operand is None:
            return operand
        if isinstance(operand, (PhysReg, PseudoReg)):
            return Reg(operand)
        if isinstance(operand, (int, float)) or operand.__class__.__name__ in (
            "SlotOffset",
            "SymbolRef",
            "HighHalf",
            "LowHalf",
        ):
            return Imm(operand)
        if isinstance(operand, str):
            return Lab(operand)
        raise SelectionError(f"cannot wrap func operand {operand!r}")


class Selector:
    """Per-function instruction selection."""

    def __init__(self, target: TargetMachine, program: ILProgram | None = None):
        self.target = target
        self.program = program
        self.glue = GlueTransformer(target)
        self.value_patterns = [
            p
            for p in target.pattern_order
            if p.kind is PatternKind.VALUE and not self._is_bare_reg_pattern(p)
        ]
        self.store_patterns = [
            p for p in target.pattern_order if p.kind is PatternKind.STORE
        ]
        self.branch_patterns = [
            p for p in target.pattern_order if p.kind is PatternKind.BRANCH
        ]
        self.jump_patterns = [
            p for p in target.pattern_order if p.kind is PatternKind.JUMP
        ]
        self._call_desc = self._find_kind(InstrKind.CALL)
        self._ret_desc = self._find_kind(InstrKind.RET)

    @staticmethod
    def _is_bare_reg_pattern(pattern: Pattern) -> bool:
        root = pattern.root
        return isinstance(root, PatOperand) and root.spec.mode in (
            OperandMode.REG,
            OperandMode.FIXED_REG,
        )

    def _find_kind(self, kind: InstrKind) -> InstrDesc | None:
        for desc in self.target.instructions.values():
            if desc.kind is kind:
                return desc
        return None

    # -- function-level driver ------------------------------------------------

    def select_function(self, fn: ILFunction) -> MFunction:
        """Select every block of ``fn``, binding parameters on entry."""
        mfn = MFunction(name=fn.name, return_type=fn.return_type)
        mfn.frame_slots = list(fn.frame_slots)
        mfn.params = list(fn.params)
        self._fn = fn
        self._mfn = mfn

        for il_block in fn.blocks:
            block = MBlock(label=il_block.label, loop_depth=il_block.loop_depth)
            block.successors = [s.label for s in il_block.successors]
            mfn.blocks.append(block)
            self.block = block
            self.node_reg: dict[int, Reg] = {}
            self._cse_log: list[int] = []
            parents = count_parents(il_block.statements)
            self.forced = {
                node_id
                for node_id, count in parents.items()
                if count >= 2
            }
            if il_block is fn.entry:
                self._bind_parameters(fn)
            for stmt in il_block.statements:
                self.select_statement(stmt)
        return mfn

    def _bind_parameters(self, fn: ILFunction) -> None:
        """Move incoming argument registers into parameter pseudos."""
        counts: dict[str, int] = {}
        for param in fn.params:
            index = counts.get(param.type, 0)
            counts[param.type] = index + 1
            arg_reg = self.target.cwvm.arg_register(param.type, index)
            if arg_reg is None:
                raise SelectionError(
                    f"{fn.name}: no argument register for {param.type} "
                    f"parameter #{index + 1} (register-args only)"
                )
            self.emit_move(param, arg_reg, comment=f"param {param}")

    # -- statement dispatch ---------------------------------------------------

    def select_statement(self, node: Node) -> None:
        """Dispatch one IL statement root to its selection routine."""
        if node.op is ILOp.SETREG:
            value = node.kids[0]
            if value.op is ILOp.CALL:
                self.select_call(value, dest=node.value)
            else:
                self.select_value_into(node.value, value)
        elif node.op is ILOp.ASGN:
            self.select_store(node)
        elif node.op is ILOp.CJUMP:
            self.select_branch(node)
        elif node.op is ILOp.JUMP:
            self.select_jump(node)
        elif node.op is ILOp.CALL:
            self.select_call(node, dest=None)
        elif node.op is ILOp.RET:
            self.select_ret(node)
        else:
            raise SelectionError(f"cannot select statement {node}")

    # -- emission plumbing ------------------------------------------------------

    def emit(self, instr: MachineInstr) -> None:
        self.block.append(instr)

    def _checkpoint(self):
        return len(self.block.instrs), len(self._cse_log)

    def _rollback(self, checkpoint) -> None:
        instr_count, cse_count = checkpoint
        del self.block.instrs[instr_count:]
        for node_id in self._cse_log[cse_count:]:
            self.node_reg.pop(node_id, None)
        del self._cse_log[cse_count:]

    def _record(self, node: Node, reg: Reg) -> None:
        self.node_reg[id(node)] = reg
        self._cse_log.append(id(node))

    def new_pseudo(self, type_name: str) -> PseudoReg:
        return self._fn.new_pseudo(type_name)

    def func_context(self, operands) -> FuncContext:
        return FuncContext(
            self.target, self.emit, operands, new_pseudo=self.new_pseudo
        )

    # -- moves ---------------------------------------------------------------

    def set_for_type(self, type_name: str) -> str:
        set_name = self.target.cwvm.general.get(type_name)
        if set_name is None:
            raise SelectionError(
                f"target {self.target.name} has no general register set for "
                f"{type_name}"
            )
        return set_name

    def emit_move(self, dst, src, comment: str = "") -> None:
        """Move between registers (pseudo or physical) of the same type."""
        if isinstance(dst, PseudoReg):
            set_name = dst.set_name or self.set_for_type(dst.type)
        else:
            set_name = dst.set_name
        desc = self.target.move_for_set(set_name)
        operands: list[object] = [None] * len(desc.operands)
        operands[desc.def_operands[0]] = Reg(dst)
        operands[desc.use_operands[0]] = Reg(src)
        self.emit(make_instr(desc, operands, comment=comment))

    # -- value selection ---------------------------------------------------------

    def _reg_set_of(self, reg) -> str:
        if isinstance(reg, PseudoReg):
            return reg.set_name or self.set_for_type(reg.type)
        return reg.set_name

    def select_value(
        self, node: Node, depth: int = 0, want_set: str | None = None
    ) -> Reg:
        if want_set is None:
            want_set = self.set_for_type(node.type or "int")
        cached = self.node_reg.get(id(node))
        if cached is not None and self._reg_set_of(cached.reg) == want_set:
            return cached
        if node.op is ILOp.REG:
            if self._reg_set_of(node.value) != want_set:
                raise SelectionError(
                    f"{node} lives in {self._reg_set_of(node.value)}, "
                    f"needed {want_set}"
                )
            return Reg(node.value)
        if node.op is ILOp.CNST and isinstance(node.value, int):
            hard = self.target.hard_register_for_value(node.value, want_set)
            if hard is not None:
                return Reg(hard)

        reg = self._try_value_patterns(node, dest=None, want_set=want_set)
        if reg is None:
            reg = self._try_value_glue(
                node, dest=None, depth=depth, want_set=want_set
            )
        if reg is None:
            raise SelectionError(
                f"no pattern matches {node} (type {node.type}) on "
                f"{self.target.name}"
            )
        if id(node) in self.forced:
            self._record(node, reg)
        return reg

    def select_value_into(self, dest: PseudoReg, node: Node) -> None:
        """Select ``node`` so its result lands in ``dest`` (SETREG roots)."""
        # reuse of an existing register value is a plain move
        cached = self.node_reg.get(id(node))
        if cached is not None:
            self.emit_move(dest, cached.reg)
            return
        if node.op is ILOp.REG:
            self.emit_move(dest, node.value)
            return
        if node.op is ILOp.CNST and isinstance(node.value, int):
            set_name = self.set_for_type(node.type or "int")
            hard = self.target.hard_register_for_value(node.value, set_name)
            if hard is not None:
                self.emit_move(dest, hard)
                return
        want_set = dest.set_name or self.set_for_type(dest.type)
        reg = self._try_value_patterns(node, dest=dest, want_set=want_set)
        if reg is None:
            reg = self._try_value_glue(
                node, dest=dest, depth=0, want_set=want_set
            )
        if reg is None:
            raise SelectionError(
                f"no pattern matches {node} (type {node.type}) on "
                f"{self.target.name}"
            )
        if id(node) in self.forced:
            self._record(node, Reg(dest))

    def _try_value_patterns(
        self, node: Node, dest: PseudoReg | None, want_set: str | None = None
    ) -> Reg | None:
        for pattern in self.value_patterns:
            if not self._result_type_ok(pattern, node, want_set):
                continue
            checkpoint = self._checkpoint()
            try:
                bindings: dict[int, object] = {}
                self._match(pattern.root, node, bindings, identity_ok=False)
                return self._emit_value(pattern, node, bindings, dest)
            except _MatchFailure:
                self._rollback(checkpoint)
        return None

    def _try_value_glue(
        self, node: Node, dest, depth: int, want_set: str | None = None
    ) -> Reg | None:
        if depth >= _MAX_GLUE_DEPTH:
            return None
        rewritten = self.glue.rewrite_value(node)
        if rewritten is None:
            return None
        if dest is None:
            return self.select_value(rewritten, depth=depth + 1, want_set=want_set)
        reg = self._try_value_patterns(rewritten, dest=dest, want_set=want_set)
        if reg is None:
            reg = self._try_value_glue(
                rewritten, dest=dest, depth=depth + 1, want_set=want_set
            )
        return reg

    def _result_type_ok(
        self, pattern: Pattern, node: Node, want_set: str | None = None
    ) -> bool:
        node_type = node.type or "int"
        desc = pattern.desc
        if pattern.def_position is None:
            return False
        spec = desc.operands[pattern.def_position]
        if spec.mode not in (OperandMode.REG, OperandMode.FIXED_REG):
            return False
        if want_set is not None and spec.set_name != want_set:
            return False
        if desc.type is not None:
            return desc.type == node_type
        rset = self.target.registers.set(spec.set_name)
        return node_type in rset.types

    # -- the matcher --------------------------------------------------------------

    def _match(self, pat: PatNode, node: Node, bindings, identity_ok: bool) -> None:
        if isinstance(pat, PatOp):
            self._match_op(pat, node, bindings, identity_ok)
        elif isinstance(pat, PatConst):
            if node.op is not ILOp.CNST or node.value != pat.value:
                raise _MatchFailure
        elif isinstance(pat, PatOperand):
            self._match_operand(pat, node, bindings)
        else:
            raise _MatchFailure

    def _match_op(self, pat: PatOp, node: Node, bindings, identity_ok: bool) -> None:
        if pat.op is ILOp.CVT:
            if node.op is not ILOp.CVT or node.type != pat.type:
                raise _MatchFailure
            self._match(pat.kids[0], node.kids[0], bindings, identity_ok=False)
            return
        if node.op is pat.op and len(node.kids) == len(pat.kids):
            checkpoint = self._checkpoint()
            saved_bindings = dict(bindings)
            try:
                for position, (pat_kid, node_kid) in enumerate(
                    zip(pat.kids, node.kids)
                ):
                    # addresses (kid 0 of INDIR/ASGN) may use the identity
                    # base+0 form so `m[$b + $off]` matches a bare pointer
                    kid_identity = (
                        pat.op in (ILOp.INDIR, ILOp.ASGN) and position == 0
                    )
                    self._match(pat_kid, node_kid, bindings, kid_identity)
                return
            except _MatchFailure:
                self._rollback(checkpoint)
                bindings.clear()
                bindings.update(saved_bindings)
                if not self._identity_applicable(pat, node, identity_ok):
                    raise
        elif not self._identity_applicable(pat, node, identity_ok):
            raise _MatchFailure
        # identity form: treat `node` as `node + 0`
        base_pat, imm_pat = pat.kids
        self._match(base_pat, node, bindings, identity_ok=False)
        bindings[imm_pat.position] = Imm(0)

    @staticmethod
    def _identity_applicable(pat: PatOp, node: Node, identity_ok: bool) -> bool:
        return (
            identity_ok
            and pat.op is ILOp.ADD
            and len(pat.kids) == 2
            and isinstance(pat.kids[1], PatOperand)
            and pat.kids[1].spec.mode is OperandMode.IMM
            and pat.kids[1].spec.accepts_int(0)
        )

    def _match_operand(self, pat: PatOperand, node: Node, bindings) -> None:
        spec = pat.spec
        if spec.mode is OperandMode.REG:
            node_type = node.type or "int"
            rset = self.target.registers.set(spec.set_name)
            if node_type not in rset.types:
                raise _MatchFailure
            try:
                reg = self.select_value(node, want_set=spec.set_name)
            except SelectionError:
                raise _MatchFailure from None
            self._bind(bindings, pat.position, reg)
        elif spec.mode is OperandMode.FIXED_REG:
            fixed = PhysReg(spec.set_name, spec.reg_index)
            hard_value = self.target.cwvm.hard_registers.get(fixed)
            if (
                node.op is ILOp.CNST
                and isinstance(node.value, int)
                and hard_value == node.value
            ):
                self._bind(bindings, pat.position, Reg(fixed))
            elif node.op is ILOp.REG and node.value == fixed:
                self._bind(bindings, pat.position, Reg(fixed))
            else:
                raise _MatchFailure
        elif spec.mode is OperandMode.IMM:
            if node.op is not ILOp.CNST or not immediate_fits(node.value, spec):
                raise _MatchFailure
            self._bind(bindings, pat.position, Imm(node.value))
        else:  # LABEL operands never appear inside value trees
            raise _MatchFailure

    @staticmethod
    def _bind(bindings, position: int, operand) -> None:
        existing = bindings.get(position)
        if existing is not None and existing != operand:
            raise _MatchFailure
        bindings[position] = operand

    def _emit_value(
        self,
        pattern: Pattern,
        node: Node,
        bindings: dict[int, object],
        dest: PseudoReg | None,
    ) -> Reg:
        desc = pattern.desc
        if dest is None:
            dest = self.new_pseudo(node.type or "int")
            def_spec = desc.operands[pattern.def_position]
            if def_spec.set_name != self.set_for_type(dest.type):
                dest.set_name = def_spec.set_name
        operands: list[object] = []
        for position, spec in enumerate(desc.operands):
            if position == pattern.def_position:
                operands.append(Reg(dest))
            elif position in bindings:
                operands.append(bindings[position])
            elif spec.mode is OperandMode.FIXED_REG:
                operands.append(None)
            else:
                raise _MatchFailure
        if desc.func is not None:
            fn = self.target.funcs.get(desc.func)
            if fn is None:
                raise SelectionError(
                    f"no escape function registered for *{desc.func}"
                )
            fn(self.func_context([op if op is not None else None for op in operands]))
        else:
            self.emit(make_instr(desc, operands))
        return Reg(dest)

    # -- stores -------------------------------------------------------------------

    def select_store(self, node: Node) -> None:
        for pattern in self.store_patterns:
            checkpoint = self._checkpoint()
            try:
                bindings: dict[int, object] = {}
                self._match(pattern.root, node, bindings, identity_ok=True)
                self._emit_plain(pattern.desc, bindings)
                return
            except _MatchFailure:
                self._rollback(checkpoint)
        raise SelectionError(
            f"no store pattern matches {node} on {self.target.name}"
        )

    def _emit_plain(self, desc: InstrDesc, bindings: dict[int, object]) -> None:
        operands: list[object] = []
        for position, spec in enumerate(desc.operands):
            if position in bindings:
                operands.append(bindings[position])
            elif spec.mode is OperandMode.FIXED_REG:
                operands.append(None)
            else:
                raise _MatchFailure
        self.emit(make_instr(desc, operands))

    # -- branches -----------------------------------------------------------------

    def select_branch(self, node: Node, depth: int = 0) -> None:
        for pattern in self.branch_patterns:
            checkpoint = self._checkpoint()
            try:
                bindings: dict[int, object] = {}
                condition_pat = pattern.root.kids[0]
                self._match(condition_pat, node.kids[0], bindings, identity_ok=False)
                bindings[pattern.label_position] = Lab(str(node.value))
                self._emit_plain(pattern.desc, bindings)
                return
            except _MatchFailure:
                self._rollback(checkpoint)
        if depth < _MAX_GLUE_DEPTH:
            rewritten = self.glue.rewrite_branch(node)
            if rewritten is not None:
                self.select_branch(rewritten, depth=depth + 1)
                return
        raise SelectionError(
            f"no branch pattern matches {node} on {self.target.name}"
        )

    def select_jump(self, node: Node) -> None:
        if not self.jump_patterns:
            raise SelectionError(f"{self.target.name} has no jump instruction")
        pattern = self.jump_patterns[0]
        bindings = {pattern.label_position: Lab(str(node.value))}
        self._emit_plain(pattern.desc, bindings)

    # -- calls and returns -----------------------------------------------------------

    def select_call(self, node: Node, dest: PseudoReg | None) -> None:
        if self._call_desc is None:
            raise SelectionError(f"{self.target.name} has no call instruction")
        cwvm = self.target.cwvm
        self._mfn.has_calls = True

        counts: dict[str, int] = {}
        used_arg_regs: list[PhysReg] = []
        moves: list[tuple[PhysReg, Reg]] = []
        for arg in node.kids:
            arg_type = arg.type or "int"
            index = counts.get(arg_type, 0)
            counts[arg_type] = index + 1
            arg_reg = cwvm.arg_register(arg_type, index)
            if arg_reg is None:
                raise SelectionError(
                    f"call to {node.value}: no register for {arg_type} "
                    f"argument #{index + 1} (register-args only)"
                )
            value = self.select_value(arg)
            moves.append((arg_reg, value))
            used_arg_regs.append(arg_reg)
        for arg_reg, value in moves:
            self.emit_move(arg_reg, value.reg, comment="call arg")

        operands: list[object] = []
        for spec in self._call_desc.operands:
            if spec.mode is OperandMode.LABEL:
                operands.append(Lab(str(node.value)))
            elif spec.mode is OperandMode.FIXED_REG:
                operands.append(None)
            else:
                raise SelectionError("call instruction has unexpected operands")
        call = make_instr(self._call_desc, operands)
        call.implicit_uses = used_arg_regs + [cwvm.sp]
        clobbers = list(cwvm.caller_save_allocable())
        if cwvm.retaddr is not None and cwvm.retaddr not in clobbers:
            clobbers.append(cwvm.retaddr)
        for result_reg in cwvm.results.values():
            if result_reg not in clobbers:
                clobbers.append(result_reg)
        call.implicit_defs = clobbers
        self.emit(call)

        if dest is not None:
            result_reg = cwvm.result_register(dest.type)
            if result_reg is None:
                raise SelectionError(f"no result register for type {dest.type}")
            self.emit_move(dest, result_reg, comment="call result")

    def select_ret(self, node: Node) -> None:
        if self._ret_desc is None:
            raise SelectionError(f"{self.target.name} has no ret instruction")
        cwvm = self.target.cwvm
        implicit_uses: list[PhysReg] = []
        if node.kids:
            value = node.kids[0]
            result_reg = cwvm.result_register(value.type or "int")
            if result_reg is None:
                raise SelectionError(
                    f"no result register for type {value.type}"
                )
            reg = self.select_value(value)
            self.emit_move(result_reg, reg.reg, comment="return value")
            implicit_uses.append(result_reg)
        if cwvm.retaddr is not None:
            implicit_uses.append(cwvm.retaddr)
        ret = make_instr(self._ret_desc, [None] * len(self._ret_desc.operands))
        ret.implicit_uses = implicit_uses
        self.emit(ret)
