"""Strategy interface and shared phase helpers.

Strategies see a freshly selected :class:`MFunction` and are responsible
for ordering register allocation and scheduling.  The scheduling support,
allocator and frame machinery are strategy- and target-independent; the
strategy only decides when to call them and with what parameters (the
paper's separation, section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.frame import finish_function
from repro.backend.mfunc import MFunction
from repro.backend.regalloc import GraphColoringAllocator
from repro.backend.scheduler import ListScheduler
from repro.errors import MarionError
from repro.machine.target import TargetMachine
import repro.obs as obs
from repro.obs import stalls
from repro.options import CompileOptions

STRATEGY_NAMES = ("postpass", "ips", "rase")


@dataclass
class StrategyStats:
    """Bookkeeping a strategy reports back (feeds Tables 3 and 4, and the
    report's stall-attribution section)."""

    schedule_passes: int = 0
    spilled_pseudos: int = 0
    allocation_iterations: int = 0
    block_costs: dict[str, int] = field(default_factory=dict)
    #: final-pass stall-reason histogram (reason code -> committed slots),
    #: summed over the function's blocks; conserved against ``nop_slots``
    stall_reasons: dict[str, int] = field(default_factory=dict)
    #: final-pass committed nop slots (idle cycles + inserted delay nops)
    nop_slots: int = 0


class Strategy:
    """Base class: subclasses implement :meth:`run`.

    A strategy is configured by one :class:`CompileOptions` record
    (``options.heuristic`` and ``options.schedule`` are the fields it
    reads); the pre-1.1 ``heuristic=``/``schedule=`` keywords remain as
    thin aliases that build the record for you.
    """

    name = "abstract"

    def __init__(
        self,
        options: CompileOptions | None = None,
        heuristic: str | None = None,
        schedule: bool | None = None,
    ):
        if options is None:
            options = CompileOptions(
                heuristic=heuristic if heuristic is not None else "maxdist",
                schedule=schedule if schedule is not None else True,
            )
        self.options = options
        self.heuristic = options.heuristic
        self.schedule_enabled = options.schedule

    def run(self, fn: MFunction, target: TargetMachine) -> StrategyStats:
        raise NotImplementedError

    # -- shared phases ----------------------------------------------------------

    def allocate(
        self,
        fn: MFunction,
        target: TargetMachine,
        stats: StrategyStats,
        cost_overrides=None,
    ) -> None:
        with obs.span("allocate", function=fn.name) as node:
            allocator = GraphColoringAllocator(
                target, cost_overrides=cost_overrides
            )
            result = allocator.allocate(fn)
            stats.spilled_pseudos += result.spilled_pseudos
            stats.allocation_iterations += result.iterations
            finish_function(fn, target, result.used_callee_save)
            if node is not None:
                node.attrs["spilled"] = result.spilled_pseudos
                node.attrs["iterations"] = result.iterations

    def schedule(
        self,
        fn: MFunction,
        target: TargetMachine,
        stats: StrategyStats,
        register_limit: int | None = None,
        record_costs: bool = True,
        rewrite: bool = True,
    ) -> dict[str, int]:
        """Schedule every block; optionally adopt the new order.

        The ``record_costs`` pass is the *final* one — the schedule the
        emitted code actually carries — so it is also the pass whose
        stall attribution lands on the blocks (for
        ``--explain-schedule``) and in ``stats.stall_reasons``.
        """
        scheduler = ListScheduler(
            target,
            heuristic=self.heuristic,
            register_limit=register_limit,
        )
        pass_kind = "final" if record_costs else (
            "pressure-bounded" if register_limit is not None else "estimate"
        )
        costs: dict[str, int] = {}
        with obs.span(
            f"schedule[{pass_kind}]",
            function=fn.name,
            blocks=len(fn.blocks),
            heuristic=self.heuristic,
        ):
            for block in fn.blocks:
                if self.schedule_enabled:
                    result = scheduler.schedule_block(block.instrs)
                    if rewrite:
                        block.instrs = result.instrs
                    costs[block.label] = result.cost
                    if record_costs:
                        block.issue_cycles = dict(result.issue_cycle)
                        block.stall_events = list(result.stall_events)
                        stalls.merge_reasons(stats.stall_reasons, result.stalls)
                        stats.nop_slots += result.nop_slots
                else:
                    # no-scheduler baseline: keep program order but still
                    # fill branch delay slots with nops (every MIPS-era
                    # assembler did)
                    if rewrite:
                        self._fill_delay_slots(block, target)
                    costs[block.label] = self._unscheduled_cost(block, target)
        stats.schedule_passes += 1
        if record_costs:
            for label, cost in costs.items():
                fn.block(label).schedule_cost = cost
            stats.block_costs.update(costs)
        return costs

    def _fill_delay_slots(self, block, target: TargetMachine) -> None:
        from repro.backend.insts import make_instr

        out = []
        for instr in block.instrs:
            out.append(instr)
            if instr.is_branch_or_jump and instr.desc.slots:
                for _ in range(abs(instr.desc.slots)):
                    nop = make_instr(target.nop, [])
                    nop.comment = "delay slot"
                    out.append(nop)
        block.instrs = out

    def _unscheduled_cost(self, block, target: TargetMachine) -> int:
        """Cost estimate for the no-scheduling baseline: issue in program
        order, stalling for every unmet latency (nop insertion model)."""
        from repro.backend.codedag import build_code_dag

        dag = build_code_dag(block.instrs, target, include_anti=True)
        cycle = 0
        issue: dict[int, int] = {}
        for node in dag.nodes:
            earliest = cycle
            for edge in node.preds:
                earliest = max(earliest, issue[edge.src.index] + edge.latency)
            issue[node.index] = earliest
            cycle = earliest + 1
        cost = cycle
        if dag.nodes and dag.nodes[-1].instr.is_branch_or_jump:
            cost += abs(dag.nodes[-1].instr.desc.slots)
        return cost


def get_strategy(
    name: str,
    heuristic: str = "maxdist",
    schedule: bool = True,
    options: CompileOptions | None = None,
) -> Strategy:
    from repro.backend.strategies.ips import IPSStrategy
    from repro.backend.strategies.postpass import PostpassStrategy
    from repro.backend.strategies.rase import RASEStrategy

    table = {
        "postpass": PostpassStrategy,
        "ips": IPSStrategy,
        "rase": RASEStrategy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise MarionError(
            f"unknown strategy {name!r}; known: {', '.join(STRATEGY_NAMES)}"
        ) from None
    if options is None:
        options = CompileOptions(
            strategy=name, heuristic=heuristic, schedule=schedule
        )
    return cls(options)
