"""Integrated Prepass Scheduling [Goodman & Hsu 88].

Schedule first on pseudo-registers with a limit on local register use (so
the schedule does not force spills), then allocate registers on the
scheduled order, then schedule again to account for the allocator's
register reuse and spill code.
"""

from __future__ import annotations

from repro.backend.mfunc import MFunction
from repro.backend.strategies.base import Strategy, StrategyStats
from repro.machine.target import TargetMachine


class IPSStrategy(Strategy):
    name = "ips"

    #: how many allocable registers the prepass leaves in reserve
    RESERVE = 2

    def register_limit(self, target: TargetMachine) -> int:
        cwvm = target.cwvm
        int_set = cwvm.general.get("int")
        count = len([r for r in cwvm.allocable if r.set_name == int_set])
        return max(2, count - self.RESERVE)

    def run(self, fn: MFunction, target: TargetMachine) -> StrategyStats:
        stats = StrategyStats()
        self.schedule(
            fn,
            target,
            stats,
            register_limit=self.register_limit(target),
            record_costs=False,
        )
        self.allocate(fn, target, stats)
        self.schedule(fn, target, stats)
        return stats
