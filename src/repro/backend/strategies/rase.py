"""Register Allocation with Schedule Estimates [BEH91b].

The scheduler runs before allocation to gather *schedule cost estimates*;
the allocator's spill costs are then weighted by how densely scheduled each
block is — spilling into a block whose schedule has stall slack is cheaper
than spilling into a fully packed block.  A final scheduling pass follows
allocation.  RASE schedules the most of the three strategies (two estimate
passes plus the final pass), matching its higher compile time in Table 3.
"""

from __future__ import annotations

from repro.backend.insts import Reg
from repro.backend.mfunc import MFunction
from repro.backend.strategies.base import Strategy, StrategyStats
from repro.il.node import PseudoReg
from repro.machine.target import TargetMachine


class RASEStrategy(Strategy):
    name = "rase"

    #: the tight register limit for the sensitivity estimate pass
    TIGHT_LIMIT = 4

    def run(self, fn: MFunction, target: TargetMachine) -> StrategyStats:
        stats = StrategyStats()
        # estimate pass 1: unconstrained schedule; adopt the order so the
        # allocator sees schedule-shaped live ranges
        relaxed = self.schedule(fn, target, stats, record_costs=False)
        # estimate pass 2: register-pressure-sensitive schedule, costs only
        tight = self.schedule(
            fn,
            target,
            stats,
            register_limit=self.TIGHT_LIMIT,
            record_costs=False,
            rewrite=False,
        )
        overrides = self._spill_cost_estimates(fn, relaxed, tight)
        self.allocate(fn, target, stats, cost_overrides=overrides)
        self.schedule(fn, target, stats)
        return stats

    def _spill_cost_estimates(
        self, fn: MFunction, relaxed: dict[str, int], tight: dict[str, int]
    ) -> dict[int, float]:
        """Schedule-estimate-weighted spill costs.

        density(b) = instructions / scheduled cycles: in a dense block every
        spill load/store occupies an issue slot, while a stall-heavy block
        can hide spill code in its slack.  The pressure gap between the
        tight and relaxed schedules signals how much this block's schedule
        benefits from registers at all.
        """
        costs: dict[int, float] = {}
        for block in fn.blocks:
            cycles = max(1, relaxed.get(block.label, 1))
            density = len(block.instrs) / cycles
            pressure_gap = max(
                0, tight.get(block.label, cycles) - cycles
            ) / cycles
            weight = (10.0 ** min(block.loop_depth, 5)) * (
                density + pressure_gap
            )
            for instr in block.instrs:
                for operand in instr.operands:
                    if isinstance(operand, Reg) and isinstance(
                        operand.reg, PseudoReg
                    ):
                        costs[operand.reg.id] = (
                            costs.get(operand.reg.id, 0.0) + weight
                        )
        return costs
