"""Code generation strategies (paper section 2).

A strategy directs the invocation of, and level of communication between,
instruction scheduling and global register allocation:

* **Postpass** [GM86] — allocate registers first, then schedule;
* **IPS** [GH88] — schedule with a limit on local register use, allocate,
  then schedule again;
* **RASE** [BEH91b] — run the scheduler to gather schedule cost estimates,
  allocate with those costs, then do final scheduling.
"""

from repro.backend.strategies.base import Strategy, get_strategy, STRATEGY_NAMES
from repro.backend.strategies.postpass import PostpassStrategy
from repro.backend.strategies.ips import IPSStrategy
from repro.backend.strategies.rase import RASEStrategy

__all__ = [
    "Strategy",
    "get_strategy",
    "STRATEGY_NAMES",
    "PostpassStrategy",
    "IPSStrategy",
    "RASEStrategy",
]
