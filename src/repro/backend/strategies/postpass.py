"""Postpass strategy [Gibbons & Muchnick 86]: allocate, then schedule.

Register allocation runs on the selected instruction order; the scheduler
then works on physical registers, so type 3 anti-dependence edges constrain
it wherever the allocator reused a register.  This is the simplest strategy
(151 lines of C in the original system, Table 2) and the baseline the
paper's comparisons are made against.
"""

from __future__ import annotations

from repro.backend.mfunc import MFunction
from repro.backend.strategies.base import Strategy, StrategyStats
from repro.machine.target import TargetMachine


class PostpassStrategy(Strategy):
    name = "postpass"

    def run(self, fn: MFunction, target: TargetMachine) -> StrategyStats:
        stats = StrategyStats()
        self.allocate(fn, target, stats)
        self.schedule(fn, target, stats)
        return stats
