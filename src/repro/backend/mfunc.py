"""Machine-level functions and blocks (post-selection representation)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.insts import MachineInstr
from repro.errors import MarionError
from repro.il.node import FrameSlot, PseudoReg


@dataclass(eq=False)
class MBlock:
    """A basic block of machine instructions."""

    label: str
    instrs: list[MachineInstr] = field(default_factory=list)
    successors: list[str] = field(default_factory=list)
    loop_depth: int = 0
    # per-block scheduler cost estimate (cycles), filled by strategies
    schedule_cost: int = 0
    # final-pass schedule observability, filled by strategies: the issue
    # cycle of every emitted instruction (instr.id -> cycle) and the
    # committed stalls as (cycle, reason) events — what
    # ``repro compile --explain-schedule`` annotates the assembly with
    issue_cycles: dict[int, int] = field(default_factory=dict)
    stall_events: list[tuple[int, str]] = field(default_factory=list)

    def append(self, instr: MachineInstr) -> None:
        self.instrs.append(instr)

    def __repr__(self) -> str:
        return f"MBlock({self.label!r}, {len(self.instrs)} instrs)"


@dataclass(eq=False)
class MFunction:
    """A function lowered to machine instructions."""

    name: str
    return_type: str | None
    blocks: list[MBlock] = field(default_factory=list)
    frame_slots: list[FrameSlot] = field(default_factory=list)
    params: list[PseudoReg] = field(default_factory=list)
    has_calls: bool = False
    frame_size: int = 0  # bytes; set by frame layout
    saved_registers: list = field(default_factory=list)  # set by epilogue pass

    @property
    def entry(self) -> MBlock:
        if not self.blocks:
            raise MarionError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> MBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise MarionError(f"function {self.name} has no block {label!r}")

    def new_slot(self, size: int, align: int = 4, name: str | None = None) -> FrameSlot:
        slot = FrameSlot(size=size, align=align, name=name)
        self.frame_slots.append(slot)
        return slot

    def all_instrs(self):
        """Iterate every instruction across all blocks."""
        for blk in self.blocks:
            yield from blk.instrs

    def instruction_count(self) -> int:
        return sum(len(blk.instrs) for blk in self.blocks)

    def pseudo_registers(self) -> list[PseudoReg]:
        """Every pseudo-register mentioned anywhere, in first-use order."""
        seen: dict[int, PseudoReg] = {}
        for instr in self.all_instrs():
            for pseudo in instr.pseudo_operands():
                seen.setdefault(pseudo.id, pseudo)
        return list(seen.values())
