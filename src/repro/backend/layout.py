"""Block layout cleanup: remove jumps to the lexically next block.

IL generation makes every control transfer explicit (each conditional block
ends with a CJUMP and an unconditional JUMP), which keeps correctness
independent of block order.  After final scheduling, a JUMP whose target is
the next block in layout order — together with its delay-slot nops — is
dead weight; this pass removes it and adjusts the block's schedule cost.
"""

from __future__ import annotations

from repro.backend.mfunc import MFunction
from repro.machine.instruction import InstrKind


def remove_fallthrough_jumps(fn: MFunction) -> int:
    """Drop trailing jumps to the next block; returns how many were cut."""
    removed = 0
    for block, successor in zip(fn.blocks, fn.blocks[1:]):
        instrs = block.instrs
        # find the trailing run of nops
        end = len(instrs)
        while end > 0 and instrs[end - 1].is_nop:
            end -= 1
        if end == 0:
            continue
        last = instrs[end - 1]
        if last.desc.kind is not InstrKind.JUMP:
            continue
        if last.branch_target() != successor.label:
            continue
        cut = 1 + (len(instrs) - end)  # the jump and its delay-slot nops
        del instrs[end - 1 :]
        block.schedule_cost = max(0, block.schedule_cost - cut)
        removed += 1
    return removed
